//! Speed/energy/utilization profiles over time.

use crate::timeline::Timeline;
use mpss_core::{PowerFunction, Schedule};
use mpss_numeric::KahanSum;

/// Breakpoints per directory block of a [`SpeedProfile`]'s lookup index.
/// One block of 64 `f64`s is 512 bytes, so after the coarse directory pick
/// the inner search stays within a few cache lines even on
/// million-breakpoint profiles.
const DIR_FANOUT: usize = 64;

/// A piecewise-constant profile: at `times[i] ≤ t < times[i+1]` the value is
/// `values[i]` (`values.len() == times.len() − 1`).
#[derive(Clone, Debug)]
pub struct SpeedProfile {
    /// Breakpoints, ascending.
    pub times: Vec<f64>,
    /// Per-piece values.
    pub values: Vec<f64>,
    /// Coarse directory: `dir[b] == times[b * DIR_FANOUT]`.
    dir: Vec<f64>,
}

/// Equality is the piecewise data; the directory is a derived cache.
impl PartialEq for SpeedProfile {
    fn eq(&self, other: &Self) -> bool {
        self.times == other.times && self.values == other.values
    }
}

impl SpeedProfile {
    /// Builds a profile from ascending breakpoints and per-piece values
    /// (`values.len() == times.len().saturating_sub(1)`), constructing the
    /// two-level lookup directory.
    pub fn new(times: Vec<f64>, values: Vec<f64>) -> SpeedProfile {
        debug_assert_eq!(values.len(), times.len().saturating_sub(1));
        let dir = times.iter().step_by(DIR_FANOUT).copied().collect();
        SpeedProfile { times, values, dir }
    }

    /// Value at time `t`: 0 strictly outside `[times[0], times.last()]`, the
    /// piece value inside, and — so that the profile is well-defined on its
    /// whole closed support — the *last* piece's value at the final
    /// breakpoint itself. A NaN query returns 0 rather than panicking;
    /// breakpoints are finite by construction (they come from schedule
    /// segment endpoints, which the validator requires finite).
    pub fn at(&self, t: f64) -> f64 {
        if t.is_nan() || self.times.is_empty() || t < self.times[0] {
            return 0.0;
        }
        let last = *self.times.last().unwrap();
        if t > last {
            return 0.0;
        }
        if t == last {
            return self.values.last().copied().unwrap_or(0.0);
        }
        // total_cmp distinguishes -0.0 < 0.0; normalize so a -0.0 query
        // cannot land "before" a 0.0 breakpoint it is numerically equal to.
        let t = if t == 0.0 { 0.0 } else { t };
        // Two-level lookup: the coarse directory picks the block holding the
        // last breakpoint ≤ t, the inner search resolves within the block.
        let block = self.dir.partition_point(|x| x.total_cmp(&t).is_le());
        debug_assert!(block >= 1);
        let start = (block - 1) * DIR_FANOUT;
        let end = (start + DIR_FANOUT).min(self.times.len());
        let within = self.times[start..end].partition_point(|x| x.total_cmp(&t).is_le());
        self.values.get(start + within - 1).copied().unwrap_or(0.0)
    }

    /// Integral of the profile (`Σ value · piece length`).
    pub fn integral(&self) -> f64 {
        let mut sum = KahanSum::new();
        for (i, v) in self.values.iter().enumerate() {
            sum.add(v * (self.times[i + 1] - self.times[i]));
        }
        sum.value()
    }
}

/// Breakpoints of a schedule: all segment starts and ends, deduplicated.
fn breakpoints(schedule: &Schedule<f64>) -> Vec<f64> {
    let mut times: Vec<f64> = schedule
        .segments
        .iter()
        .flat_map(|s| [s.start, s.end])
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times.dedup_by(|a, b| (*a - *b).abs() <= f64::EPSILON * a.abs().max(1.0));
    times
}

/// The *total machine speed* profile `Σ_l s_l(t)` — the quantity the paper's
/// Theorem 3 proof flattens onto a single processor.
pub fn speed_profile(schedule: &Schedule<f64>) -> SpeedProfile {
    let times = breakpoints(schedule);
    if times.len() < 2 {
        return SpeedProfile::new(vec![], vec![]);
    }
    let values = times
        .windows(2)
        .map(|w| {
            let mid = 0.5 * (w[0] + w[1]);
            schedule
                .segments
                .iter()
                .filter(|s| s.start <= mid && mid < s.end)
                .map(|s| s.speed)
                .sum()
        })
        .collect();
    SpeedProfile::new(times, values)
}

/// The cumulative energy time-series of a schedule under `p`, sampled at
/// the schedule's own breakpoints. Returns `(times, cumulative_energy)`.
pub fn energy_series(schedule: &Schedule<f64>, p: &impl PowerFunction) -> (Vec<f64>, Vec<f64>) {
    let times = breakpoints(schedule);
    if times.len() < 2 {
        return (times, vec![]);
    }
    let mut cumulative = Vec::with_capacity(times.len());
    let mut acc = KahanSum::new();
    cumulative.push(0.0);
    for w in times.windows(2) {
        let mid = 0.5 * (w[0] + w[1]);
        let piece: f64 = schedule
            .segments
            .iter()
            .filter(|s| s.start <= mid && mid < s.end)
            .map(|s| p.power(s.speed) * (w[1] - w[0]))
            .sum();
        acc.add(piece);
        cumulative.push(acc.value());
    }
    (times, cumulative)
}

/// Machine utilization over `[from, to)`: busy processor-time divided by
/// `m · (to − from)`.
pub fn utilization(schedule: &Schedule<f64>, from: f64, to: f64) -> f64 {
    assert!(to > from);
    let t = Timeline::build(&schedule.restrict(from, to));
    t.total_busy_time() / (schedule.m as f64 * (to - from))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpss_core::power::Polynomial;
    use mpss_core::Segment;

    fn schedule() -> Schedule<f64> {
        let mut s = Schedule::new(2);
        s.push(Segment {
            job: 0,
            proc: 0,
            start: 0.0,
            end: 2.0,
            speed: 1.0,
        });
        s.push(Segment {
            job: 1,
            proc: 1,
            start: 1.0,
            end: 3.0,
            speed: 2.0,
        });
        s
    }

    #[test]
    fn total_speed_profile() {
        let p = speed_profile(&schedule());
        assert_eq!(p.times, vec![0.0, 1.0, 2.0, 3.0]);
        assert_eq!(p.values, vec![1.0, 3.0, 2.0]);
        assert_eq!(p.at(0.5), 1.0);
        assert_eq!(p.at(1.5), 3.0);
        assert_eq!(p.at(3.5), 0.0);
        // Integral = total work = 1·2 + 2·2 = 6.
        assert!((p.integral() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn at_is_total_on_edge_inputs() {
        let p = speed_profile(&schedule());
        // NaN never panics, and reads as "outside the profile".
        assert_eq!(p.at(f64::NAN), 0.0);
        // Before the first breakpoint.
        assert_eq!(p.at(-1.0), 0.0);
        // Exactly on an interior breakpoint: the piece starting there.
        assert_eq!(p.at(1.0), 3.0);
        // The closed right end takes the final piece's value...
        assert_eq!(p.at(3.0), 2.0);
        // ...and anything past it is outside.
        assert_eq!(p.at(3.0 + 1e-12), 0.0);
        // Negative zero equals zero (the first breakpoint).
        assert_eq!(p.at(-0.0), p.at(0.0));
        // An empty profile is zero everywhere, NaN included.
        let empty = SpeedProfile::new(vec![], vec![]);
        assert_eq!(empty.at(0.0), 0.0);
        assert_eq!(empty.at(f64::NAN), 0.0);
    }

    #[test]
    fn at_agrees_with_linear_reference_across_blocks() {
        // More breakpoints than one directory block; queries on, between,
        // and off every breakpoint must match a naive linear scan.
        let n = 3 * super::DIR_FANOUT + 11;
        let times: Vec<f64> = (0..n).map(|i| i as f64 * 0.5).collect();
        let values: Vec<f64> = (0..n - 1).map(|i| (i % 7) as f64).collect();
        let p = SpeedProfile::new(times.clone(), values.clone());
        let reference = |t: f64| -> f64 {
            if t < times[0] || t > *times.last().unwrap() {
                return 0.0;
            }
            if t == *times.last().unwrap() {
                return *values.last().unwrap();
            }
            let mut idx = 0;
            for (i, w) in times.windows(2).enumerate() {
                if w[0] <= t && t < w[1] {
                    idx = i;
                }
            }
            values[idx]
        };
        for &bp in times.iter().take(n) {
            for q in [bp, bp + 0.1, bp - 0.1, bp + 0.25] {
                assert_eq!(p.at(q), reference(q), "query {q}");
            }
        }
    }

    #[test]
    fn energy_series_is_monotone_and_totals() {
        let s = schedule();
        let p = Polynomial::new(2.0);
        let (times, cum) = energy_series(&s, &p);
        assert_eq!(times.len(), cum.len());
        for w in cum.windows(2) {
            assert!(w[1] >= w[0]);
        }
        // Total: 1²·2 + 2²·2 = 10.
        assert!((cum.last().unwrap() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn utilization_fraction() {
        // Busy 4 of 2·3 = 6 processor-time units.
        let u = utilization(&schedule(), 0.0, 3.0);
        assert!((u - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn empty_schedule_profiles() {
        let s: Schedule<f64> = Schedule::new(2);
        assert!(speed_profile(&s).times.is_empty());
        let (t, c) = energy_series(&s, &Polynomial::new(2.0));
        assert!(t.is_empty() && c.is_empty());
    }
}
