//! Execution engine and analysis tooling for schedules.
//!
//! The algorithm crates produce [`Schedule`](mpss_core::Schedule)s; this
//! crate *runs* them: it builds per-processor timelines, computes
//! utilization and speed profiles, renders text Gantt charts, produces
//! energy time-series, and audits online causality (no schedule decision
//! may touch a job before its release). The experiment harness and the
//! examples use it for reporting; the test-suites use it as yet another
//! independent pair of eyes on algorithm output.

//!
//! ```
//! use mpss_core::{Schedule, Segment};
//! use mpss_sim::{render_gantt, speed_profile, utilization, Timeline};
//!
//! let mut s = Schedule::new(2);
//! s.push(Segment { job: 0, proc: 0, start: 0.0, end: 2.0, speed: 1.0 });
//! s.push(Segment { job: 1, proc: 1, start: 1.0, end: 3.0, speed: 2.0 });
//!
//! let t = Timeline::build(&s);
//! assert_eq!(t.snapshot(1.5), vec![Some(0), Some(1)]);
//! assert_eq!(t.total_busy_time(), 4.0);
//!
//! let profile = speed_profile(&s);
//! assert_eq!(profile.at(1.5), 3.0);            // both processors running
//! assert!((profile.integral() - 6.0).abs() < 1e-12); // = total work
//!
//! assert!((utilization(&s, 0.0, 3.0) - 4.0 / 6.0).abs() < 1e-12);
//! assert!(render_gantt(&s, 0.0, 3.0, 30).contains("P0"));
//! ```

// `!(a < b)` on our FlowNum types deliberately reads as "b ≤ a, treating
// incomparable (impossible for validated inputs) as false"; rewriting via
// partial_cmp would obscure the tolerance-free intent.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod audit;
pub mod gantt;
pub mod profile;
pub mod stats;
pub mod svg;
pub mod timeline;

pub use audit::{audit_commit_monotonicity, audit_online_causality, CausalityViolation};
pub use gantt::{render_gantt, render_speed_heatmap};
pub use profile::{energy_series, speed_profile, utilization, SpeedProfile};
pub use stats::{fleet_stats, job_stats, FleetStats, JobStats};
pub use svg::{render_svg, SvgOptions};
pub use timeline::{ProcessorTimeline, Timeline};
