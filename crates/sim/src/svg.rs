//! SVG rendering of schedules: one lane per processor, one rectangle per
//! segment, hue by job, opacity by speed (relative to the peak). The output
//! is self-contained SVG 1.1 viewable in any browser — the graphical
//! counterpart of [`render_gantt`](crate::render_gantt).

use mpss_core::Schedule;
use std::fmt::Write as _;

/// Geometry options for [`render_svg`].
#[derive(Clone, Debug)]
pub struct SvgOptions {
    /// Total drawing width in pixels.
    pub width: f64,
    /// Height of one processor lane in pixels.
    pub lane_height: f64,
    /// Gap between lanes in pixels.
    pub lane_gap: f64,
    /// Left margin for lane labels.
    pub label_margin: f64,
}

impl Default for SvgOptions {
    fn default() -> Self {
        SvgOptions {
            width: 800.0,
            lane_height: 28.0,
            lane_gap: 6.0,
            label_margin: 40.0,
        }
    }
}

/// A well-spread categorical hue for job `k`.
fn job_hue(k: usize) -> f64 {
    // Golden-angle walk around the hue circle: consecutive ids are far apart.
    (k as f64 * 137.508) % 360.0
}

/// Renders the schedule over `[t0, t1)` as an SVG document string.
pub fn render_svg(schedule: &Schedule<f64>, t0: f64, t1: f64, opts: &SvgOptions) -> String {
    assert!(t1 > t0, "empty time window");
    let m = schedule.m.max(1);
    let peak = schedule.max_speed().max(1e-12);
    let h = m as f64 * (opts.lane_height + opts.lane_gap) + opts.lane_gap + 24.0;
    let plot_w = opts.width - opts.label_margin - 8.0;
    let x_of = |t: f64| opts.label_margin + plot_w * (t - t0) / (t1 - t0);
    let y_of = |proc: usize| opts.lane_gap + proc as f64 * (opts.lane_height + opts.lane_gap);

    let mut out = String::new();
    let _ = writeln!(
        out,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{:.0}" height="{h:.0}" viewBox="0 0 {:.0} {h:.0}" font-family="monospace" font-size="11">"#,
        opts.width, opts.width
    );
    let _ = writeln!(out, r#"<rect width="100%" height="100%" fill="white"/>"#);

    // Lane frames + labels.
    for proc in 0..m {
        let y = y_of(proc);
        let _ = writeln!(
            out,
            r#"<text x="4" y="{:.1}">P{proc}</text>"#,
            y + 0.7 * opts.lane_height
        );
        let _ = writeln!(
            out,
            r##"<rect x="{:.1}" y="{y:.1}" width="{plot_w:.1}" height="{:.1}" fill="#f4f4f4" stroke="#ccc"/>"##,
            opts.label_margin, opts.lane_height
        );
    }

    // Segments.
    for seg in &schedule.segments {
        let start = seg.start.max(t0);
        let end = seg.end.min(t1);
        if start >= end {
            continue;
        }
        let x = x_of(start);
        let w = x_of(end) - x;
        let y = y_of(seg.proc);
        let opacity = 0.35 + 0.65 * (seg.speed / peak);
        let _ = writeln!(
            out,
            r##"<rect x="{x:.2}" y="{y:.1}" width="{w:.2}" height="{:.1}" fill="hsl({:.1}, 70%, 45%)" fill-opacity="{opacity:.3}" stroke="#333" stroke-width="0.5"><title>job {} | [{:.3}, {:.3}) | speed {:.3}</title></rect>"##,
            opts.lane_height,
            job_hue(seg.job),
            seg.job,
            seg.start,
            seg.end,
            seg.speed
        );
        if w > 14.0 {
            let _ = writeln!(
                out,
                r#"<text x="{:.1}" y="{:.1}" fill="white">J{}</text>"#,
                x + 3.0,
                y + 0.7 * opts.lane_height,
                seg.job
            );
        }
    }

    // Time axis.
    let axis_y = y_of(m) + 4.0;
    let _ = writeln!(
        out,
        r#"<text x="{:.1}" y="{axis_y:.1}">t = {t0:.1}</text><text x="{:.1}" y="{axis_y:.1}" text-anchor="end">t = {t1:.1}</text>"#,
        opts.label_margin,
        opts.width - 8.0
    );
    out.push_str("</svg>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpss_core::Segment;

    fn schedule() -> Schedule<f64> {
        let mut s = Schedule::new(2);
        s.push(Segment {
            job: 0,
            proc: 0,
            start: 0.0,
            end: 2.0,
            speed: 1.0,
        });
        s.push(Segment {
            job: 7,
            proc: 1,
            start: 1.0,
            end: 3.0,
            speed: 2.0,
        });
        s
    }

    #[test]
    fn svg_structure_is_complete() {
        let svg = render_svg(&schedule(), 0.0, 3.0, &SvgOptions::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        // Two lanes + two segments.
        assert_eq!(svg.matches("<title>").count(), 2);
        assert!(svg.contains("job 7"));
        assert!(svg.contains(">P0</text>"));
        assert!(svg.contains(">P1</text>"));
    }

    #[test]
    fn clipping_respects_the_window() {
        let svg = render_svg(&schedule(), 2.5, 3.0, &SvgOptions::default());
        // Only the second segment intersects [2.5, 3).
        assert_eq!(svg.matches("<title>").count(), 1);
        assert!(svg.contains("job 7"));
    }

    #[test]
    fn hues_are_distinct_for_nearby_ids() {
        let a = job_hue(0);
        let b = job_hue(1);
        assert!((a - b).abs() > 30.0);
    }

    #[test]
    #[should_panic(expected = "empty time window")]
    fn rejects_empty_window() {
        render_svg(&schedule(), 1.0, 1.0, &SvgOptions::default());
    }
}
