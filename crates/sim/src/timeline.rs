//! Per-processor timelines: the executable view of a schedule.

use mpss_core::{JobId, Schedule};
use mpss_numeric::FlowNum;

/// One processor's chronologically sorted, non-overlapping run list.
#[derive(Clone, Debug)]
pub struct ProcessorTimeline<T> {
    /// Processor index.
    pub proc: usize,
    /// `(job, start, end, speed)` runs, sorted by start time.
    pub runs: Vec<(JobId, T, T, T)>,
}

impl<T: FlowNum> ProcessorTimeline<T> {
    /// Total busy time.
    pub fn busy_time(&self) -> T {
        let mut total = T::zero();
        for &(_, s, e, _) in &self.runs {
            total += e - s;
        }
        total
    }

    /// Number of context switches (job changes between consecutive runs,
    /// including across idle gaps).
    pub fn context_switches(&self) -> usize {
        self.runs.windows(2).filter(|w| w[0].0 != w[1].0).count()
    }

    /// Idle time within `[from, to)`.
    pub fn idle_time(&self, from: T, to: T) -> T {
        let mut idle = to - from;
        for &(_, s, e, _) in &self.runs {
            let lo = s.max2(from);
            let hi = e.min2(to);
            if lo < hi {
                idle -= hi - lo;
            }
        }
        idle
    }
}

/// The full machine timeline.
#[derive(Clone, Debug)]
pub struct Timeline<T> {
    /// One entry per processor, index-aligned.
    pub processors: Vec<ProcessorTimeline<T>>,
}

impl<T: FlowNum> Timeline<T> {
    /// Builds the timeline from a schedule, sorting each processor's runs.
    ///
    /// # Panics
    /// Panics if two runs on one processor overlap (use the validator for a
    /// diagnosable error first).
    pub fn build(schedule: &Schedule<T>) -> Timeline<T> {
        let mut processors: Vec<ProcessorTimeline<T>> = (0..schedule.m)
            .map(|proc| ProcessorTimeline {
                proc,
                runs: Vec::new(),
            })
            .collect();
        for seg in &schedule.segments {
            processors[seg.proc]
                .runs
                .push((seg.job, seg.start, seg.end, seg.speed));
        }
        for p in &mut processors {
            p.runs
                .sort_by(|a, b| a.1.partial_cmp(&b.1).expect("comparable times"));
            for w in p.runs.windows(2) {
                assert!(
                    !(w[1].1 < w[0].2),
                    "overlapping runs on processor {}: {:?} then {:?}",
                    p.proc,
                    w[0],
                    w[1]
                );
            }
        }
        Timeline { processors }
    }

    /// Number of processors.
    pub fn m(&self) -> usize {
        self.processors.len()
    }

    /// The job each processor runs at time `t` (None = idle).
    pub fn snapshot(&self, t: T) -> Vec<Option<JobId>> {
        self.processors
            .iter()
            .map(|p| {
                p.runs
                    .iter()
                    .find(|&&(_, s, e, _)| !(t < s) && t < e)
                    .map(|&(j, ..)| j)
            })
            .collect()
    }

    /// Total busy time across all processors.
    pub fn total_busy_time(&self) -> T {
        let mut total = T::zero();
        for p in &self.processors {
            total += p.busy_time();
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpss_core::Segment;

    fn schedule() -> Schedule<f64> {
        let mut s = Schedule::new(2);
        s.push(Segment {
            job: 0,
            proc: 0,
            start: 1.0,
            end: 3.0,
            speed: 1.0,
        });
        s.push(Segment {
            job: 1,
            proc: 0,
            start: 3.0,
            end: 4.0,
            speed: 2.0,
        });
        s.push(Segment {
            job: 2,
            proc: 1,
            start: 0.0,
            end: 2.0,
            speed: 0.5,
        });
        s
    }

    #[test]
    fn build_sorts_and_partitions_by_processor() {
        let t = Timeline::build(&schedule());
        assert_eq!(t.m(), 2);
        assert_eq!(t.processors[0].runs.len(), 2);
        assert_eq!(t.processors[1].runs.len(), 1);
        assert_eq!(t.processors[0].runs[0].0, 0);
    }

    #[test]
    fn busy_idle_accounting() {
        let t = Timeline::build(&schedule());
        assert_eq!(t.processors[0].busy_time(), 3.0);
        assert_eq!(t.processors[0].idle_time(0.0, 4.0), 1.0);
        assert_eq!(t.processors[1].idle_time(0.0, 4.0), 2.0);
        assert_eq!(t.total_busy_time(), 5.0);
    }

    #[test]
    fn snapshot_reports_running_jobs() {
        let t = Timeline::build(&schedule());
        assert_eq!(t.snapshot(1.5), vec![Some(0), Some(2)]);
        assert_eq!(t.snapshot(3.5), vec![Some(1), None]);
        assert_eq!(t.snapshot(0.5), vec![None, Some(2)]);
    }

    #[test]
    fn context_switches_counted() {
        let t = Timeline::build(&schedule());
        assert_eq!(t.processors[0].context_switches(), 1);
        assert_eq!(t.processors[1].context_switches(), 0);
    }

    #[test]
    #[should_panic(expected = "overlapping runs")]
    fn overlap_panics() {
        let mut s = Schedule::new(1);
        s.push(Segment {
            job: 0,
            proc: 0,
            start: 0.0,
            end: 2.0,
            speed: 1.0,
        });
        s.push(Segment {
            job: 1,
            proc: 0,
            start: 1.0,
            end: 3.0,
            speed: 1.0,
        });
        Timeline::build(&s);
    }
}
