//! Online-causality auditing.
//!
//! An *online* schedule may only commit execution for a job after the job's
//! release, and — stronger, for arrival-driven algorithms like OA(m) — the
//! segments committed before an arrival must not change afterwards. This
//! module checks the first property directly on a schedule and the second
//! on a sequence of committed windows.

use mpss_core::{Instance, JobId, Schedule};

/// A causality violation.
#[derive(Debug, Clone, PartialEq)]
pub enum CausalityViolation {
    /// A segment starts before its job's release.
    RunsBeforeRelease {
        job: JobId,
        start: f64,
        release: f64,
    },
    /// A committed window was retroactively altered by a later commit.
    RetroactiveChange { time: f64 },
}

impl std::fmt::Display for CausalityViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CausalityViolation::RunsBeforeRelease {
                job,
                start,
                release,
            } => write!(
                f,
                "job {job} starts at {start} before its release {release}"
            ),
            CausalityViolation::RetroactiveChange { time } => {
                write!(f, "commitment before t = {time} was altered afterwards")
            }
        }
    }
}

/// Checks that no job runs before its release (necessary for any online
/// schedule; also implied by full feasibility validation, but this check is
/// cheap and gives the online-specific diagnosis).
pub fn audit_online_causality(
    instance: &Instance<f64>,
    schedule: &Schedule<f64>,
) -> Result<(), Vec<CausalityViolation>> {
    let mut violations = Vec::new();
    for seg in &schedule.segments {
        let release = instance.jobs[seg.job].release;
        if seg.start < release - 1e-9 * release.abs().max(1.0) {
            violations.push(CausalityViolation::RunsBeforeRelease {
                job: seg.job,
                start: seg.start,
                release,
            });
        }
    }
    if violations.is_empty() {
        Ok(())
    } else {
        Err(violations)
    }
}

/// Checks commit monotonicity: for each pair of consecutive snapshots
/// `(t_i, schedule_i)` — where `schedule_i` is everything committed up to
/// time `t_i` — the later snapshot restricted to `[−∞, t_i)` must equal the
/// earlier one restricted the same way: history is append-only, later
/// commits never rewrite what was already executed.
pub fn audit_commit_monotonicity(
    snapshots: &[(f64, Schedule<f64>)],
) -> Result<(), CausalityViolation> {
    for w in snapshots.windows(2) {
        let (t_cur, _) = w[0];
        let mut a = w[0].1.restrict(f64::NEG_INFINITY, t_cur);
        let mut b = w[1].1.restrict(f64::NEG_INFINITY, t_cur);
        a.normalize();
        b.normalize();
        if a != b {
            return Err(CausalityViolation::RetroactiveChange { time: t_cur });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpss_core::job::job;
    use mpss_core::Segment;

    fn instance() -> Instance<f64> {
        Instance::new(1, vec![job(2.0, 5.0, 1.0)]).unwrap()
    }

    #[test]
    fn catches_early_execution() {
        let mut s = Schedule::new(1);
        s.push(Segment {
            job: 0,
            proc: 0,
            start: 1.0,
            end: 3.0,
            speed: 0.5,
        });
        let errs = audit_online_causality(&instance(), &s).unwrap_err();
        assert!(matches!(
            errs[0],
            CausalityViolation::RunsBeforeRelease { job: 0, .. }
        ));
    }

    #[test]
    fn accepts_causal_schedule() {
        let mut s = Schedule::new(1);
        s.push(Segment {
            job: 0,
            proc: 0,
            start: 2.0,
            end: 4.0,
            speed: 0.5,
        });
        assert!(audit_online_causality(&instance(), &s).is_ok());
    }

    #[test]
    fn tolerance_boundary_start_just_before_release_is_accepted() {
        // The audit allows float dust: start = release − ε for ε below the
        // relative tolerance (1e-9 · max(|release|, 1)) must pass…
        let mut s = Schedule::new(1);
        s.push(Segment {
            job: 0,
            proc: 0,
            start: 2.0 - 1e-12,
            end: 4.0,
            speed: 0.5,
        });
        assert!(audit_online_causality(&instance(), &s).is_ok());

        // …while an ε above it is a real violation.
        let mut s = Schedule::new(1);
        s.push(Segment {
            job: 0,
            proc: 0,
            start: 2.0 - 1e-6,
            end: 4.0,
            speed: 0.5,
        });
        let errs = audit_online_causality(&instance(), &s).unwrap_err();
        assert_eq!(errs.len(), 1);
        assert!(matches!(
            errs[0],
            CausalityViolation::RunsBeforeRelease { job: 0, release, .. } if release == 2.0
        ));
    }

    #[test]
    fn all_early_segments_are_reported() {
        let ins = Instance::new(2, vec![job(2.0, 5.0, 1.0), job(3.0, 6.0, 1.0)]).unwrap();
        let mut s = Schedule::new(2);
        for (k, start) in [(0usize, 0.0), (1usize, 1.0)] {
            s.push(Segment {
                job: k,
                proc: k,
                start,
                end: start + 1.0,
                speed: 1.0,
            });
        }
        let errs = audit_online_causality(&ins, &s).unwrap_err();
        assert_eq!(errs.len(), 2);
    }

    #[test]
    fn violations_display_both_variants() {
        let early = CausalityViolation::RunsBeforeRelease {
            job: 3,
            start: 1.0,
            release: 2.0,
        };
        assert_eq!(early.to_string(), "job 3 starts at 1 before its release 2");
        let rewrite = CausalityViolation::RetroactiveChange { time: 4.5 };
        assert_eq!(
            rewrite.to_string(),
            "commitment before t = 4.5 was altered afterwards"
        );
    }

    #[test]
    fn commit_monotonicity_accepts_appends() {
        let mut s1 = Schedule::new(1);
        s1.push(Segment {
            job: 0,
            proc: 0,
            start: 0.0,
            end: 1.0,
            speed: 1.0,
        });
        let mut s2 = s1.clone();
        s2.push(Segment {
            job: 1,
            proc: 0,
            start: 1.0,
            end: 2.0,
            speed: 1.0,
        });
        assert!(audit_commit_monotonicity(&[(1.0, s1), (2.0, s2)]).is_ok());
    }

    #[test]
    fn commit_monotonicity_catches_rewrites() {
        let mut s1 = Schedule::new(1);
        s1.push(Segment {
            job: 0,
            proc: 0,
            start: 0.0,
            end: 1.0,
            speed: 1.0,
        });
        let mut s2 = Schedule::new(1);
        s2.push(Segment {
            job: 0,
            proc: 0,
            start: 0.0,
            end: 1.0,
            speed: 2.0,
        }); // history rewritten
        let err = audit_commit_monotonicity(&[(1.0, s1), (2.0, s2)]).unwrap_err();
        assert!(matches!(err, CausalityViolation::RetroactiveChange { time: t } if t == 1.0));
    }
}
