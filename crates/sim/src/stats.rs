//! Per-job statistics of a schedule: completion times, flow times,
//! stretch, per-job energy attribution — the reporting layer a cluster
//! operator reads.

use mpss_core::{Instance, PowerFunction, Schedule};

/// Metrics for one job within a schedule.
#[derive(Clone, Debug, PartialEq)]
pub struct JobStats {
    /// Job id.
    pub job: usize,
    /// First time the job executes (release if never executed).
    pub start_time: f64,
    /// Last time the job executes (release if never executed).
    pub completion_time: f64,
    /// `completion − release` (a.k.a. flow time / response time).
    pub flow_time: f64,
    /// Flow time divided by the window length (1.0 = uses its whole window).
    pub stretch: f64,
    /// Total time the job executes.
    pub busy_time: f64,
    /// Energy attributed to this job (`Σ P(speed)·dur` over its segments).
    pub energy: f64,
    /// Number of distinct processors the job touches.
    pub processors_used: usize,
}

/// Computes [`JobStats`] for every job.
pub fn job_stats(
    instance: &Instance<f64>,
    schedule: &Schedule<f64>,
    p: &impl PowerFunction,
) -> Vec<JobStats> {
    (0..instance.n())
        .map(|k| {
            let segs: Vec<_> = schedule.segments.iter().filter(|s| s.job == k).collect();
            let release = instance.jobs[k].release;
            let window = instance.jobs[k].window();
            let start_time = segs
                .iter()
                .map(|s| s.start)
                .fold(f64::INFINITY, f64::min)
                .min(f64::INFINITY);
            let completion_time = segs.iter().map(|s| s.end).fold(release, f64::max);
            let busy_time: f64 = segs.iter().map(|s| s.duration()).sum();
            let energy: f64 = segs.iter().map(|s| p.power(s.speed) * s.duration()).sum();
            let mut procs: Vec<usize> = segs.iter().map(|s| s.proc).collect();
            procs.sort_unstable();
            procs.dedup();
            JobStats {
                job: k,
                start_time: if segs.is_empty() { release } else { start_time },
                completion_time,
                flow_time: completion_time - release,
                stretch: (completion_time - release) / window,
                busy_time,
                energy,
                processors_used: procs.len(),
            }
        })
        .collect()
}

/// Aggregate of [`job_stats`]: totals and extremes.
#[derive(Clone, Debug, PartialEq)]
pub struct FleetStats {
    /// Sum of per-job energies (= total schedule energy for `P(0) = 0`).
    pub total_energy: f64,
    /// Mean flow time.
    pub mean_flow_time: f64,
    /// Largest stretch across jobs.
    pub max_stretch: f64,
    /// Jobs that touch more than one processor (i.e. migrate).
    pub migrating_jobs: usize,
}

/// Summarizes the per-job stats.
pub fn fleet_stats(stats: &[JobStats]) -> FleetStats {
    let n = stats.len().max(1) as f64;
    FleetStats {
        total_energy: stats.iter().map(|s| s.energy).sum(),
        mean_flow_time: stats.iter().map(|s| s.flow_time).sum::<f64>() / n,
        max_stretch: stats.iter().map(|s| s.stretch).fold(0.0, f64::max),
        migrating_jobs: stats.iter().filter(|s| s.processors_used > 1).count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpss_core::job::job;
    use mpss_core::power::Polynomial;
    use mpss_core::Segment;

    fn setup() -> (Instance<f64>, Schedule<f64>) {
        let ins = Instance::new(2, vec![job(0.0, 4.0, 2.0), job(1.0, 3.0, 2.0)]).unwrap();
        let mut s = Schedule::new(2);
        s.push(Segment {
            job: 0,
            proc: 0,
            start: 0.0,
            end: 2.0,
            speed: 0.5,
        });
        s.push(Segment {
            job: 0,
            proc: 1,
            start: 3.0,
            end: 4.0,
            speed: 1.0,
        });
        s.push(Segment {
            job: 1,
            proc: 1,
            start: 1.0,
            end: 3.0,
            speed: 1.0,
        });
        (ins, s)
    }

    #[test]
    fn per_job_metrics() {
        let (ins, s) = setup();
        let p = Polynomial::new(2.0);
        let stats = job_stats(&ins, &s, &p);
        assert_eq!(stats[0].start_time, 0.0);
        assert_eq!(stats[0].completion_time, 4.0);
        assert_eq!(stats[0].flow_time, 4.0);
        assert_eq!(stats[0].stretch, 1.0);
        assert_eq!(stats[0].busy_time, 3.0);
        assert_eq!(stats[0].processors_used, 2);
        // Energy: 0.25·2 + 1·1 = 1.5.
        assert!((stats[0].energy - 1.5).abs() < 1e-12);
        assert_eq!(stats[1].flow_time, 2.0);
        assert_eq!(stats[1].processors_used, 1);
    }

    #[test]
    fn fleet_aggregation() {
        let (ins, s) = setup();
        let p = Polynomial::new(2.0);
        let stats = job_stats(&ins, &s, &p);
        let fleet = fleet_stats(&stats);
        assert!((fleet.total_energy - 3.5).abs() < 1e-12);
        assert_eq!(fleet.mean_flow_time, 3.0);
        assert_eq!(fleet.max_stretch, 1.0);
        assert_eq!(fleet.migrating_jobs, 1);
    }

    #[test]
    fn unexecuted_jobs_report_zero_activity() {
        let ins = Instance::new(1, vec![job(2.0, 5.0, 1.0)]).unwrap();
        let stats = job_stats(&ins, &Schedule::new(1), &Polynomial::new(2.0));
        assert_eq!(stats[0].busy_time, 0.0);
        assert_eq!(stats[0].flow_time, 0.0);
        assert_eq!(stats[0].energy, 0.0);
        assert_eq!(stats[0].processors_used, 0);
    }
}
