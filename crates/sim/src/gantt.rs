//! Text Gantt rendering for schedules — the at-a-glance debugging tool used
//! by the examples.

use crate::timeline::Timeline;
use mpss_core::Schedule;

/// Renders the schedule as a per-processor character strip: one row per
/// processor, `cols` columns over `[t0, t1)`, each cell showing the running
/// job's id (mod 36, as 0–9A–Z) or `.` when idle.
pub fn render_gantt(schedule: &Schedule<f64>, t0: f64, t1: f64, cols: usize) -> String {
    assert!(t1 > t0 && cols >= 1);
    let timeline = Timeline::build(schedule);
    let mut out = String::new();
    let cell = (t1 - t0) / cols as f64;
    for p in &timeline.processors {
        out.push_str(&format!("P{:<2} |", p.proc));
        for c in 0..cols {
            let t = t0 + (c as f64 + 0.5) * cell;
            let ch = p
                .runs
                .iter()
                .find(|&&(_, s, e, _)| s <= t && t < e)
                .map(|&(j, ..)| {
                    char::from_digit((j % 36) as u32, 36)
                        .unwrap()
                        .to_ascii_uppercase()
                })
                .unwrap_or('.');
            out.push(ch);
        }
        out.push_str("|\n");
    }
    out.push_str(&format!(
        "     t = [{t0:.1}, {t1:.1}), one column ≈ {cell:.2} time units\n"
    ));
    out
}

/// Renders a per-processor *speed heatmap*: like [`render_gantt`], but each
/// cell shows execution intensity relative to the schedule's peak speed
/// (` .:-=+*#%@` from idle to peak) instead of the job id.
pub fn render_speed_heatmap(schedule: &Schedule<f64>, t0: f64, t1: f64, cols: usize) -> String {
    assert!(t1 > t0 && cols >= 1);
    const RAMP: &[u8] = b" .:-=+*#%@";
    let peak = schedule.max_speed().max(1e-12);
    let timeline = Timeline::build(schedule);
    let cell = (t1 - t0) / cols as f64;
    let mut out = String::new();
    for p in &timeline.processors {
        out.push_str(&format!("P{:<2} |", p.proc));
        for c in 0..cols {
            let t = t0 + (c as f64 + 0.5) * cell;
            let speed = p
                .runs
                .iter()
                .find(|&&(_, s, e, _)| s <= t && t < e)
                .map(|&(_, _, _, sp)| sp)
                .unwrap_or(0.0);
            let idx = ((speed / peak) * (RAMP.len() - 1) as f64).round() as usize;
            out.push(RAMP[idx.min(RAMP.len() - 1)] as char);
        }
        out.push_str("|\n");
    }
    out.push_str(&format!(
        "     speed ramp: ' ' = idle … '@' = peak ({peak:.3})\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpss_core::Segment;

    #[test]
    fn gantt_shows_jobs_and_idle() {
        let mut s = Schedule::new(2);
        s.push(Segment {
            job: 0,
            proc: 0,
            start: 0.0,
            end: 2.0,
            speed: 1.0,
        });
        s.push(Segment {
            job: 11,
            proc: 1,
            start: 2.0,
            end: 4.0,
            speed: 1.0,
        });
        let g = render_gantt(&s, 0.0, 4.0, 8);
        let lines: Vec<&str> = g.lines().collect();
        assert!(lines[0].starts_with("P0"));
        assert!(lines[0].contains("0000...."));
        assert!(lines[1].contains("....BBBB")); // job 11 → 'B'
    }

    #[test]
    fn heatmap_shows_intensity() {
        let mut s = Schedule::new(1);
        s.push(Segment {
            job: 0,
            proc: 0,
            start: 0.0,
            end: 1.0,
            speed: 1.0,
        });
        s.push(Segment {
            job: 1,
            proc: 0,
            start: 1.0,
            end: 2.0,
            speed: 4.0,
        });
        let h = render_speed_heatmap(&s, 0.0, 2.0, 4);
        let row = h.lines().next().unwrap();
        // Half the row at quarter intensity, half at peak.
        assert!(row.contains("::@@") || row.contains(":@"), "row: {row}");
        assert!(h.contains("peak (4.000)"));
    }

    #[test]
    fn gantt_handles_empty_schedule() {
        let s: Schedule<f64> = Schedule::new(1);
        let g = render_gantt(&s, 0.0, 1.0, 4);
        assert!(g.contains("P0  |....|"));
    }
}
