//! Legacy adjacency-list max-flow oracle.
//!
//! This module preserves the pre-CSR representation (`Vec<Edge>` arena plus
//! per-node `Vec<u32>` adjacency lists) and the exact engine code that ran
//! on it, as an independent differential oracle for the flat-arena kernels:
//!
//! * [`RefNetwork`] — the old pointer-chasing representation;
//! * [`dinic`] — the old Dinic. Both Dinics visit arcs in insertion order,
//!   so the CSR engine must reproduce its per-edge flows **bit-identically**
//!   (asserted by `tests/differential.rs` and the crate proptests);
//! * [`push_relabel`] — the old highest-label + gap engine *without*
//!   current-arc/global-relabel heuristics; its work counters are the
//!   baseline the `exp_maxflow_ablation` speedup gate divides by.
//!
//! The module is test/bench infrastructure: nothing in the solver stack
//! links against it.

use crate::EngineStats;
use mpss_numeric::FlowNum;
use std::collections::VecDeque;

#[derive(Copy, Clone, Debug)]
struct Edge<T> {
    to: u32,
    residual: T,
}

/// Flow network in the legacy adjacency-list representation.
#[derive(Clone, Debug)]
pub struct RefNetwork<T: FlowNum> {
    edges: Vec<Edge<T>>,
    caps: Vec<T>,
    adj: Vec<Vec<u32>>,
}

impl<T: FlowNum> RefNetwork<T> {
    /// Creates a network with `n` nodes and no edges.
    pub fn new(n: usize) -> RefNetwork<T> {
        RefNetwork {
            edges: Vec::new(),
            caps: Vec::new(),
            adj: vec![Vec::new(); n],
        }
    }

    /// Copies the topology and capacities of a CSR network (zero flow).
    pub fn from_network(net: &crate::FlowNetwork<T>) -> RefNetwork<T> {
        let mut out = RefNetwork::new(net.num_nodes());
        for (_, from, to, cap, _) in net.iter_edges() {
            out.add_edge(from, to, cap);
        }
        out
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Number of forward edges.
    pub fn num_edges(&self) -> usize {
        self.caps.len()
    }

    /// Adds a directed edge `from → to` with the given capacity.
    pub fn add_edge(&mut self, from: usize, to: usize, cap: T) -> u32 {
        assert!(
            from < self.adj.len() && to < self.adj.len(),
            "edge endpoint out of range"
        );
        assert!(from != to, "self-loops are not allowed in a flow network");
        assert!(!(cap < T::zero()), "negative capacity");
        let id = self.edges.len() as u32;
        self.edges.push(Edge {
            to: to as u32,
            residual: cap,
        });
        self.edges.push(Edge {
            to: from as u32,
            residual: T::zero(),
        });
        self.caps.push(cap);
        self.adj[from].push(id);
        self.adj[to].push(id + 1);
        id
    }

    /// Zeroes forward edge `edge`'s capacity on an *unsolved* network (edge
    /// index, not arc id) — the differential tests' tool for mirroring a
    /// CSR-side `set_capacity` onto a fresh legacy copy before its cold
    /// solve. Not flow-aware: calling it after a solve leaves stale flow.
    pub fn zero_capacity(&mut self, edge: u32) {
        self.caps[edge as usize] = T::zero();
        self.edges[(2 * edge) as usize].residual = T::zero();
    }

    /// Current flow on forward edge `2k` (pass the forward arc id).
    pub fn flow(&self, id: u32) -> T {
        self.edges[(id ^ 1) as usize].residual
    }

    /// Flows of all forward edges, in edge order — the bit-comparison
    /// payload for CSR-vs-legacy differential checks.
    pub fn flows(&self) -> Vec<T> {
        (0..self.caps.len())
            .map(|k| self.flow(2 * k as u32))
            .collect()
    }

    /// Net flow out of `node`.
    pub fn net_out_flow(&self, node: usize) -> T {
        let mut total = T::zero();
        for &eid in &self.adj[node] {
            if eid % 2 == 0 {
                total += self.flow(eid);
            } else {
                total -= self.flow(eid ^ 1);
            }
        }
        total
    }

    /// Nodes reachable from `from` through strictly positive residual arcs.
    pub fn residual_reachable(&self, from: usize) -> Vec<bool> {
        let mut seen = vec![false; self.num_nodes()];
        let mut stack = vec![from];
        seen[from] = true;
        while let Some(u) = stack.pop() {
            for &eid in &self.adj[u] {
                let e = &self.edges[eid as usize];
                let v = e.to as usize;
                if !seen[v] && e.residual.is_strictly_positive() {
                    seen[v] = true;
                    stack.push(v);
                }
            }
        }
        seen
    }
}

const UNREACHED: u32 = u32::MAX;

struct RefDinic {
    level: Vec<u32>,
    it: Vec<u32>,
    queue: VecDeque<u32>,
    stats: EngineStats,
}

impl RefDinic {
    fn bfs<T: FlowNum>(&mut self, net: &RefNetwork<T>, s: usize, t: usize) -> bool {
        self.stats.bfs_phases += 1;
        self.level.clear();
        self.level.resize(net.num_nodes(), UNREACHED);
        self.queue.clear();
        self.level[s] = 0;
        self.queue.push_back(s as u32);
        while let Some(u) = self.queue.pop_front() {
            let u = u as usize;
            for &eid in &net.adj[u] {
                let e = &net.edges[eid as usize];
                let v = e.to as usize;
                if self.level[v] == UNREACHED && e.residual.is_strictly_positive() {
                    self.level[v] = self.level[u] + 1;
                    if v == t {
                        continue;
                    }
                    self.queue.push_back(v as u32);
                }
            }
        }
        self.level[t] != UNREACHED
    }

    fn dfs<T: FlowNum>(
        &mut self,
        net: &mut RefNetwork<T>,
        u: usize,
        t: usize,
        pushed: Option<T>,
    ) -> Option<T> {
        if u == t {
            return pushed;
        }
        while (self.it[u] as usize) < net.adj[u].len() {
            let eid = net.adj[u][self.it[u] as usize] as usize;
            let Edge { to, residual } = net.edges[eid];
            let v = to as usize;
            if residual.is_strictly_positive() && self.level[v] == self.level[u] + 1 {
                let bottleneck = match pushed {
                    Some(p) => Some(p.min2(residual)),
                    None => Some(residual),
                };
                if let Some(got) = self.dfs(net, v, t, bottleneck) {
                    net.edges[eid].residual -= got;
                    net.edges[eid ^ 1].residual += got;
                    return Some(got);
                }
            }
            self.it[u] += 1;
        }
        self.level[u] = UNREACHED;
        None
    }
}

/// Runs the legacy Dinic to completion; returns the flow value and the work
/// counters of this single run.
pub fn dinic<T: FlowNum>(net: &mut RefNetwork<T>, s: usize, t: usize) -> (T, EngineStats) {
    assert!(s != t, "source and sink must differ");
    let mut engine = RefDinic {
        level: Vec::new(),
        it: Vec::new(),
        queue: VecDeque::new(),
        stats: EngineStats::default(),
    };
    let mut total = T::zero();
    loop {
        if !engine.bfs(net, s, t) {
            break;
        }
        engine.it.clear();
        engine.it.resize(net.num_nodes(), 0);
        while let Some(got) = engine.dfs(net, s, t, None) {
            engine.stats.augmenting_paths += 1;
            total += got;
        }
    }
    (total, engine.stats)
}

/// Runs the legacy highest-label push–relabel (gap heuristic only, no
/// current-arc reuse across discharges beyond the original cursor, no
/// global relabeling); returns the flow value and the work counters.
pub fn push_relabel<T: FlowNum>(net: &mut RefNetwork<T>, s: usize, t: usize) -> (T, EngineStats) {
    assert!(s != t, "source and sink must differ");
    let mut stats = EngineStats::default();
    let n = net.num_nodes();
    let mut height = vec![0u32; n];
    height[s] = n as u32;
    let mut cur_arc = vec![0u32; n];
    let mut in_bucket = vec![false; n];
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); 2 * n + 1];
    let mut height_count = vec![0u32; 2 * n + 1];
    height_count[0] = (n - 1) as u32;
    height_count[n] = 1;
    let mut excess: Vec<T> = vec![T::zero(); n];

    macro_rules! enqueue {
        ($v:expr) => {{
            let v = $v;
            if v != s && v != t && !in_bucket[v] && excess[v].is_strictly_positive() {
                in_bucket[v] = true;
                let h = height[v] as usize;
                if h < buckets.len() {
                    buckets[h].push(v as u32);
                }
            }
        }};
    }

    for k in 0..net.adj[s].len() {
        let eid = net.adj[s][k] as usize;
        let cap = net.edges[eid].residual;
        if cap.is_strictly_positive() {
            let v = net.edges[eid].to as usize;
            net.edges[eid].residual -= cap;
            net.edges[eid ^ 1].residual += cap;
            excess[v] += cap;
            excess[s] -= cap;
            enqueue!(v);
        }
    }

    let mut hi = 2 * n;
    loop {
        while hi > 0 && buckets[hi].is_empty() {
            hi -= 1;
        }
        if hi == 0 && buckets[0].is_empty() {
            break;
        }
        let u = match buckets[hi].pop() {
            Some(u) => u as usize,
            None => break,
        };
        in_bucket[u] = false;
        if !excess[u].is_strictly_positive() {
            continue;
        }

        while excess[u].is_strictly_positive() {
            if (cur_arc[u] as usize) >= net.adj[u].len() {
                stats.relabels += 1;
                let old_h = height[u] as usize;
                let mut min_h = u32::MAX;
                for &eid in &net.adj[u] {
                    let e = &net.edges[eid as usize];
                    if e.residual.is_strictly_positive() {
                        min_h = min_h.min(height[e.to as usize] + 1);
                    }
                }
                if min_h == u32::MAX || min_h as usize > 2 * n {
                    height[u] = (2 * n) as u32 + 1;
                    break;
                }
                height_count[old_h] -= 1;
                if height_count[old_h] == 0 && old_h < n {
                    stats.gap_events += 1;
                    // Indexed loop: the body mutates `height` and
                    // `height_count` together, which iter_mut can't split.
                    #[allow(clippy::needless_range_loop)]
                    for v in 0..n {
                        let hv = height[v] as usize;
                        if hv > old_h && hv <= n && v != s {
                            height_count[hv] -= 1;
                            height[v] = (n + 1) as u32;
                            height_count[n + 1] += 1;
                        }
                    }
                }
                height[u] = min_h;
                if (min_h as usize) <= 2 * n {
                    height_count[min_h as usize] += 1;
                }
                cur_arc[u] = 0;
                continue;
            }
            let eid = net.adj[u][cur_arc[u] as usize] as usize;
            let e = net.edges[eid];
            let v = e.to as usize;
            if e.residual.is_strictly_positive() && height[u] == height[v] + 1 {
                stats.pushes += 1;
                let delta = excess[u].min2(e.residual);
                net.edges[eid].residual -= delta;
                net.edges[eid ^ 1].residual += delta;
                excess[u] -= delta;
                excess[v] += delta;
                enqueue!(v);
            } else {
                cur_arc[u] += 1;
            }
        }
        if excess[u].is_strictly_positive() {
            continue;
        }
        hi = 2 * n;
    }

    cancel_trapped_excess(net, &mut excess, s, t);
    (excess[t], stats)
}

fn cancel_trapped_excess<T: FlowNum>(
    net: &mut RefNetwork<T>,
    excess: &mut [T],
    s: usize,
    t: usize,
) {
    let n = net.num_nodes();
    for u in 0..n {
        if u == s || u == t {
            continue;
        }
        while excess[u].is_strictly_positive() {
            let mut mark = vec![false; n];
            let mut path: Vec<usize> = Vec::new();
            let mut cur = u;
            mark[u] = true;
            let mut bottleneck = excess[u];
            'walk: loop {
                if cur == s {
                    break 'walk;
                }
                let mut advanced = false;
                for &eid in &net.adj[cur] {
                    if eid % 2 == 1 {
                        let fwd = (eid ^ 1) as usize;
                        let from = net.edges[eid as usize].to as usize;
                        let carried = net.edges[eid as usize].residual;
                        if carried.is_strictly_positive() && !mark[from] {
                            bottleneck = bottleneck.min2(carried);
                            path.push(fwd);
                            mark[from] = true;
                            cur = from;
                            advanced = true;
                            break;
                        }
                    }
                }
                if !advanced {
                    let eid = match path.pop() {
                        Some(e) => e,
                        None => return,
                    };
                    let carried = net.edges[eid ^ 1].residual;
                    net.edges[eid].residual += carried;
                    net.edges[eid ^ 1].residual -= carried;
                    path.clear();
                    mark.iter_mut().for_each(|m| *m = false);
                    mark[u] = true;
                    cur = u;
                    bottleneck = excess[u];
                    continue 'walk;
                }
            }
            for &eid in &path {
                net.edges[eid].residual += bottleneck;
                net.edges[eid ^ 1].residual -= bottleneck;
            }
            excess[u] -= bottleneck;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{max_flow_dinic, max_flow_push_relabel, FlowNetwork};

    /// CLRS Fig. 26.6.
    fn clrs() -> FlowNetwork<f64> {
        let mut net: FlowNetwork<f64> = FlowNetwork::new(6);
        net.add_edge(0, 1, 16.0);
        net.add_edge(0, 2, 13.0);
        net.add_edge(1, 2, 10.0);
        net.add_edge(2, 1, 4.0);
        net.add_edge(1, 3, 12.0);
        net.add_edge(3, 2, 9.0);
        net.add_edge(2, 4, 14.0);
        net.add_edge(4, 3, 7.0);
        net.add_edge(3, 5, 20.0);
        net.add_edge(4, 5, 4.0);
        net
    }

    #[test]
    fn legacy_dinic_flows_are_bit_identical_to_csr() {
        let mut csr = clrs();
        let mut legacy = RefNetwork::from_network(&csr);
        let f_csr = max_flow_dinic(&mut csr, 0, 5);
        let (f_ref, _) = dinic(&mut legacy, 0, 5);
        assert_eq!(f_csr.to_bits(), f_ref.to_bits());
        for (k, (id, _, _, _, flow)) in csr.iter_edges().enumerate() {
            assert_eq!(
                flow.to_bits(),
                legacy.flow(2 * k as u32).to_bits(),
                "edge {id:?} flow diverged"
            );
        }
    }

    #[test]
    fn legacy_push_relabel_value_matches_csr() {
        let mut csr = clrs();
        let mut legacy = RefNetwork::from_network(&csr);
        let f_csr = max_flow_push_relabel(&mut csr, 0, 5);
        let (f_ref, stats) = push_relabel(&mut legacy, 0, 5);
        assert_eq!(f_csr, 23.0);
        assert_eq!(f_ref, 23.0);
        assert!(
            stats.global_relabels == 0,
            "legacy engine has no heuristics"
        );
        // The min-cut certificate is flow-invariant across engines.
        assert_eq!(csr.residual_reachable(0), legacy.residual_reachable(0));
    }
}
