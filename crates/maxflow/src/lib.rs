//! Maximum-flow substrate for the `mpss` workspace.
//!
//! The offline algorithm of Albers–Antoniadis–Greiner (SPAA 2011) reduces
//! each phase of the optimal multi-processor speed-scaling computation to a
//! maximum-flow problem on the bipartite job × interval network of the
//! paper's Fig. 1. This crate provides that substrate from scratch:
//!
//! * [`FlowNetwork`] — a residual-edge-paired network representation,
//!   generic over [`FlowNum`] so it runs in both
//!   guarded `f64` and exact rational arithmetic;
//! * [`dinic::Dinic`] — Dinic's blocking-flow algorithm (`O(V²E)`
//!   augmentations independent of capacity values, hence safe for real
//!   capacities);
//! * [`push_relabel::PushRelabel`] — highest-label push–relabel with the gap
//!   heuristic, as an independent second engine used to cross-validate;
//! * [`validate`] — an engine-agnostic checker for capacity constraints and
//!   flow conservation;
//! * [`warm`] — warm-start primitives (drain a vertex's flow, retune a
//!   capacity in place, re-augment from the retained feasible flow) so the
//!   incremental solvers reuse the previous round's flow;
//! * [`dot`] — Graphviz export used to regenerate the paper's Fig. 1.
//!
//! ```
//! use mpss_maxflow::{FlowNetwork, max_flow_dinic, max_flow_push_relabel};
//! use mpss_maxflow::validate::validate_flow;
//!
//! // A diamond network: 0 → {1, 2} → 3.
//! let mut net: FlowNetwork<f64> = FlowNetwork::new(4);
//! net.add_edge(0, 1, 3.0);
//! net.add_edge(1, 3, 2.0);
//! net.add_edge(0, 2, 1.0);
//! net.add_edge(2, 3, 4.0);
//!
//! let mut other = net.clone();
//! let f = max_flow_dinic(&mut net, 0, 3);
//! assert_eq!(f, 3.0);                                   // 2 over the top + 1 below
//! assert_eq!(max_flow_push_relabel(&mut other, 0, 3), f); // engines agree
//! validate_flow(&net, 0, 3, 1e-9).unwrap();             // conservation holds
//! ```

// `!(a < b)` on our FlowNum types deliberately reads as "b ≤ a, treating
// incomparable (impossible for validated inputs) as false"; rewriting via
// partial_cmp would obscure the tolerance-free intent.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod decompose;
pub mod dinic;
pub mod dot;
pub mod network;
pub mod push_relabel;
pub mod reference;
pub mod validate;
pub mod warm;

pub use decompose::{decompose_flow, FlowPath};
pub use dinic::Dinic;
pub use network::{EdgeId, FlowNetwork, NodeId};
pub use push_relabel::PushRelabel;
pub use warm::{drain_node, push_path, residual_reachable_tol, set_capacity, WarmStartable};

use mpss_numeric::FlowNum;
use std::sync::atomic::AtomicBool;

/// Work counters of a max-flow engine, accumulated across
/// [`MaxFlow::max_flow`] calls until [`MaxFlow::reset_stats`].
///
/// Wall time alone cannot separate "the algorithm did less work" from "the
/// machine was faster"; these counters are the engine-level work measures the
/// ablation experiments and run reports compare. Dinic fills the first two
/// fields, push–relabel the rest; a field an engine never touches stays
/// zero.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Dinic: level graphs built (BFS passes over the residual graph).
    pub bfs_phases: u64,
    /// Dinic: augmenting paths pushed inside blocking flows.
    pub augmenting_paths: u64,
    /// Push–relabel: push operations (saturating and not).
    pub pushes: u64,
    /// Push–relabel: relabel operations.
    pub relabels: u64,
    /// Push–relabel: gap-heuristic firings (a height level emptied and
    /// everything above it was lifted past `n`).
    pub gap_events: u64,
    /// Push–relabel: global-relabel passes (backward BFS from the sink
    /// recomputing exact distance labels; fired once at initialization and
    /// again after every `n` relabels).
    pub global_relabels: u64,
    /// Push–relabel: current-arc pointer resets driven by a (non-stuck)
    /// relabel of the node. Bulk resets done by a global relabel are
    /// accounted under `global_relabels`, not here.
    pub current_arc_resets: u64,
}

impl EngineStats {
    /// Total primitive operations — a single scalar "work done" figure for
    /// cross-engine tables. Pointer resets are bookkeeping, not graph work,
    /// so they are excluded; global relabels count once each (their BFS cost
    /// is amortized against the relabels they replace).
    pub fn total_ops(&self) -> u64 {
        self.bfs_phases
            + self.augmenting_paths
            + self.pushes
            + self.relabels
            + self.gap_events
            + self.global_relabels
    }
}

/// A maximum-flow engine over a [`FlowNetwork`].
///
/// Engines mutate the network's flow values in place and return the value of
/// the computed maximum flow (total net flow out of `source`).
pub trait MaxFlow<T: FlowNum> {
    /// Computes a maximum `source` → `sink` flow, leaving the per-edge flow
    /// assignment inside `net`.
    fn max_flow(&mut self, net: &mut FlowNetwork<T>, source: NodeId, sink: NodeId) -> T;

    /// [`max_flow`](MaxFlow::max_flow) with a cooperative cancellation
    /// flag, the hook engine-portfolio racing hangs the loser's abort on.
    ///
    /// The engine polls `cancel` (relaxed load) in its outer loop — once
    /// per Dinic BFS phase / augmenting path, once per push–relabel
    /// discharge — and returns `None` as soon as it observes the flag set.
    /// On `None` the network holds a partially augmented (still
    /// capacity-feasible, but not conservative or maximal) flow and MUST be
    /// discarded by the caller; the engine's work counters retain the
    /// partial work, so racing callers snapshot and
    /// [`restore_stats`](MaxFlow::restore_stats) for losers.
    ///
    /// The default implementation ignores the flag (a legal, if
    /// unresponsive, refinement: cancellation is best-effort).
    fn max_flow_cancelable(
        &mut self,
        net: &mut FlowNetwork<T>,
        source: NodeId,
        sink: NodeId,
        cancel: &AtomicBool,
    ) -> Option<T> {
        let _ = cancel;
        Some(self.max_flow(net, source, sink))
    }

    /// Name for logs and bench labels.
    fn name(&self) -> &'static str;

    /// Work counters accumulated since construction or the last
    /// [`reset_stats`](MaxFlow::reset_stats). The counters cost one integer
    /// increment per primitive operation, so they are always on.
    fn stats(&self) -> EngineStats {
        EngineStats::default()
    }

    /// Zeroes the work counters.
    fn reset_stats(&mut self) {}

    /// Overwrites the work counters with `stats` — the racing caller's
    /// tool for making counter merging well-defined: snapshot before the
    /// race, restore the snapshot on the losing engine so its partial,
    /// cancelled work is dropped rather than summed into run totals.
    fn restore_stats(&mut self, stats: EngineStats) {
        let _ = stats;
    }
}

/// Convenience: run Dinic's algorithm on `net`.
pub fn max_flow_dinic<T: FlowNum>(net: &mut FlowNetwork<T>, s: NodeId, t: NodeId) -> T {
    Dinic::default().max_flow(net, s, t)
}

/// Convenience: run push–relabel on `net`.
pub fn max_flow_push_relabel<T: FlowNum>(net: &mut FlowNetwork<T>, s: NodeId, t: NodeId) -> T {
    PushRelabel::default().max_flow(net, s, t)
}

#[cfg(test)]
mod tests;
