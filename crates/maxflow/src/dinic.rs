//! Dinic's blocking-flow maximum-flow algorithm.
//!
//! Complexity `O(V²E)` in the number of *augmentations*, independent of
//! capacity values — which is what makes it safe for real-valued (and exact
//! rational) capacities: termination never relies on integrality.
//!
//! On the bipartite job × interval networks produced by the offline
//! scheduler (unit-style capacities, 3 levels), Dinic behaves like
//! Hopcroft–Karp and is effectively `O(E √V)`.
//!
//! The engine iterates the network's flat CSR arc arena directly: `it[u]`
//! is an absolute position into `arc_order`, initialised from `first_arc`
//! each phase, so the inner loops touch three contiguous `u32` arrays
//! instead of chasing per-node `Vec`s. Because the CSR lists each node's
//! arcs in insertion order, the traversal — and therefore every flow
//! assignment — is bit-identical to the legacy adjacency-list engine
//! (asserted by the differential tests against [`crate::reference`]).

use crate::network::{FlowNetwork, NodeId};
use crate::{EngineStats, MaxFlow};
use mpss_numeric::FlowNum;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};

/// Dinic engine with reusable scratch buffers.
///
/// Reusing an engine across many flow computations (the offline algorithm
/// performs `O(n²)` of them) avoids re-allocating the level/iterator arrays
/// every round.
#[derive(Default)]
pub struct Dinic {
    level: Vec<u32>,
    /// Per-node cursor into `arc_order` (absolute CSR positions).
    it: Vec<u32>,
    queue: VecDeque<u32>,
    stats: EngineStats,
}

const UNREACHED: u32 = u32::MAX;

impl Dinic {
    /// Creates a fresh engine.
    pub fn new() -> Dinic {
        Dinic::default()
    }

    /// BFS from `s` on the residual graph, building the level graph.
    /// Returns `true` if `t` is reachable.
    fn bfs<T: FlowNum>(&mut self, net: &FlowNetwork<T>, s: NodeId, t: NodeId) -> bool {
        self.stats.bfs_phases += 1;
        self.level.clear();
        self.level.resize(net.num_nodes(), UNREACHED);
        self.queue.clear();
        self.level[s] = 0;
        self.queue.push_back(s as u32);
        while let Some(u) = self.queue.pop_front() {
            let u = u as usize;
            for &aid in net.arcs(u) {
                let a = aid as usize;
                let v = net.head[a] as usize;
                if self.level[v] == UNREACHED && net.res[a].is_strictly_positive() {
                    self.level[v] = self.level[u] + 1;
                    if v == t {
                        // Early exit is safe: we only need levels on
                        // shortest paths, and BFS guarantees any node at a
                        // level beyond t's is useless.
                        continue;
                    }
                    self.queue.push_back(v as u32);
                }
            }
        }
        self.level[t] != UNREACHED
    }

    /// DFS that pushes a blocking flow along the level graph.
    fn dfs<T: FlowNum>(
        &mut self,
        net: &mut FlowNetwork<T>,
        u: NodeId,
        t: NodeId,
        pushed: Option<T>,
    ) -> Option<T> {
        if u == t {
            return pushed;
        }
        while self.it[u] < net.first_arc[u + 1] {
            let a = net.arc_order[self.it[u] as usize] as usize;
            let v = net.head[a] as usize;
            let residual = net.res[a];
            if residual.is_strictly_positive() && self.level[v] == self.level[u] + 1 {
                let bottleneck = match pushed {
                    Some(p) => Some(p.min2(residual)),
                    None => Some(residual),
                };
                if let Some(got) = self.dfs(net, v, t, bottleneck) {
                    net.res[a] -= got;
                    net.res[a ^ 1] += got;
                    return Some(got);
                }
            }
            self.it[u] += 1;
        }
        // Dead end: prune this node for the rest of the phase.
        self.level[u] = UNREACHED;
        None
    }

    /// Shared driver behind [`MaxFlow::max_flow`] and
    /// [`MaxFlow::max_flow_cancelable`]: the cancellation flag is polled at
    /// each BFS phase and before each augmenting path, the two outer-loop
    /// points where abandoning leaves nothing half-pushed on the recursion
    /// stack.
    fn run<T: FlowNum>(
        &mut self,
        net: &mut FlowNetwork<T>,
        s: NodeId,
        t: NodeId,
        cancel: Option<&AtomicBool>,
    ) -> Option<T> {
        assert!(s != t, "source and sink must differ");
        net.ensure_csr();
        let cancelled = || cancel.is_some_and(|c| c.load(Ordering::Relaxed));
        let mut total = T::zero();
        loop {
            if cancelled() {
                return None;
            }
            if !self.bfs(net, s, t) {
                break;
            }
            self.it.clear();
            self.it.extend_from_slice(&net.first_arc[..net.num_nodes()]);
            loop {
                if cancelled() {
                    return None;
                }
                match self.dfs(net, s, t, None) {
                    Some(got) => {
                        self.stats.augmenting_paths += 1;
                        total += got;
                    }
                    None => break,
                }
            }
        }
        Some(total)
    }
}

impl<T: FlowNum> MaxFlow<T> for Dinic {
    fn max_flow(&mut self, net: &mut FlowNetwork<T>, s: NodeId, t: NodeId) -> T {
        self.run(net, s, t, None)
            .expect("uncancellable run cannot be cancelled")
    }

    fn max_flow_cancelable(
        &mut self,
        net: &mut FlowNetwork<T>,
        s: NodeId,
        t: NodeId,
        cancel: &AtomicBool,
    ) -> Option<T> {
        self.run(net, s, t, Some(cancel))
    }

    fn name(&self) -> &'static str {
        "dinic"
    }

    fn stats(&self) -> EngineStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = EngineStats::default();
    }

    fn restore_stats(&mut self, stats: EngineStats) {
        self.stats = stats;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpss_numeric::rational::rat;
    use mpss_numeric::Rational;

    #[test]
    fn single_edge() {
        let mut net: FlowNetwork<f64> = FlowNetwork::new(2);
        net.add_edge(0, 1, 3.5);
        assert_eq!(crate::max_flow_dinic(&mut net, 0, 1), 3.5);
    }

    #[test]
    fn series_takes_min() {
        let mut net: FlowNetwork<f64> = FlowNetwork::new(3);
        net.add_edge(0, 1, 5.0);
        net.add_edge(1, 2, 2.0);
        assert_eq!(crate::max_flow_dinic(&mut net, 0, 2), 2.0);
    }

    #[test]
    fn parallel_paths_add() {
        let mut net: FlowNetwork<f64> = FlowNetwork::new(4);
        net.add_edge(0, 1, 3.0);
        net.add_edge(1, 3, 3.0);
        net.add_edge(0, 2, 4.0);
        net.add_edge(2, 3, 4.0);
        assert_eq!(crate::max_flow_dinic(&mut net, 0, 3), 7.0);
    }

    #[test]
    fn classic_clrs_network() {
        // CLRS Figure 26.6 network; max flow 23.
        let mut net: FlowNetwork<f64> = FlowNetwork::new(6);
        net.add_edge(0, 1, 16.0);
        net.add_edge(0, 2, 13.0);
        net.add_edge(1, 2, 10.0);
        net.add_edge(2, 1, 4.0);
        net.add_edge(1, 3, 12.0);
        net.add_edge(3, 2, 9.0);
        net.add_edge(2, 4, 14.0);
        net.add_edge(4, 3, 7.0);
        net.add_edge(3, 5, 20.0);
        net.add_edge(4, 5, 4.0);
        assert_eq!(crate::max_flow_dinic(&mut net, 0, 5), 23.0);
    }

    #[test]
    fn requires_augmenting_through_residual_edge() {
        // The classic "cross" network where a naive greedy path assignment
        // must be undone via the residual edge.
        let mut net: FlowNetwork<f64> = FlowNetwork::new(4);
        net.add_edge(0, 1, 1.0);
        net.add_edge(0, 2, 1.0);
        net.add_edge(1, 2, 1.0);
        net.add_edge(1, 3, 1.0);
        net.add_edge(2, 3, 1.0);
        assert_eq!(crate::max_flow_dinic(&mut net, 0, 3), 2.0);
    }

    #[test]
    fn disconnected_sink_gives_zero() {
        let mut net: FlowNetwork<f64> = FlowNetwork::new(4);
        net.add_edge(0, 1, 5.0);
        net.add_edge(2, 3, 5.0);
        assert_eq!(crate::max_flow_dinic(&mut net, 0, 3), 0.0);
    }

    #[test]
    fn exact_rational_flow() {
        let mut net: FlowNetwork<Rational> = FlowNetwork::new(3);
        net.add_edge(0, 1, rat(1, 3));
        net.add_edge(0, 1, rat(1, 6));
        net.add_edge(1, 2, rat(5, 12));
        let f = crate::max_flow_dinic(&mut net, 0, 2);
        assert_eq!(f, rat(5, 12)); // min(1/3 + 1/6, 5/12) = 5/12 exactly
    }

    #[test]
    fn flow_value_matches_net_out_flow() {
        let mut net: FlowNetwork<f64> = FlowNetwork::new(4);
        net.add_edge(0, 1, 2.0);
        net.add_edge(0, 2, 2.0);
        net.add_edge(1, 3, 1.5);
        net.add_edge(2, 3, 1.0);
        let f = crate::max_flow_dinic(&mut net, 0, 3);
        assert_eq!(f, 2.5);
        assert_eq!(net.net_out_flow(0), 2.5);
        assert_eq!(net.net_out_flow(3), -2.5);
    }

    #[test]
    fn bipartite_matching_shape() {
        // 3 jobs × 3 intervals, unit capacities: perfect matching = 3.
        let s = 0;
        let t = 7;
        let mut net: FlowNetwork<f64> = FlowNetwork::new(8);
        for j in 1..=3 {
            net.add_edge(s, j, 1.0);
        }
        for i in 4..=6 {
            net.add_edge(i, t, 1.0);
        }
        net.add_edge(1, 4, 1.0);
        net.add_edge(1, 5, 1.0);
        net.add_edge(2, 5, 1.0);
        net.add_edge(3, 5, 1.0);
        net.add_edge(3, 6, 1.0);
        assert_eq!(crate::max_flow_dinic(&mut net, s, t), 3.0);
    }

    #[test]
    fn rerun_after_reset_gives_same_value() {
        let mut net: FlowNetwork<f64> = FlowNetwork::new(4);
        net.add_edge(0, 1, 2.0);
        net.add_edge(1, 2, 1.0);
        net.add_edge(1, 3, 1.0);
        net.add_edge(2, 3, 1.0);
        let f1 = crate::max_flow_dinic(&mut net, 0, 3);
        net.reset_flows();
        let f2 = crate::max_flow_dinic(&mut net, 0, 3);
        assert_eq!(f1, f2);
        assert_eq!(f1, 2.0);
    }

    #[test]
    fn incremental_edge_between_runs_is_picked_up() {
        // The CSR must be rebuilt transparently when the topology changed
        // between two runs on the same network.
        let mut net: FlowNetwork<f64> = FlowNetwork::new(3);
        net.add_edge(0, 1, 1.0);
        net.add_edge(1, 2, 1.0);
        assert_eq!(crate::max_flow_dinic(&mut net, 0, 2), 1.0);
        net.add_edge(0, 2, 2.0);
        // The second run augments on top of the retained flow of 1.
        assert_eq!(crate::max_flow_dinic(&mut net, 0, 2), 2.0);
        assert_eq!(net.net_out_flow(0), 3.0);
    }
}
