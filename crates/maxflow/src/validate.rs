//! Engine-agnostic validation of a computed flow assignment.

use crate::network::{FlowNetwork, NodeId};
use mpss_numeric::FlowNum;

/// A violation found by [`validate_flow`].
#[derive(Debug, Clone, PartialEq)]
pub enum FlowViolation {
    /// An edge carries negative flow or more than its capacity.
    Capacity {
        edge_index: usize,
        flow: f64,
        cap: f64,
    },
    /// A non-terminal node has non-zero net flow.
    Conservation { node: NodeId, net: f64 },
    /// Source and sink imbalances disagree.
    Imbalance { out_of_source: f64, into_sink: f64 },
}

impl std::fmt::Display for FlowViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlowViolation::Capacity {
                edge_index,
                flow,
                cap,
            } => {
                write!(f, "edge #{edge_index}: flow {flow} outside [0, {cap}]")
            }
            FlowViolation::Conservation { node, net } => {
                write!(f, "node {node}: net flow {net} ≠ 0")
            }
            FlowViolation::Imbalance {
                out_of_source,
                into_sink,
            } => {
                write!(
                    f,
                    "source outflow {out_of_source} ≠ sink inflow {into_sink}"
                )
            }
        }
    }
}

/// Checks that the flow stored in `net` satisfies capacity constraints on
/// every edge and conservation at every node other than `s`/`t`, and that
/// the source's outflow matches the sink's inflow.
///
/// `eps` is the relative tolerance for the `f64` instantiation (ignored by
/// exact types).
pub fn validate_flow<T: FlowNum>(
    net: &FlowNetwork<T>,
    s: NodeId,
    t: NodeId,
    eps: f64,
) -> Result<(), FlowViolation> {
    for (k, (id, _, _, cap, flow)) in net.iter_edges().enumerate() {
        let _ = id;
        let ok_lower = T::leq(T::zero(), flow, cap, eps);
        let ok_upper = T::leq(flow, cap, cap, eps);
        if !ok_lower || !ok_upper {
            return Err(FlowViolation::Capacity {
                edge_index: k,
                flow: flow.to_f64(),
                cap: cap.to_f64(),
            });
        }
    }
    let scale = net
        .iter_edges()
        .fold(T::zero(), |acc, (_, _, _, cap, _)| acc.max2(cap));
    for v in 0..net.num_nodes() {
        if v == s || v == t {
            continue;
        }
        let nf = net.net_out_flow(v);
        if !T::close(nf, T::zero(), scale, eps) {
            return Err(FlowViolation::Conservation {
                node: v,
                net: nf.to_f64(),
            });
        }
    }
    let out = net.net_out_flow(s);
    let inn = -net.net_out_flow(t);
    if !T::close(out, inn, out.max2(inn), eps) {
        return Err(FlowViolation::Imbalance {
            out_of_source: out.to_f64(),
            into_sink: inn.to_f64(),
        });
    }
    Ok(())
}

/// Computes the capacity of the cut induced by `reachable` (the source side
/// of a residual-reachability cut), i.e. the total capacity of forward edges
/// crossing from reachable to unreachable nodes.
///
/// By max-flow/min-cut this equals the max-flow value when `reachable` comes
/// from [`FlowNetwork::residual_reachable`] after a max-flow run — an
/// independent certificate of optimality that the test-suite checks for both
/// engines.
pub fn cut_capacity<T: FlowNum>(net: &FlowNetwork<T>, reachable: &[bool]) -> T {
    let mut total = T::zero();
    for (_, from, to, cap, _) in net.iter_edges() {
        if reachable[from] && !reachable[to] {
            total += cap;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::max_flow_dinic;

    #[test]
    fn valid_flow_passes() {
        let mut net: FlowNetwork<f64> = FlowNetwork::new(3);
        net.add_edge(0, 1, 2.0);
        net.add_edge(1, 2, 2.0);
        max_flow_dinic(&mut net, 0, 2);
        assert_eq!(validate_flow(&net, 0, 2, 1e-9), Ok(()));
    }

    #[test]
    fn zero_flow_is_valid() {
        let mut net: FlowNetwork<f64> = FlowNetwork::new(3);
        net.add_edge(0, 1, 2.0);
        net.add_edge(1, 2, 2.0);
        assert_eq!(validate_flow(&net, 0, 2, 1e-9), Ok(()));
    }

    #[test]
    fn min_cut_certifies_max_flow() {
        let mut net: FlowNetwork<f64> = FlowNetwork::new(6);
        net.add_edge(0, 1, 16.0);
        net.add_edge(0, 2, 13.0);
        net.add_edge(1, 2, 10.0);
        net.add_edge(2, 1, 4.0);
        net.add_edge(1, 3, 12.0);
        net.add_edge(3, 2, 9.0);
        net.add_edge(2, 4, 14.0);
        net.add_edge(4, 3, 7.0);
        net.add_edge(3, 5, 20.0);
        net.add_edge(4, 5, 4.0);
        let f = max_flow_dinic(&mut net, 0, 5);
        let reach = net.residual_reachable(0);
        assert!(!reach[5], "sink must be unreachable after max flow");
        assert_eq!(cut_capacity(&net, &reach), f);
    }

    #[test]
    fn violation_display_is_informative() {
        let v = FlowViolation::Conservation { node: 3, net: 0.5 };
        assert!(format!("{v}").contains("node 3"));
    }
}
