//! Warm-start extensions: reuse a feasible flow across incremental edits.
//!
//! The offline algorithm (and OA(m)'s replans) solve long chains of max-flow
//! problems whose networks differ only slightly: a repair round removes one
//! job vertex, a speed probe rescales arc capacities. Rebuilding the network
//! and re-running from the zero flow throws away almost all of the previous
//! round's work. This module provides the incremental primitives instead:
//!
//! * [`WarmStartable::re_max_flow`] — run an engine on a network that
//!   already carries a feasible flow and get back the **total** flow value
//!   (retained + newly augmented). Both engines support this natively:
//!   Dinic augments whatever residual state it is given, and push–relabel
//!   only saturates the *residual* source arcs at initialization, so an
//!   existing feasible flow plus that saturation is a valid preflow.
//! * [`drain_node`] — cancel exactly the flow routed through one vertex
//!   (the `remove_job` operation: the removed job's vertex is drained, its
//!   supply arc zeroed, everything else keeps its flow).
//! * [`set_capacity`] — change a forward edge's capacity in place (the
//!   `retarget` operation for speed probes); when the new capacity is below
//!   the current flow, the excess is cancelled first so the flow stays
//!   feasible.
//! * [`residual_reachable_tol`] — tolerance-aware min-cut side, the
//!   flow-invariant certificate the solver's removal rule is built on.
//!
//! **Requirement:** the cancellation walks assume the *flow-carrying*
//! forward edges form a DAG (true for every `G(J, m⃗, s)` network: source →
//! jobs → intervals → sink is strictly layered). A flow cycle would make a
//! backward walk loop; the walks panic if they detect one.

use crate::network::{EdgeId, FlowNetwork, NodeId};
use crate::{Dinic, MaxFlow, PushRelabel};
use mpss_numeric::FlowNum;
use std::sync::atomic::AtomicBool;

/// A [`MaxFlow`] engine that can continue from a non-zero feasible flow.
pub trait WarmStartable<T: FlowNum>: MaxFlow<T> {
    /// Augments the existing feasible flow in `net` to a maximum flow and
    /// returns the **total** flow value (pre-existing + newly pushed).
    ///
    /// With a zero flow this is identical to [`MaxFlow::max_flow`]; after
    /// [`drain_node`] / [`set_capacity`] edits it re-uses everything that
    /// was not drained.
    fn re_max_flow(&mut self, net: &mut FlowNetwork<T>, source: NodeId, sink: NodeId) -> T {
        let retained = net.net_out_flow(source);
        retained + self.max_flow(net, source, sink)
    }

    /// [`re_max_flow`](WarmStartable::re_max_flow) with a cooperative
    /// cancellation flag, mirroring [`MaxFlow::max_flow_cancelable`]: `None`
    /// means the run was cancelled and `net` must be discarded.
    fn re_max_flow_cancelable(
        &mut self,
        net: &mut FlowNetwork<T>,
        source: NodeId,
        sink: NodeId,
        cancel: &AtomicBool,
    ) -> Option<T> {
        let retained = net.net_out_flow(source);
        self.max_flow_cancelable(net, source, sink, cancel)
            .map(|augmented| retained + augmented)
    }
}

impl<T: FlowNum> WarmStartable<T> for Dinic {}
impl<T: FlowNum> WarmStartable<T> for PushRelabel {}

/// Cancels up to `want` units of the flow crossing forward edge `e`,
/// rerouting nothing: each cancelled unit is removed along a complete
/// source→sink path through `e`, so the remaining flow stays feasible
/// (conservation holds at every node, no arc exceeds its capacity).
///
/// Returns the amount actually cancelled (`min(want, flow(e))` up to float
/// dust: when conservation dust leaves `e` with flow that has no
/// flow-carrying source→sink continuation, the walk stops early and the
/// caller is expected to clamp). Panics if a flow cycle is encountered (see
/// module docs).
fn cancel_through_edge<T: FlowNum>(
    net: &mut FlowNetwork<T>,
    e: EdgeId,
    want: T,
    source: NodeId,
    sink: NodeId,
) -> T {
    net.ensure_csr();
    let (from, to) = net.endpoints(e);
    let mut cancelled = T::zero();
    // Each pass removes one path's worth; the bottleneck edge of each pass
    // is zeroed exactly, so the number of passes is bounded by the number
    // of flow-carrying edges (plus a few float-dust passes).
    let mut passes = 0usize;
    let pass_limit = 4 * net.num_edges() + 16;
    'passes: while cancelled < want && net.flow(e).is_strictly_positive() {
        passes += 1;
        assert!(
            passes <= pass_limit,
            "cancel_through_edge did not converge (flow cycle or NaN?)"
        );
        let mut delta = net.flow(e).min2(want - cancelled);
        let mut path: Vec<u32> = vec![e.0];

        // Backward: follow flow-carrying forward edges from `from` up to the
        // source. A residual twin (odd id) stored at `cur` marks a forward
        // edge *entering* `cur`; its residual is that edge's flow. A missing
        // continuation means the remaining flow on `e` is conservation dust
        // (exact arithmetic always finds one) — stop and let the caller
        // clamp.
        let mut cur = from;
        let mut hops = 0usize;
        while cur != source {
            hops += 1;
            assert!(hops <= net.num_nodes(), "flow cycle in backward walk");
            let Some(twin) = net
                .arcs(cur)
                .iter()
                .copied()
                .find(|&id| id % 2 == 1 && net.res[id as usize].is_strictly_positive())
            else {
                break 'passes;
            };
            delta = delta.min2(net.res[twin as usize]);
            path.push(twin ^ 1);
            cur = net.head[twin as usize] as NodeId;
        }

        // Forward: follow flow-carrying forward edges from `to` down to the
        // sink.
        let mut cur = to;
        let mut hops = 0usize;
        while cur != sink {
            hops += 1;
            assert!(hops <= net.num_nodes(), "flow cycle in forward walk");
            let Some(fwd) = net
                .arcs(cur)
                .iter()
                .copied()
                .find(|&id| id % 2 == 0 && net.flow(EdgeId(id)).is_strictly_positive())
            else {
                break 'passes;
            };
            delta = delta.min2(net.flow(EdgeId(fwd)));
            path.push(fwd);
            cur = net.head[fwd as usize] as NodeId;
        }

        for &fid in &path {
            net.res[fid as usize] += delta;
            net.res[(fid ^ 1) as usize] -= delta;
        }
        cancelled += delta;
    }
    cancelled
}

/// Cancels **all** flow routed through `node`, returning the amount drained.
///
/// This is the `remove_job` primitive: draining the job vertex removes its
/// contribution along complete source→sink paths, so the rest of the flow
/// remains feasible and can be re-augmented with
/// [`WarmStartable::re_max_flow`]. The node and its edges stay in the
/// network; zero its supply capacity with [`set_capacity`] to keep it dead.
///
/// # Panics
/// Panics if `node` is the source or the sink.
pub fn drain_node<T: FlowNum>(
    net: &mut FlowNetwork<T>,
    node: NodeId,
    source: NodeId,
    sink: NodeId,
) -> T {
    assert!(
        node != source && node != sink,
        "cannot drain the source or the sink"
    );
    net.ensure_csr();
    let mut total = T::zero();
    let outgoing: Vec<u32> = net
        .arcs(node)
        .iter()
        .copied()
        .filter(|&id| id % 2 == 0)
        .collect();
    for eid in outgoing {
        let f = net.flow(EdgeId(eid));
        if f.is_strictly_positive() {
            // One call cancels the full amount (or all but conservation
            // dust, which the tolerance-aware consumers ignore).
            total += cancel_through_edge(net, EdgeId(eid), f, source, sink);
        }
    }
    total
}

/// Sets forward edge `e`'s capacity to `new_cap`, preserving feasibility.
///
/// This is the `retarget` primitive for speed probes: raising a capacity
/// only grows the residual; lowering it below the current flow first
/// cancels the excess through `cancel_through_edge`. Returns the amount
/// of flow drained (zero when the capacity grew or still covers the flow).
///
/// # Panics
/// Panics on a negative `new_cap`.
pub fn set_capacity<T: FlowNum>(
    net: &mut FlowNetwork<T>,
    e: EdgeId,
    new_cap: T,
    source: NodeId,
    sink: NodeId,
) -> T {
    assert!(!(new_cap < T::zero()), "negative capacity");
    let mut drained = T::zero();
    while new_cap < net.flow(e) {
        let want = net.flow(e) - new_cap;
        let got = cancel_through_edge(net, e, want, source, sink);
        if !got.is_strictly_positive() {
            break; // float dust below representable progress
        }
        drained += got;
    }
    net.caps[(e.0 / 2) as usize] = new_cap;
    // Re-derive the forward residual from the (possibly dusty) flow; clamp
    // so traversals never see a negative residual.
    let resid = new_cap - net.flow(e);
    net.res[e.0 as usize] = resid.max2(T::zero());
    drained
}

/// Pushes up to `amount` of flow along the forward-edge `path` (which must
/// be a contiguous source→sink chain), bounded by every edge's residual.
/// Returns the amount actually pushed (possibly zero).
///
/// This is the seeding primitive: a caller that *knows* a good path (the
/// previous plan routed this job into that interval) can install the flow
/// directly, for the cost of one bounds check per edge, leaving the engine
/// only the corrective augmentation work.
///
/// # Panics
/// Panics (debug) if consecutive path edges are not head-to-tail.
pub fn push_path<T: FlowNum>(net: &mut FlowNetwork<T>, path: &[EdgeId], amount: T) -> T {
    if path.is_empty() || !amount.is_strictly_positive() {
        return T::zero();
    }
    let mut delta = amount;
    for w in path.windows(2) {
        debug_assert_eq!(
            net.endpoints(w[0]).1,
            net.endpoints(w[1]).0,
            "push_path edges must chain head-to-tail"
        );
    }
    for &e in path {
        delta = delta.min2(net.residual(e));
    }
    if !delta.is_strictly_positive() {
        return T::zero();
    }
    for &e in path {
        net.res[e.0 as usize] -= delta;
        net.res[(e.0 ^ 1) as usize] += delta;
    }
    delta
}

/// Nodes reachable from `from` through residual arcs whose capacity is
/// *definitely* positive: residual > eps·scale, where scale is the arc
/// pair's original capacity. Exact arithmetic ignores `eps`.
///
/// After a max-flow run from the source this is the source side `S*` of a
/// minimum cut — a set that is **identical for every maximum flow** of the
/// network, which makes it the right certificate to hang deterministic,
/// engine-independent decisions on (the solver's removal rule). The plain
/// [`FlowNetwork::residual_reachable`] uses strict positivity and can flip
/// membership on float dust left by warm-start edits.
pub fn residual_reachable_tol<T: FlowNum>(
    net: &FlowNetwork<T>,
    from: NodeId,
    eps: f64,
) -> Vec<bool> {
    let (first_arc, arc_order) = net.csr_view();
    let mut seen = vec![false; net.num_nodes()];
    let mut stack = vec![from];
    seen[from] = true;
    while let Some(u) = stack.pop() {
        for &aid in &arc_order[first_arc[u] as usize..first_arc[u + 1] as usize] {
            let v = net.head[aid as usize] as NodeId;
            if seen[v] {
                continue;
            }
            let scale = net.caps[(aid / 2) as usize].max2(T::one());
            if T::definitely_lt(T::zero(), net.res[aid as usize], scale, eps) {
                seen[v] = true;
                stack.push(v);
            }
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::max_flow_dinic;
    use crate::validate::validate_flow;
    use mpss_numeric::rational::rat;
    use mpss_numeric::Rational;

    /// source 0 → jobs {1,2} → intervals {3,4} → sink 5.
    fn layered() -> FlowNetwork<f64> {
        let mut net: FlowNetwork<f64> = FlowNetwork::new(6);
        net.add_edge(0, 1, 3.0);
        net.add_edge(0, 2, 2.0);
        net.add_edge(1, 3, 2.0);
        net.add_edge(1, 4, 2.0);
        net.add_edge(2, 4, 2.0);
        net.add_edge(3, 5, 2.0);
        net.add_edge(4, 5, 3.0);
        net
    }

    #[test]
    fn drain_node_removes_exactly_its_throughput() {
        let mut net = layered();
        let f = max_flow_dinic(&mut net, 0, 5);
        assert!((f - 5.0).abs() < 1e-12);
        let through_2 = net.flow(EdgeId(2)); // edge 0→2 has id 2·1
        let drained = drain_node(&mut net, 2, 0, 5);
        assert!((drained - through_2).abs() < 1e-12);
        assert_eq!(net.net_out_flow(2), 0.0);
        assert!((net.net_out_flow(0) - (f - drained)).abs() < 1e-12);
        validate_flow(&net, 0, 5, 1e-9).expect("drained flow stays feasible");
    }

    #[test]
    fn re_max_flow_restores_the_maximum_after_drain() {
        let mut net = layered();
        let mut dinic = Dinic::new();
        let f = dinic.max_flow(&mut net, 0, 5);
        drain_node(&mut net, 1, 0, 5);
        set_capacity(&mut net, EdgeId(0), 0.0, 0, 5); // kill job 1's supply
        let f2 = dinic.re_max_flow(&mut net, 0, 5);
        // Without job 1 only 0→2→4→5 remains, bottleneck 2.
        assert!((f2 - 2.0).abs() < 1e-12, "total warm flow {f2}");
        assert!(f2 < f);
        validate_flow(&net, 0, 5, 1e-9).unwrap();
    }

    #[test]
    fn push_relabel_warm_start_matches_dinic() {
        let mut a = layered();
        let mut b = layered();
        let mut dinic = Dinic::new();
        let mut pr = PushRelabel::new();
        dinic.max_flow(&mut a, 0, 5);
        pr.max_flow(&mut b, 0, 5);
        for net in [&mut a, &mut b] {
            drain_node(net, 1, 0, 5);
            set_capacity(net, EdgeId(0), 1.0, 0, 5);
        }
        let fa = dinic.re_max_flow(&mut a, 0, 5);
        let fb = pr.re_max_flow(&mut b, 0, 5);
        assert!((fa - fb).abs() < 1e-9, "dinic {fa} vs push-relabel {fb}");
        assert!((fa - 3.0).abs() < 1e-12);
    }

    #[test]
    fn set_capacity_raise_only_grows_residual() {
        let mut net = layered();
        max_flow_dinic(&mut net, 0, 5);
        let flow_before = net.flow(EdgeId(0));
        let drained = set_capacity(&mut net, EdgeId(0), 10.0, 0, 5);
        assert_eq!(drained, 0.0);
        assert_eq!(net.capacity(EdgeId(0)), 10.0);
        assert_eq!(net.flow(EdgeId(0)), flow_before);
        validate_flow(&net, 0, 5, 1e-9).unwrap();
    }

    #[test]
    fn set_capacity_lower_drains_the_excess() {
        let mut net = layered();
        max_flow_dinic(&mut net, 0, 5);
        let drained = set_capacity(&mut net, EdgeId(0), 1.0, 0, 5);
        assert!((drained - 2.0).abs() < 1e-12);
        assert!((net.flow(EdgeId(0)) - 1.0).abs() < 1e-12);
        assert!(net.residual(EdgeId(0)).abs() < 1e-12);
        validate_flow(&net, 0, 5, 1e-9).unwrap();
    }

    #[test]
    fn exact_rational_drain_is_dust_free() {
        let mut net: FlowNetwork<Rational> = FlowNetwork::new(4);
        net.add_edge(0, 1, rat(7, 3));
        net.add_edge(1, 2, rat(5, 3));
        net.add_edge(2, 3, rat(11, 3));
        max_flow_dinic(&mut net, 0, 3);
        let drained = drain_node(&mut net, 1, 0, 3);
        assert_eq!(drained, rat(5, 3));
        assert_eq!(net.net_out_flow(0), Rational::ZERO);
        validate_flow(&net, 0, 3, 0.0).unwrap();
    }

    #[test]
    fn reachability_certificate_is_flow_invariant() {
        // Both engines leave different flows; the residual-reachable set
        // from the source must nonetheless be identical (min-cut side).
        let mut a = layered();
        let mut b = layered();
        Dinic::new().max_flow(&mut a, 0, 5);
        PushRelabel::new().max_flow(&mut b, 0, 5);
        assert_eq!(
            residual_reachable_tol(&a, 0, 1e-9),
            residual_reachable_tol(&b, 0, 1e-9)
        );
    }
}
