//! Cross-engine tests: Dinic vs push–relabel on random networks, min-cut
//! certification, and exact-vs-float agreement.

use crate::validate::{cut_capacity, validate_flow};
use crate::{max_flow_dinic, max_flow_push_relabel, FlowNetwork};
use crate::{Dinic, EngineStats, MaxFlow, PushRelabel};
use mpss_numeric::{FlowNum, Rational};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a random network on `n` nodes with integer capacities (as T) so
/// that the float and exact paths see identical inputs.
fn random_network<T: FlowNum>(n: usize, density: f64, seed: u64) -> FlowNetwork<T> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut net = FlowNetwork::new(n);
    for u in 0..n {
        for v in 0..n {
            if u != v && rng.gen_bool(density) {
                let cap = rng.gen_range(0..=20u32) as usize;
                net.add_edge(u, v, T::from_usize(cap));
            }
        }
    }
    net
}

#[test]
fn engines_agree_on_random_networks() {
    for seed in 0..30u64 {
        let n = 8 + (seed as usize % 8);
        let mut a: FlowNetwork<f64> = random_network(n, 0.3, seed);
        let mut b = a.clone();
        let fd = max_flow_dinic(&mut a, 0, n - 1);
        let fp = max_flow_push_relabel(&mut b, 0, n - 1);
        assert!(
            (fd - fp).abs() <= 1e-9 * fd.abs().max(1.0),
            "seed {seed}: dinic {fd} vs push-relabel {fp}"
        );
        validate_flow(&a, 0, n - 1, 1e-9).expect("dinic conservation");
        validate_flow(&b, 0, n - 1, 1e-9).expect("push-relabel conservation");
    }
}

#[test]
fn float_and_exact_agree_on_integer_instances() {
    for seed in 0..15u64 {
        let n = 10;
        let mut f: FlowNetwork<f64> = random_network(n, 0.25, 1000 + seed);
        let mut r: FlowNetwork<Rational> = random_network(n, 0.25, 1000 + seed);
        let ff = max_flow_dinic(&mut f, 0, n - 1);
        let fr = max_flow_dinic(&mut r, 0, n - 1);
        assert!(
            (ff - fr.to_f64()).abs() < 1e-9,
            "seed {seed}: float {ff} vs exact {fr:?}"
        );
        assert!(
            fr.is_integer(),
            "integer capacities must give integer max flow"
        );
    }
}

#[test]
fn min_cut_certificate_on_random_networks() {
    for seed in 0..20u64 {
        let n = 12;
        let mut net: FlowNetwork<f64> = random_network(n, 0.3, 2000 + seed);
        let f = max_flow_dinic(&mut net, 0, n - 1);
        let reach = net.residual_reachable(0);
        assert!(!reach[n - 1], "sink reachable after max flow (seed {seed})");
        let cut = cut_capacity(&net, &reach);
        assert!(
            (f - cut).abs() <= 1e-9 * f.abs().max(1.0),
            "seed {seed}: flow {f} ≠ cut {cut}"
        );
    }
}

#[test]
fn layered_scheduling_shape_fractional_caps() {
    // A miniature job×interval network with fractional capacities, checked
    // exactly: 3 jobs needing 3/2 each; 2 intervals of length 2 with 2 and 1
    // reserved processors. Total demand 9/2, supply 4·... = 2·2 + 1·2 = 6.
    // Per-job-per-interval cap 2 ⇒ all demand routable: max flow = 9/2.
    let mut net: FlowNetwork<Rational> = FlowNetwork::new(7);
    let (s, t) = (0usize, 6usize);
    let half3 = Rational::new(3, 2);
    let two = Rational::from_int(2);
    for j in 1..=3 {
        net.add_edge(s, j, half3);
    }
    for (iv, procs) in [(4usize, 2i64), (5usize, 1i64)] {
        net.add_edge(iv, t, Rational::from_int(procs) * two);
    }
    for j in 1..=3 {
        for iv in 4..=5 {
            net.add_edge(j, iv, two);
        }
    }
    let f = max_flow_dinic(&mut net, s, t);
    assert_eq!(f, Rational::new(9, 2));
    validate_flow(&net, s, t, 0.0).expect("exact conservation");
}

#[test]
fn dinic_stats_count_work_and_reset() {
    let mut net: FlowNetwork<f64> = random_network(10, 0.3, 42);
    let mut engine = Dinic::new();
    let f = engine.max_flow(&mut net, 0, 9);
    let stats = MaxFlow::<f64>::stats(&engine);
    // At least one BFS always runs (it discovers unreachability), and a
    // positive flow needs at least one augmenting path.
    assert!(stats.bfs_phases >= 1);
    if f > 0.0 {
        assert!(stats.augmenting_paths >= 1);
    }
    // Dinic never touches the push–relabel counters.
    assert_eq!(stats.pushes, 0);
    assert_eq!(stats.relabels, 0);
    assert_eq!(stats.gap_events, 0);
    assert_eq!(stats.total_ops(), stats.bfs_phases + stats.augmenting_paths);

    MaxFlow::<f64>::reset_stats(&mut engine);
    assert_eq!(MaxFlow::<f64>::stats(&engine), EngineStats::default());
}

#[test]
fn push_relabel_stats_count_work_and_reset() {
    let mut net: FlowNetwork<f64> = random_network(10, 0.3, 42);
    let mut engine = PushRelabel::new();
    let f = engine.max_flow(&mut net, 0, 9);
    let stats = MaxFlow::<f64>::stats(&engine);
    if f > 0.0 {
        assert!(stats.pushes >= 1, "positive flow requires pushes");
    }
    // Push–relabel never touches the Dinic counters.
    assert_eq!(stats.bfs_phases, 0);
    assert_eq!(stats.augmenting_paths, 0);

    MaxFlow::<f64>::reset_stats(&mut engine);
    assert_eq!(MaxFlow::<f64>::stats(&engine), EngineStats::default());
}

#[test]
fn cancelable_with_idle_flag_matches_plain_run() {
    let flag = std::sync::atomic::AtomicBool::new(false);
    let mut a: FlowNetwork<f64> = random_network(10, 0.3, 42);
    let mut b = a.clone();
    let plain = max_flow_dinic(&mut a, 0, 9);
    let dinic = Dinic::new()
        .max_flow_cancelable(&mut b, 0, 9, &flag)
        .expect("flag never set");
    assert_eq!(dinic, plain);
    let mut c = a.clone();
    c.reset_flows();
    let pr = PushRelabel::new()
        .max_flow_cancelable(&mut c, 0, 9, &flag)
        .expect("flag never set");
    assert!((pr - plain).abs() < 1e-9);
    validate_flow(&c, 0, 9, 1e-9).expect("conservation with idle flag");
}

#[test]
fn pre_set_flag_cancels_both_engines() {
    let flag = std::sync::atomic::AtomicBool::new(true);
    let mut net: FlowNetwork<f64> = random_network(10, 0.3, 42);
    assert_eq!(
        Dinic::new().max_flow_cancelable(&mut net.clone(), 0, 9, &flag),
        None
    );
    assert_eq!(
        PushRelabel::new().max_flow_cancelable(&mut net, 0, 9, &flag),
        None
    );
}

#[test]
fn restore_stats_drops_partial_work() {
    let mut net: FlowNetwork<f64> = random_network(10, 0.3, 42);
    let mut engine = Dinic::new();
    engine.max_flow(&mut net.clone(), 0, 9);
    let snapshot = MaxFlow::<f64>::stats(&engine);
    engine.max_flow(&mut net, 0, 9);
    assert_ne!(MaxFlow::<f64>::stats(&engine), snapshot);
    MaxFlow::<f64>::restore_stats(&mut engine, snapshot);
    assert_eq!(MaxFlow::<f64>::stats(&engine), snapshot);

    let mut pr = PushRelabel::new();
    let mut prnet: FlowNetwork<f64> = random_network(10, 0.3, 43);
    pr.max_flow(&mut prnet, 0, 9);
    let done = MaxFlow::<f64>::stats(&pr);
    MaxFlow::<f64>::restore_stats(&mut pr, EngineStats::default());
    assert_eq!(MaxFlow::<f64>::stats(&pr), EngineStats::default());
    assert!(done.pushes >= MaxFlow::<f64>::stats(&pr).pushes);
}

#[test]
fn stats_accumulate_across_runs_until_reset() {
    let mut net: FlowNetwork<f64> = random_network(8, 0.4, 7);
    let mut engine = Dinic::new();
    engine.max_flow(&mut net.clone(), 0, 7);
    let first = MaxFlow::<f64>::stats(&engine);
    engine.max_flow(&mut net, 0, 7);
    let second = MaxFlow::<f64>::stats(&engine);
    assert_eq!(second.bfs_phases, 2 * first.bfs_phases);
    assert_eq!(second.augmenting_paths, 2 * first.augmenting_paths);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(if cfg!(miri) { 4 } else { 64 }))]

    /// Engines agree and both satisfy conservation on arbitrary small
    /// networks drawn by proptest.
    #[test]
    fn prop_engines_agree(seed in 0u64..10_000, n in 4usize..12, density in 0.1f64..0.6) {
        let mut a: FlowNetwork<f64> = random_network(n, density, seed);
        let mut b = a.clone();
        let fd = max_flow_dinic(&mut a, 0, n - 1);
        let fp = max_flow_push_relabel(&mut b, 0, n - 1);
        prop_assert!((fd - fp).abs() <= 1e-9 * fd.abs().max(1.0));
        prop_assert!(validate_flow(&a, 0, n - 1, 1e-9).is_ok());
        prop_assert!(validate_flow(&b, 0, n - 1, 1e-9).is_ok());
    }

    /// Max-flow value is monotone in capacities: doubling every capacity at
    /// least preserves (in fact doubles) the value.
    #[test]
    fn prop_flow_scales_linearly(seed in 0u64..10_000, n in 4usize..10) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut net1: FlowNetwork<f64> = FlowNetwork::new(n);
        let mut net2: FlowNetwork<f64> = FlowNetwork::new(n);
        for u in 0..n {
            for v in 0..n {
                if u != v && rng.gen_bool(0.35) {
                    let c = rng.gen_range(0..=10u32) as f64;
                    net1.add_edge(u, v, c);
                    net2.add_edge(u, v, 2.0 * c);
                }
            }
        }
        let f1 = max_flow_dinic(&mut net1, 0, n - 1);
        let f2 = max_flow_dinic(&mut net2, 0, n - 1);
        prop_assert!((f2 - 2.0 * f1).abs() <= 1e-9 * f2.abs().max(1.0),
            "f1 {f1} f2 {f2}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(if cfg!(miri) { 4 } else { 64 }))]

    /// The CSR build round-trips the adjacency structure: `first_arc` is a
    /// monotone prefix-sum frame, every arc id appears in exactly one
    /// node's slice (grouped under its tail, in insertion order), and the
    /// `xor 1` pairing keeps each forward/backward residual pair summing to
    /// the edge capacity on an unaugmented network.
    #[test]
    fn prop_csr_round_trips_adjacency(seed in 0u64..10_000, n in 3usize..14, density in 0.1f64..0.6) {
        let mut net: FlowNetwork<f64> = random_network(n, density, seed);
        net.finish();
        let m2 = net.num_arcs();
        // first_arc is monotone and spans exactly the arc arena.
        prop_assert_eq!(net.first_arc[0], 0);
        prop_assert_eq!(net.first_arc[n] as usize, m2);
        for u in 0..n {
            prop_assert!(net.first_arc[u] <= net.first_arc[u + 1]);
        }
        // Every arc id shows up exactly once, under its tail, and each
        // node's slice is in insertion (ascending arc-id) order.
        let mut seen = vec![false; m2];
        for u in 0..n {
            let slice = net.arcs(u);
            for w in slice.windows(2) {
                prop_assert!(w[0] < w[1], "node {}'s arcs out of insertion order", u);
            }
            for &aid in slice {
                let a = aid as usize;
                prop_assert!(!seen[a], "arc {} listed twice", a);
                seen[a] = true;
                prop_assert_eq!(net.head[a ^ 1] as usize, u, "arc {} grouped under a non-tail", a);
            }
        }
        prop_assert!(seen.iter().all(|&x| x), "arc missing from the CSR");
        // xor-1 pairing: with zero flow, forward residual = capacity and
        // backward residual = 0, so each pair sums to the edge capacity.
        for e in 0..net.num_edges() {
            let a = 2 * e;
            prop_assert_eq!(net.res[a] + net.res[a ^ 1], net.caps[e]);
        }
    }

    /// A global relabel never raises a reachable node's label above `2n`:
    /// BFS distances are < `n`, unreachable nodes go to `n + 1`, and the
    /// engine's own relabels stop below `2n` (the stuck sentinel `2n + 1`
    /// is the only exception, and only for excess the sink and source both
    /// cannot take).
    #[test]
    fn prop_global_relabel_label_bound(seed in 0u64..10_000, n in 4usize..12, density in 0.2f64..0.6) {
        let mut net: FlowNetwork<f64> = random_network(n, density, seed);
        let mut engine = PushRelabel::new();
        engine.max_flow(&mut net, 0, n - 1);
        let stats = MaxFlow::<f64>::stats(&engine);
        prop_assert!(stats.global_relabels >= 1, "initial global relabel always fires");
        for (v, &h) in engine.heights().iter().enumerate() {
            prop_assert!(
                h as usize <= 2 * n || h as usize == 2 * n + 1,
                "node {} at height {} exceeds 2n = {} without being stuck",
                v, h, 2 * n
            );
        }
    }
}

/// Random *layered* network (source → jobs → intervals → sink) — the shape
/// of every `G(J, m⃗, s)` instance and the shape the warm-start cancellation
/// walks require (flow-carrying edges form a DAG).
fn random_layered(seed: u64, a: usize, b: usize) -> FlowNetwork<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let (s, t) = (0usize, 1 + a + b);
    let mut net = FlowNetwork::new(2 + a + b);
    for j in 1..=a {
        net.add_edge(s, j, rng.gen_range(0..=10u32) as f64 / 2.0);
    }
    for iv in 0..b {
        net.add_edge(1 + a + iv, t, rng.gen_range(1..=12u32) as f64 / 2.0);
    }
    for j in 1..=a {
        for iv in 0..b {
            if rng.gen_bool(0.6) {
                net.add_edge(j, 1 + a + iv, rng.gen_range(0..=8u32) as f64 / 2.0);
            }
        }
    }
    net
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(if cfg!(miri) { 4 } else { 64 }))]

    /// Warm-start removal invariants: after draining a job vertex the
    /// remaining flow conserves at every node and respects every capacity
    /// (validate_flow checks both), the vertex carries no flow, and
    /// re-augmenting reaches exactly the max-flow value of a cold solve on
    /// the job-less network.
    #[test]
    fn prop_drain_node_keeps_flow_feasible(
        seed in 0u64..10_000, a in 2usize..7, b in 2usize..6, victim in 0usize..7,
    ) {
        let victim = 1 + (victim % a); // a job-layer vertex
        let (s, t) = (0usize, 1 + a + b);
        let mut warm = random_layered(seed, a, b);
        let mut dinic = Dinic::new();
        dinic.max_flow(&mut warm, s, t);

        let before = warm.flow(crate::EdgeId(2 * (victim - 1) as u32)); // s→victim
        let drained = crate::drain_node(&mut warm, victim, s, t);
        prop_assert!((drained - before).abs() <= 1e-9 * before.max(1.0),
            "drained {drained} vs throughput {before}");
        prop_assert!(warm.net_out_flow(victim).abs() <= 1e-9);
        prop_assert!(validate_flow(&warm, s, t, 1e-9).is_ok());

        crate::set_capacity(&mut warm, crate::EdgeId(2 * (victim - 1) as u32), 0.0, s, t);
        prop_assert!(validate_flow(&warm, s, t, 1e-9).is_ok());
        let f_warm = crate::WarmStartable::re_max_flow(&mut dinic, &mut warm, s, t);

        // Cold oracle: same network with the victim's supply zeroed
        // (set_capacity on a zero flow is a plain capacity rewrite).
        let mut cold = random_layered(seed, a, b);
        crate::set_capacity(&mut cold, crate::EdgeId(2 * (victim - 1) as u32), 0.0, s, t);
        let f_cold = max_flow_dinic(&mut cold, s, t);
        prop_assert!((f_warm - f_cold).abs() <= 1e-9 * f_cold.max(1.0),
            "warm {f_warm} vs cold {f_cold}");
        prop_assert!(validate_flow(&warm, s, t, 1e-9).is_ok());
    }

    /// Tightening a capacity below the current flow drains exactly the
    /// excess, stays feasible, and re-augments to the cold optimum of the
    /// modified network.
    #[test]
    fn prop_set_capacity_tighten_matches_cold(
        seed in 0u64..10_000, a in 2usize..7, b in 2usize..6, pick in 0usize..64,
    ) {
        let (s, t) = (0usize, 1 + a + b);
        let mut warm = random_layered(seed, a, b);
        let mut dinic = Dinic::new();
        dinic.max_flow(&mut warm, s, t);

        let e = crate::EdgeId(2 * (pick % warm.num_edges()) as u32);
        let new_cap = warm.capacity(e) / 2.0;
        let flow_before = warm.flow(e);
        let drained = crate::set_capacity(&mut warm, e, new_cap, s, t);
        let expected = (flow_before - new_cap).max(0.0);
        prop_assert!((drained - expected).abs() <= 1e-9 * expected.max(1.0),
            "drained {drained}, expected {expected}");
        prop_assert!(warm.flow(e) <= new_cap + 1e-9);
        prop_assert!(validate_flow(&warm, s, t, 1e-9).is_ok());

        let f_warm = crate::WarmStartable::re_max_flow(&mut dinic, &mut warm, s, t);
        let mut cold = random_layered(seed, a, b);
        crate::set_capacity(&mut cold, e, new_cap, s, t);
        let f_cold = max_flow_dinic(&mut cold, s, t);
        prop_assert!((f_warm - f_cold).abs() <= 1e-9 * f_cold.max(1.0),
            "warm {f_warm} vs cold {f_cold}");
    }
}
