//! Flow decomposition: split a feasible flow into source→sink paths (and
//! possibly cycles), the classic structural theorem. Used to *explain* a
//! flow — in the scheduling context each path reads "job `k` receives `x`
//! time units in interval `I_j`" — and as another independent correctness
//! check (the decomposition must re-sum to the flow value).

use crate::network::{FlowNetwork, NodeId};
use mpss_numeric::FlowNum;

/// One decomposed component: a node path carrying `amount` of flow.
#[derive(Clone, Debug, PartialEq)]
pub struct FlowPath<T> {
    /// The node sequence (starts at the source for paths; for cycles,
    /// starts and ends at the same node).
    pub nodes: Vec<NodeId>,
    /// Flow carried along the whole component.
    pub amount: T,
    /// `true` iff this component is a cycle.
    pub is_cycle: bool,
}

/// Decomposes the current flow of `net` into at most `E` paths/cycles.
///
/// The flow in `net` is left untouched (the decomposition works on a copy
/// of the per-edge flow values). Standard peeling: follow flow-carrying
/// edges from the source, peel the bottleneck, repeat; leftover circulation
/// decomposes into cycles.
///
/// ```
/// use mpss_maxflow::{decompose_flow, max_flow_dinic, FlowNetwork};
///
/// let mut net: FlowNetwork<f64> = FlowNetwork::new(3);
/// net.add_edge(0, 1, 2.0);
/// net.add_edge(1, 2, 2.0);
/// let f = max_flow_dinic(&mut net, 0, 2);
/// let paths = decompose_flow(&net, 0, 2);
/// assert_eq!(paths.len(), 1);
/// assert_eq!(paths[0].nodes, vec![0, 1, 2]);
/// assert_eq!(paths[0].amount, f);
/// ```
pub fn decompose_flow<T: FlowNum>(
    net: &FlowNetwork<T>,
    source: NodeId,
    sink: NodeId,
) -> Vec<FlowPath<T>> {
    // Copy of each forward edge's flow.
    let mut flow: Vec<T> = (0..net.num_edges())
        .map(|k| net.flow(crate::EdgeId((2 * k) as u32)))
        .collect();
    // Outgoing forward edges per node: (edge_index, to).
    let mut out: Vec<Vec<(usize, NodeId)>> = vec![Vec::new(); net.num_nodes()];
    for (id, from, to, _, _) in net.iter_edges() {
        out[from].push(((id.0 / 2) as usize, to));
    }

    let mut components = Vec::new();
    // Phase 1: source→sink paths.
    loop {
        // Walk greedily along positive-flow edges from the source.
        let mut nodes = vec![source];
        let mut edges: Vec<usize> = Vec::new();
        let mut seen = vec![false; net.num_nodes()];
        seen[source] = true;
        let mut cur = source;
        while cur != sink {
            let Some(&(e, to)) = out[cur]
                .iter()
                .find(|&&(e, _)| flow[e].is_strictly_positive())
            else {
                break;
            };
            // Cycle guard: conservation means a stuck walk revisits a node;
            // leave such circulation to phase 2 by abandoning this walk.
            if seen[to] && to != sink {
                edges.clear();
                break;
            }
            seen[to] = true;
            nodes.push(to);
            edges.push(e);
            cur = to;
        }
        if cur != sink || edges.is_empty() {
            break;
        }
        let amount = edges
            .iter()
            .map(|&e| flow[e])
            .reduce(|a, b| a.min2(b))
            .expect("non-empty path");
        for &e in &edges {
            flow[e] -= amount;
        }
        components.push(FlowPath {
            nodes,
            amount,
            is_cycle: false,
        });
    }
    // Phase 2: remaining circulation → cycles.
    while let Some(start_edge) = (0..flow.len()).find(|&e| flow[e].is_strictly_positive()) {
        let (start, _) = {
            let id = crate::EdgeId((2 * start_edge) as u32);
            net.endpoints(id)
        };
        // Walk until a node repeats.
        let mut order: Vec<NodeId> = vec![start];
        let mut edges: Vec<usize> = Vec::new();
        let mut cur = start;
        let cycle_at = loop {
            let Some(&(e, to)) = out[cur]
                .iter()
                .find(|&&(e, _)| flow[e].is_strictly_positive())
            else {
                // Dead end in circulation: numerically possible only from
                // float dust; discard the offending edge.
                break None;
            };
            edges.push(e);
            if let Some(pos) = order.iter().position(|&v| v == to) {
                order.push(to);
                break Some(pos);
            }
            order.push(to);
            cur = to;
        };
        match cycle_at {
            Some(pos) => {
                // The cycle is order[pos..]; its edges are edges[pos..].
                let cyc_edges = &edges[pos..];
                let amount = cyc_edges
                    .iter()
                    .map(|&e| flow[e])
                    .reduce(|a, b| a.min2(b))
                    .expect("non-empty cycle");
                for &e in cyc_edges {
                    flow[e] -= amount;
                }
                components.push(FlowPath {
                    nodes: order[pos..].to_vec(),
                    amount,
                    is_cycle: true,
                });
            }
            None => {
                // Zero out the stuck edge (float dust).
                if let Some(&e) = edges.last() {
                    flow[e] = T::zero();
                }
            }
        }
    }
    components
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::max_flow_dinic;
    use mpss_numeric::Rational;

    #[test]
    fn single_path_decomposes_to_itself() {
        let mut net: FlowNetwork<f64> = FlowNetwork::new(3);
        net.add_edge(0, 1, 2.0);
        net.add_edge(1, 2, 2.0);
        max_flow_dinic(&mut net, 0, 2);
        let d = decompose_flow(&net, 0, 2);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].nodes, vec![0, 1, 2]);
        assert_eq!(d[0].amount, 2.0);
        assert!(!d[0].is_cycle);
    }

    #[test]
    fn parallel_paths_sum_to_the_flow_value() {
        let mut net: FlowNetwork<f64> = FlowNetwork::new(4);
        net.add_edge(0, 1, 3.0);
        net.add_edge(1, 3, 3.0);
        net.add_edge(0, 2, 4.0);
        net.add_edge(2, 3, 4.0);
        let f = max_flow_dinic(&mut net, 0, 3);
        let d = decompose_flow(&net, 0, 3);
        let total: f64 = d.iter().filter(|p| !p.is_cycle).map(|p| p.amount).sum();
        assert_eq!(total, f);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn decomposition_bounded_by_edge_count_on_random_networks() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        for seed in 0..10u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let n = 10;
            let mut net: FlowNetwork<f64> = FlowNetwork::new(n);
            for u in 0..n {
                for v in 0..n {
                    if u != v && rng.gen_bool(0.3) {
                        net.add_edge(u, v, rng.gen_range(0..=9u32) as f64);
                    }
                }
            }
            let f = max_flow_dinic(&mut net, 0, n - 1);
            let d = decompose_flow(&net, 0, n - 1);
            assert!(d.len() <= net.num_edges(), "too many components");
            let total: f64 = d.iter().filter(|p| !p.is_cycle).map(|p| p.amount).sum();
            assert!(
                (total - f).abs() <= 1e-9 * f.max(1.0),
                "seed {seed}: decomposition {total} ≠ flow {f}"
            );
            for path in &d {
                assert!(path.amount > 0.0);
                if !path.is_cycle {
                    assert_eq!(path.nodes[0], 0);
                    assert_eq!(*path.nodes.last().unwrap(), n - 1);
                }
            }
        }
    }

    #[test]
    fn exact_decomposition_in_rationals() {
        let mut net: FlowNetwork<Rational> = FlowNetwork::new(4);
        let third = Rational::new(1, 3);
        let sixth = Rational::new(1, 6);
        net.add_edge(0, 1, third);
        net.add_edge(1, 3, third);
        net.add_edge(0, 2, sixth);
        net.add_edge(2, 3, sixth);
        let f = max_flow_dinic(&mut net, 0, 3);
        let d = decompose_flow(&net, 0, 3);
        let total = d
            .iter()
            .filter(|p| !p.is_cycle)
            .fold(Rational::ZERO, |acc, p| acc + p.amount);
        assert_eq!(total, f);
        assert_eq!(total, Rational::new(1, 2));
    }

    #[test]
    fn zero_flow_decomposes_to_nothing() {
        let mut net: FlowNetwork<f64> = FlowNetwork::new(2);
        net.add_edge(0, 1, 5.0);
        let d = decompose_flow(&net, 0, 1);
        assert!(d.is_empty());
    }
}
