//! Residual flow-network representation.
//!
//! Edges are stored in an arena with the classic pairing trick: the edge
//! with index `2k` is the forward edge, `2k + 1` its residual twin, so
//! `id ^ 1` flips between them without any lookup. Adjacency lists hold edge
//! indices. All capacities/flows are a [`FlowNum`] instantiation.

use mpss_numeric::FlowNum;

/// Index of a node in a [`FlowNetwork`].
pub type NodeId = usize;

/// Opaque identifier of a *forward* edge, as returned by
/// [`FlowNetwork::add_edge`].
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct EdgeId(pub(crate) u32);

#[derive(Copy, Clone, Debug)]
pub(crate) struct Edge<T> {
    pub to: u32,
    /// Remaining residual capacity (original capacity minus flow for forward
    /// edges; current flow for residual twins).
    pub residual: T,
}

/// A directed flow network with paired residual edges.
#[derive(Clone, Debug)]
pub struct FlowNetwork<T: FlowNum> {
    pub(crate) edges: Vec<Edge<T>>,
    /// Original capacity of every *forward* edge, indexed by `EdgeId.0 / 2`.
    pub(crate) caps: Vec<T>,
    pub(crate) adj: Vec<Vec<u32>>,
}

impl<T: FlowNum> FlowNetwork<T> {
    /// Creates a network with `n` nodes and no edges.
    pub fn new(n: usize) -> FlowNetwork<T> {
        FlowNetwork {
            edges: Vec::new(),
            caps: Vec::new(),
            adj: vec![Vec::new(); n],
        }
    }

    /// Creates a network with `n` nodes, reserving space for `m` edges.
    pub fn with_capacity(n: usize, m: usize) -> FlowNetwork<T> {
        FlowNetwork {
            edges: Vec::with_capacity(2 * m),
            caps: Vec::with_capacity(m),
            adj: vec![Vec::new(); n],
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Number of forward edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.caps.len()
    }

    /// Appends a fresh node and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        self.adj.push(Vec::new());
        self.adj.len() - 1
    }

    /// Adds a directed edge `from → to` with the given capacity.
    ///
    /// # Panics
    /// Panics if an endpoint is out of range, on a self-loop, or on a
    /// negative capacity.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId, cap: T) -> EdgeId {
        assert!(
            from < self.adj.len() && to < self.adj.len(),
            "edge endpoint out of range"
        );
        assert!(from != to, "self-loops are not allowed in a flow network");
        assert!(!(cap < T::zero()), "negative capacity");
        let id = self.edges.len() as u32;
        self.edges.push(Edge {
            to: to as u32,
            residual: cap,
        });
        self.edges.push(Edge {
            to: from as u32,
            residual: T::zero(),
        });
        self.caps.push(cap);
        self.adj[from].push(id);
        self.adj[to].push(id + 1);
        EdgeId(id)
    }

    /// Original capacity of a forward edge.
    #[inline]
    pub fn capacity(&self, e: EdgeId) -> T {
        self.caps[(e.0 / 2) as usize]
    }

    /// Current flow on a forward edge (the residual of its twin).
    #[inline]
    pub fn flow(&self, e: EdgeId) -> T {
        self.edges[(e.0 ^ 1) as usize].residual
    }

    /// Remaining residual capacity of a forward edge.
    #[inline]
    pub fn residual(&self, e: EdgeId) -> T {
        self.edges[e.0 as usize].residual
    }

    /// Endpoints `(from, to)` of a forward edge.
    #[inline]
    pub fn endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        let to = self.edges[e.0 as usize].to as NodeId;
        let from = self.edges[(e.0 ^ 1) as usize].to as NodeId;
        (from, to)
    }

    /// Resets all flows to zero, keeping the topology and capacities.
    pub fn reset_flows(&mut self) {
        for (k, cap) in self.caps.iter().enumerate() {
            self.edges[2 * k].residual = *cap;
            self.edges[2 * k + 1].residual = T::zero();
        }
    }

    /// Net flow out of `node` (flow on outgoing forward edges minus flow on
    /// incoming forward edges). For the source this equals the flow value.
    pub fn net_out_flow(&self, node: NodeId) -> T {
        let mut total = T::zero();
        for &eid in &self.adj[node] {
            if eid % 2 == 0 {
                // Forward edge leaving `node`.
                total += self.flow(EdgeId(eid));
            } else {
                // Residual twin stored at `node` ⇒ forward edge enters `node`.
                total -= self.flow(EdgeId(eid ^ 1));
            }
        }
        total
    }

    /// Iterates over all forward edges as `(EdgeId, from, to, cap, flow)`.
    pub fn iter_edges(&self) -> impl Iterator<Item = (EdgeId, NodeId, NodeId, T, T)> + '_ {
        (0..self.caps.len()).map(move |k| {
            let id = EdgeId((2 * k) as u32);
            let (from, to) = self.endpoints(id);
            (id, from, to, self.caps[k], self.flow(id))
        })
    }

    /// Nodes reachable from `from` in the residual graph (strictly positive
    /// residual capacity). After a max-flow run from the source this is the
    /// source side of a minimum cut.
    pub fn residual_reachable(&self, from: NodeId) -> Vec<bool> {
        let mut seen = vec![false; self.num_nodes()];
        let mut stack = vec![from];
        seen[from] = true;
        while let Some(u) = stack.pop() {
            for &eid in &self.adj[u] {
                let e = &self.edges[eid as usize];
                let v = e.to as usize;
                if !seen[v] && e.residual.is_strictly_positive() {
                    seen[v] = true;
                    stack.push(v);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpss_numeric::rational::rat;
    use mpss_numeric::Rational;

    #[test]
    fn add_edge_and_inspect() {
        let mut net: FlowNetwork<f64> = FlowNetwork::new(3);
        let e = net.add_edge(0, 1, 5.0);
        let f = net.add_edge(1, 2, 3.0);
        assert_eq!(net.num_nodes(), 3);
        assert_eq!(net.num_edges(), 2);
        assert_eq!(net.capacity(e), 5.0);
        assert_eq!(net.capacity(f), 3.0);
        assert_eq!(net.flow(e), 0.0);
        assert_eq!(net.residual(e), 5.0);
        assert_eq!(net.endpoints(e), (0, 1));
        assert_eq!(net.endpoints(f), (1, 2));
    }

    #[test]
    fn add_node_grows_graph() {
        let mut net: FlowNetwork<f64> = FlowNetwork::new(1);
        let v = net.add_node();
        assert_eq!(v, 1);
        assert_eq!(net.num_nodes(), 2);
        net.add_edge(0, v, 1.0);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn rejects_self_loop() {
        let mut net: FlowNetwork<f64> = FlowNetwork::new(2);
        net.add_edge(1, 1, 1.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_endpoint() {
        let mut net: FlowNetwork<f64> = FlowNetwork::new(2);
        net.add_edge(0, 2, 1.0);
    }

    #[test]
    fn reset_flows_restores_capacities() {
        let mut net: FlowNetwork<f64> = FlowNetwork::new(2);
        let e = net.add_edge(0, 1, 4.0);
        crate::max_flow_dinic(&mut net, 0, 1);
        assert_eq!(net.flow(e), 4.0);
        net.reset_flows();
        assert_eq!(net.flow(e), 0.0);
        assert_eq!(net.residual(e), 4.0);
    }

    #[test]
    fn works_with_rationals() {
        let mut net: FlowNetwork<Rational> = FlowNetwork::new(2);
        let e = net.add_edge(0, 1, rat(7, 3));
        assert_eq!(net.capacity(e), rat(7, 3));
        assert_eq!(net.flow(e), Rational::ZERO);
    }

    #[test]
    fn iter_edges_lists_all() {
        let mut net: FlowNetwork<f64> = FlowNetwork::new(3);
        net.add_edge(0, 1, 1.0);
        net.add_edge(1, 2, 2.0);
        let edges: Vec<_> = net.iter_edges().collect();
        assert_eq!(edges.len(), 2);
        assert_eq!(edges[0].1, 0);
        assert_eq!(edges[1].3, 2.0);
    }

    #[test]
    fn net_out_flow_zero_before_any_flow() {
        let mut net: FlowNetwork<f64> = FlowNetwork::new(3);
        net.add_edge(0, 1, 1.0);
        net.add_edge(1, 2, 2.0);
        assert_eq!(net.net_out_flow(0), 0.0);
        assert_eq!(net.net_out_flow(1), 0.0);
    }
}
