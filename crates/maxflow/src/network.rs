//! Residual flow-network representation on a flat CSR arc arena.
//!
//! Arcs are stored struct-of-arrays with the classic pairing trick: the arc
//! with index `2k` is the forward edge, `2k + 1` its residual twin, so
//! `id ^ 1` flips between them without any lookup, and the tail of arc `a`
//! is `head[a ^ 1]`. Adjacency is a compressed sparse row (CSR) over arc
//! ids: `arc_order[first_arc[u]..first_arc[u + 1]]` lists `u`'s incident
//! arcs in insertion order (a stable counting sort by tail reproduces the
//! old per-node `Vec` order exactly, which keeps Dinic's traversal — and
//! hence every golden flow assignment — bit-identical). The CSR is rebuilt
//! lazily after topology edits (`add_node` / `add_edge` mark it dirty);
//! engines and warm-start walks call `FlowNetwork::ensure_csr` before
//! iterating, and `&self` traversals fall back to a temporary CSR when the
//! arena is dirty. All capacities/flows are a [`FlowNum`] instantiation.

use mpss_numeric::FlowNum;
use std::borrow::Cow;

/// Index of a node in a [`FlowNetwork`].
pub type NodeId = usize;

/// Opaque identifier of a *forward* edge, as returned by
/// [`FlowNetwork::add_edge`].
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct EdgeId(pub(crate) u32);

/// Builds the CSR adjacency (`first_arc` offsets + arc ids grouped by tail
/// node) for the given arc arena. The counting sort is stable in arc-id
/// order, so each node's arcs appear exactly in insertion order.
fn build_csr(nodes: usize, head: &[u32]) -> (Vec<u32>, Vec<u32>) {
    let m = head.len();
    let mut first_arc = vec![0u32; nodes + 1];
    for a in 0..m {
        // tail(a) = head[a ^ 1]
        first_arc[head[a ^ 1] as usize + 1] += 1;
    }
    for u in 0..nodes {
        first_arc[u + 1] += first_arc[u];
    }
    let mut arc_order = vec![0u32; m];
    let mut cursor: Vec<u32> = first_arc[..nodes].to_vec();
    for a in 0..m {
        let tail = head[a ^ 1] as usize;
        arc_order[cursor[tail] as usize] = a as u32;
        cursor[tail] += 1;
    }
    (first_arc, arc_order)
}

/// A directed flow network with paired residual arcs in a flat SoA arena.
#[derive(Clone, Debug)]
pub struct FlowNetwork<T: FlowNum> {
    /// Head (target node) of every arc; the twin's head is the tail.
    pub(crate) head: Vec<u32>,
    /// Remaining residual capacity per arc (original capacity minus flow for
    /// forward arcs; current flow for residual twins).
    pub(crate) res: Vec<T>,
    /// Original capacity of every *forward* edge, indexed by `EdgeId.0 / 2`.
    pub(crate) caps: Vec<T>,
    nodes: usize,
    /// CSR offsets: node `u`'s arcs are `arc_order[first_arc[u] as usize..
    /// first_arc[u + 1] as usize]`. Valid only when `!csr_dirty`.
    pub(crate) first_arc: Vec<u32>,
    /// Arc ids grouped by tail node, insertion order within each node.
    pub(crate) arc_order: Vec<u32>,
    csr_dirty: bool,
}

impl<T: FlowNum> FlowNetwork<T> {
    /// Creates a network with `n` nodes and no edges.
    pub fn new(n: usize) -> FlowNetwork<T> {
        FlowNetwork {
            head: Vec::new(),
            res: Vec::new(),
            caps: Vec::new(),
            nodes: n,
            first_arc: Vec::new(),
            arc_order: Vec::new(),
            csr_dirty: true,
        }
    }

    /// Creates a network with `n` nodes, reserving space for `m` edges.
    pub fn with_capacity(n: usize, m: usize) -> FlowNetwork<T> {
        FlowNetwork {
            head: Vec::with_capacity(2 * m),
            res: Vec::with_capacity(2 * m),
            caps: Vec::with_capacity(m),
            nodes: n,
            first_arc: Vec::with_capacity(n + 1),
            arc_order: Vec::with_capacity(2 * m),
            csr_dirty: true,
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.nodes
    }

    /// Number of forward edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.caps.len()
    }

    /// Number of arcs (forward edges plus residual twins).
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.head.len()
    }

    /// Appends a fresh node and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        self.nodes += 1;
        self.csr_dirty = true;
        self.nodes - 1
    }

    /// Adds a directed edge `from → to` with the given capacity.
    ///
    /// # Panics
    /// Panics if an endpoint is out of range, on a self-loop, or on a
    /// negative capacity.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId, cap: T) -> EdgeId {
        assert!(
            from < self.nodes && to < self.nodes,
            "edge endpoint out of range"
        );
        assert!(from != to, "self-loops are not allowed in a flow network");
        assert!(!(cap < T::zero()), "negative capacity");
        let id = self.head.len() as u32;
        self.head.push(to as u32);
        self.res.push(cap);
        self.head.push(from as u32);
        self.res.push(T::zero());
        self.caps.push(cap);
        self.csr_dirty = true;
        EdgeId(id)
    }

    /// Rebuilds the CSR adjacency if topology edits left it stale. Engines
    /// call this on entry; `FlowModel` calls it (via [`finish`]) right after
    /// construction so the rebuild cost never lands inside a timed solve.
    ///
    /// [`finish`]: FlowNetwork::finish
    pub(crate) fn ensure_csr(&mut self) {
        if !self.csr_dirty {
            return;
        }
        let (first_arc, arc_order) = build_csr(self.nodes, &self.head);
        self.first_arc = first_arc;
        self.arc_order = arc_order;
        self.csr_dirty = false;
    }

    /// Eagerly (re)builds the CSR adjacency after a batch of topology edits.
    pub fn finish(&mut self) {
        self.ensure_csr();
    }

    /// Whether the CSR adjacency is current (no topology edits since the
    /// last [`finish`](FlowNetwork::finish) / engine run).
    #[inline]
    pub fn csr_ready(&self) -> bool {
        !self.csr_dirty
    }

    /// Arc ids incident to `u` (outgoing forward arcs and residual twins of
    /// incoming ones), in insertion order. Requires a current CSR.
    #[inline]
    pub(crate) fn arcs(&self, u: NodeId) -> &[u32] {
        debug_assert!(!self.csr_dirty, "CSR adjacency queried while dirty");
        &self.arc_order[self.first_arc[u] as usize..self.first_arc[u + 1] as usize]
    }

    /// CSR adjacency, borrowing the cached arrays when current and building
    /// a temporary copy when dirty — the fallback for `&self` traversals.
    pub(crate) fn csr_view(&self) -> (Cow<'_, [u32]>, Cow<'_, [u32]>) {
        if self.csr_dirty {
            let (first_arc, arc_order) = build_csr(self.nodes, &self.head);
            (Cow::Owned(first_arc), Cow::Owned(arc_order))
        } else {
            (
                Cow::Borrowed(&self.first_arc[..]),
                Cow::Borrowed(&self.arc_order[..]),
            )
        }
    }

    /// Original capacity of a forward edge.
    #[inline]
    pub fn capacity(&self, e: EdgeId) -> T {
        self.caps[(e.0 / 2) as usize]
    }

    /// Current flow on a forward edge (the residual of its twin).
    #[inline]
    pub fn flow(&self, e: EdgeId) -> T {
        self.res[(e.0 ^ 1) as usize]
    }

    /// Remaining residual capacity of a forward edge.
    #[inline]
    pub fn residual(&self, e: EdgeId) -> T {
        self.res[e.0 as usize]
    }

    /// Endpoints `(from, to)` of a forward edge.
    #[inline]
    pub fn endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        let to = self.head[e.0 as usize] as NodeId;
        let from = self.head[(e.0 ^ 1) as usize] as NodeId;
        (from, to)
    }

    /// Rewrites the capacity of a flow-free forward edge in place.
    ///
    /// Unlike [`warm::set_capacity`](crate::warm::set_capacity) this never
    /// needs to drain displaced flow — the caller guarantees the edge
    /// carries none (e.g. a freshly patched network whose flow will be
    /// seeded afterwards) — so it is a pure array store: no CSR rebuild, no
    /// residual walk, O(1) per arc pair.
    ///
    /// [`warm::set_capacity`]: crate::warm::set_capacity
    #[inline]
    pub fn retune_capacity(&mut self, e: EdgeId, cap: T) {
        debug_assert!(!(cap < T::zero()), "negative capacity");
        debug_assert!(
            !self.flow(e).is_strictly_positive(),
            "retune_capacity on an edge carrying flow; use warm::set_capacity"
        );
        self.caps[(e.0 / 2) as usize] = cap;
        self.res[e.0 as usize] = cap - self.flow(e);
    }

    /// Resets all flows to zero, keeping the topology and capacities.
    pub fn reset_flows(&mut self) {
        for (k, cap) in self.caps.iter().enumerate() {
            self.res[2 * k] = *cap;
            self.res[2 * k + 1] = T::zero();
        }
    }

    /// Net flow out of `node` (flow on outgoing forward edges minus flow on
    /// incoming forward edges). For the source this equals the flow value.
    pub fn net_out_flow(&self, node: NodeId) -> T {
        let mut total = T::zero();
        if self.csr_dirty {
            // No adjacency yet: one pass over the forward arcs.
            for k in 0..self.caps.len() {
                let id = EdgeId((2 * k) as u32);
                let (from, to) = self.endpoints(id);
                if from == node {
                    total += self.flow(id);
                }
                if to == node {
                    total -= self.flow(id);
                }
            }
            return total;
        }
        for &aid in self.arcs(node) {
            if aid % 2 == 0 {
                // Forward edge leaving `node`.
                total += self.flow(EdgeId(aid));
            } else {
                // Residual twin stored at `node` ⇒ forward edge enters `node`.
                total -= self.flow(EdgeId(aid ^ 1));
            }
        }
        total
    }

    /// Iterates over all forward edges as `(EdgeId, from, to, cap, flow)`.
    pub fn iter_edges(&self) -> impl Iterator<Item = (EdgeId, NodeId, NodeId, T, T)> + '_ {
        (0..self.caps.len()).map(move |k| {
            let id = EdgeId((2 * k) as u32);
            let (from, to) = self.endpoints(id);
            (id, from, to, self.caps[k], self.flow(id))
        })
    }

    /// Nodes reachable from `from` in the residual graph (strictly positive
    /// residual capacity). After a max-flow run from the source this is the
    /// source side of a minimum cut.
    pub fn residual_reachable(&self, from: NodeId) -> Vec<bool> {
        let (first_arc, arc_order) = self.csr_view();
        let mut seen = vec![false; self.num_nodes()];
        let mut stack = vec![from];
        seen[from] = true;
        while let Some(u) = stack.pop() {
            for &aid in &arc_order[first_arc[u] as usize..first_arc[u + 1] as usize] {
                let v = self.head[aid as usize] as usize;
                if !seen[v] && self.res[aid as usize].is_strictly_positive() {
                    seen[v] = true;
                    stack.push(v);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpss_numeric::rational::rat;
    use mpss_numeric::Rational;

    #[test]
    fn add_edge_and_inspect() {
        let mut net: FlowNetwork<f64> = FlowNetwork::new(3);
        let e = net.add_edge(0, 1, 5.0);
        let f = net.add_edge(1, 2, 3.0);
        assert_eq!(net.num_nodes(), 3);
        assert_eq!(net.num_edges(), 2);
        assert_eq!(net.capacity(e), 5.0);
        assert_eq!(net.capacity(f), 3.0);
        assert_eq!(net.flow(e), 0.0);
        assert_eq!(net.residual(e), 5.0);
        assert_eq!(net.endpoints(e), (0, 1));
        assert_eq!(net.endpoints(f), (1, 2));
    }

    #[test]
    fn add_node_grows_graph() {
        let mut net: FlowNetwork<f64> = FlowNetwork::new(1);
        let v = net.add_node();
        assert_eq!(v, 1);
        assert_eq!(net.num_nodes(), 2);
        net.add_edge(0, v, 1.0);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn rejects_self_loop() {
        let mut net: FlowNetwork<f64> = FlowNetwork::new(2);
        net.add_edge(1, 1, 1.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_endpoint() {
        let mut net: FlowNetwork<f64> = FlowNetwork::new(2);
        net.add_edge(0, 2, 1.0);
    }

    #[test]
    fn reset_flows_restores_capacities() {
        let mut net: FlowNetwork<f64> = FlowNetwork::new(2);
        let e = net.add_edge(0, 1, 4.0);
        crate::max_flow_dinic(&mut net, 0, 1);
        assert_eq!(net.flow(e), 4.0);
        net.reset_flows();
        assert_eq!(net.flow(e), 0.0);
        assert_eq!(net.residual(e), 4.0);
    }

    #[test]
    fn works_with_rationals() {
        let mut net: FlowNetwork<Rational> = FlowNetwork::new(2);
        let e = net.add_edge(0, 1, rat(7, 3));
        assert_eq!(net.capacity(e), rat(7, 3));
        assert_eq!(net.flow(e), Rational::ZERO);
    }

    #[test]
    fn iter_edges_lists_all() {
        let mut net: FlowNetwork<f64> = FlowNetwork::new(3);
        net.add_edge(0, 1, 1.0);
        net.add_edge(1, 2, 2.0);
        let edges: Vec<_> = net.iter_edges().collect();
        assert_eq!(edges.len(), 2);
        assert_eq!(edges[0].1, 0);
        assert_eq!(edges[1].3, 2.0);
    }

    #[test]
    fn net_out_flow_zero_before_any_flow() {
        let mut net: FlowNetwork<f64> = FlowNetwork::new(3);
        net.add_edge(0, 1, 1.0);
        net.add_edge(1, 2, 2.0);
        assert_eq!(net.net_out_flow(0), 0.0);
        assert_eq!(net.net_out_flow(1), 0.0);
    }

    #[test]
    fn csr_groups_arcs_by_tail_in_insertion_order() {
        let mut net: FlowNetwork<f64> = FlowNetwork::new(4);
        net.add_edge(0, 1, 1.0); // arcs 0 (0→1), 1 (1→0)
        net.add_edge(2, 1, 1.0); // arcs 2 (2→1), 3 (1→2)
        net.add_edge(1, 3, 1.0); // arcs 4 (1→3), 5 (3→1)
        net.finish();
        assert!(net.csr_ready());
        assert_eq!(net.arcs(0), &[0]);
        assert_eq!(net.arcs(1), &[1, 3, 4]);
        assert_eq!(net.arcs(2), &[2]);
        assert_eq!(net.arcs(3), &[5]);
    }

    #[test]
    fn csr_rebuilds_after_topology_edit() {
        let mut net: FlowNetwork<f64> = FlowNetwork::new(2);
        net.add_edge(0, 1, 1.0);
        net.finish();
        assert!(net.csr_ready());
        let v = net.add_node();
        assert!(!net.csr_ready());
        net.add_edge(1, v, 1.0);
        net.finish();
        assert_eq!(net.arcs(1), &[1, 2]);
        assert_eq!(net.arcs(v), &[3]);
    }

    #[test]
    fn retune_capacity_is_in_place_and_keeps_csr_sealed() {
        let mut net: FlowNetwork<f64> = FlowNetwork::new(3);
        let e = net.add_edge(0, 1, 2.0);
        net.add_edge(1, 2, 2.0);
        net.finish();
        net.retune_capacity(e, 5.0);
        assert!(net.csr_ready(), "capacity patch must not dirty the CSR");
        assert_eq!(net.capacity(e), 5.0);
        assert_eq!(net.residual(e), 5.0);
        assert_eq!(net.flow(e), 0.0);
        // A solve over the retuned network sees the new bottleneck.
        assert_eq!(crate::max_flow_dinic(&mut net, 0, 2), 2.0);
    }

    #[test]
    fn dirty_fallbacks_agree_with_finished_csr() {
        let mut net: FlowNetwork<f64> = FlowNetwork::new(4);
        net.add_edge(0, 1, 2.0);
        net.add_edge(1, 2, 2.0);
        net.add_edge(2, 3, 2.0);
        crate::max_flow_dinic(&mut net, 0, 3);
        net.add_edge(0, 3, 1.0); // dirty the CSR, keep the flow
        let dirty_out = net.net_out_flow(0);
        let dirty_reach = net.residual_reachable(0);
        net.finish();
        assert_eq!(dirty_out, net.net_out_flow(0));
        assert_eq!(dirty_reach, net.residual_reachable(0));
    }
}
