//! Highest-label push–relabel maximum flow with the gap and global-relabel
//! heuristics.
//!
//! This is an independent second engine: the offline scheduler runs Dinic in
//! production, and the test suite cross-validates both engines against each
//! other on random networks and on real job × interval networks. The
//! generic push–relabel bound (`O(V²E)` non-saturating pushes) does not
//! depend on capacity values, so the engine is equally safe for `f64` and
//! exact rationals.
//!
//! Heuristics on top of the basic highest-label engine:
//!
//! * **Current-arc pointers** (`cur_arc`, absolute positions into the CSR
//!   arc arena): between two relabels of `u` no arc the pointer has passed
//!   can become admissible — `u`'s height is fixed and other heights only
//!   grow — so each node scans its arc list at most once per relabel.
//! * **Gap heuristic**: when a height level `< n` empties, every node
//!   strictly above it (and `≤ n`) is cut off from the sink and lifted past
//!   `n` at once.
//! * **Global relabeling**: initially and after every `n` relabels, a
//!   backward BFS from the sink over the residual graph recomputes exact
//!   distance labels. Heights are only ever *raised* (`max(old, bfs)`), the
//!   pointwise max of two valid labelings is valid, and sink-unreachable
//!   nodes are lifted to `n + 1` — sound because a residual arc from a
//!   sink-unreachable node can only lead to another sink-unreachable node
//!   or to the source (at height `n`). See DESIGN.md for the full argument.
//!
//! The heuristics change which maximum flow the engine finds (never its
//! value); every consumer that needs engine-independence hangs its decisions
//! on the min-cut certificate
//! [`residual_reachable_tol`](crate::warm::residual_reachable_tol), which is
//! identical for all maximum flows.

use crate::network::{FlowNetwork, NodeId};
use crate::{EngineStats, MaxFlow};
use mpss_numeric::FlowNum;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};

const UNSET: u32 = u32::MAX;

/// Highest-label push–relabel engine.
#[derive(Default)]
pub struct PushRelabel {
    height: Vec<u32>,
    /// Nodes with positive excess, bucketed by height (highest first).
    buckets: Vec<Vec<u32>>,
    /// Number of nodes at each height (for the gap heuristic).
    height_count: Vec<u32>,
    /// Per-node current-arc pointer (absolute positions into `arc_order`).
    cur_arc: Vec<u32>,
    in_bucket: Vec<bool>,
    /// Scratch for the global-relabel BFS.
    gr_dist: Vec<u32>,
    gr_queue: VecDeque<u32>,
    relabels_since_global: u64,
    stats: EngineStats,
}

impl PushRelabel {
    /// Creates a fresh engine.
    pub fn new() -> PushRelabel {
        PushRelabel::default()
    }

    /// Final height labels of the last run, for invariant tests only.
    #[cfg(test)]
    pub(crate) fn heights(&self) -> &[u32] {
        &self.height
    }

    fn enqueue<T: FlowNum>(&mut self, v: usize, excess: &[T], s: NodeId, t: NodeId) {
        if v != s && v != t && !self.in_bucket[v] && excess[v].is_strictly_positive() {
            self.in_bucket[v] = true;
            let h = self.height[v] as usize;
            if h < self.buckets.len() {
                self.buckets[h].push(v as u32);
            }
        }
    }

    /// Recomputes exact distance-to-sink labels by backward BFS on the
    /// residual graph, lifts every height to at least its BFS label
    /// (sink-unreachable nodes to at least `n + 1`), and rebuilds the
    /// gap census, the buckets, and all current-arc pointers.
    fn global_relabel<T: FlowNum>(
        &mut self,
        net: &FlowNetwork<T>,
        excess: &[T],
        s: NodeId,
        t: NodeId,
    ) {
        self.stats.global_relabels += 1;
        self.relabels_since_global = 0;
        let n = net.num_nodes();
        // Backward BFS from `t`: arc `a` in `u`'s CSR list runs u → head[a],
        // so its twin `a ^ 1` runs head[a] → u; a strictly positive twin
        // residual means head[a] can still push towards u. The source is
        // never expanded or relabeled — it keeps its height `n`.
        self.gr_dist.clear();
        self.gr_dist.resize(n, UNSET);
        self.gr_dist[t] = 0;
        self.gr_queue.clear();
        self.gr_queue.push_back(t as u32);
        while let Some(u) = self.gr_queue.pop_front() {
            let u = u as usize;
            let du = self.gr_dist[u];
            for &aid in net.arcs(u) {
                let a = aid as usize;
                let v = net.head[a] as usize;
                if v != s && self.gr_dist[v] == UNSET && net.res[a ^ 1].is_strictly_positive() {
                    self.gr_dist[v] = du + 1;
                    self.gr_queue.push_back(v as u32);
                }
            }
        }
        // Heights never decrease (the termination argument needs
        // monotonicity), and the pointwise max of two valid labelings is
        // itself valid.
        for v in 0..n {
            if v == s || v == t {
                continue;
            }
            let bfs_h = if self.gr_dist[v] == UNSET {
                (n + 1) as u32
            } else {
                self.gr_dist[v]
            };
            if bfs_h > self.height[v] {
                self.height[v] = bfs_h;
            }
        }
        // Rebuild the gap census and highest-label buckets from scratch.
        self.height_count.iter_mut().for_each(|c| *c = 0);
        for v in 0..n {
            let h = self.height[v] as usize;
            if h < self.height_count.len() {
                self.height_count[h] += 1;
            }
        }
        for bucket in &mut self.buckets {
            bucket.clear();
        }
        self.in_bucket.iter_mut().for_each(|b| *b = false);
        // Heights moved wholesale, so every current-arc pointer restarts.
        self.cur_arc.clear();
        self.cur_arc.extend_from_slice(&net.first_arc[..n]);
        for v in 0..n {
            self.enqueue(v, excess, s, t);
        }
    }

    /// Shared driver behind [`MaxFlow::max_flow`] and
    /// [`MaxFlow::max_flow_cancelable`]: the cancellation flag is polled once
    /// per highest-label selection (i.e. per discharge), and a cancelled run
    /// bails out *before* the trapped-excess cancellation phase — the network
    /// is left capacity-feasible but non-conservative, which is fine because
    /// the racing caller discards the loser's network.
    fn run<T: FlowNum>(
        &mut self,
        net: &mut FlowNetwork<T>,
        s: NodeId,
        t: NodeId,
        cancel: Option<&AtomicBool>,
    ) -> Option<T> {
        assert!(s != t, "source and sink must differ");
        net.ensure_csr();
        let n = net.num_nodes();
        self.height.clear();
        self.height.resize(n, 0);
        self.height[s] = n as u32;
        self.cur_arc.clear();
        self.cur_arc.extend_from_slice(&net.first_arc[..n]);
        self.in_bucket.clear();
        self.in_bucket.resize(n, false);
        self.buckets.clear();
        self.buckets.resize(2 * n + 1, Vec::new());
        self.height_count.clear();
        self.height_count.resize(2 * n + 1, 0);
        self.height_count[0] = (n - 1) as u32;
        self.height_count[n] = 1;
        self.relabels_since_global = 0;

        let mut excess: Vec<T> = vec![T::zero(); n];

        // Saturate all source-adjacent edges.
        for pos in net.first_arc[s] as usize..net.first_arc[s + 1] as usize {
            let a = net.arc_order[pos] as usize;
            let cap = net.res[a];
            if cap.is_strictly_positive() {
                let v = net.head[a] as usize;
                net.res[a] -= cap;
                net.res[a ^ 1] += cap;
                excess[v] += cap;
                excess[s] -= cap;
                self.enqueue(v, &excess, s, t);
            }
        }
        // Exact initial distance labels (the saturation above just removed
        // every residual arc out of `s`, so the BFS labeling is valid).
        self.global_relabel(net, &excess, s, t);
        let global_period = (n as u64).max(1);

        // Highest-label selection.
        let mut hi = 2 * n;
        loop {
            if cancel.is_some_and(|c| c.load(Ordering::Relaxed)) {
                return None;
            }
            while hi > 0 && self.buckets[hi].is_empty() {
                hi -= 1;
            }
            if hi == 0 && self.buckets[0].is_empty() {
                break;
            }
            let u = match self.buckets[hi].pop() {
                Some(u) => u as usize,
                None => break,
            };
            self.in_bucket[u] = false;
            if !excess[u].is_strictly_positive() {
                continue;
            }

            // Discharge u.
            let mut did_global = false;
            while excess[u].is_strictly_positive() {
                if self.cur_arc[u] >= net.first_arc[u + 1] {
                    // Relabel.
                    self.stats.relabels += 1;
                    self.relabels_since_global += 1;
                    let old_h = self.height[u] as usize;
                    let mut min_h = u32::MAX;
                    for &aid in net.arcs(u) {
                        let a = aid as usize;
                        if net.res[a].is_strictly_positive() {
                            min_h = min_h.min(self.height[net.head[a] as usize] + 1);
                        }
                    }
                    if min_h == u32::MAX || min_h as usize > 2 * n {
                        // No admissible arc will ever appear; excess is stuck
                        // (flows back implicitly via final heights > 2n).
                        self.height[u] = (2 * n) as u32 + 1;
                        break;
                    }
                    self.height_count[old_h] -= 1;
                    // Gap heuristic: nobody left at old_h ⇒ everything
                    // between old_h and n is unreachable from t.
                    if self.height_count[old_h] == 0 && old_h < n {
                        self.stats.gap_events += 1;
                        for v in 0..n {
                            let hv = self.height[v] as usize;
                            if hv > old_h && hv <= n && v != s {
                                self.height_count[hv] -= 1;
                                self.height[v] = (n + 1) as u32;
                                self.height_count[n + 1] += 1;
                            }
                        }
                    }
                    self.height[u] = min_h;
                    if (min_h as usize) <= 2 * n {
                        self.height_count[min_h as usize] += 1;
                    }
                    self.cur_arc[u] = net.first_arc[u];
                    self.stats.current_arc_resets += 1;
                    if self.relabels_since_global >= global_period {
                        self.global_relabel(net, &excess, s, t);
                        did_global = true;
                        break;
                    }
                    continue;
                }
                let a = net.arc_order[self.cur_arc[u] as usize] as usize;
                let v = net.head[a] as usize;
                let residual = net.res[a];
                if residual.is_strictly_positive() && self.height[u] == self.height[v] + 1 {
                    // Push.
                    self.stats.pushes += 1;
                    let delta = excess[u].min2(residual);
                    net.res[a] -= delta;
                    net.res[a ^ 1] += delta;
                    excess[u] -= delta;
                    excess[v] += delta;
                    self.enqueue(v, &excess, s, t);
                } else {
                    self.cur_arc[u] += 1;
                }
            }
            if did_global {
                // Buckets were rebuilt (u re-enqueued if it kept excess);
                // restart the highest-label scan from the top.
                hi = 2 * n;
                continue;
            }
            if excess[u].is_strictly_positive() {
                // Stuck node (height > 2n) — drop it; its excess drains back
                // towards the source conceptually and does not reach t.
                continue;
            }
            hi = 2 * n;
        }

        // With stuck nodes possible, the flow on edges into the sink is the
        // reliable max-flow value; but excess trapped at intermediate nodes
        // would violate conservation. Cancel trapped excess by returning it
        // to the source along reverse residual paths (standard second
        // phase).
        cancel_trapped_excess(net, &mut excess, s, t);

        Some(excess[t])
    }
}

impl<T: FlowNum> MaxFlow<T> for PushRelabel {
    fn max_flow(&mut self, net: &mut FlowNetwork<T>, s: NodeId, t: NodeId) -> T {
        self.run(net, s, t, None)
            .expect("uncancellable run cannot be cancelled")
    }

    fn max_flow_cancelable(
        &mut self,
        net: &mut FlowNetwork<T>,
        s: NodeId,
        t: NodeId,
        cancel: &AtomicBool,
    ) -> Option<T> {
        self.run(net, s, t, Some(cancel))
    }

    fn name(&self) -> &'static str {
        "push-relabel"
    }

    fn stats(&self) -> EngineStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = EngineStats::default();
    }

    fn restore_stats(&mut self, stats: EngineStats) {
        self.stats = stats;
    }
}

/// Second phase: route any excess trapped at intermediate nodes back to the
/// source so the final edge assignment satisfies flow conservation.
///
/// Follows incoming-flow edges backwards (decomposition style): repeatedly
/// pick a node with positive excess and walk flow-carrying edges back
/// towards the source, reducing flow along the walk by the trapped amount.
fn cancel_trapped_excess<T: FlowNum>(
    net: &mut FlowNetwork<T>,
    excess: &mut [T],
    s: NodeId,
    t: NodeId,
) {
    net.ensure_csr();
    let n = net.num_nodes();
    for u in 0..n {
        if u == s || u == t {
            continue;
        }
        while excess[u].is_strictly_positive() {
            // Find a cycle-free walk u → s along edges currently carrying
            // flow *into* each walk node, via DFS with visitation marks.
            let mut mark = vec![false; n];
            let mut path: Vec<usize> = Vec::new(); // arc ids (forward arcs carrying flow)
            let mut cur = u;
            mark[u] = true;
            let mut bottleneck = excess[u];
            'walk: loop {
                if cur == s {
                    break 'walk;
                }
                let mut advanced = false;
                for &aid in net.arcs(cur) {
                    // A residual twin at `cur` with positive residual means
                    // the forward edge (into `cur`) carries flow.
                    if aid % 2 == 1 {
                        let a = aid as usize;
                        let fwd = a ^ 1;
                        let from = net.head[a] as usize;
                        let carried = net.res[a];
                        if carried.is_strictly_positive() && !mark[from] {
                            bottleneck = bottleneck.min2(carried);
                            path.push(fwd);
                            mark[from] = true;
                            cur = from;
                            advanced = true;
                            break;
                        }
                    }
                }
                if !advanced {
                    // Trapped excess must be routable back to s by flow
                    // decomposition; walking into a dead end means the walk
                    // entered a flow cycle. Cancel the cycle by zeroing the
                    // last edge and retry.
                    let a = match path.pop() {
                        Some(a) => a,
                        None => return, // defensive: nothing to cancel
                    };
                    let carried = net.res[a ^ 1];
                    net.res[a] += carried;
                    net.res[a ^ 1] -= carried;
                    // Restart the walk from scratch.
                    path.clear();
                    mark.iter_mut().for_each(|m| *m = false);
                    mark[u] = true;
                    cur = u;
                    bottleneck = excess[u];
                    continue 'walk;
                }
            }
            // Reduce flow along the walk by the bottleneck.
            for &a in &path {
                net.res[a] += bottleneck;
                net.res[a ^ 1] -= bottleneck;
            }
            excess[u] -= bottleneck;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate_flow;
    use mpss_numeric::rational::rat;
    use mpss_numeric::Rational;

    fn pr<T: FlowNum>(net: &mut FlowNetwork<T>, s: usize, t: usize) -> T {
        PushRelabel::new().max_flow(net, s, t)
    }

    #[test]
    fn single_edge() {
        let mut net: FlowNetwork<f64> = FlowNetwork::new(2);
        net.add_edge(0, 1, 3.5);
        assert_eq!(pr(&mut net, 0, 1), 3.5);
    }

    #[test]
    fn classic_clrs_network() {
        let mut net: FlowNetwork<f64> = FlowNetwork::new(6);
        net.add_edge(0, 1, 16.0);
        net.add_edge(0, 2, 13.0);
        net.add_edge(1, 2, 10.0);
        net.add_edge(2, 1, 4.0);
        net.add_edge(1, 3, 12.0);
        net.add_edge(3, 2, 9.0);
        net.add_edge(2, 4, 14.0);
        net.add_edge(4, 3, 7.0);
        net.add_edge(3, 5, 20.0);
        net.add_edge(4, 5, 4.0);
        assert_eq!(pr(&mut net, 0, 5), 23.0);
        validate_flow(&net, 0, 5, 1e-9).expect("conservation after PR");
    }

    #[test]
    fn bottleneck_forces_trapped_excess() {
        // Source saturates 0→1 with 10, but only 1 unit can continue; the
        // second phase must cancel the other 9 to keep conservation.
        let mut net: FlowNetwork<f64> = FlowNetwork::new(3);
        let e01 = net.add_edge(0, 1, 10.0);
        net.add_edge(1, 2, 1.0);
        assert_eq!(pr(&mut net, 0, 2), 1.0);
        validate_flow(&net, 0, 2, 1e-9).expect("conservation");
        assert_eq!(net.flow(e01), 1.0);
    }

    #[test]
    fn exact_rational() {
        let mut net: FlowNetwork<Rational> = FlowNetwork::new(4);
        net.add_edge(0, 1, rat(2, 3));
        net.add_edge(0, 2, rat(1, 3));
        net.add_edge(1, 3, rat(1, 2));
        net.add_edge(2, 3, rat(1, 2));
        let f = pr(&mut net, 0, 3);
        assert_eq!(f, rat(5, 6));
        validate_flow(&net, 0, 3, 0.0).expect("conservation");
    }

    #[test]
    fn disconnected_gives_zero() {
        let mut net: FlowNetwork<f64> = FlowNetwork::new(4);
        net.add_edge(0, 1, 5.0);
        net.add_edge(2, 3, 5.0);
        assert_eq!(pr(&mut net, 0, 3), 0.0);
        validate_flow(&net, 0, 3, 1e-9).expect("conservation");
    }

    #[test]
    fn zigzag_network() {
        let mut net: FlowNetwork<f64> = FlowNetwork::new(4);
        net.add_edge(0, 1, 1.0);
        net.add_edge(0, 2, 1.0);
        net.add_edge(1, 2, 1.0);
        net.add_edge(1, 3, 1.0);
        net.add_edge(2, 3, 1.0);
        assert_eq!(pr(&mut net, 0, 3), 2.0);
        validate_flow(&net, 0, 3, 1e-9).expect("conservation");
    }

    #[test]
    fn counts_the_heuristic_stats() {
        let mut net: FlowNetwork<f64> = FlowNetwork::new(6);
        net.add_edge(0, 1, 3.0);
        net.add_edge(0, 2, 2.0);
        net.add_edge(1, 3, 2.0);
        net.add_edge(1, 4, 2.0);
        net.add_edge(2, 4, 2.0);
        net.add_edge(3, 5, 2.0);
        net.add_edge(4, 5, 3.0);
        let mut engine = PushRelabel::new();
        let f: f64 = engine.max_flow(&mut net, 0, 5);
        assert_eq!(f, 5.0);
        let stats = <PushRelabel as MaxFlow<f64>>::stats(&engine);
        // The initial exact-labeling pass always fires.
        assert!(stats.global_relabels >= 1);
        // Every non-stuck relabel resets that node's current-arc pointer.
        assert!(stats.current_arc_resets <= stats.relabels);
        validate_flow(&net, 0, 5, 1e-9).expect("conservation");
    }

    #[test]
    fn deep_chain_triggers_periodic_global_relabel() {
        // A fat chain into a unit-capacity sink edge, with extra source arcs
        // dropping excess mid-chain: all but one unit must climb past n and
        // walk back to the source, so the relabel count exceeds the periodic
        // threshold (n) and a second global relabel fires beyond the
        // unconditional initial pass.
        let n = 16;
        let mut net: FlowNetwork<f64> = FlowNetwork::new(n);
        for v in 0..n - 2 {
            net.add_edge(v, v + 1, 8.0);
        }
        net.add_edge(n - 2, n - 1, 1.0);
        for k in 2..7 {
            net.add_edge(0, k, 5.0);
        }
        let mut engine = PushRelabel::new();
        let f: f64 = engine.max_flow(&mut net, 0, n - 1);
        assert_eq!(f, 1.0);
        validate_flow(&net, 0, n - 1, 1e-9).expect("conservation");
        assert!(
            <PushRelabel as MaxFlow<f64>>::stats(&engine).global_relabels >= 2,
            "expected a periodic global relabel, got stats {:?}",
            <PushRelabel as MaxFlow<f64>>::stats(&engine)
        );
    }

    #[test]
    fn labels_stay_bounded_after_global_relabels() {
        // Random-ish dense network exercised enough to fire several global
        // relabels; afterwards every height must be ≤ 2n + 1 (the stuck
        // sentinel) — the proptests assert the sharper ≤ 2n bound for
        // non-stuck nodes.
        let n = 12;
        let mut net: FlowNetwork<f64> = FlowNetwork::new(n);
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        for u in 0..n {
            for v in 0..n {
                if u != v && next() < 0.4 {
                    net.add_edge(u, v, 1.0 + next() * 4.0);
                }
            }
        }
        let mut engine = PushRelabel::new();
        let f: f64 = engine.max_flow(&mut net, 0, n - 1);
        assert!(f >= 0.0);
        for v in 0..n {
            assert!(
                engine.height[v] as usize <= 2 * n + 1,
                "height[{v}] = {} out of range",
                engine.height[v]
            );
        }
        validate_flow(&net, 0, n - 1, 1e-9).expect("conservation");
    }
}
