//! Highest-label push–relabel maximum flow with the gap heuristic.
//!
//! This is an independent second engine: the offline scheduler runs Dinic in
//! production, and the test suite cross-validates both engines against each
//! other on random networks and on real job × interval networks. The
//! generic push–relabel bound (`O(V²E)` non-saturating pushes) does not
//! depend on capacity values, so the engine is equally safe for `f64` and
//! exact rationals.

use crate::network::{FlowNetwork, NodeId};
use crate::{EngineStats, MaxFlow};
use mpss_numeric::FlowNum;
use std::sync::atomic::{AtomicBool, Ordering};

/// Highest-label push–relabel engine.
#[derive(Default)]
pub struct PushRelabel {
    height: Vec<u32>,
    /// Nodes with positive excess, bucketed by height (highest first).
    buckets: Vec<Vec<u32>>,
    /// Number of nodes at each height (for the gap heuristic).
    height_count: Vec<u32>,
    cur_arc: Vec<u32>,
    in_bucket: Vec<bool>,
    stats: EngineStats,
}

impl PushRelabel {
    /// Creates a fresh engine.
    pub fn new() -> PushRelabel {
        PushRelabel::default()
    }

    fn enqueue<T: FlowNum>(&mut self, v: usize, excess: &[T], s: NodeId, t: NodeId) {
        if v != s && v != t && !self.in_bucket[v] && excess[v].is_strictly_positive() {
            self.in_bucket[v] = true;
            let h = self.height[v] as usize;
            if h < self.buckets.len() {
                self.buckets[h].push(v as u32);
            }
        }
    }

    /// Shared driver behind [`MaxFlow::max_flow`] and
    /// [`MaxFlow::max_flow_cancelable`]: the cancellation flag is polled once
    /// per highest-label selection (i.e. per discharge), and a cancelled run
    /// bails out *before* the trapped-excess cancellation phase — the network
    /// is left capacity-feasible but non-conservative, which is fine because
    /// the racing caller discards the loser's network.
    fn run<T: FlowNum>(
        &mut self,
        net: &mut FlowNetwork<T>,
        s: NodeId,
        t: NodeId,
        cancel: Option<&AtomicBool>,
    ) -> Option<T> {
        assert!(s != t, "source and sink must differ");
        let n = net.num_nodes();
        self.height.clear();
        self.height.resize(n, 0);
        self.height[s] = n as u32;
        self.cur_arc.clear();
        self.cur_arc.resize(n, 0);
        self.in_bucket.clear();
        self.in_bucket.resize(n, false);
        self.buckets.clear();
        self.buckets.resize(2 * n + 1, Vec::new());
        self.height_count.clear();
        self.height_count.resize(2 * n + 1, 0);
        self.height_count[0] = (n - 1) as u32;
        self.height_count[n] = 1;

        let mut excess: Vec<T> = vec![T::zero(); n];

        // Saturate all source-adjacent edges.
        for k in 0..net.adj[s].len() {
            let eid = net.adj[s][k] as usize;
            let cap = net.edges[eid].residual;
            if cap.is_strictly_positive() {
                let v = net.edges[eid].to as usize;
                net.edges[eid].residual -= cap;
                net.edges[eid ^ 1].residual += cap;
                excess[v] += cap;
                excess[s] -= cap;
                self.enqueue(v, &excess, s, t);
            }
        }

        // Highest-label selection.
        let mut hi = 2 * n;
        loop {
            if cancel.is_some_and(|c| c.load(Ordering::Relaxed)) {
                return None;
            }
            while hi > 0 && self.buckets[hi].is_empty() {
                hi -= 1;
            }
            if hi == 0 && self.buckets[0].is_empty() {
                break;
            }
            let u = match self.buckets[hi].pop() {
                Some(u) => u as usize,
                None => break,
            };
            self.in_bucket[u] = false;
            if !excess[u].is_strictly_positive() {
                continue;
            }

            // Discharge u.
            while excess[u].is_strictly_positive() {
                if (self.cur_arc[u] as usize) >= net.adj[u].len() {
                    // Relabel.
                    self.stats.relabels += 1;
                    let old_h = self.height[u] as usize;
                    let mut min_h = u32::MAX;
                    for &eid in &net.adj[u] {
                        let e = &net.edges[eid as usize];
                        if e.residual.is_strictly_positive() {
                            min_h = min_h.min(self.height[e.to as usize] + 1);
                        }
                    }
                    if min_h == u32::MAX || min_h as usize > 2 * n {
                        // No admissible arc will ever appear; excess is stuck
                        // (flows back implicitly via final heights > 2n).
                        self.height[u] = (2 * n) as u32 + 1;
                        break;
                    }
                    self.height_count[old_h] -= 1;
                    // Gap heuristic: nobody left at old_h ⇒ everything
                    // between old_h and n is unreachable from t.
                    if self.height_count[old_h] == 0 && old_h < n {
                        self.stats.gap_events += 1;
                        for v in 0..n {
                            let hv = self.height[v] as usize;
                            if hv > old_h && hv <= n && v != s {
                                self.height_count[hv] -= 1;
                                self.height[v] = (n + 1) as u32;
                                self.height_count[n + 1] += 1;
                            }
                        }
                    }
                    self.height[u] = min_h;
                    if (min_h as usize) <= 2 * n {
                        self.height_count[min_h as usize] += 1;
                    }
                    self.cur_arc[u] = 0;
                    continue;
                }
                let eid = net.adj[u][self.cur_arc[u] as usize] as usize;
                let e = net.edges[eid];
                let v = e.to as usize;
                if e.residual.is_strictly_positive() && self.height[u] == self.height[v] + 1 {
                    // Push.
                    self.stats.pushes += 1;
                    let delta = excess[u].min2(e.residual);
                    net.edges[eid].residual -= delta;
                    net.edges[eid ^ 1].residual += delta;
                    excess[u] -= delta;
                    excess[v] += delta;
                    self.enqueue(v, &excess, s, t);
                } else {
                    self.cur_arc[u] += 1;
                }
            }
            if excess[u].is_strictly_positive() {
                // Stuck node (height > 2n) — drop it; its excess drains back
                // towards the source conceptually and does not reach t.
                continue;
            }
            hi = 2 * n;
        }

        // With stuck nodes possible, the flow on edges into the sink is the
        // reliable max-flow value; but excess trapped at intermediate nodes
        // would violate conservation. Cancel trapped excess by returning it
        // to the source along reverse residual paths (standard second
        // phase).
        cancel_trapped_excess(net, &mut excess, s, t);

        Some(excess[t])
    }
}

impl<T: FlowNum> MaxFlow<T> for PushRelabel {
    fn max_flow(&mut self, net: &mut FlowNetwork<T>, s: NodeId, t: NodeId) -> T {
        self.run(net, s, t, None)
            .expect("uncancellable run cannot be cancelled")
    }

    fn max_flow_cancelable(
        &mut self,
        net: &mut FlowNetwork<T>,
        s: NodeId,
        t: NodeId,
        cancel: &AtomicBool,
    ) -> Option<T> {
        self.run(net, s, t, Some(cancel))
    }

    fn name(&self) -> &'static str {
        "push-relabel"
    }

    fn stats(&self) -> EngineStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = EngineStats::default();
    }

    fn restore_stats(&mut self, stats: EngineStats) {
        self.stats = stats;
    }
}

/// Second phase: route any excess trapped at intermediate nodes back to the
/// source so the final edge assignment satisfies flow conservation.
///
/// Follows incoming-flow edges backwards (decomposition style): repeatedly
/// pick a node with positive excess and walk flow-carrying edges back
/// towards the source, reducing flow along the walk by the trapped amount.
fn cancel_trapped_excess<T: FlowNum>(
    net: &mut FlowNetwork<T>,
    excess: &mut [T],
    s: NodeId,
    t: NodeId,
) {
    let n = net.num_nodes();
    for u in 0..n {
        if u == s || u == t {
            continue;
        }
        while excess[u].is_strictly_positive() {
            // Find a cycle-free walk u → s along edges currently carrying
            // flow *into* each walk node, via DFS with visitation marks.
            let mut mark = vec![false; n];
            let mut path: Vec<usize> = Vec::new(); // edge ids (forward edges carrying flow)
            let mut cur = u;
            mark[u] = true;
            let mut bottleneck = excess[u];
            'walk: loop {
                if cur == s {
                    break 'walk;
                }
                let mut advanced = false;
                for &eid in &net.adj[cur] {
                    // A residual twin at `cur` with positive residual means
                    // the forward edge (into `cur`) carries flow.
                    if eid % 2 == 1 {
                        let fwd = (eid ^ 1) as usize;
                        let from = net.edges[eid as usize].to as usize;
                        let carried = net.edges[eid as usize].residual;
                        if carried.is_strictly_positive() && !mark[from] {
                            bottleneck = bottleneck.min2(carried);
                            path.push(fwd);
                            mark[from] = true;
                            cur = from;
                            advanced = true;
                            break;
                        }
                    }
                }
                if !advanced {
                    // Trapped excess must be routable back to s by flow
                    // decomposition; walking into a dead end means the walk
                    // entered a flow cycle. Cancel the cycle by zeroing the
                    // last edge and retry.
                    let eid = match path.pop() {
                        Some(e) => e,
                        None => return, // defensive: nothing to cancel
                    };
                    let carried = net.edges[eid ^ 1].residual;
                    net.edges[eid].residual += carried;
                    net.edges[eid ^ 1].residual -= carried;
                    // Restart the walk from scratch.
                    path.clear();
                    mark.iter_mut().for_each(|m| *m = false);
                    mark[u] = true;
                    cur = u;
                    bottleneck = excess[u];
                    continue 'walk;
                }
            }
            // Reduce flow along the walk by the bottleneck.
            for &eid in &path {
                net.edges[eid].residual += bottleneck;
                net.edges[eid ^ 1].residual -= bottleneck;
            }
            excess[u] -= bottleneck;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate_flow;
    use mpss_numeric::rational::rat;
    use mpss_numeric::Rational;

    fn pr<T: FlowNum>(net: &mut FlowNetwork<T>, s: usize, t: usize) -> T {
        PushRelabel::new().max_flow(net, s, t)
    }

    #[test]
    fn single_edge() {
        let mut net: FlowNetwork<f64> = FlowNetwork::new(2);
        net.add_edge(0, 1, 3.5);
        assert_eq!(pr(&mut net, 0, 1), 3.5);
    }

    #[test]
    fn classic_clrs_network() {
        let mut net: FlowNetwork<f64> = FlowNetwork::new(6);
        net.add_edge(0, 1, 16.0);
        net.add_edge(0, 2, 13.0);
        net.add_edge(1, 2, 10.0);
        net.add_edge(2, 1, 4.0);
        net.add_edge(1, 3, 12.0);
        net.add_edge(3, 2, 9.0);
        net.add_edge(2, 4, 14.0);
        net.add_edge(4, 3, 7.0);
        net.add_edge(3, 5, 20.0);
        net.add_edge(4, 5, 4.0);
        assert_eq!(pr(&mut net, 0, 5), 23.0);
        validate_flow(&net, 0, 5, 1e-9).expect("conservation after PR");
    }

    #[test]
    fn bottleneck_forces_trapped_excess() {
        // Source saturates 0→1 with 10, but only 1 unit can continue; the
        // second phase must cancel the other 9 to keep conservation.
        let mut net: FlowNetwork<f64> = FlowNetwork::new(3);
        let e01 = net.add_edge(0, 1, 10.0);
        net.add_edge(1, 2, 1.0);
        assert_eq!(pr(&mut net, 0, 2), 1.0);
        validate_flow(&net, 0, 2, 1e-9).expect("conservation");
        assert_eq!(net.flow(e01), 1.0);
    }

    #[test]
    fn exact_rational() {
        let mut net: FlowNetwork<Rational> = FlowNetwork::new(4);
        net.add_edge(0, 1, rat(2, 3));
        net.add_edge(0, 2, rat(1, 3));
        net.add_edge(1, 3, rat(1, 2));
        net.add_edge(2, 3, rat(1, 2));
        let f = pr(&mut net, 0, 3);
        assert_eq!(f, rat(5, 6));
        validate_flow(&net, 0, 3, 0.0).expect("conservation");
    }

    #[test]
    fn disconnected_gives_zero() {
        let mut net: FlowNetwork<f64> = FlowNetwork::new(4);
        net.add_edge(0, 1, 5.0);
        net.add_edge(2, 3, 5.0);
        assert_eq!(pr(&mut net, 0, 3), 0.0);
        validate_flow(&net, 0, 3, 1e-9).expect("conservation");
    }

    #[test]
    fn zigzag_network() {
        let mut net: FlowNetwork<f64> = FlowNetwork::new(4);
        net.add_edge(0, 1, 1.0);
        net.add_edge(0, 2, 1.0);
        net.add_edge(1, 2, 1.0);
        net.add_edge(1, 3, 1.0);
        net.add_edge(2, 3, 1.0);
        assert_eq!(pr(&mut net, 0, 3), 2.0);
        validate_flow(&net, 0, 3, 1e-9).expect("conservation");
    }
}
