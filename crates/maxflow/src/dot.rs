//! Graphviz (DOT) export of a flow network.
//!
//! Used by the `exp_fig1_network` harness binary to regenerate the paper's
//! Fig. 1 (the structure of the job × interval network `G(J, m⃗, s)`).

use crate::network::{FlowNetwork, NodeId};
use mpss_numeric::FlowNum;
use std::fmt::Write as _;

/// Renders `net` as a DOT digraph. `label` names nodes; edges are annotated
/// `flow/cap`. Nodes may be assigned a `rank` group ("source", "jobs",
/// "intervals", "sink") via the `group` callback to reproduce the paper's
/// left-to-right layered layout; return `None` for ungrouped nodes.
pub fn to_dot<T: FlowNum>(
    net: &FlowNetwork<T>,
    label: impl Fn(NodeId) -> String,
    group: impl Fn(NodeId) -> Option<&'static str>,
) -> String {
    let mut out = String::new();
    out.push_str("digraph flow {\n  rankdir=LR;\n  node [shape=circle];\n");
    // Collect rank groups.
    let mut groups: Vec<(&'static str, Vec<NodeId>)> = Vec::new();
    for v in 0..net.num_nodes() {
        if let Some(g) = group(v) {
            match groups.iter_mut().find(|(name, _)| *name == g) {
                Some((_, members)) => members.push(v),
                None => groups.push((g, vec![v])),
            }
        }
    }
    for (name, members) in &groups {
        let _ = write!(
            out,
            "  subgraph cluster_{name} {{ label=\"{name}\"; rank=same;"
        );
        for v in members {
            let _ = write!(out, " n{v};");
        }
        out.push_str(" }\n");
    }
    for v in 0..net.num_nodes() {
        let _ = writeln!(out, "  n{v} [label=\"{}\"];", label(v));
    }
    for (_, from, to, cap, flow) in net.iter_edges() {
        let _ = writeln!(
            out,
            "  n{from} -> n{to} [label=\"{:.3}/{:.3}\"];",
            flow.to_f64(),
            cap.to_f64()
        );
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_contains_nodes_edges_and_groups() {
        let mut net: FlowNetwork<f64> = FlowNetwork::new(3);
        net.add_edge(0, 1, 2.0);
        net.add_edge(1, 2, 1.0);
        let dot = to_dot(
            &net,
            |v| format!("v{v}"),
            |v| if v == 0 { Some("source") } else { None },
        );
        assert!(dot.starts_with("digraph flow"));
        assert!(dot.contains("n0 -> n1"));
        assert!(dot.contains("n1 -> n2"));
        assert!(dot.contains("cluster_source"));
        assert!(dot.contains("label=\"v2\""));
        assert!(dot.ends_with("}\n"));
    }
}
