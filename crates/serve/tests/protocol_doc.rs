//! PROTOCOL.md is executable: every fenced `json` example in the spec is
//! parsed verbatim — request lines through [`Request::parse_line`], response
//! lines through [`Response::from_json`], and the checkpoint-file example
//! through the real checkpoint decoder. The spec must also cover the whole
//! surface: every `op` the parser accepts and every `error.kind` the daemon
//! can emit has to appear, so protocol changes fail CI until the document
//! tells the truth again.

use mpss_obs::json::Json;
use mpss_serve::protocol::{ErrorKind, Request, Response};
use mpss_serve::CHECKPOINT_FORMAT;
use std::path::Path;

fn protocol_md() -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../PROTOCOL.md");
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

/// The contents of every ```json fence, in document order.
fn json_blocks(doc: &str) -> Vec<String> {
    let mut blocks = Vec::new();
    let mut current: Option<String> = None;
    for line in doc.lines() {
        match &mut current {
            None if line.trim() == "```json" => current = Some(String::new()),
            None => {}
            Some(block) => {
                if line.trim() == "```" {
                    blocks.push(current.take().unwrap());
                } else {
                    block.push_str(line);
                    block.push('\n');
                }
            }
        }
    }
    assert!(current.is_none(), "unterminated ```json fence");
    blocks
}

#[test]
fn every_documented_example_parses_verbatim() {
    let doc = protocol_md();
    let blocks = json_blocks(&doc);
    assert!(
        blocks.len() >= 10,
        "PROTOCOL.md should be full of examples, found {}",
        blocks.len()
    );

    let mut ops_seen = Vec::new();
    let mut responses = 0;
    let mut documents = 0;
    for block in &blocks {
        let lines: Vec<&str> = block.lines().filter(|l| !l.trim().is_empty()).collect();
        let line_wise = lines
            .iter()
            .all(|l| l.trim().starts_with('{') && l.trim().ends_with('}'));
        if line_wise {
            for line in lines {
                let parsed = Json::parse(line).unwrap_or_else(|e| panic!("{line}: {e}"));
                if parsed.get("op").is_some() {
                    let request =
                        Request::parse_line(line).unwrap_or_else(|e| panic!("{line}: {e}"));
                    if !ops_seen.contains(&request.op()) {
                        ops_seen.push(request.op());
                    }
                } else {
                    assert!(
                        parsed.get("ok").is_some(),
                        "wire line is neither request nor response: {line}"
                    );
                    Response::from_json(&parsed).unwrap_or_else(|e| panic!("{line}: {e}"));
                    responses += 1;
                }
            }
        } else {
            // A multi-line block is one pretty-printed document (the
            // checkpoint-file example).
            Json::parse(block).unwrap_or_else(|e| panic!("block {block:?}: {e}"));
            documents += 1;
        }
    }
    assert!(
        responses >= 8,
        "expected response examples, saw {responses}"
    );
    assert!(documents >= 1, "expected the checkpoint-file document");

    // The spec covers every op the parser accepts — no undocumented surface,
    // no documented fiction.
    for &op in Request::OPS {
        assert!(ops_seen.contains(&op), "PROTOCOL.md has no `{op}` example");
    }
    for op in &ops_seen {
        assert!(Request::OPS.contains(op), "undocumented op `{op}`");
    }
}

#[test]
fn every_error_kind_is_documented() {
    let doc = protocol_md();
    for kind in ErrorKind::ALL {
        assert!(
            doc.contains(&format!("`{}`", kind.as_str())),
            "PROTOCOL.md does not document error kind `{}`",
            kind.as_str()
        );
    }
}

#[test]
fn the_checkpoint_file_example_decodes_with_the_real_codec() {
    let doc = protocol_md();
    let envelope = json_blocks(&doc)
        .into_iter()
        .find_map(|block| {
            let parsed = Json::parse(&block).ok()?;
            matches!(parsed.get("format"), Some(Json::Str(f)) if f == CHECKPOINT_FORMAT)
                .then_some(parsed)
        })
        .expect("PROTOCOL.md has no checkpoint-file example");
    let state = envelope.get("state").expect("envelope has no `state`");
    assert_eq!(
        envelope.get("algo"),
        Some(&Json::Str("avr".into())),
        "the documented example is an AVR checkpoint"
    );
    let checkpoint = mpss_online::AvrCheckpoint::from_json(state)
        .unwrap_or_else(|e| panic!("documented state does not decode: {e}"));
    checkpoint
        .validate()
        .unwrap_or_else(|e| panic!("documented state does not validate: {e}"));
    // And the documented envelope restores through the real daemon path.
    let dir = std::env::temp_dir().join(format!("mpss-protocol-doc-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("cell-b.checkpoint.json"), envelope.render_pretty()).unwrap();
    let mut daemon = mpss_serve::Daemon::new(mpss_serve::DaemonConfig::default());
    let (response, _) =
        daemon.handle_line(&format!(r#"{{"op":"restore","dir":"{}"}}"#, dir.display()));
    assert!(response.is_ok(), "{}", response.render_line());
    assert_eq!(daemon.tenant_count(), 1);
    let _ = std::fs::remove_dir_all(&dir);
}
