//! The wire protocol: newline-delimited JSON requests and responses.
//!
//! One request per line, one response per line, in order. Every request is
//! a JSON object whose `op` field selects the operation; every response is
//! an object with an `ok` boolean — `true` with the reply fields inlined,
//! or `false` with an `error` object carrying a stable machine-readable
//! `kind` and a human-readable `message`. The full schema, with examples
//! that are round-trip-tested verbatim, lives in `PROTOCOL.md` at the repo
//! root.
//!
//! Parsing is intentionally forgiving in exactly one way: unknown fields on
//! a known `op` are ignored, so newer clients can talk to older daemons as
//! long as the fields the old daemon reads keep their meaning. An unknown
//! `op` is an error — silently dropping a request the peer thinks happened
//! would be worse than failing loudly.

use mpss_obs::json::Json;
use mpss_offline::FlowEngine;

/// Which online algorithm a tenant runs.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Algo {
    /// OA(m): replans an optimal schedule on every arrival.
    Oa,
    /// AVR(m): memoryless average-rate speeds.
    Avr,
}

impl Algo {
    /// The wire spelling (`"oa"` / `"avr"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Algo::Oa => "oa",
            Algo::Avr => "avr",
        }
    }

    /// Parses the wire spelling.
    pub fn parse(s: &str) -> Option<Algo> {
        match s {
            "oa" => Some(Algo::Oa),
            "avr" => Some(Algo::Avr),
            _ => None,
        }
    }
}

/// One parsed request line.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Opens a tenant session.
    Open {
        /// Tenant id (`[A-Za-z0-9._-]`, at most 64 chars).
        tenant: String,
        /// The algorithm the tenant runs.
        algo: Algo,
        /// Processor count.
        m: usize,
        /// Initial clock (defaults to `0.0`).
        start: f64,
        /// Max-flow engine for OA replans (`None`: the engine default).
        engine: Option<FlowEngine>,
    },
    /// Announces a job arriving at the tenant's current clock.
    Arrive {
        /// Target tenant.
        tenant: String,
        /// The job's deadline.
        deadline: f64,
        /// The job's work volume.
        volume: f64,
    },
    /// Advances one tenant's clock — or, with `tenant` omitted, every
    /// tenant's (executed in parallel over the daemon's thread pool).
    Advance {
        /// Target tenant (`None`: broadcast to all).
        tenant: Option<String>,
        /// The time to advance to.
        to: f64,
    },
    /// Reports a tenant's current plan: per-processor speeds and per-job
    /// remaining volumes.
    QueryPlan {
        /// Target tenant.
        tenant: String,
    },
    /// Summarizes one tenant (or all of them): clock, job counts, counters,
    /// compaction state.
    Snapshot {
        /// Target tenant (`None`: all tenants).
        tenant: Option<String>,
    },
    /// Writes one versioned checkpoint file per tenant into `dir`.
    Checkpoint {
        /// Target tenant (`None`: all tenants).
        tenant: Option<String>,
        /// Directory to write `<tenant>.checkpoint.json` files into
        /// (created if missing).
        dir: String,
    },
    /// Re-opens tenants from the checkpoint files in `dir`.
    Restore {
        /// Target tenant (`None`: every checkpoint found in `dir`).
        tenant: Option<String>,
        /// Directory holding `<tenant>.checkpoint.json` files.
        dir: String,
    },
    /// Dumps a postmortem bundle (checkpoint + flight recorder + metrics
    /// snapshot) for one tenant, on operator demand rather than on failure.
    DebugDump {
        /// Target tenant.
        tenant: String,
        /// Directory to write the bundle into (`None`: the daemon's
        /// configured `--postmortem-dir`).
        dir: Option<String>,
    },
    /// Acknowledges and stops the daemon loop.
    Shutdown,
}

impl Request {
    /// The request's `op` string (also the metrics label).
    pub fn op(&self) -> &'static str {
        match self {
            Request::Open { .. } => "open",
            Request::Arrive { .. } => "arrive",
            Request::Advance { .. } => "advance",
            Request::QueryPlan { .. } => "query-plan",
            Request::Snapshot { .. } => "snapshot",
            Request::Checkpoint { .. } => "checkpoint",
            Request::Restore { .. } => "restore",
            Request::DebugDump { .. } => "debug-dump",
            Request::Shutdown => "shutdown",
        }
    }

    /// Every `op` the protocol defines, in documentation order. The
    /// PROTOCOL.md round-trip test uses this to prove the spec covers the
    /// whole surface.
    pub const OPS: &'static [&'static str] = &[
        "open",
        "arrive",
        "advance",
        "query-plan",
        "snapshot",
        "checkpoint",
        "restore",
        "debug-dump",
        "shutdown",
    ];

    /// Parses one request line. Errors become `bad-request` responses.
    pub fn parse_line(line: &str) -> Result<Request, String> {
        let doc = Json::parse(line).map_err(|e| format!("not JSON: {e}"))?;
        Request::from_json(&doc)
    }

    /// Parses a request from an already-parsed JSON document.
    pub fn from_json(doc: &Json) -> Result<Request, String> {
        if !matches!(doc, Json::Obj(_)) {
            return Err("request must be a JSON object".into());
        }
        let op = req_str(doc, "op")?;
        match op.as_str() {
            "open" => {
                let engine = match doc.get("engine") {
                    None | Some(Json::Null) => None,
                    Some(Json::Str(name)) => Some(engine_from_str(name)?),
                    Some(other) => return Err(format!("`engine` is not a string: {other:?}")),
                };
                Ok(Request::Open {
                    tenant: req_str(doc, "tenant")?,
                    algo: {
                        let name = req_str(doc, "algo")?;
                        Algo::parse(&name)
                            .ok_or_else(|| format!("unknown algo `{name}` (want oa|avr)"))?
                    },
                    m: req_uint(doc, "m")? as usize,
                    start: opt_num(doc, "start")?.unwrap_or(0.0),
                    engine,
                })
            }
            "arrive" => Ok(Request::Arrive {
                tenant: req_str(doc, "tenant")?,
                deadline: req_num(doc, "deadline")?,
                volume: req_num(doc, "volume")?,
            }),
            "advance" => Ok(Request::Advance {
                tenant: opt_str(doc, "tenant")?,
                to: req_num(doc, "to")?,
            }),
            "query-plan" => Ok(Request::QueryPlan {
                tenant: req_str(doc, "tenant")?,
            }),
            "snapshot" => Ok(Request::Snapshot {
                tenant: opt_str(doc, "tenant")?,
            }),
            "checkpoint" => Ok(Request::Checkpoint {
                tenant: opt_str(doc, "tenant")?,
                dir: req_str(doc, "dir")?,
            }),
            "restore" => Ok(Request::Restore {
                tenant: opt_str(doc, "tenant")?,
                dir: req_str(doc, "dir")?,
            }),
            "debug-dump" => Ok(Request::DebugDump {
                tenant: req_str(doc, "tenant")?,
                dir: opt_str(doc, "dir")?,
            }),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown op `{other}`")),
        }
    }

    /// Renders the request back to its wire document (what a client sends).
    pub fn to_json(&self) -> Json {
        let mut doc = Json::object();
        doc.push("op", Json::from(self.op()));
        match self {
            Request::Open {
                tenant,
                algo,
                m,
                start,
                engine,
            } => {
                doc.push("tenant", Json::from(tenant.as_str()));
                doc.push("algo", Json::from(algo.as_str()));
                doc.push("m", Json::UInt(*m as u64));
                doc.push("start", Json::Num(*start));
                if let Some(engine) = engine {
                    doc.push("engine", Json::from(engine_name(*engine)));
                }
            }
            Request::Arrive {
                tenant,
                deadline,
                volume,
            } => {
                doc.push("tenant", Json::from(tenant.as_str()));
                doc.push("deadline", Json::Num(*deadline));
                doc.push("volume", Json::Num(*volume));
            }
            Request::Advance { tenant, to } => {
                if let Some(tenant) = tenant {
                    doc.push("tenant", Json::from(tenant.as_str()));
                }
                doc.push("to", Json::Num(*to));
            }
            Request::QueryPlan { tenant } => {
                doc.push("tenant", Json::from(tenant.as_str()));
            }
            Request::Snapshot { tenant } => {
                if let Some(tenant) = tenant {
                    doc.push("tenant", Json::from(tenant.as_str()));
                }
            }
            Request::Checkpoint { tenant, dir } | Request::Restore { tenant, dir } => {
                if let Some(tenant) = tenant {
                    doc.push("tenant", Json::from(tenant.as_str()));
                }
                doc.push("dir", Json::from(dir.as_str()));
            }
            Request::DebugDump { tenant, dir } => {
                doc.push("tenant", Json::from(tenant.as_str()));
                if let Some(dir) = dir {
                    doc.push("dir", Json::from(dir.as_str()));
                }
            }
            Request::Shutdown => {}
        }
        doc
    }
}

/// Machine-readable error categories; the `error.kind` field of a failed
/// response carries [`as_str`](ErrorKind::as_str). Stable across versions —
/// clients branch on these, messages are for humans.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ErrorKind {
    /// The line was not a well-formed request.
    BadRequest,
    /// The addressed tenant does not exist.
    UnknownTenant,
    /// `open`/`restore` of a tenant id that is already live.
    DuplicateTenant,
    /// `advance` to a time before a tenant's clock.
    TimeWentBackwards,
    /// The arriving job was rejected by model validation.
    BadJob,
    /// A replan failed (defensive; unreachable for validated jobs).
    Planning,
    /// A checkpoint file was missing, malformed, or version-incompatible.
    BadCheckpoint,
    /// The underlying filesystem said no.
    Io,
    /// The daemon itself failed — a request handler panicked and was caught
    /// by the scoped panic hook. The tenant's state may be inconsistent; a
    /// postmortem bundle is written when a bundle directory is configured.
    Internal,
}

impl ErrorKind {
    /// The wire spelling of the kind.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::BadRequest => "bad-request",
            ErrorKind::UnknownTenant => "unknown-tenant",
            ErrorKind::DuplicateTenant => "duplicate-tenant",
            ErrorKind::TimeWentBackwards => "time-went-backwards",
            ErrorKind::BadJob => "bad-job",
            ErrorKind::Planning => "planning",
            ErrorKind::BadCheckpoint => "bad-checkpoint",
            ErrorKind::Io => "io",
            ErrorKind::Internal => "internal",
        }
    }

    /// Every kind, in documentation order (PROTOCOL.md lists exactly these).
    pub const ALL: &'static [ErrorKind] = &[
        ErrorKind::BadRequest,
        ErrorKind::UnknownTenant,
        ErrorKind::DuplicateTenant,
        ErrorKind::TimeWentBackwards,
        ErrorKind::BadJob,
        ErrorKind::Planning,
        ErrorKind::BadCheckpoint,
        ErrorKind::Io,
        ErrorKind::Internal,
    ];
}

/// One response line: the `{"ok": …}` envelope around either inlined reply
/// fields or an `error` object.
#[derive(Clone, Debug, PartialEq)]
pub struct Response {
    doc: Json,
}

impl Response {
    /// A success response; `body` must be a [`Json`] object, its fields are
    /// inlined after `"ok": true`.
    pub fn ok(body: Json) -> Response {
        let mut doc = Json::object();
        doc.push("ok", Json::Bool(true));
        if let Json::Obj(fields) = body {
            for (key, value) in fields {
                doc.push(&key, value);
            }
        }
        Response { doc }
    }

    /// A failure response with a stable `kind` and a human message.
    pub fn error(kind: ErrorKind, message: impl Into<String>) -> Response {
        let mut err = Json::object();
        err.push("kind", Json::from(kind.as_str()));
        err.push("message", Json::from(message.into()));
        let mut doc = Json::object();
        doc.push("ok", Json::Bool(false));
        doc.push("error", err);
        Response { doc }
    }

    /// Validates the envelope of a received response document: `ok` must be
    /// a boolean, and a failure must carry `error.kind` / `error.message`
    /// strings.
    pub fn from_json(doc: &Json) -> Result<Response, String> {
        match doc.get("ok") {
            Some(Json::Bool(true)) => {}
            Some(Json::Bool(false)) => {
                let err = doc.get("error").ok_or("failed response without `error`")?;
                if !matches!(err.get("kind"), Some(Json::Str(_))) {
                    return Err("error without a string `kind`".into());
                }
                if !matches!(err.get("message"), Some(Json::Str(_))) {
                    return Err("error without a string `message`".into());
                }
            }
            _ => return Err("response without a boolean `ok`".into()),
        }
        Ok(Response { doc: doc.clone() })
    }

    /// Whether the request succeeded.
    pub fn is_ok(&self) -> bool {
        matches!(self.doc.get("ok"), Some(Json::Bool(true)))
    }

    /// The error kind of a failed response.
    pub fn error_kind(&self) -> Option<&str> {
        match self.doc.get("error")?.get("kind") {
            Some(Json::Str(kind)) => Some(kind),
            _ => None,
        }
    }

    /// A reply field by name.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.doc.get(key)
    }

    /// The raw response document.
    pub fn to_json(&self) -> &Json {
        &self.doc
    }

    /// The response as one wire line (compact, no trailing newline).
    pub fn render_line(&self) -> String {
        self.doc.render()
    }
}

/// Wire spelling of a max-flow engine (`"dinic"` / `"push-relabel"`),
/// shared with the checkpoint format.
pub fn engine_name(engine: FlowEngine) -> &'static str {
    mpss_online::OaCheckpoint::name_of(engine)
}

/// Parses the wire spelling of a max-flow engine.
pub fn engine_from_str(name: &str) -> Result<FlowEngine, String> {
    match name {
        "dinic" => Ok(FlowEngine::Dinic),
        "push-relabel" => Ok(FlowEngine::PushRelabel),
        other => Err(format!(
            "unknown engine `{other}` (want dinic|push-relabel)"
        )),
    }
}

fn req_str(doc: &Json, key: &str) -> Result<String, String> {
    match doc.get(key) {
        Some(Json::Str(s)) => Ok(s.clone()),
        Some(other) => Err(format!("`{key}` is not a string: {other:?}")),
        None => Err(format!("missing field `{key}`")),
    }
}

fn opt_str(doc: &Json, key: &str) -> Result<Option<String>, String> {
    match doc.get(key) {
        None | Some(Json::Null) => Ok(None),
        _ => req_str(doc, key).map(Some),
    }
}

fn req_num(doc: &Json, key: &str) -> Result<f64, String> {
    match doc.get(key) {
        Some(Json::Num(x)) => Ok(*x),
        Some(Json::UInt(n)) => Ok(*n as f64),
        Some(other) => Err(format!("`{key}` is not a number: {other:?}")),
        None => Err(format!("missing field `{key}`")),
    }
}

fn opt_num(doc: &Json, key: &str) -> Result<Option<f64>, String> {
    match doc.get(key) {
        None | Some(Json::Null) => Ok(None),
        _ => req_num(doc, key).map(Some),
    }
}

fn req_uint(doc: &Json, key: &str) -> Result<u64, String> {
    match doc.get(key) {
        Some(Json::UInt(n)) => Ok(*n),
        Some(other) => Err(format!("`{key}` is not an unsigned integer: {other:?}")),
        None => Err(format!("missing field `{key}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip_through_their_wire_form() {
        let requests = vec![
            Request::Open {
                tenant: "t-1".into(),
                algo: Algo::Oa,
                m: 4,
                start: 0.5,
                engine: Some(FlowEngine::PushRelabel),
            },
            Request::Arrive {
                tenant: "t-1".into(),
                deadline: 4.0,
                volume: 1.0 / 3.0,
            },
            Request::Advance {
                tenant: None,
                to: 2.0,
            },
            Request::QueryPlan {
                tenant: "t-1".into(),
            },
            Request::Snapshot { tenant: None },
            Request::Checkpoint {
                tenant: Some("t-1".into()),
                dir: "/tmp/ckpt".into(),
            },
            Request::Restore {
                tenant: None,
                dir: "/tmp/ckpt".into(),
            },
            Request::DebugDump {
                tenant: "t-1".into(),
                dir: Some("/tmp/pm".into()),
            },
            Request::DebugDump {
                tenant: "t-1".into(),
                dir: None,
            },
            Request::Shutdown,
        ];
        for request in requests {
            let line = request.to_json().render();
            let back = Request::parse_line(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(back, request, "{line}");
        }
    }

    #[test]
    fn unknown_fields_are_ignored_unknown_ops_are_not() {
        let line = r#"{"op":"snapshot","tenant":"a","future_flag":true}"#;
        assert_eq!(
            Request::parse_line(line).unwrap(),
            Request::Snapshot {
                tenant: Some("a".into())
            }
        );
        assert!(Request::parse_line(r#"{"op":"explode"}"#).is_err());
        assert!(Request::parse_line("[1,2]").is_err());
        assert!(Request::parse_line("not json").is_err());
    }

    #[test]
    fn missing_fields_name_the_field() {
        let err = Request::parse_line(r#"{"op":"arrive","tenant":"a"}"#).unwrap_err();
        assert!(err.contains("deadline"), "{err}");
    }

    #[test]
    fn response_envelope_validates() {
        let mut body = Json::object();
        body.push("job", Json::UInt(3));
        let ok = Response::ok(body);
        assert!(ok.is_ok());
        assert_eq!(ok.get("job"), Some(&Json::UInt(3)));
        let reparsed = Response::from_json(&Json::parse(&ok.render_line()).unwrap()).unwrap();
        assert_eq!(reparsed, ok);

        let err = Response::error(ErrorKind::UnknownTenant, "no tenant `x`");
        assert!(!err.is_ok());
        assert_eq!(err.error_kind(), Some("unknown-tenant"));
        Response::from_json(&Json::parse(&err.render_line()).unwrap()).unwrap();

        assert!(Response::from_json(&Json::parse(r#"{"ok":false}"#).unwrap()).is_err());
        assert!(Response::from_json(&Json::parse(r#"{"no":"ok"}"#).unwrap()).is_err());
    }

    #[test]
    fn ops_constant_matches_the_parser() {
        for &op in Request::OPS {
            // Each documented op is at least recognized (field errors are
            // fine, "unknown op" is not).
            let line = format!(r#"{{"op":"{op}"}}"#);
            match Request::parse_line(&line) {
                Ok(_) => {}
                Err(e) => assert!(!e.contains("unknown op"), "{op}: {e}"),
            }
        }
    }
}
