//! Newline-delimited JSON over `std::net::TcpListener`.
//!
//! Same spirit as the hand-rolled `/metrics` endpoint in
//! `mpss_obs::serve`: the build environment is offline, and the protocol
//! needs almost nothing from a networking stack — accept a connection,
//! loop lines through [`Daemon::serve_io`], close, accept the next.
//!
//! The daemon is intentionally **single-writer**: one connection is served
//! at a time and it holds the daemon exclusively, which is what keeps
//! request ordering (and therefore checkpoint bit-identity) trivial to
//! reason about. A read timeout bounds how long an idle or wedged client
//! can hold that exclusivity; on timeout the connection is dropped and the
//! accept loop moves on with all tenant state intact.

use crate::daemon::Daemon;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// How long one client may sit idle before its connection is recycled.
pub const CLIENT_IDLE_TIMEOUT: Duration = Duration::from_secs(30);

/// Serves connections from `listener` one at a time until a client sends a
/// `shutdown` request. Tenant state survives client disconnects and
/// timeouts; only `shutdown` (or a listener-level error) ends the loop.
pub fn serve_tcp(listener: &TcpListener, daemon: &mut Daemon) -> std::io::Result<()> {
    for stream in listener.incoming() {
        let stream = match stream {
            Ok(stream) => stream,
            Err(_) => continue,
        };
        match serve_connection(stream, daemon) {
            Ok(true) => return Ok(()),
            // Client went away (EOF) or wedged (timeout): keep serving.
            Ok(false) | Err(_) => continue,
        }
    }
    Ok(())
}

fn serve_connection(stream: TcpStream, daemon: &mut Daemon) -> std::io::Result<bool> {
    stream.set_read_timeout(Some(CLIENT_IDLE_TIMEOUT))?;
    stream.set_write_timeout(Some(CLIENT_IDLE_TIMEOUT))?;
    let reader = BufReader::new(stream.try_clone()?);
    daemon.serve_io(reader, stream)
}

/// A line-oriented protocol client, for tests and scripting: connect once,
/// then [`send`](Client::send) request lines and get response lines back.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a serving daemon.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let writer = TcpStream::connect(addr)?;
        writer.set_read_timeout(Some(CLIENT_IDLE_TIMEOUT))?;
        writer.set_write_timeout(Some(CLIENT_IDLE_TIMEOUT))?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client { reader, writer })
    }

    /// Sends one request line and reads the matching response line.
    pub fn send(&mut self, line: &str) -> std::io::Result<String> {
        self.writer.write_all(line.trim_end().as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "daemon closed the connection",
            ));
        }
        Ok(response.trim_end().to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::daemon::DaemonConfig;

    #[test]
    fn tcp_round_trip_and_shutdown() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let server = std::thread::spawn(move || {
            let mut daemon = Daemon::new(DaemonConfig::default());
            serve_tcp(&listener, &mut daemon).expect("serve");
            daemon.tenant_count()
        });

        let mut client = Client::connect(addr).expect("connect");
        let opened = client
            .send(r#"{"op":"open","tenant":"t0","algo":"oa","m":2}"#)
            .expect("open");
        assert!(opened.contains(r#""ok":true"#), "{opened}");
        let arrived = client
            .send(r#"{"op":"arrive","tenant":"t0","deadline":3,"volume":2}"#)
            .expect("arrive");
        assert!(arrived.contains(r#""job":0"#), "{arrived}");
        drop(client);

        // A second connection sees the same tenants: state outlives clients.
        let mut client = Client::connect(addr).expect("reconnect");
        let snap = client.send(r#"{"op":"snapshot"}"#).expect("snapshot");
        assert!(snap.contains(r#""tenant":"t0""#), "{snap}");
        let bye = client.send(r#"{"op":"shutdown"}"#).expect("shutdown");
        assert!(bye.contains(r#""ok":true"#), "{bye}");

        assert_eq!(server.join().expect("join"), 1);
    }
}
