//! `mpss-serve`: a multi-tenant scheduling daemon for the online
//! speed-scaling algorithms of Albers, Antoniadis & Greiner.
//!
//! One daemon process hosts many independent tenants, each a live
//! [`OaSession`](mpss_online::OaSession) (Online Algorithm, the
//! flow-replanning optimal-prefix scheduler) or
//! [`AvrSession`](mpss_online::AvrSession) (Average Rate). Clients speak a
//! newline-delimited JSON protocol — one request object per line, one
//! response object per line — over stdin/stdout or a plain TCP socket; the
//! wire format is specified in `PROTOCOL.md` at the repository root, and
//! every example in that document is parse-tested verbatim.
//!
//! The three design points, in order of importance:
//!
//! 1. **Exact checkpoint/restore.** `checkpoint` freezes every tenant to a
//!    versioned JSON file; `restore` brings a fresh daemon back
//!    *bit-identically* — replaying the remaining request stream produces
//!    the same schedules, speeds, and counters the uninterrupted daemon
//!    would have produced. This leans on the workspace's shortest-repr
//!    `f64` JSON ([`mpss_obs::json`]) and on serializing the *active plan*
//!    rather than recomputing it.
//! 2. **Bounded memory.** With a compaction window configured, executed
//!    history older than `now - window` is folded into conserved-work
//!    tallies behind a monotone watermark, so arbitrarily long arrival
//!    streams run in bounded space — and the watermark rides along in
//!    checkpoints so both properties compose.
//! 3. **Observability.** Every tenant publishes `{algo, tenant}`-labeled
//!    session metrics into one shared [`MetricsHub`](mpss_obs::MetricsHub),
//!    plus daemon-level request/error/latency families, scrapeable live
//!    via `mpss_obs::MetricsServer`. On top of that sits an always-on
//!    black box — structured NDJSON logging, per-tenant flight recorders,
//!    and atomic [postmortem bundles](postmortem) on errors, panics, and
//!    slow replans — cheap enough to leave on in production (<1% of soak
//!    wall time, gated in CI).
//!
//! # Example
//!
//! The daemon core is plain `BufRead` → `Write`, so it can be driven
//! entirely in memory:
//!
//! ```
//! use mpss_serve::{Daemon, DaemonConfig};
//!
//! let mut daemon = Daemon::new(DaemonConfig::default());
//! let requests = concat!(
//!     r#"{"op":"open","tenant":"cell-a","algo":"oa","m":2}"#, "\n",
//!     r#"{"op":"arrive","tenant":"cell-a","deadline":4,"volume":3}"#, "\n",
//!     r#"{"op":"advance","to":1}"#, "\n",
//!     r#"{"op":"query-plan","tenant":"cell-a"}"#, "\n",
//! );
//! let mut responses = Vec::new();
//! let shutdown = daemon.serve_io(requests.as_bytes(), &mut responses).unwrap();
//! assert!(!shutdown); // EOF, not a shutdown request
//! let text = String::from_utf8(responses).unwrap();
//! assert_eq!(text.lines().count(), 4);
//! assert!(text.lines().all(|line| line.contains(r#""ok":true"#)));
//! ```
//!
//! For TCP serving see [`serve_tcp`]; for the command-line entry point see
//! `mpss-cli serve`.

pub mod daemon;
pub mod net;
pub mod postmortem;
pub mod protocol;

pub use daemon::{
    validate_tenant_id, Daemon, DaemonConfig, CHECKPOINT_FILE_VERSION, CHECKPOINT_FORMAT,
    MAX_AUTO_BUNDLES,
};
pub use net::{serve_tcp, Client};
pub use postmortem::{
    find_bundles, read_manifest, write_bundle, BundleContents, BundleReason, BUNDLE_FORMAT,
    BUNDLE_VERSION,
};
pub use protocol::{Algo, ErrorKind, Request, Response};
