//! Postmortem bundles: one directory per incident, written atomically.
//!
//! When a tenant misbehaves — a serious protocol error, a caught panic, a
//! replan over the slow threshold, or an operator `debug-dump` — the daemon
//! freezes the evidence into a bundle directory:
//!
//! * `manifest.json` — what happened: tenant, trigger reason, offending op,
//!   error kind/message, the replan summary that tripped the threshold, and
//!   the tenant's plan at dump time (the replay target for
//!   `mpss-cli postmortem`);
//! * `<tenant>.checkpoint.json` — the tenant's full checkpoint in the exact
//!   daemon envelope, so a `restore` pointed at the bundle directory
//!   resurrects the session bit-identically;
//! * `flight.json` — the tenant's and the daemon's flight-recorder rings;
//! * `logs.ndjson` — the tail of the daemon's structured log ring;
//! * `metrics.prom` — a full Prometheus snapshot of the hub;
//! * `replan.trace.json` — the Chrome trace of the offending replan, when
//!   one was armed (slow-replan exemplar capture).
//!
//! Bundles share the checkpoint discipline: everything is staged in a
//! dot-prefixed temp directory and `rename`d into place, so a kill mid-dump
//! never leaves a half-written bundle where [`find_bundles`] would see it.

use mpss_obs::json::Json;
use std::io;
use std::path::{Path, PathBuf};

/// The bundle manifest's `format` marker.
pub const BUNDLE_FORMAT: &str = "mpss-serve/postmortem";
/// The bundle manifest version. Bump on breaking layout changes.
pub const BUNDLE_VERSION: u64 = 1;

/// What triggered a bundle.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum BundleReason {
    /// A request failed with a serious error kind (`planning`,
    /// `bad-checkpoint`, `internal`).
    ProtocolError,
    /// A replan's latency exceeded the configured `--slow-replan-ms`.
    SlowReplan,
    /// A request handler panicked and the scoped hook caught it.
    Panic,
    /// An operator asked via the `debug-dump` op.
    DebugDump,
}

impl BundleReason {
    /// The stable spelling used in manifests, metrics labels, and bundle
    /// directory names.
    pub fn as_str(self) -> &'static str {
        match self {
            BundleReason::ProtocolError => "protocol-error",
            BundleReason::SlowReplan => "slow-replan",
            BundleReason::Panic => "panic",
            BundleReason::DebugDump => "debug-dump",
        }
    }
}

/// Everything a bundle freezes. The daemon assembles this; [`write_bundle`]
/// only does filesystem work.
pub struct BundleContents {
    /// The tenant the incident belongs to.
    pub tenant: String,
    /// What triggered the dump.
    pub reason: BundleReason,
    /// The op of the request being handled when the trigger fired.
    pub op: String,
    /// The failed response's `(kind, message)`, if the trigger was an error.
    pub error: Option<(String, String)>,
    /// The replan summary that tripped the slow threshold, as JSON.
    pub replan: Option<Json>,
    /// The tenant's `query-plan` document at dump time — the replay target.
    pub plan: Json,
    /// The tenant's checkpoint in the daemon envelope (pretty-rendered).
    pub checkpoint: String,
    /// `{tenant: <ring dump | null>, daemon: <ring dump>}`.
    pub flight: Json,
    /// The daemon log ring's retained NDJSON lines.
    pub log_lines: Vec<String>,
    /// Full Prometheus exposition of the hub.
    pub metrics: String,
    /// Chrome trace of the offending replan (slow-replan capture).
    pub trace: Option<Json>,
}

impl BundleContents {
    fn manifest(&self) -> Json {
        let mut doc = Json::object();
        doc.push("format", Json::from(BUNDLE_FORMAT));
        doc.push("version", Json::UInt(BUNDLE_VERSION));
        doc.push("tenant", Json::from(self.tenant.as_str()));
        doc.push("reason", Json::from(self.reason.as_str()));
        doc.push("op", Json::from(self.op.as_str()));
        match &self.error {
            Some((kind, message)) => {
                let mut err = Json::object();
                err.push("kind", Json::from(kind.as_str()));
                err.push("message", Json::from(message.as_str()));
                doc.push("error", err);
            }
            None => {
                doc.push("error", Json::Null);
            }
        }
        doc.push("replan", self.replan.clone().unwrap_or(Json::Null));
        doc.push("plan", self.plan.clone());
        doc
    }
}

/// Writes `contents` as the bundle directory `dir/<name>`, atomically:
/// everything is staged under `dir/.<name>.tmp` and renamed into place.
/// Returns the final bundle path. Fails with [`io::ErrorKind::AlreadyExists`]
/// semantics (from the rename) if the bundle already exists.
pub fn write_bundle(dir: &Path, name: &str, contents: &BundleContents) -> io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let staged = dir.join(format!(".{name}.tmp"));
    let target = dir.join(name);
    if target.exists() {
        return Err(io::Error::new(
            io::ErrorKind::AlreadyExists,
            format!("bundle {} already exists", target.display()),
        ));
    }
    // A stale temp directory from a killed dump is garbage: reclaim it.
    let _ = std::fs::remove_dir_all(&staged);
    std::fs::create_dir_all(&staged)?;
    std::fs::write(
        staged.join("manifest.json"),
        contents.manifest().render_pretty(),
    )?;
    std::fs::write(
        staged.join(format!("{}.checkpoint.json", contents.tenant)),
        &contents.checkpoint,
    )?;
    std::fs::write(staged.join("flight.json"), contents.flight.render_pretty())?;
    let mut log_text = contents.log_lines.join("\n");
    if !log_text.is_empty() {
        log_text.push('\n');
    }
    std::fs::write(staged.join("logs.ndjson"), log_text)?;
    std::fs::write(staged.join("metrics.prom"), &contents.metrics)?;
    if let Some(trace) = &contents.trace {
        std::fs::write(staged.join("replan.trace.json"), trace.render_pretty())?;
    }
    std::fs::rename(&staged, &target)?;
    Ok(target)
}

/// Completed bundles under `dir`, sorted: subdirectories holding a
/// `manifest.json`, skipping dot-prefixed names (staging directories are
/// never visible here — that is the atomicity contract).
pub fn find_bundles(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut bundles: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|entry| entry.ok())
        .map(|entry| entry.path())
        .filter(|path| {
            path.is_dir()
                && path
                    .file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| !n.starts_with('.'))
                && path.join("manifest.json").is_file()
        })
        .collect();
    bundles.sort();
    Ok(bundles)
}

/// Reads and validates a bundle's manifest.
pub fn read_manifest(bundle: &Path) -> Result<Json, String> {
    let path = bundle.join("manifest.json");
    let text = std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
    let doc = Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    match doc.get("format") {
        Some(Json::Str(format)) if format == BUNDLE_FORMAT => {}
        other => return Err(format!("not a {BUNDLE_FORMAT} manifest: {other:?}")),
    }
    match doc.get("version") {
        Some(Json::UInt(v)) if *v == BUNDLE_VERSION => {}
        other => {
            return Err(format!(
                "unsupported bundle version {other:?} (this build reads {BUNDLE_VERSION})"
            ))
        }
    }
    if !matches!(doc.get("tenant"), Some(Json::Str(_))) {
        return Err("manifest without a string `tenant`".into());
    }
    Ok(doc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mpss-pm-test-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn contents() -> BundleContents {
        BundleContents {
            tenant: "t0".into(),
            reason: BundleReason::DebugDump,
            op: "debug-dump".into(),
            error: None,
            replan: None,
            plan: Json::object(),
            checkpoint: "{}\n".into(),
            flight: Json::object(),
            log_lines: vec!["{\"msg\":\"hi\"}".into()],
            metrics: String::new(),
            trace: None,
        }
    }

    #[test]
    fn bundles_round_trip_and_list() {
        let dir = tmp("roundtrip");
        let path = write_bundle(&dir, "t0-debug-dump-0000", &contents()).unwrap();
        assert!(path.join("manifest.json").is_file());
        assert!(path.join("t0.checkpoint.json").is_file());
        assert!(path.join("flight.json").is_file());
        assert!(path.join("logs.ndjson").is_file());
        assert!(path.join("metrics.prom").is_file());
        let manifest = read_manifest(&path).unwrap();
        assert_eq!(manifest.get("tenant"), Some(&Json::from("t0")));
        assert_eq!(manifest.get("reason"), Some(&Json::from("debug-dump")));
        assert_eq!(find_bundles(&dir).unwrap(), vec![path.clone()]);
        // Writing the same bundle name again fails loudly.
        assert!(write_bundle(&dir, "t0-debug-dump-0000", &contents()).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn staging_directories_are_invisible() {
        let dir = tmp("staging");
        // Simulate a dump killed mid-write: the staged directory exists,
        // with a manifest inside, but was never renamed.
        let staged = dir.join(".t0-panic-0000.tmp");
        std::fs::create_dir_all(&staged).unwrap();
        std::fs::write(staged.join("manifest.json"), "{}").unwrap();
        assert!(find_bundles(&dir).unwrap().is_empty());
        // A later successful dump reclaims the stale staging dir.
        let path = write_bundle(&dir, "t0-panic-0000", &contents()).unwrap();
        assert_eq!(find_bundles(&dir).unwrap(), vec![path]);
        assert!(!staged.exists(), "stale staging dir must be reclaimed");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn read_manifest_rejects_foreign_documents() {
        let dir = tmp("foreign");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("manifest.json"), r#"{"format":"other"}"#).unwrap();
        assert!(read_manifest(&dir).is_err());
        std::fs::write(
            dir.join("manifest.json"),
            format!(r#"{{"format":"{BUNDLE_FORMAT}","version":99,"tenant":"t"}}"#),
        )
        .unwrap();
        assert!(read_manifest(&dir).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
