//! The multi-tenant daemon: request dispatch, checkpointing, compaction.
//!
//! A [`Daemon`] owns a map of named tenants, each an independent
//! [`OaSession`] or [`AvrSession`], plus one shared [`MetricsHub`] (every
//! tenant publishes `{algo, tenant}`-labeled session series into it) and an
//! `mpss-par` [`ThreadPool`] that broadcast `advance` requests fan out
//! over. The daemon itself is synchronous and single-writer: requests are
//! handled strictly in arrival order, which is what makes the
//! checkpoint/restore story exact — there is never a half-applied request
//! to freeze.
//!
//! # Checkpoints
//!
//! [`Request::Checkpoint`] writes one `<tenant>.checkpoint.json` per tenant
//! (atomically: temp file + rename) wrapping the session's versioned
//! checkpoint from [`mpss_online::checkpoint`] in a
//! `{"format": "mpss-serve/checkpoint", …}` envelope.
//! [`Request::Restore`] re-opens tenants from those files bit-identically:
//! a daemon killed between two requests and restored from its last
//! checkpoint replays the remaining requests to exactly the schedules and
//! counters the uninterrupted daemon would have produced.
//!
//! # Compaction
//!
//! With [`DaemonConfig::compact_window`] set, every advance to time `t`
//! compacts each advanced tenant's executed history up to `t - window`,
//! bounding daemon memory on long streams. The compaction watermark and
//! dropped-work tallies ride along in checkpoints, so bounded memory and
//! exact restore compose.

use crate::protocol::{engine_name, Algo, ErrorKind, Request, Response};
use mpss_obs::json::Json;
use mpss_obs::MetricsHub;
use mpss_online::{
    AvrCheckpoint, AvrSession, OaCheckpoint, OaSession, SessionError, SessionMetrics,
};
use mpss_par::ThreadPool;
use std::collections::BTreeMap;
use std::io::{BufRead, Write};
use std::path::{Path, PathBuf};

/// The checkpoint-file envelope's `format` marker.
pub const CHECKPOINT_FORMAT: &str = "mpss-serve/checkpoint";
/// The checkpoint-file envelope version. Rejected on mismatch; the inner
/// session state carries its own [`mpss_online::CHECKPOINT_VERSION`].
pub const CHECKPOINT_FILE_VERSION: u64 = 1;

/// Daemon construction knobs.
#[derive(Clone, Debug, Default)]
pub struct DaemonConfig {
    /// Sliding history window: after advancing to `t`, executed history
    /// before `t - window` is compacted away. `None`: keep everything.
    pub compact_window: Option<f64>,
    /// Worker threads for broadcast advances (`None`: the `MPSS_THREADS` /
    /// hardware default of [`ThreadPool::with_threads`]).
    pub threads: Option<usize>,
}

/// One tenant's live session.
// Sessions live once per tenant in the map and are only moved on
// open/restore, so the OA variant's inline size buys locality, not waste.
#[allow(clippy::large_enum_variant)]
enum Session {
    Oa(OaSession),
    Avr(AvrSession),
}

impl Session {
    fn algo(&self) -> Algo {
        match self {
            Session::Oa(_) => Algo::Oa,
            Session::Avr(_) => Algo::Avr,
        }
    }

    fn now(&self) -> f64 {
        match self {
            Session::Oa(s) => s.now(),
            Session::Avr(s) => s.now(),
        }
    }

    fn job_count(&self) -> usize {
        match self {
            Session::Oa(s) => s.job_count(),
            Session::Avr(s) => s.job_count(),
        }
    }

    fn arrive(&mut self, deadline: f64, volume: f64) -> Result<usize, (ErrorKind, String)> {
        match self {
            Session::Oa(s) => s.arrive(deadline, volume).map_err(session_error),
            Session::Avr(s) => s
                .arrive(deadline, volume)
                .map_err(|e| (ErrorKind::BadJob, format!("bad job: {e}"))),
        }
    }

    /// Advance plus windowed compaction. The caller has already checked
    /// `to >= now`, so errors here are defensive.
    fn advance_to(&mut self, to: f64, compact_window: Option<f64>) -> Result<(), String> {
        match self {
            Session::Oa(s) => s.advance_to(to).map_err(|e| e.to_string())?,
            Session::Avr(s) => s.advance_to(to).map_err(|e| e.to_string())?,
        }
        if let Some(window) = compact_window {
            let watermark = to - window;
            match self {
                Session::Oa(s) => s.compact_history(watermark),
                Session::Avr(s) => s.compact_history(watermark),
            };
        }
        Ok(())
    }

    fn attach_metrics(&mut self, hub: &MetricsHub, tenant: &str) {
        let (algo, m) = (self.algo().as_str(), self.m());
        let metrics = SessionMetrics::register_tenant(hub, algo, tenant, m);
        match self {
            Session::Oa(s) => s.attach_metrics(metrics),
            Session::Avr(s) => s.attach_metrics(metrics),
        }
    }

    fn m(&self) -> usize {
        match self {
            Session::Oa(s) => s.m(),
            Session::Avr(s) => s.m(),
        }
    }

    fn state_json(&self) -> Json {
        match self {
            Session::Oa(s) => s.checkpoint().to_json(),
            Session::Avr(s) => s.checkpoint().to_json(),
        }
    }

    fn snapshot_json(&self, tenant: &str) -> Json {
        let mut doc = Json::object();
        doc.push("tenant", Json::from(tenant));
        doc.push("algo", Json::from(self.algo().as_str()));
        doc.push("m", Json::UInt(self.m() as u64));
        doc.push("now", Json::Num(self.now()));
        doc.push("jobs", Json::UInt(self.job_count() as u64));
        match self {
            Session::Oa(s) => {
                doc.push("replans", Json::UInt(s.replans() as u64));
                doc.push(
                    "flow_computations",
                    Json::UInt(s.flow_computations() as u64),
                );
                doc.push("engine", Json::from(engine_name(s.engine())));
                doc.push(
                    "executed_segments",
                    Json::UInt(s.executed().segments.len() as u64),
                );
                doc.push(
                    "compacted_segments",
                    Json::UInt(s.compacted_segments() as u64),
                );
                doc.push("compacted_work", Json::Num(s.compacted_work()));
                doc.push(
                    "compaction_watermark",
                    s.compaction_watermark().map_or(Json::Null, Json::Num),
                );
            }
            Session::Avr(s) => {
                doc.push(
                    "executed_segments",
                    Json::UInt(s.executed().segments.len() as u64),
                );
                doc.push(
                    "compacted_segments",
                    Json::UInt(s.compacted_segments() as u64),
                );
                doc.push("compacted_work", Json::Num(s.compacted_work()));
                doc.push(
                    "compaction_watermark",
                    s.compaction_watermark().map_or(Json::Null, Json::Num),
                );
            }
        }
        doc
    }

    fn plan_json(&self, tenant: &str) -> Json {
        let mut doc = Json::object();
        doc.push("tenant", Json::from(tenant));
        doc.push("algo", Json::from(self.algo().as_str()));
        doc.push("now", Json::Num(self.now()));
        let speeds = match self {
            Session::Oa(s) => s.current_speeds(),
            Session::Avr(s) => s.current_speeds(),
        };
        doc.push(
            "speeds",
            Json::Arr(speeds.into_iter().map(Json::Num).collect()),
        );
        let jobs = (0..self.job_count())
            .map(|k| {
                let mut job = Json::object();
                job.push("id", Json::UInt(k as u64));
                match self {
                    Session::Oa(s) => {
                        job.push(
                            "remaining",
                            s.remaining_volume(k).map_or(Json::Null, Json::Num),
                        );
                        job.push("speed", s.planned_speed(k).map_or(Json::Null, Json::Num));
                    }
                    Session::Avr(_) => {
                        job.push("remaining", Json::Null);
                        job.push("speed", Json::Null);
                    }
                }
                job
            })
            .collect();
        doc.push("jobs", Json::Arr(jobs));
        doc
    }
}

fn session_error(e: SessionError) -> (ErrorKind, String) {
    let kind = match &e {
        SessionError::TimeWentBackwards { .. } => ErrorKind::TimeWentBackwards,
        SessionError::LateArrival { .. } | SessionError::BadJob(_) => ErrorKind::BadJob,
        SessionError::Planning(_) => ErrorKind::Planning,
        SessionError::Checkpoint(_) => ErrorKind::BadCheckpoint,
    };
    (kind, e.to_string())
}

/// The daemon: a map of tenants plus the shared hub and pool. See the
/// module docs for the execution model.
pub struct Daemon {
    tenants: BTreeMap<String, Session>,
    hub: MetricsHub,
    pool: ThreadPool,
    config: DaemonConfig,
}

impl Daemon {
    /// A daemon with no tenants.
    pub fn new(config: DaemonConfig) -> Daemon {
        let pool = ThreadPool::with_threads(config.threads);
        Daemon {
            tenants: BTreeMap::new(),
            hub: MetricsHub::new(),
            pool,
            config,
        }
    }

    /// The shared metrics hub (expose it with
    /// [`MetricsServer::bind`](mpss_obs::MetricsServer::bind) for live
    /// scraping).
    pub fn hub(&self) -> &MetricsHub {
        &self.hub
    }

    /// Live tenant count.
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// Live tenant ids, sorted.
    pub fn tenant_names(&self) -> Vec<String> {
        self.tenants.keys().cloned().collect()
    }

    /// Serves newline-delimited requests from `input`, writing one response
    /// line per request to `output`, until EOF or a `shutdown` request.
    /// Returns `true` if a `shutdown` was served (the caller should stop
    /// re-entering), `false` on EOF.
    pub fn serve_io(
        &mut self,
        input: impl BufRead,
        mut output: impl Write,
    ) -> std::io::Result<bool> {
        for line in input.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let (response, shutdown) = self.handle_line(&line);
            output.write_all(response.render_line().as_bytes())?;
            output.write_all(b"\n")?;
            output.flush()?;
            if shutdown {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Parses and handles one request line; the boolean reports whether it
    /// was an (acknowledged) shutdown.
    pub fn handle_line(&mut self, line: &str) -> (Response, bool) {
        match Request::parse_line(line) {
            Ok(request) => {
                let shutdown = matches!(request, Request::Shutdown);
                (self.handle(&request), shutdown)
            }
            Err(message) => (self.fail("parse", ErrorKind::BadRequest, message), false),
        }
    }

    /// Handles one request and produces its response.
    pub fn handle(&mut self, request: &Request) -> Response {
        let op = request.op();
        self.hub
            .counter(
                "mpss_serve_requests_total",
                "requests handled, by op",
                &[("op", op)],
            )
            .inc();
        let response = match request {
            Request::Open {
                tenant,
                algo,
                m,
                start,
                engine,
            } => self.open(tenant, *algo, *m, *start, *engine),
            Request::Arrive {
                tenant,
                deadline,
                volume,
            } => self.arrive(tenant, *deadline, *volume),
            Request::Advance { tenant, to } => self.advance(tenant.as_deref(), *to),
            Request::QueryPlan { tenant } => self.query_plan(tenant),
            Request::Snapshot { tenant } => self.snapshot(tenant.as_deref()),
            Request::Checkpoint { tenant, dir } => self.checkpoint(tenant.as_deref(), dir),
            Request::Restore { tenant, dir } => self.restore(tenant.as_deref(), dir),
            Request::Shutdown => Response::ok(Json::object()),
        };
        self.hub
            .gauge("mpss_serve_tenants", "live tenant sessions", &[])
            .set(self.tenants.len() as f64);
        response
    }

    fn fail(&self, op: &str, kind: ErrorKind, message: impl Into<String>) -> Response {
        let _ = op;
        self.hub
            .counter(
                "mpss_serve_errors_total",
                "failed requests, by error kind",
                &[("kind", kind.as_str())],
            )
            .inc();
        Response::error(kind, message)
    }

    fn open(
        &mut self,
        tenant: &str,
        algo: Algo,
        m: usize,
        start: f64,
        engine: Option<mpss_offline::FlowEngine>,
    ) -> Response {
        if let Err(message) = validate_tenant_id(tenant) {
            return self.fail("open", ErrorKind::BadRequest, message);
        }
        if m == 0 {
            return self.fail("open", ErrorKind::BadRequest, "`m` must be at least 1");
        }
        if !start.is_finite() {
            return self.fail("open", ErrorKind::BadRequest, "`start` must be finite");
        }
        if self.tenants.contains_key(tenant) {
            return self.fail(
                "open",
                ErrorKind::DuplicateTenant,
                format!("tenant `{tenant}` is already open"),
            );
        }
        let mut session = match algo {
            Algo::Oa => Session::Oa(OaSession::with_engine(m, start, engine.unwrap_or_default())),
            Algo::Avr => Session::Avr(AvrSession::new(m, start)),
        };
        session.attach_metrics(&self.hub, tenant);
        self.tenants.insert(tenant.to_string(), session);
        let mut body = Json::object();
        body.push("tenant", Json::from(tenant));
        Response::ok(body)
    }

    fn arrive(&mut self, tenant: &str, deadline: f64, volume: f64) -> Response {
        let Some(session) = self.tenants.get_mut(tenant) else {
            return unknown_tenant(self, tenant);
        };
        match session.arrive(deadline, volume) {
            Ok(job) => {
                // Soak runs watch this grow with the per-arrival delta, not
                // with the tenant's live-job count (the incremental-replan
                // contract; AVR tenants have no replan network to patch).
                if let Session::Oa(s) = session {
                    self.hub
                        .gauge(
                            "mpss_serve_replan_patched_arcs",
                            "cumulative network arcs patched by incremental replans",
                            &[("tenant", tenant)],
                        )
                        .set(s.incremental_stats().patched_arcs as f64);
                }
                let mut body = Json::object();
                body.push("tenant", Json::from(tenant));
                body.push("job", Json::UInt(job as u64));
                Response::ok(body)
            }
            Err((kind, message)) => self.fail("arrive", kind, message),
        }
    }

    fn advance(&mut self, tenant: Option<&str>, to: f64) -> Response {
        if !to.is_finite() {
            return self.fail("advance", ErrorKind::BadRequest, "`to` must be finite");
        }
        let targets: Vec<&String> = match tenant {
            Some(name) => match self.tenants.get_key_value(name) {
                Some((key, _)) => vec![key],
                None => return unknown_tenant(self, name),
            },
            None => self.tenants.keys().collect(),
        };
        // Atomicity: reject before moving anyone's clock, so a failed
        // broadcast leaves every tenant exactly where it was.
        for name in &targets {
            let now = self.tenants[*name].now();
            if now > to {
                return self.fail(
                    "advance",
                    ErrorKind::TimeWentBackwards,
                    format!("tenant `{name}` is already at {now}, cannot go back to {to}"),
                );
            }
        }
        let advanced = match tenant {
            Some(name) => {
                let session = self.tenants.get_mut(name).expect("checked above");
                if let Err(message) = session.advance_to(to, self.config.compact_window) {
                    return self.fail("advance", ErrorKind::Planning, message);
                }
                1
            }
            None => {
                // Fan every tenant out over the pool; sessions move into the
                // workers and come back in submission (= sorted-name) order.
                let window = self.config.compact_window;
                let entries: Vec<(String, Session)> =
                    std::mem::take(&mut self.tenants).into_iter().collect();
                let count = entries.len();
                let done = self.pool.scope_map(entries, |(name, mut session)| {
                    let result = session.advance_to(to, window);
                    (name, session, result)
                });
                let mut first_error = None;
                for (name, session, result) in done {
                    if let (Err(message), None) = (&result, &first_error) {
                        first_error = Some(format!("tenant `{name}`: {message}"));
                    }
                    self.tenants.insert(name, session);
                }
                if let Some(message) = first_error {
                    return self.fail("advance", ErrorKind::Planning, message);
                }
                count
            }
        };
        let mut body = Json::object();
        body.push("now", Json::Num(to));
        body.push("advanced", Json::UInt(advanced as u64));
        Response::ok(body)
    }

    fn query_plan(&self, tenant: &str) -> Response {
        match self.tenants.get(tenant) {
            Some(session) => Response::ok(session.plan_json(tenant)),
            None => unknown_tenant(self, tenant),
        }
    }

    fn snapshot(&self, tenant: Option<&str>) -> Response {
        let mut rows = Vec::new();
        match tenant {
            Some(name) => match self.tenants.get(name) {
                Some(session) => rows.push(session.snapshot_json(name)),
                None => return unknown_tenant(self, name),
            },
            None => {
                for (name, session) in &self.tenants {
                    rows.push(session.snapshot_json(name));
                }
            }
        }
        let mut body = Json::object();
        body.push("tenants", Json::Arr(rows));
        Response::ok(body)
    }

    fn checkpoint(&mut self, tenant: Option<&str>, dir: &str) -> Response {
        let started = std::time::Instant::now();
        let targets: Vec<String> = match tenant {
            Some(name) => {
                if !self.tenants.contains_key(name) {
                    return unknown_tenant(self, name);
                }
                vec![name.to_string()]
            }
            None => self.tenants.keys().cloned().collect(),
        };
        if let Err(e) = std::fs::create_dir_all(dir) {
            return self.fail("checkpoint", ErrorKind::Io, format!("creating {dir}: {e}"));
        }
        for name in &targets {
            let session = &self.tenants[name];
            let mut envelope = Json::object();
            envelope.push("format", Json::from(CHECKPOINT_FORMAT));
            envelope.push("version", Json::UInt(CHECKPOINT_FILE_VERSION));
            envelope.push("tenant", Json::from(name.as_str()));
            envelope.push("algo", Json::from(session.algo().as_str()));
            envelope.push("state", session.state_json());
            if let Err(e) = write_atomically(&checkpoint_path(dir, name), &envelope.render_pretty())
            {
                return self.fail("checkpoint", ErrorKind::Io, format!("writing {name}: {e}"));
            }
        }
        self.hub
            .histogram(
                "mpss_serve_checkpoint_seconds",
                "wall-clock latency of one checkpoint request",
                &[],
            )
            .observe(started.elapsed().as_secs_f64());
        let mut body = Json::object();
        body.push("dir", Json::from(dir));
        body.push(
            "written",
            Json::Arr(targets.iter().map(|n| Json::from(n.as_str())).collect()),
        );
        Response::ok(body)
    }

    fn restore(&mut self, tenant: Option<&str>, dir: &str) -> Response {
        let paths: Vec<PathBuf> = match tenant {
            Some(name) => {
                if let Err(message) = validate_tenant_id(name) {
                    return self.fail("restore", ErrorKind::BadRequest, message);
                }
                vec![checkpoint_path(dir, name)]
            }
            None => match checkpoint_files(dir) {
                Ok(paths) => paths,
                Err(e) => {
                    return self.fail("restore", ErrorKind::Io, format!("reading {dir}: {e}"))
                }
            },
        };
        // Two passes: parse and validate everything first, then commit, so
        // a bad file cannot leave a half-restored daemon.
        let mut restored = Vec::new();
        for path in &paths {
            match self.read_checkpoint(path) {
                Ok((name, session)) => restored.push((name, session)),
                Err(response) => return response,
            }
        }
        let mut names = Vec::new();
        for (name, mut session) in restored {
            session.attach_metrics(&self.hub, &name);
            names.push(Json::from(name.as_str()));
            self.tenants.insert(name, session);
        }
        let mut body = Json::object();
        body.push("dir", Json::from(dir));
        body.push("restored", Json::Arr(names));
        Response::ok(body)
    }

    fn read_checkpoint(&self, path: &Path) -> Result<(String, Session), Response> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| self.fail("restore", ErrorKind::Io, format!("{}: {e}", path.display())))?;
        let doc = Json::parse(&text).map_err(|e| {
            self.fail(
                "restore",
                ErrorKind::BadCheckpoint,
                format!("{}: {e}", path.display()),
            )
        })?;
        let bad = |message: String| self.fail("restore", ErrorKind::BadCheckpoint, message);
        match doc.get("format") {
            Some(Json::Str(format)) if format == CHECKPOINT_FORMAT => {}
            other => return Err(bad(format!("not a {CHECKPOINT_FORMAT} file: {other:?}"))),
        }
        match doc.get("version") {
            Some(Json::UInt(v)) if *v == CHECKPOINT_FILE_VERSION => {}
            other => {
                return Err(bad(format!(
                    "unsupported envelope version {other:?} (this build reads {CHECKPOINT_FILE_VERSION})"
                )))
            }
        }
        let name = match doc.get("tenant") {
            Some(Json::Str(name)) => name.clone(),
            other => return Err(bad(format!("bad `tenant`: {other:?}"))),
        };
        validate_tenant_id(&name).map_err(bad)?;
        if self.tenants.contains_key(&name) {
            return Err(self.fail(
                "restore",
                ErrorKind::DuplicateTenant,
                format!("tenant `{name}` is already open"),
            ));
        }
        let algo = match doc.get("algo") {
            Some(Json::Str(algo)) => {
                Algo::parse(algo).ok_or_else(|| bad(format!("unknown algo `{algo}`")))?
            }
            other => return Err(bad(format!("bad `algo`: {other:?}"))),
        };
        let state = doc
            .get("state")
            .ok_or_else(|| bad("missing `state`".into()))?;
        let session = match algo {
            Algo::Oa => {
                let cp = OaCheckpoint::from_json(state).map_err(|e| bad(e.to_string()))?;
                Session::Oa(OaSession::restore(cp).map_err(|e| bad(e.to_string()))?)
            }
            Algo::Avr => {
                let cp = AvrCheckpoint::from_json(state).map_err(|e| bad(e.to_string()))?;
                Session::Avr(AvrSession::restore(cp).map_err(|e| bad(e.to_string()))?)
            }
        };
        Ok((name, session))
    }
}

fn unknown_tenant(daemon: &Daemon, name: &str) -> Response {
    daemon.fail(
        "any",
        ErrorKind::UnknownTenant,
        format!("no tenant `{name}`"),
    )
}

/// Tenant ids double as file names, so the charset is locked down.
pub fn validate_tenant_id(name: &str) -> Result<(), String> {
    if name.is_empty() || name.len() > 64 {
        return Err("tenant id must be 1..=64 characters".into());
    }
    if name.starts_with('.') {
        return Err("tenant id may not start with `.`".into());
    }
    if let Some(c) = name
        .chars()
        .find(|c| !(c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-')))
    {
        return Err(format!(
            "tenant id contains `{c}` (allowed: [A-Za-z0-9._-])"
        ));
    }
    Ok(())
}

fn checkpoint_path(dir: &str, tenant: &str) -> PathBuf {
    Path::new(dir).join(format!("{tenant}.checkpoint.json"))
}

fn checkpoint_files(dir: &str) -> std::io::Result<Vec<PathBuf>> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|entry| entry.ok())
        .map(|entry| entry.path())
        .filter(|path| {
            path.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.ends_with(".checkpoint.json"))
        })
        .collect();
    paths.sort();
    Ok(paths)
}

/// Temp-file-plus-rename, so a kill mid-write never leaves a torn
/// checkpoint where a complete one used to be.
fn write_atomically(path: &Path, contents: &str) -> std::io::Result<()> {
    let tmp = path.with_extension("json.tmp");
    std::fs::write(&tmp, contents)?;
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Small helper so tests can read counters out of snapshot rows without
    // pattern-matching boilerplate.
    trait JsonExt {
        fn as_u64_ref(&self) -> Option<u64>;
    }

    impl JsonExt for Json {
        fn as_u64_ref(&self) -> Option<u64> {
            match self {
                Json::UInt(n) => Some(*n),
                _ => None,
            }
        }
    }

    fn ok(response: Response) -> Response {
        assert!(response.is_ok(), "{}", response.render_line());
        response
    }

    fn tmp_dir(name: &str) -> String {
        let dir =
            std::env::temp_dir().join(format!("mpss-serve-test-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir.to_string_lossy().into_owned()
    }

    #[test]
    fn open_arrive_advance_query_round_trip() {
        let mut daemon = Daemon::new(DaemonConfig::default());
        ok(daemon.handle(&Request::Open {
            tenant: "a".into(),
            algo: Algo::Oa,
            m: 2,
            start: 0.0,
            engine: None,
        }));
        let r = ok(daemon.handle(&Request::Arrive {
            tenant: "a".into(),
            deadline: 4.0,
            volume: 3.0,
        }));
        assert_eq!(r.get("job"), Some(&Json::UInt(0)));
        ok(daemon.handle(&Request::Advance {
            tenant: Some("a".into()),
            to: 1.0,
        }));
        let plan = ok(daemon.handle(&Request::QueryPlan { tenant: "a".into() }));
        assert_eq!(plan.get("now"), Some(&Json::Num(1.0)));
        let speeds = plan.get("speeds").and_then(|s| match s {
            Json::Arr(v) => Some(v.len()),
            _ => None,
        });
        assert_eq!(speeds, Some(2));
    }

    #[test]
    fn errors_carry_stable_kinds() {
        let mut daemon = Daemon::new(DaemonConfig::default());
        let r = daemon.handle(&Request::Arrive {
            tenant: "ghost".into(),
            deadline: 1.0,
            volume: 1.0,
        });
        assert_eq!(r.error_kind(), Some("unknown-tenant"));
        ok(daemon.handle(&Request::Open {
            tenant: "a".into(),
            algo: Algo::Avr,
            m: 1,
            start: 5.0,
            engine: None,
        }));
        let r = daemon.handle(&Request::Open {
            tenant: "a".into(),
            algo: Algo::Oa,
            m: 1,
            start: 0.0,
            engine: None,
        });
        assert_eq!(r.error_kind(), Some("duplicate-tenant"));
        let r = daemon.handle(&Request::Advance {
            tenant: Some("a".into()),
            to: 4.0,
        });
        assert_eq!(r.error_kind(), Some("time-went-backwards"));
        let r = daemon.handle(&Request::Arrive {
            tenant: "a".into(),
            deadline: 5.0, // empty window at now=5
            volume: 1.0,
        });
        assert_eq!(r.error_kind(), Some("bad-job"));
        let r = daemon.handle(&Request::Open {
            tenant: "bad/name".into(),
            algo: Algo::Oa,
            m: 1,
            start: 0.0,
            engine: None,
        });
        assert_eq!(r.error_kind(), Some("bad-request"));
    }

    #[test]
    fn broadcast_advance_is_atomic_on_clock_skew() {
        let mut daemon = Daemon::new(DaemonConfig::default());
        for (name, start) in [("early", 0.0), ("late", 5.0)] {
            ok(daemon.handle(&Request::Open {
                tenant: name.into(),
                algo: Algo::Avr,
                m: 1,
                start,
                engine: None,
            }));
        }
        // 1.0 is behind `late`'s clock: nobody may move.
        let r = daemon.handle(&Request::Advance {
            tenant: None,
            to: 1.0,
        });
        assert_eq!(r.error_kind(), Some("time-went-backwards"));
        let snap = ok(daemon.handle(&Request::Snapshot {
            tenant: Some("early".into()),
        }));
        let Some(Json::Arr(rows)) = snap.get("tenants") else {
            panic!("no tenants")
        };
        assert_eq!(rows[0].get("now"), Some(&Json::Num(0.0)));
        // A legal broadcast moves everyone.
        let r = ok(daemon.handle(&Request::Advance {
            tenant: None,
            to: 6.0,
        }));
        assert_eq!(r.get("advanced"), Some(&Json::UInt(2)));
    }

    #[test]
    fn checkpoint_restore_round_trips_through_disk() {
        let dir = tmp_dir("roundtrip");
        let mut daemon = Daemon::new(DaemonConfig::default());
        ok(daemon.handle(&Request::Open {
            tenant: "oa-1".into(),
            algo: Algo::Oa,
            m: 2,
            start: 0.0,
            engine: None,
        }));
        ok(daemon.handle(&Request::Arrive {
            tenant: "oa-1".into(),
            deadline: 4.0,
            volume: 3.0,
        }));
        ok(daemon.handle(&Request::Advance {
            tenant: None,
            to: 1.0,
        }));
        ok(daemon.handle(&Request::Checkpoint {
            tenant: None,
            dir: dir.clone(),
        }));

        let mut fresh = Daemon::new(DaemonConfig::default());
        let r = ok(fresh.handle(&Request::Restore {
            tenant: None,
            dir: dir.clone(),
        }));
        assert_eq!(
            r.get("restored"),
            Some(&Json::Arr(vec![Json::from("oa-1")]))
        );
        // Restoring again is a duplicate.
        let r = fresh.handle(&Request::Restore {
            tenant: None,
            dir: dir.clone(),
        });
        assert_eq!(r.error_kind(), Some("duplicate-tenant"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_checkpoints_do_not_half_restore() {
        let dir = tmp_dir("corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        let mut daemon = Daemon::new(DaemonConfig::default());
        ok(daemon.handle(&Request::Open {
            tenant: "good".into(),
            algo: Algo::Avr,
            m: 1,
            start: 0.0,
            engine: None,
        }));
        ok(daemon.handle(&Request::Checkpoint {
            tenant: None,
            dir: dir.clone(),
        }));
        std::fs::write(
            Path::new(&dir).join("evil.checkpoint.json"),
            r#"{"format":"mpss-serve/checkpoint","version":1,"tenant":"evil","algo":"oa","state":{"version":99}}"#,
        )
        .unwrap();
        let mut fresh = Daemon::new(DaemonConfig::default());
        let r = fresh.handle(&Request::Restore {
            tenant: None,
            dir: dir.clone(),
        });
        assert_eq!(r.error_kind(), Some("bad-checkpoint"));
        assert_eq!(fresh.tenant_count(), 0, "all-or-nothing restore");
        // Restoring just the good tenant works.
        ok(fresh.handle(&Request::Restore {
            tenant: Some("good".into()),
            dir: dir.clone(),
        }));
        assert_eq!(fresh.tenant_count(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_window_bounds_history() {
        let mut daemon = Daemon::new(DaemonConfig {
            compact_window: Some(1.0),
            threads: Some(1),
        });
        ok(daemon.handle(&Request::Open {
            tenant: "a".into(),
            algo: Algo::Avr,
            m: 1,
            start: 0.0,
            engine: None,
        }));
        for step in 1..=20 {
            let t = step as f64;
            ok(daemon.handle(&Request::Arrive {
                tenant: "a".into(),
                deadline: t + 0.5,
                volume: 0.5,
            }));
            ok(daemon.handle(&Request::Advance {
                tenant: None,
                to: t,
            }));
        }
        let snap = ok(daemon.handle(&Request::Snapshot {
            tenant: Some("a".into()),
        }));
        let Some(Json::Arr(rows)) = snap.get("tenants") else {
            panic!("no tenants")
        };
        let compacted = rows[0].get("compacted_segments").and_then(Json::as_u64_ref);
        assert!(
            compacted.unwrap_or(0) > 0,
            "history must have been compacted"
        );
        let watermark = rows[0].get("compaction_watermark");
        assert_eq!(watermark, Some(&Json::Num(19.0)));
    }

    #[test]
    fn tenant_ids_are_locked_down() {
        assert!(validate_tenant_id("ok-id_1.x").is_ok());
        for bad in ["", "..", ".hidden", "a/b", "a b", "é", &"x".repeat(65)] {
            assert!(validate_tenant_id(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn serve_io_speaks_ndjson_and_shuts_down() {
        let mut daemon = Daemon::new(DaemonConfig::default());
        let input = concat!(
            r#"{"op":"open","tenant":"a","algo":"oa","m":1}"#,
            "\n",
            "\n", // blank lines are skipped
            "this is not json\n",
            r#"{"op":"shutdown"}"#,
            "\n",
            r#"{"op":"snapshot"}"#,
            "\n", // never reached
        );
        let mut output = Vec::new();
        let shutdown = daemon.serve_io(input.as_bytes(), &mut output).unwrap();
        assert!(shutdown);
        let lines: Vec<&str> = std::str::from_utf8(&output).unwrap().lines().collect();
        assert_eq!(lines.len(), 3, "{lines:?}");
        assert!(lines[0].contains(r#""ok":true"#));
        assert!(lines[1].contains("bad-request"));
        assert!(lines[2].contains(r#""ok":true"#));
    }

    #[test]
    fn arrivals_publish_the_per_tenant_patched_arcs_gauge() {
        let mut daemon = Daemon::new(DaemonConfig::default());
        for (name, algo) in [("oa-cell", Algo::Oa), ("avr-cell", Algo::Avr)] {
            ok(daemon.handle(&Request::Open {
                tenant: name.into(),
                algo,
                m: 2,
                start: 0.0,
                engine: None,
            }));
            ok(daemon.handle(&Request::Arrive {
                tenant: name.into(),
                deadline: 4.0,
                volume: 2.0,
            }));
        }
        let rows: Vec<_> = daemon
            .hub()
            .snapshot()
            .into_iter()
            .filter(|row| row.name == "mpss_serve_replan_patched_arcs")
            .collect();
        // Only the OA tenant replans, so only it patches arcs.
        assert_eq!(rows.len(), 1, "{rows:?}");
        assert!(
            rows[0]
                .labels
                .iter()
                .any(|(k, v)| k == "tenant" && v == "oa-cell"),
            "{rows:?}"
        );
        match rows[0].value {
            mpss_obs::SnapshotValue::Gauge(v) => assert!(v > 0.0, "no arcs patched: {v}"),
            ref other => panic!("gauge expected: {other:?}"),
        }
    }

    #[test]
    fn hub_families_are_in_the_manifest() {
        let mut daemon = Daemon::new(DaemonConfig::default());
        ok(daemon.handle(&Request::Open {
            tenant: "a".into(),
            algo: Algo::Oa,
            m: 1,
            start: 0.0,
            engine: None,
        }));
        // A successful arrive publishes the per-tenant replan gauge too.
        ok(daemon.handle(&Request::Arrive {
            tenant: "a".into(),
            deadline: 2.0,
            volume: 1.0,
        }));
        daemon.handle(&Request::Arrive {
            tenant: "ghost".into(),
            deadline: 1.0,
            volume: 1.0,
        });
        ok(daemon.handle(&Request::Checkpoint {
            tenant: None,
            dir: tmp_dir("manifest"),
        }));
        for row in daemon.hub().snapshot() {
            assert!(
                mpss_obs::names::known_metric(&row.name),
                "{} missing from mpss_obs::names::METRICS",
                row.name
            );
        }
    }
}
