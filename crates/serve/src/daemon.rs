//! The multi-tenant daemon: request dispatch, checkpointing, compaction.
//!
//! A [`Daemon`] owns a map of named tenants, each an independent
//! [`OaSession`] or [`AvrSession`], plus one shared [`MetricsHub`] (every
//! tenant publishes `{algo, tenant}`-labeled session series into it) and an
//! `mpss-par` [`ThreadPool`] that broadcast `advance` requests fan out
//! over. The daemon itself is synchronous and single-writer: requests are
//! handled strictly in arrival order, which is what makes the
//! checkpoint/restore story exact — there is never a half-applied request
//! to freeze.
//!
//! # Checkpoints
//!
//! [`Request::Checkpoint`] writes one `<tenant>.checkpoint.json` per tenant
//! (atomically: temp file + rename) wrapping the session's versioned
//! checkpoint from [`mpss_online::checkpoint`] in a
//! `{"format": "mpss-serve/checkpoint", …}` envelope.
//! [`Request::Restore`] re-opens tenants from those files bit-identically:
//! a daemon killed between two requests and restored from its last
//! checkpoint replays the remaining requests to exactly the schedules and
//! counters the uninterrupted daemon would have produced.
//!
//! # Compaction
//!
//! With [`DaemonConfig::compact_window`] set, every advance to time `t`
//! compacts each advanced tenant's executed history up to `t - window`,
//! bounding daemon memory on long streams. The compaction watermark and
//! dropped-work tallies ride along in checkpoints, so bounded memory and
//! exact restore compose.
//!
//! # Black box
//!
//! The daemon carries an always-on observability layer: a structured
//! [`Logger`] (NDJSON, ring-buffered so the recent tail is always
//! recoverable), one bounded [`FlightRecorder`] per tenant plus one for the
//! daemon itself, and — when [`DaemonConfig::postmortem_dir`] is set —
//! automatic [postmortem bundles](crate::postmortem) on serious errors,
//! caught panics, and replans slower than
//! [`DaemonConfig::slow_replan_ms`]. All of the recording happens *after*
//! the response is computed, on the daemon thread, and its cumulative cost
//! is tracked in [`Daemon::obs_overhead_ns`] so the <1% soak-overhead
//! budget is itself observable.

use crate::postmortem::{self, BundleContents, BundleReason};
use crate::protocol::{engine_name, Algo, ErrorKind, Request, Response};
use mpss_obs::json::Json;
use mpss_obs::{
    Counter, FlightEventKind, FlightRecorder, Gauge, Level, Logger, MetricsHub, RingSink,
    StderrSink, TraceCollector,
};
use mpss_online::{
    AvrCheckpoint, AvrSession, OaCheckpoint, OaSession, ReplanSummary, SessionError, SessionMetrics,
};
use mpss_par::ThreadPool;
use std::collections::BTreeMap;
use std::io::{BufRead, Write};
use std::path::{Path, PathBuf};

/// The checkpoint-file envelope's `format` marker.
pub const CHECKPOINT_FORMAT: &str = "mpss-serve/checkpoint";
/// The checkpoint-file envelope version. Rejected on mismatch; the inner
/// session state carries its own [`mpss_online::CHECKPOINT_VERSION`].
pub const CHECKPOINT_FILE_VERSION: u64 = 1;

/// Automatic (error / panic / slow-replan) bundles stop after this many per
/// daemon lifetime, so a persistently failing tenant cannot fill the disk.
/// Operator `debug-dump` requests are never capped.
pub const MAX_AUTO_BUNDLES: u64 = 32;

/// Daemon construction knobs.
#[derive(Clone, Debug)]
pub struct DaemonConfig {
    /// Sliding history window: after advancing to `t`, executed history
    /// before `t - window` is compacted away. `None`: keep everything.
    pub compact_window: Option<f64>,
    /// Worker threads for broadcast advances (`None`: the `MPSS_THREADS` /
    /// hardware default of [`ThreadPool::with_threads`]).
    pub threads: Option<usize>,
    /// Threshold for the daemon's structured logger. Records below it cost
    /// one branch.
    pub log_level: Level,
    /// Mirror log records to stderr (the CLI daemon turns this on; tests
    /// and benchmarks keep logs in the in-memory ring only).
    pub log_stderr: bool,
    /// Capacity of each flight-recorder ring (per tenant, plus one for the
    /// daemon itself). Clamped to at least 1.
    pub flight_capacity: usize,
    /// Where postmortem bundles are written. `None` disables automatic
    /// bundles; the `debug-dump` op then requires an explicit `dir`.
    pub postmortem_dir: Option<PathBuf>,
    /// A replan slower than this many milliseconds dumps a `slow-replan`
    /// bundle carrying the replan's Chrome trace. Needs `postmortem_dir`.
    pub slow_replan_ms: Option<f64>,
    /// Chaos injection for tests: panic while handling this op, exercising
    /// the scoped panic hook and the `panic` bundle path.
    pub panic_on_op: Option<String>,
}

impl Default for DaemonConfig {
    fn default() -> DaemonConfig {
        DaemonConfig {
            compact_window: None,
            threads: None,
            log_level: Level::Info,
            log_stderr: false,
            flight_capacity: 64,
            postmortem_dir: None,
            slow_replan_ms: None,
            panic_on_op: None,
        }
    }
}

/// One tenant's live session.
// Sessions live once per tenant in the map and are only moved on
// open/restore, so the OA variant's inline size buys locality, not waste.
#[allow(clippy::large_enum_variant)]
enum Session {
    Oa(OaSession),
    Avr(AvrSession),
}

impl Session {
    fn algo(&self) -> Algo {
        match self {
            Session::Oa(_) => Algo::Oa,
            Session::Avr(_) => Algo::Avr,
        }
    }

    fn now(&self) -> f64 {
        match self {
            Session::Oa(s) => s.now(),
            Session::Avr(s) => s.now(),
        }
    }

    fn job_count(&self) -> usize {
        match self {
            Session::Oa(s) => s.job_count(),
            Session::Avr(s) => s.job_count(),
        }
    }

    fn arrive(&mut self, deadline: f64, volume: f64) -> Result<usize, (ErrorKind, String)> {
        match self {
            Session::Oa(s) => s.arrive(deadline, volume).map_err(session_error),
            Session::Avr(s) => s
                .arrive(deadline, volume)
                .map_err(|e| (ErrorKind::BadJob, format!("bad job: {e}"))),
        }
    }

    /// Advance plus windowed compaction. The caller has already checked
    /// `to >= now`, so errors here are defensive.
    fn advance_to(&mut self, to: f64, compact_window: Option<f64>) -> Result<(), String> {
        match self {
            Session::Oa(s) => s.advance_to(to).map_err(|e| e.to_string())?,
            Session::Avr(s) => s.advance_to(to).map_err(|e| e.to_string())?,
        }
        if let Some(window) = compact_window {
            let watermark = to - window;
            match self {
                Session::Oa(s) => s.compact_history(watermark),
                Session::Avr(s) => s.compact_history(watermark),
            };
        }
        Ok(())
    }

    /// The last replan's summary, consumed. `None` if nothing replanned
    /// since the previous take.
    fn take_last_replan(&mut self) -> Option<ReplanSummary> {
        match self {
            Session::Oa(s) => s.take_last_replan(),
            Session::Avr(s) => s.take_last_replan(),
        }
    }

    /// Engine label for flight-recorder replan events.
    fn engine_label(&self) -> &'static str {
        match self {
            Session::Oa(s) => engine_name(s.engine()),
            Session::Avr(_) => "avr",
        }
    }

    fn attach_metrics(&mut self, hub: &MetricsHub, tenant: &str) {
        let (algo, m) = (self.algo().as_str(), self.m());
        let metrics = SessionMetrics::register_tenant(hub, algo, tenant, m);
        match self {
            Session::Oa(s) => s.attach_metrics(metrics),
            Session::Avr(s) => s.attach_metrics(metrics),
        }
    }

    fn m(&self) -> usize {
        match self {
            Session::Oa(s) => s.m(),
            Session::Avr(s) => s.m(),
        }
    }

    fn state_json(&self) -> Json {
        match self {
            Session::Oa(s) => s.checkpoint().to_json(),
            Session::Avr(s) => s.checkpoint().to_json(),
        }
    }

    fn snapshot_json(&self, tenant: &str) -> Json {
        let mut doc = Json::object();
        doc.push("tenant", Json::from(tenant));
        doc.push("algo", Json::from(self.algo().as_str()));
        doc.push("m", Json::UInt(self.m() as u64));
        doc.push("now", Json::Num(self.now()));
        doc.push("jobs", Json::UInt(self.job_count() as u64));
        match self {
            Session::Oa(s) => {
                doc.push("replans", Json::UInt(s.replans() as u64));
                doc.push(
                    "flow_computations",
                    Json::UInt(s.flow_computations() as u64),
                );
                doc.push("engine", Json::from(engine_name(s.engine())));
                doc.push(
                    "executed_segments",
                    Json::UInt(s.executed().segments.len() as u64),
                );
                doc.push(
                    "compacted_segments",
                    Json::UInt(s.compacted_segments() as u64),
                );
                doc.push("compacted_work", Json::Num(s.compacted_work()));
                doc.push(
                    "compaction_watermark",
                    s.compaction_watermark().map_or(Json::Null, Json::Num),
                );
            }
            Session::Avr(s) => {
                doc.push(
                    "executed_segments",
                    Json::UInt(s.executed().segments.len() as u64),
                );
                doc.push(
                    "compacted_segments",
                    Json::UInt(s.compacted_segments() as u64),
                );
                doc.push("compacted_work", Json::Num(s.compacted_work()));
                doc.push(
                    "compaction_watermark",
                    s.compaction_watermark().map_or(Json::Null, Json::Num),
                );
            }
        }
        doc
    }

    fn plan_json(&self, tenant: &str) -> Json {
        let mut doc = Json::object();
        doc.push("tenant", Json::from(tenant));
        doc.push("algo", Json::from(self.algo().as_str()));
        doc.push("now", Json::Num(self.now()));
        let speeds = match self {
            Session::Oa(s) => s.current_speeds(),
            Session::Avr(s) => s.current_speeds(),
        };
        doc.push(
            "speeds",
            Json::Arr(speeds.into_iter().map(Json::Num).collect()),
        );
        let jobs = (0..self.job_count())
            .map(|k| {
                let mut job = Json::object();
                job.push("id", Json::UInt(k as u64));
                match self {
                    Session::Oa(s) => {
                        job.push(
                            "remaining",
                            s.remaining_volume(k).map_or(Json::Null, Json::Num),
                        );
                        job.push("speed", s.planned_speed(k).map_or(Json::Null, Json::Num));
                    }
                    Session::Avr(_) => {
                        job.push("remaining", Json::Null);
                        job.push("speed", Json::Null);
                    }
                }
                job
            })
            .collect();
        doc.push("jobs", Json::Arr(jobs));
        doc
    }
}

fn session_error(e: SessionError) -> (ErrorKind, String) {
    let kind = match &e {
        SessionError::TimeWentBackwards { .. } => ErrorKind::TimeWentBackwards,
        SessionError::LateArrival { .. } | SessionError::BadJob(_) => ErrorKind::BadJob,
        SessionError::Planning(_) => ErrorKind::Planning,
        SessionError::Checkpoint(_) => ErrorKind::BadCheckpoint,
    };
    (kind, e.to_string())
}

/// One tenant's flight recorder plus the high-water mark of evictions
/// already published to the `mpss_serve_flight_dropped_total` counter
/// (counters are monotonic, so only the delta may be added). The metric
/// handles are registered once at open/restore and cached here — publishing
/// on the request hot path must be atomic stores, not registry lookups.
struct TenantFlight {
    recorder: FlightRecorder,
    dropped_published: u64,
    len_published: usize,
    events_gauge: Gauge,
    dropped_counter: Counter,
}

impl TenantFlight {
    fn new(capacity: usize, hub: &MetricsHub, tenant: &str) -> TenantFlight {
        TenantFlight {
            recorder: FlightRecorder::new(capacity),
            dropped_published: 0,
            len_published: usize::MAX,
            events_gauge: hub.gauge(
                "mpss_serve_flight_events",
                "flight-recorder ring occupancy, by tenant",
                &[("tenant", tenant)],
            ),
            dropped_counter: hub.counter(
                "mpss_serve_flight_dropped_total",
                "flight-recorder events evicted, by tenant",
                &[("tenant", tenant)],
            ),
        }
    }

    /// Publishes the flight gauges: ring occupancy, and the eviction delta
    /// past the published high-water mark (the counter is monotonic). Both
    /// stores are skipped when nothing changed — once the ring is full its
    /// occupancy is pinned at capacity, so the steady state touches only
    /// the eviction counter.
    fn publish(&mut self) {
        let len = self.recorder.len();
        if len != self.len_published {
            self.events_gauge.set(len as f64);
            self.len_published = len;
        }
        let dropped = self.recorder.dropped_total();
        if dropped > self.dropped_published {
            self.dropped_counter.add(dropped - self.dropped_published);
            self.dropped_published = dropped;
        }
    }
}

/// One live tenant: the scheduling session and its flight recorder, kept in
/// the same map entry so the per-request hot path reaches both with a
/// single lookup (the session is already cache-hot from handling the op).
struct Tenant {
    session: Session,
    flight: TenantFlight,
}

/// The daemon: a map of tenants plus the shared hub and pool. See the
/// module docs for the execution model.
pub struct Daemon {
    tenants: BTreeMap<String, Tenant>,
    hub: MetricsHub,
    pool: ThreadPool,
    config: DaemonConfig,
    logger: Logger,
    log_ring: RingSink,
    log_published: u64,
    flight_daemon: FlightRecorder,
    /// Chrome trace armed around the most recent replan, kept only until
    /// the slow-replan check ran.
    pending_trace: Option<TraceCollector>,
    postmortem_seq: u64,
    postmortems_written: u64,
    obs_ns: u64,
    /// Reused buffer for per-request replan drains (cleared after every
    /// request; keeping the capacity avoids a fresh allocation per arrive).
    replans_scratch: Vec<(String, ReplanSummary)>,
}

impl Daemon {
    /// A daemon with no tenants.
    pub fn new(config: DaemonConfig) -> Daemon {
        let pool = ThreadPool::with_threads(config.threads);
        let log_ring = RingSink::new(256);
        let mirror = log_ring.clone();
        let mut logger = Logger::new(config.log_level).with_sink(mirror);
        if config.log_stderr {
            logger = logger.with_sink(StderrSink);
        }
        let flight_daemon = FlightRecorder::new(config.flight_capacity);
        Daemon {
            tenants: BTreeMap::new(),
            hub: MetricsHub::new(),
            pool,
            logger,
            log_ring,
            log_published: 0,
            flight_daemon,
            pending_trace: None,
            postmortem_seq: 0,
            postmortems_written: 0,
            obs_ns: 0,
            replans_scratch: Vec::new(),
            config,
        }
    }

    /// The shared metrics hub (expose it with
    /// [`MetricsServer::bind`](mpss_obs::MetricsServer::bind) for live
    /// scraping).
    pub fn hub(&self) -> &MetricsHub {
        &self.hub
    }

    /// The daemon's structured logger (share it to log around the daemon,
    /// e.g. from the CLI accept loop).
    pub fn logger(&self) -> &Logger {
        &self.logger
    }

    /// Live tenant count.
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// Live tenant ids, sorted.
    pub fn tenant_names(&self) -> Vec<String> {
        self.tenants.keys().cloned().collect()
    }

    /// Cumulative nanoseconds spent in the always-on observability tail
    /// (flight recording, gauges, log-counter publishing) across all
    /// requests. The soak harness divides this by wall time to gate the
    /// <1% recorder-overhead budget.
    pub fn obs_overhead_ns(&self) -> u64 {
        self.obs_ns
    }

    /// `(recorded, dropped)` flight events summed over the daemon ring and
    /// every tenant ring.
    pub fn flight_totals(&self) -> (u64, u64) {
        let mut recorded = self.flight_daemon.recorded_total();
        let mut dropped = self.flight_daemon.dropped_total();
        for t in self.tenants.values() {
            recorded += t.flight.recorder.recorded_total();
            dropped += t.flight.recorder.dropped_total();
        }
        (recorded, dropped)
    }

    /// Postmortem bundles written by this daemon, all trigger reasons.
    pub fn postmortems_written(&self) -> u64 {
        self.postmortems_written
    }

    /// Serves newline-delimited requests from `input`, writing one response
    /// line per request to `output`, until EOF or a `shutdown` request.
    /// Returns `true` if a `shutdown` was served (the caller should stop
    /// re-entering), `false` on EOF.
    pub fn serve_io(
        &mut self,
        input: impl BufRead,
        mut output: impl Write,
    ) -> std::io::Result<bool> {
        for line in input.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let (response, shutdown) = self.handle_line(&line);
            output.write_all(response.render_line().as_bytes())?;
            output.write_all(b"\n")?;
            output.flush()?;
            if shutdown {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Parses and handles one request line; the boolean reports whether it
    /// was an (acknowledged) shutdown. A panic inside the handler is caught
    /// by a scoped hook and turned into an `internal` error response (plus
    /// a `panic` postmortem bundle when bundles are configured), so one bad
    /// request cannot take the whole daemon down.
    pub fn handle_line(&mut self, line: &str) -> (Response, bool) {
        match Request::parse_line(line) {
            Ok(request) => {
                let shutdown = matches!(request, Request::Shutdown);
                let response =
                    match catch_panics(std::panic::AssertUnwindSafe(|| self.handle(&request))) {
                        Ok(response) => response,
                        Err(panic_message) => self.panicked(&request, panic_message),
                    };
                (response, shutdown)
            }
            Err(message) => (self.fail("parse", ErrorKind::BadRequest, message), false),
        }
    }

    /// Handles one request and produces its response.
    pub fn handle(&mut self, request: &Request) -> Response {
        let op = request.op();
        if self.config.panic_on_op.as_deref() == Some(op) {
            panic!("injected panic on `{op}` (DaemonConfig::panic_on_op)");
        }
        self.hub
            .counter(
                "mpss_serve_requests_total",
                "requests handled, by op",
                &[("op", op)],
            )
            .inc();
        let response = match request {
            Request::Open {
                tenant,
                algo,
                m,
                start,
                engine,
            } => self.open(tenant, *algo, *m, *start, *engine),
            Request::Arrive {
                tenant,
                deadline,
                volume,
            } => self.arrive(tenant, *deadline, *volume),
            Request::Advance { tenant, to } => self.advance(tenant.as_deref(), *to),
            Request::QueryPlan { tenant } => self.query_plan(tenant),
            Request::Snapshot { tenant } => self.snapshot(tenant.as_deref()),
            Request::Checkpoint { tenant, dir } => self.checkpoint(tenant.as_deref(), dir),
            Request::Restore { tenant, dir } => self.restore(tenant.as_deref(), dir),
            Request::DebugDump { tenant, dir } => self.debug_dump(tenant, dir.as_deref()),
            Request::Shutdown => Response::ok(Json::object()),
        };
        // The always-on black box records *after* the response is computed:
        // flight events, per-tenant gauges, log-counter deltas. Its cost is
        // accumulated so the overhead budget is itself observable.
        let obs_started = std::time::Instant::now();
        let mut replans = self.observe_request(request, &response);
        self.obs_ns += obs_started.elapsed().as_nanos() as u64;
        // Bundle triggers run outside the obs window: dumping is incident
        // I/O, not steady-state recording.
        self.maybe_bundle(request, &response, &replans);
        replans.clear();
        self.replans_scratch = replans;
        self.hub
            .gauge("mpss_serve_tenants", "live tenant sessions", &[])
            .set(self.tenants.len() as f64);
        response
    }

    /// The observability tail of [`handle`](Daemon::handle): records the
    /// request (and error) into the flight rings, drains replan summaries
    /// into replan events, and publishes the flight gauges and log-record
    /// counter. Returns the drained replans for the bundle triggers.
    fn observe_request(
        &mut self,
        request: &Request,
        response: &Response,
    ) -> Vec<(String, ReplanSummary)> {
        let op = request.op();
        let tenant = request_tenant(request);
        let error_kind = response.error_kind().map(static_error_kind);
        let event = FlightEventKind::request(op, response.is_ok(), error_kind);
        // The daemon-wide ring keeps daemon-scope context: broadcast and
        // lifecycle ops, plus every failure. Routine tenant traffic lives in
        // that tenant's own ring — duplicating it here would only churn the
        // shared ring and the request hot path.
        if tenant.is_none() || error_kind.is_some() {
            self.flight_daemon.record(event.clone());
        }
        let mut error_event = None;
        if let Some(kind) = error_kind {
            let message = error_message(response);
            let event = FlightEventKind::error(kind, &message);
            self.flight_daemon.record(event.clone());
            self.logger.warn(
                "serve.request",
                "request failed",
                &[
                    ("op", Json::from(op)),
                    ("kind", Json::from(kind)),
                    ("message", Json::from(message)),
                ],
            );
            error_event = Some(event);
        }
        // Replans completed by this request: the addressed tenant, or — for
        // a broadcast advance, which already did O(tenants) work — everyone.
        // Only OA sessions run a planning engine; an AVR arrival is an O(1)
        // speed recompute, not a replan, and records no replan event.
        let mut replans = std::mem::take(&mut self.replans_scratch);
        match (tenant, request) {
            (None, Request::Advance { .. }) => {
                for (name, t) in &mut self.tenants {
                    if !matches!(t.session, Session::Oa(_)) {
                        continue;
                    }
                    let engine = t.session.engine_label();
                    let Some(summary) = t.session.take_last_replan() else {
                        continue;
                    };
                    t.flight.recorder.record(replan_event(&summary, engine));
                    t.flight.publish();
                    replans.push((name.clone(), summary));
                }
            }
            (Some(name), _) => {
                // The per-request hot path: one map lookup reaches both the
                // session (replan drain) and the adjacent flight ring.
                if let Some(t) = self.tenants.get_mut(name) {
                    t.flight.recorder.record(event);
                    if let Some(event) = error_event {
                        t.flight.recorder.record(event);
                    }
                    if let Session::Oa(_) = t.session {
                        if let Some(summary) = t.session.take_last_replan() {
                            let engine = t.session.engine_label();
                            t.flight.recorder.record(replan_event(&summary, engine));
                            replans.push((name.to_string(), summary));
                        }
                    }
                    t.flight.publish();
                }
            }
            _ => {}
        }
        let emitted = self.logger.records_total();
        if emitted > self.log_published {
            self.hub
                .counter(
                    "mpss_serve_log_records_total",
                    "structured log records the daemon emitted",
                    &[],
                )
                .add(emitted - self.log_published);
            self.log_published = emitted;
        }
        replans
    }

    /// Bundle triggers: a slow replan (keeping the armed Chrome trace) or a
    /// serious protocol error. Runs after the response; failures to write a
    /// bundle are logged, never escalated into the response.
    fn maybe_bundle(
        &mut self,
        request: &Request,
        response: &Response,
        replans: &[(String, ReplanSummary)],
    ) {
        if let Some(threshold_ms) = self.config.slow_replan_ms {
            for (name, summary) in replans {
                if summary.latency_s * 1_000.0 >= threshold_ms {
                    let name = name.clone();
                    self.bundle(
                        &name,
                        BundleReason::SlowReplan,
                        request.op(),
                        None,
                        Some(*summary),
                        None,
                    );
                    break; // one exemplar per request is plenty
                }
            }
        }
        // The trace is only kept by a tripped threshold; otherwise arming
        // it was speculative and it dies here.
        self.pending_trace = None;
        if let Some(kind) = response.error_kind() {
            if matches!(kind, "planning" | "bad-checkpoint" | "internal") {
                if let Some(name) = request_tenant(request) {
                    if self.tenants.contains_key(name) {
                        let (kind, name) = (kind.to_string(), name.to_string());
                        let message = error_message(response);
                        self.bundle(
                            &name,
                            BundleReason::ProtocolError,
                            request.op(),
                            Some((kind, message)),
                            None,
                            None,
                        );
                    }
                }
            }
        }
    }

    /// The caught-panic path: an `internal` error response, flight error
    /// events, and a `panic` bundle for the addressed tenant.
    fn panicked(&mut self, request: &Request, panic_message: String) -> Response {
        let op = request.op();
        self.logger.error(
            "serve.panic",
            "request handler panicked",
            &[
                ("op", Json::from(op)),
                ("panic", Json::from(panic_message.as_str())),
            ],
        );
        let response = self.fail(
            op,
            ErrorKind::Internal,
            format!("panic while handling `{op}`: {panic_message}"),
        );
        let event = FlightEventKind::error("internal", &panic_message);
        if let Some(name) = request_tenant(request) {
            if let Some(t) = self.tenants.get_mut(name) {
                t.flight.recorder.record(event.clone());
            }
        }
        self.flight_daemon.record(event);
        if let Some(name) = request_tenant(request).map(str::to_string) {
            if self.tenants.contains_key(&name) {
                self.bundle(
                    &name,
                    BundleReason::Panic,
                    op,
                    Some(("internal".to_string(), panic_message)),
                    None,
                    None,
                );
            }
        }
        response
    }

    /// Writes one postmortem bundle for `tenant`. Automatic reasons go to
    /// the configured dir and respect [`MAX_AUTO_BUNDLES`]; `debug-dump`
    /// passes `dir_override` and is never capped. Returns the bundle path,
    /// or `None` when bundling is off / capped / the tenant vanished;
    /// write errors are logged (and surfaced only via the `debug-dump`
    /// response, which re-checks the returned path).
    fn bundle(
        &mut self,
        tenant: &str,
        reason: BundleReason,
        op: &str,
        error: Option<(String, String)>,
        replan: Option<ReplanSummary>,
        dir_override: Option<&Path>,
    ) -> Option<PathBuf> {
        let dir = match dir_override {
            Some(dir) => dir.to_path_buf(),
            None => self.config.postmortem_dir.clone()?,
        };
        if reason != BundleReason::DebugDump && self.postmortems_written >= MAX_AUTO_BUNDLES {
            return None;
        }
        let t = self.tenants.get(tenant)?;
        let trace = self
            .pending_trace
            .take()
            .filter(|_| reason == BundleReason::SlowReplan);
        let name = format!("{tenant}-{}-{:04}", reason.as_str(), self.postmortem_seq);
        self.postmortem_seq += 1;
        let mut flight = Json::object();
        flight.push("tenant", t.flight.recorder.dump_json());
        flight.push("daemon", self.flight_daemon.dump_json());
        let contents = BundleContents {
            tenant: tenant.to_string(),
            reason,
            op: op.to_string(),
            error,
            replan: replan.as_ref().map(replan_json),
            plan: t.session.plan_json(tenant),
            checkpoint: checkpoint_envelope(tenant, &t.session).render_pretty(),
            flight,
            log_lines: self.log_ring.lines(),
            metrics: self.hub.render(),
            trace: trace.map(|t| t.chrome_trace()),
        };
        match postmortem::write_bundle(&dir, &name, &contents) {
            Ok(path) => {
                self.postmortems_written += 1;
                self.hub
                    .counter(
                        "mpss_serve_postmortem_total",
                        "postmortem bundles written, by trigger reason",
                        &[("reason", reason.as_str())],
                    )
                    .inc();
                self.logger.warn(
                    "serve.postmortem",
                    "wrote postmortem bundle",
                    &[
                        ("tenant", Json::from(tenant)),
                        ("reason", Json::from(reason.as_str())),
                        ("bundle", Json::from(path.display().to_string())),
                    ],
                );
                Some(path)
            }
            Err(e) => {
                self.logger.error(
                    "serve.postmortem",
                    "failed to write postmortem bundle",
                    &[
                        ("tenant", Json::from(tenant)),
                        ("reason", Json::from(reason.as_str())),
                        ("error", Json::from(e.to_string())),
                    ],
                );
                None
            }
        }
    }

    /// The `debug-dump` op: freeze one tenant's black box on demand. Pure
    /// read of the tenant's state — a dump must never perturb any session.
    fn debug_dump(&mut self, tenant: &str, dir: Option<&str>) -> Response {
        if !self.tenants.contains_key(tenant) {
            return unknown_tenant(self, tenant);
        }
        let dir = match dir
            .map(PathBuf::from)
            .or_else(|| self.config.postmortem_dir.clone())
        {
            Some(dir) => dir,
            None => {
                return self.fail(
                    "debug-dump",
                    ErrorKind::BadRequest,
                    "no `dir` given and the daemon has no --postmortem-dir",
                )
            }
        };
        match self.bundle(
            tenant,
            BundleReason::DebugDump,
            "debug-dump",
            None,
            None,
            Some(&dir),
        ) {
            Some(path) => {
                let mut body = Json::object();
                body.push("tenant", Json::from(tenant));
                body.push("bundle", Json::from(path.display().to_string()));
                Response::ok(body)
            }
            None => self.fail(
                "debug-dump",
                ErrorKind::Io,
                format!(
                    "could not write a bundle for `{tenant}` under {}",
                    dir.display()
                ),
            ),
        }
    }

    fn fail(&self, op: &str, kind: ErrorKind, message: impl Into<String>) -> Response {
        let _ = op;
        self.hub
            .counter(
                "mpss_serve_errors_total",
                "failed requests, by error kind",
                &[("kind", kind.as_str())],
            )
            .inc();
        Response::error(kind, message)
    }

    fn open(
        &mut self,
        tenant: &str,
        algo: Algo,
        m: usize,
        start: f64,
        engine: Option<mpss_offline::FlowEngine>,
    ) -> Response {
        if let Err(message) = validate_tenant_id(tenant) {
            return self.fail("open", ErrorKind::BadRequest, message);
        }
        if m == 0 {
            return self.fail("open", ErrorKind::BadRequest, "`m` must be at least 1");
        }
        if !start.is_finite() {
            return self.fail("open", ErrorKind::BadRequest, "`start` must be finite");
        }
        if self.tenants.contains_key(tenant) {
            return self.fail(
                "open",
                ErrorKind::DuplicateTenant,
                format!("tenant `{tenant}` is already open"),
            );
        }
        let mut session = match algo {
            Algo::Oa => Session::Oa(OaSession::with_engine(m, start, engine.unwrap_or_default())),
            Algo::Avr => Session::Avr(AvrSession::new(m, start)),
        };
        session.attach_metrics(&self.hub, tenant);
        let flight = TenantFlight::new(self.config.flight_capacity, &self.hub, tenant);
        self.tenants
            .insert(tenant.to_string(), Tenant { session, flight });
        self.logger.info(
            "serve.open",
            "opened tenant",
            &[
                ("tenant", Json::from(tenant)),
                ("algo", Json::from(algo.as_str())),
                ("m", Json::UInt(m as u64)),
            ],
        );
        let mut body = Json::object();
        body.push("tenant", Json::from(tenant));
        Response::ok(body)
    }

    fn arrive(&mut self, tenant: &str, deadline: f64, volume: f64) -> Response {
        let Some(t) = self.tenants.get_mut(tenant) else {
            return unknown_tenant(self, tenant);
        };
        let session = &mut t.session;
        // Slow-replan exemplar capture: with a threshold and a bundle dir
        // configured, every OA replan runs under an armed Chrome trace that
        // is kept only if the threshold trips.
        let arm = self.config.slow_replan_ms.is_some()
            && self.config.postmortem_dir.is_some()
            && matches!(session, Session::Oa(_));
        let outcome = if arm {
            let mut trace = TraceCollector::new("replan");
            let result = match session {
                Session::Oa(s) => s
                    .arrive_observed(deadline, volume, &mut trace)
                    .map_err(session_error),
                Session::Avr(_) => unreachable!("arm requires an OA session"),
            };
            self.pending_trace = Some(trace);
            result
        } else {
            session.arrive(deadline, volume)
        };
        match outcome {
            Ok(job) => {
                // Soak runs watch this grow with the per-arrival delta, not
                // with the tenant's live-job count (the incremental-replan
                // contract; AVR tenants have no replan network to patch).
                if let Some(Tenant {
                    session: Session::Oa(s),
                    ..
                }) = self.tenants.get(tenant)
                {
                    self.hub
                        .gauge(
                            "mpss_serve_replan_patched_arcs",
                            "cumulative network arcs patched by incremental replans",
                            &[("tenant", tenant)],
                        )
                        .set(s.incremental_stats().patched_arcs as f64);
                }
                let mut body = Json::object();
                body.push("tenant", Json::from(tenant));
                body.push("job", Json::UInt(job as u64));
                Response::ok(body)
            }
            Err((kind, message)) => self.fail("arrive", kind, message),
        }
    }

    fn advance(&mut self, tenant: Option<&str>, to: f64) -> Response {
        if !to.is_finite() {
            return self.fail("advance", ErrorKind::BadRequest, "`to` must be finite");
        }
        let targets: Vec<&String> = match tenant {
            Some(name) => match self.tenants.get_key_value(name) {
                Some((key, _)) => vec![key],
                None => return unknown_tenant(self, name),
            },
            None => self.tenants.keys().collect(),
        };
        // Atomicity: reject before moving anyone's clock, so a failed
        // broadcast leaves every tenant exactly where it was.
        for name in &targets {
            let now = self.tenants[*name].session.now();
            if now > to {
                return self.fail(
                    "advance",
                    ErrorKind::TimeWentBackwards,
                    format!("tenant `{name}` is already at {now}, cannot go back to {to}"),
                );
            }
        }
        let advanced = match tenant {
            Some(name) => {
                let t = self.tenants.get_mut(name).expect("checked above");
                if let Err(message) = t.session.advance_to(to, self.config.compact_window) {
                    return self.fail("advance", ErrorKind::Planning, message);
                }
                1
            }
            None => {
                // Fan every tenant out over the pool; sessions move into the
                // workers and come back in submission (= sorted-name) order.
                let window = self.config.compact_window;
                let entries: Vec<(String, Tenant)> =
                    std::mem::take(&mut self.tenants).into_iter().collect();
                let count = entries.len();
                let done = self.pool.scope_map(entries, |(name, mut t)| {
                    let result = t.session.advance_to(to, window);
                    (name, t, result)
                });
                let mut first_error = None;
                for (name, t, result) in done {
                    if let (Err(message), None) = (&result, &first_error) {
                        first_error = Some(format!("tenant `{name}`: {message}"));
                    }
                    self.tenants.insert(name, t);
                }
                if let Some(message) = first_error {
                    return self.fail("advance", ErrorKind::Planning, message);
                }
                count
            }
        };
        let mut body = Json::object();
        body.push("now", Json::Num(to));
        body.push("advanced", Json::UInt(advanced as u64));
        Response::ok(body)
    }

    fn query_plan(&self, tenant: &str) -> Response {
        match self.tenants.get(tenant) {
            Some(t) => Response::ok(t.session.plan_json(tenant)),
            None => unknown_tenant(self, tenant),
        }
    }

    fn snapshot(&self, tenant: Option<&str>) -> Response {
        let mut rows = Vec::new();
        match tenant {
            Some(name) => match self.tenants.get(name) {
                Some(t) => rows.push(t.session.snapshot_json(name)),
                None => return unknown_tenant(self, name),
            },
            None => {
                for (name, t) in &self.tenants {
                    rows.push(t.session.snapshot_json(name));
                }
            }
        }
        let mut body = Json::object();
        body.push("tenants", Json::Arr(rows));
        Response::ok(body)
    }

    fn checkpoint(&mut self, tenant: Option<&str>, dir: &str) -> Response {
        let started = std::time::Instant::now();
        let targets: Vec<String> = match tenant {
            Some(name) => {
                if !self.tenants.contains_key(name) {
                    return unknown_tenant(self, name);
                }
                vec![name.to_string()]
            }
            None => self.tenants.keys().cloned().collect(),
        };
        if let Err(e) = std::fs::create_dir_all(dir) {
            return self.fail("checkpoint", ErrorKind::Io, format!("creating {dir}: {e}"));
        }
        for name in &targets {
            let envelope = checkpoint_envelope(name, &self.tenants[name].session);
            if let Err(e) = write_atomically(&checkpoint_path(dir, name), &envelope.render_pretty())
            {
                return self.fail("checkpoint", ErrorKind::Io, format!("writing {name}: {e}"));
            }
        }
        self.hub
            .histogram(
                "mpss_serve_checkpoint_seconds",
                "wall-clock latency of one checkpoint request",
                &[],
            )
            .observe(started.elapsed().as_secs_f64());
        let mut body = Json::object();
        body.push("dir", Json::from(dir));
        body.push(
            "written",
            Json::Arr(targets.iter().map(|n| Json::from(n.as_str())).collect()),
        );
        Response::ok(body)
    }

    fn restore(&mut self, tenant: Option<&str>, dir: &str) -> Response {
        let paths: Vec<PathBuf> = match tenant {
            Some(name) => {
                if let Err(message) = validate_tenant_id(name) {
                    return self.fail("restore", ErrorKind::BadRequest, message);
                }
                vec![checkpoint_path(dir, name)]
            }
            None => match checkpoint_files(dir) {
                Ok(paths) => paths,
                Err(e) => {
                    return self.fail("restore", ErrorKind::Io, format!("reading {dir}: {e}"))
                }
            },
        };
        // Two passes: parse and validate everything first, then commit, so
        // a bad file cannot leave a half-restored daemon.
        let mut restored = Vec::new();
        for path in &paths {
            match self.read_checkpoint(path) {
                Ok((name, session)) => restored.push((name, session)),
                Err(response) => return response,
            }
        }
        let mut names = Vec::new();
        for (name, mut session) in restored {
            session.attach_metrics(&self.hub, &name);
            names.push(Json::from(name.as_str()));
            let flight = TenantFlight::new(self.config.flight_capacity, &self.hub, &name);
            self.logger.info(
                "serve.restore",
                "restored tenant",
                &[
                    ("tenant", Json::from(name.as_str())),
                    ("algo", Json::from(session.algo().as_str())),
                ],
            );
            self.tenants.insert(name, Tenant { session, flight });
        }
        let mut body = Json::object();
        body.push("dir", Json::from(dir));
        body.push("restored", Json::Arr(names));
        Response::ok(body)
    }

    fn read_checkpoint(&self, path: &Path) -> Result<(String, Session), Response> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| self.fail("restore", ErrorKind::Io, format!("{}: {e}", path.display())))?;
        let doc = Json::parse(&text).map_err(|e| {
            self.fail(
                "restore",
                ErrorKind::BadCheckpoint,
                format!("{}: {e}", path.display()),
            )
        })?;
        let bad = |message: String| self.fail("restore", ErrorKind::BadCheckpoint, message);
        match doc.get("format") {
            Some(Json::Str(format)) if format == CHECKPOINT_FORMAT => {}
            other => return Err(bad(format!("not a {CHECKPOINT_FORMAT} file: {other:?}"))),
        }
        match doc.get("version") {
            Some(Json::UInt(v)) if *v == CHECKPOINT_FILE_VERSION => {}
            other => {
                return Err(bad(format!(
                    "unsupported envelope version {other:?} (this build reads {CHECKPOINT_FILE_VERSION})"
                )))
            }
        }
        let name = match doc.get("tenant") {
            Some(Json::Str(name)) => name.clone(),
            other => return Err(bad(format!("bad `tenant`: {other:?}"))),
        };
        validate_tenant_id(&name).map_err(bad)?;
        if self.tenants.contains_key(&name) {
            return Err(self.fail(
                "restore",
                ErrorKind::DuplicateTenant,
                format!("tenant `{name}` is already open"),
            ));
        }
        let algo = match doc.get("algo") {
            Some(Json::Str(algo)) => {
                Algo::parse(algo).ok_or_else(|| bad(format!("unknown algo `{algo}`")))?
            }
            other => return Err(bad(format!("bad `algo`: {other:?}"))),
        };
        let state = doc
            .get("state")
            .ok_or_else(|| bad("missing `state`".into()))?;
        let session = match algo {
            Algo::Oa => {
                let cp = OaCheckpoint::from_json(state).map_err(|e| bad(e.to_string()))?;
                Session::Oa(OaSession::restore(cp).map_err(|e| bad(e.to_string()))?)
            }
            Algo::Avr => {
                let cp = AvrCheckpoint::from_json(state).map_err(|e| bad(e.to_string()))?;
                Session::Avr(AvrSession::restore(cp).map_err(|e| bad(e.to_string()))?)
            }
        };
        Ok((name, session))
    }
}

fn unknown_tenant(daemon: &Daemon, name: &str) -> Response {
    daemon.fail(
        "any",
        ErrorKind::UnknownTenant,
        format!("no tenant `{name}`"),
    )
}

/// The tenant a request addresses, if any (broadcast ops return `None`).
fn request_tenant(request: &Request) -> Option<&str> {
    match request {
        Request::Open { tenant, .. }
        | Request::Arrive { tenant, .. }
        | Request::QueryPlan { tenant }
        | Request::DebugDump { tenant, .. } => Some(tenant),
        Request::Advance { tenant, .. }
        | Request::Snapshot { tenant }
        | Request::Checkpoint { tenant, .. }
        | Request::Restore { tenant, .. } => tenant.as_deref(),
        Request::Shutdown => None,
    }
}

/// Interns a response's error kind back to its `&'static` wire spelling —
/// the kind vocabulary is closed ([`ErrorKind::ALL`]), so flight events can
/// carry it without allocating.
fn static_error_kind(kind: &str) -> &'static str {
    ErrorKind::ALL
        .iter()
        .map(|k| k.as_str())
        .find(|s| *s == kind)
        .unwrap_or("internal")
}

/// A replan summary as a flight-recorder event.
fn replan_event(summary: &ReplanSummary, engine: &'static str) -> FlightEventKind {
    FlightEventKind::replan(
        summary.latency_s * 1_000.0,
        summary.work_ops,
        summary.patched_arcs,
        engine,
    )
}

/// The error message of a failed response (empty for successes).
fn error_message(response: &Response) -> String {
    match response
        .to_json()
        .get("error")
        .and_then(|e| e.get("message"))
    {
        Some(Json::Str(message)) => message.clone(),
        _ => String::new(),
    }
}

/// A replan summary as manifest JSON.
fn replan_json(summary: &ReplanSummary) -> Json {
    let mut doc = Json::object();
    doc.push("latency_ms", Json::Num(summary.latency_s * 1_000.0));
    doc.push("work_ops", Json::UInt(summary.work_ops));
    doc.push("patched_arcs", Json::UInt(summary.patched_arcs));
    doc.push("flow_computations", Json::UInt(summary.flow_computations));
    doc.push("live_jobs", Json::UInt(summary.live_jobs as u64));
    doc
}

/// One tenant's checkpoint-file envelope (shared by `checkpoint` requests
/// and postmortem bundles, so a bundle doubles as a restorable checkpoint
/// directory).
fn checkpoint_envelope(name: &str, session: &Session) -> Json {
    let mut envelope = Json::object();
    envelope.push("format", Json::from(CHECKPOINT_FORMAT));
    envelope.push("version", Json::UInt(CHECKPOINT_FILE_VERSION));
    envelope.push("tenant", Json::from(name));
    envelope.push("algo", Json::from(session.algo().as_str()));
    envelope.push("state", session.state_json());
    envelope
}

/// Runs `f` under a scoped panic hook: a panic on this thread inside the
/// call is captured (message + location) instead of printed, and returned
/// as `Err`. Panics anywhere else still reach the previous hook.
fn catch_panics<R>(f: impl FnOnce() -> R) -> Result<R, String> {
    use std::cell::{Cell, RefCell};
    use std::sync::Once;

    static INSTALL: Once = Once::new();
    thread_local! {
        static ACTIVE: Cell<bool> = const { Cell::new(false) };
        static CAPTURED: RefCell<Option<String>> = const { RefCell::new(None) };
    }
    INSTALL.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !ACTIVE.with(Cell::get) {
                previous(info);
                return;
            }
            let message = info
                .payload()
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| info.payload().downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            let message = match info.location() {
                Some(location) => format!("{message} ({location})"),
                None => message,
            };
            CAPTURED.with(|c| *c.borrow_mut() = Some(message));
        }));
    });
    ACTIVE.with(|a| a.set(true));
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
    ACTIVE.with(|a| a.set(false));
    result.map_err(|_| {
        CAPTURED
            .with(|c| c.borrow_mut().take())
            .unwrap_or_else(|| "panic".to_string())
    })
}

/// Tenant ids double as file names, so the charset is locked down.
pub fn validate_tenant_id(name: &str) -> Result<(), String> {
    if name.is_empty() || name.len() > 64 {
        return Err("tenant id must be 1..=64 characters".into());
    }
    if name.starts_with('.') {
        return Err("tenant id may not start with `.`".into());
    }
    if let Some(c) = name
        .chars()
        .find(|c| !(c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-')))
    {
        return Err(format!(
            "tenant id contains `{c}` (allowed: [A-Za-z0-9._-])"
        ));
    }
    Ok(())
}

fn checkpoint_path(dir: &str, tenant: &str) -> PathBuf {
    Path::new(dir).join(format!("{tenant}.checkpoint.json"))
}

fn checkpoint_files(dir: &str) -> std::io::Result<Vec<PathBuf>> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|entry| entry.ok())
        .map(|entry| entry.path())
        .filter(|path| {
            path.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.ends_with(".checkpoint.json"))
        })
        .collect();
    paths.sort();
    Ok(paths)
}

/// Temp-file-plus-rename, so a kill mid-write never leaves a torn
/// checkpoint where a complete one used to be.
fn write_atomically(path: &Path, contents: &str) -> std::io::Result<()> {
    let tmp = path.with_extension("json.tmp");
    std::fs::write(&tmp, contents)?;
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Small helper so tests can read counters out of snapshot rows without
    // pattern-matching boilerplate.
    trait JsonExt {
        fn as_u64_ref(&self) -> Option<u64>;
    }

    impl JsonExt for Json {
        fn as_u64_ref(&self) -> Option<u64> {
            match self {
                Json::UInt(n) => Some(*n),
                _ => None,
            }
        }
    }

    fn ok(response: Response) -> Response {
        assert!(response.is_ok(), "{}", response.render_line());
        response
    }

    fn tmp_dir(name: &str) -> String {
        let dir =
            std::env::temp_dir().join(format!("mpss-serve-test-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir.to_string_lossy().into_owned()
    }

    #[test]
    fn open_arrive_advance_query_round_trip() {
        let mut daemon = Daemon::new(DaemonConfig::default());
        ok(daemon.handle(&Request::Open {
            tenant: "a".into(),
            algo: Algo::Oa,
            m: 2,
            start: 0.0,
            engine: None,
        }));
        let r = ok(daemon.handle(&Request::Arrive {
            tenant: "a".into(),
            deadline: 4.0,
            volume: 3.0,
        }));
        assert_eq!(r.get("job"), Some(&Json::UInt(0)));
        ok(daemon.handle(&Request::Advance {
            tenant: Some("a".into()),
            to: 1.0,
        }));
        let plan = ok(daemon.handle(&Request::QueryPlan { tenant: "a".into() }));
        assert_eq!(plan.get("now"), Some(&Json::Num(1.0)));
        let speeds = plan.get("speeds").and_then(|s| match s {
            Json::Arr(v) => Some(v.len()),
            _ => None,
        });
        assert_eq!(speeds, Some(2));
    }

    #[test]
    fn errors_carry_stable_kinds() {
        let mut daemon = Daemon::new(DaemonConfig::default());
        let r = daemon.handle(&Request::Arrive {
            tenant: "ghost".into(),
            deadline: 1.0,
            volume: 1.0,
        });
        assert_eq!(r.error_kind(), Some("unknown-tenant"));
        ok(daemon.handle(&Request::Open {
            tenant: "a".into(),
            algo: Algo::Avr,
            m: 1,
            start: 5.0,
            engine: None,
        }));
        let r = daemon.handle(&Request::Open {
            tenant: "a".into(),
            algo: Algo::Oa,
            m: 1,
            start: 0.0,
            engine: None,
        });
        assert_eq!(r.error_kind(), Some("duplicate-tenant"));
        let r = daemon.handle(&Request::Advance {
            tenant: Some("a".into()),
            to: 4.0,
        });
        assert_eq!(r.error_kind(), Some("time-went-backwards"));
        let r = daemon.handle(&Request::Arrive {
            tenant: "a".into(),
            deadline: 5.0, // empty window at now=5
            volume: 1.0,
        });
        assert_eq!(r.error_kind(), Some("bad-job"));
        let r = daemon.handle(&Request::Open {
            tenant: "bad/name".into(),
            algo: Algo::Oa,
            m: 1,
            start: 0.0,
            engine: None,
        });
        assert_eq!(r.error_kind(), Some("bad-request"));
    }

    #[test]
    fn broadcast_advance_is_atomic_on_clock_skew() {
        let mut daemon = Daemon::new(DaemonConfig::default());
        for (name, start) in [("early", 0.0), ("late", 5.0)] {
            ok(daemon.handle(&Request::Open {
                tenant: name.into(),
                algo: Algo::Avr,
                m: 1,
                start,
                engine: None,
            }));
        }
        // 1.0 is behind `late`'s clock: nobody may move.
        let r = daemon.handle(&Request::Advance {
            tenant: None,
            to: 1.0,
        });
        assert_eq!(r.error_kind(), Some("time-went-backwards"));
        let snap = ok(daemon.handle(&Request::Snapshot {
            tenant: Some("early".into()),
        }));
        let Some(Json::Arr(rows)) = snap.get("tenants") else {
            panic!("no tenants")
        };
        assert_eq!(rows[0].get("now"), Some(&Json::Num(0.0)));
        // A legal broadcast moves everyone.
        let r = ok(daemon.handle(&Request::Advance {
            tenant: None,
            to: 6.0,
        }));
        assert_eq!(r.get("advanced"), Some(&Json::UInt(2)));
    }

    #[test]
    fn checkpoint_restore_round_trips_through_disk() {
        let dir = tmp_dir("roundtrip");
        let mut daemon = Daemon::new(DaemonConfig::default());
        ok(daemon.handle(&Request::Open {
            tenant: "oa-1".into(),
            algo: Algo::Oa,
            m: 2,
            start: 0.0,
            engine: None,
        }));
        ok(daemon.handle(&Request::Arrive {
            tenant: "oa-1".into(),
            deadline: 4.0,
            volume: 3.0,
        }));
        ok(daemon.handle(&Request::Advance {
            tenant: None,
            to: 1.0,
        }));
        ok(daemon.handle(&Request::Checkpoint {
            tenant: None,
            dir: dir.clone(),
        }));

        let mut fresh = Daemon::new(DaemonConfig::default());
        let r = ok(fresh.handle(&Request::Restore {
            tenant: None,
            dir: dir.clone(),
        }));
        assert_eq!(
            r.get("restored"),
            Some(&Json::Arr(vec![Json::from("oa-1")]))
        );
        // Restoring again is a duplicate.
        let r = fresh.handle(&Request::Restore {
            tenant: None,
            dir: dir.clone(),
        });
        assert_eq!(r.error_kind(), Some("duplicate-tenant"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_checkpoints_do_not_half_restore() {
        let dir = tmp_dir("corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        let mut daemon = Daemon::new(DaemonConfig::default());
        ok(daemon.handle(&Request::Open {
            tenant: "good".into(),
            algo: Algo::Avr,
            m: 1,
            start: 0.0,
            engine: None,
        }));
        ok(daemon.handle(&Request::Checkpoint {
            tenant: None,
            dir: dir.clone(),
        }));
        std::fs::write(
            Path::new(&dir).join("evil.checkpoint.json"),
            r#"{"format":"mpss-serve/checkpoint","version":1,"tenant":"evil","algo":"oa","state":{"version":99}}"#,
        )
        .unwrap();
        let mut fresh = Daemon::new(DaemonConfig::default());
        let r = fresh.handle(&Request::Restore {
            tenant: None,
            dir: dir.clone(),
        });
        assert_eq!(r.error_kind(), Some("bad-checkpoint"));
        assert_eq!(fresh.tenant_count(), 0, "all-or-nothing restore");
        // Restoring just the good tenant works.
        ok(fresh.handle(&Request::Restore {
            tenant: Some("good".into()),
            dir: dir.clone(),
        }));
        assert_eq!(fresh.tenant_count(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_window_bounds_history() {
        let mut daemon = Daemon::new(DaemonConfig {
            compact_window: Some(1.0),
            threads: Some(1),
            ..DaemonConfig::default()
        });
        ok(daemon.handle(&Request::Open {
            tenant: "a".into(),
            algo: Algo::Avr,
            m: 1,
            start: 0.0,
            engine: None,
        }));
        for step in 1..=20 {
            let t = step as f64;
            ok(daemon.handle(&Request::Arrive {
                tenant: "a".into(),
                deadline: t + 0.5,
                volume: 0.5,
            }));
            ok(daemon.handle(&Request::Advance {
                tenant: None,
                to: t,
            }));
        }
        let snap = ok(daemon.handle(&Request::Snapshot {
            tenant: Some("a".into()),
        }));
        let Some(Json::Arr(rows)) = snap.get("tenants") else {
            panic!("no tenants")
        };
        let compacted = rows[0].get("compacted_segments").and_then(Json::as_u64_ref);
        assert!(
            compacted.unwrap_or(0) > 0,
            "history must have been compacted"
        );
        let watermark = rows[0].get("compaction_watermark");
        assert_eq!(watermark, Some(&Json::Num(19.0)));
    }

    #[test]
    fn tenant_ids_are_locked_down() {
        assert!(validate_tenant_id("ok-id_1.x").is_ok());
        for bad in ["", "..", ".hidden", "a/b", "a b", "é", &"x".repeat(65)] {
            assert!(validate_tenant_id(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn serve_io_speaks_ndjson_and_shuts_down() {
        let mut daemon = Daemon::new(DaemonConfig::default());
        let input = concat!(
            r#"{"op":"open","tenant":"a","algo":"oa","m":1}"#,
            "\n",
            "\n", // blank lines are skipped
            "this is not json\n",
            r#"{"op":"shutdown"}"#,
            "\n",
            r#"{"op":"snapshot"}"#,
            "\n", // never reached
        );
        let mut output = Vec::new();
        let shutdown = daemon.serve_io(input.as_bytes(), &mut output).unwrap();
        assert!(shutdown);
        let lines: Vec<&str> = std::str::from_utf8(&output).unwrap().lines().collect();
        assert_eq!(lines.len(), 3, "{lines:?}");
        assert!(lines[0].contains(r#""ok":true"#));
        assert!(lines[1].contains("bad-request"));
        assert!(lines[2].contains(r#""ok":true"#));
    }

    #[test]
    fn arrivals_publish_the_per_tenant_patched_arcs_gauge() {
        let mut daemon = Daemon::new(DaemonConfig::default());
        for (name, algo) in [("oa-cell", Algo::Oa), ("avr-cell", Algo::Avr)] {
            ok(daemon.handle(&Request::Open {
                tenant: name.into(),
                algo,
                m: 2,
                start: 0.0,
                engine: None,
            }));
            ok(daemon.handle(&Request::Arrive {
                tenant: name.into(),
                deadline: 4.0,
                volume: 2.0,
            }));
        }
        let rows: Vec<_> = daemon
            .hub()
            .snapshot()
            .into_iter()
            .filter(|row| row.name == "mpss_serve_replan_patched_arcs")
            .collect();
        // Only the OA tenant replans, so only it patches arcs.
        assert_eq!(rows.len(), 1, "{rows:?}");
        assert!(
            rows[0]
                .labels
                .iter()
                .any(|(k, v)| k == "tenant" && v == "oa-cell"),
            "{rows:?}"
        );
        match rows[0].value {
            mpss_obs::SnapshotValue::Gauge(v) => assert!(v > 0.0, "no arcs patched: {v}"),
            ref other => panic!("gauge expected: {other:?}"),
        }
    }

    #[test]
    fn hub_families_are_in_the_manifest() {
        let dir = tmp_dir("manifest-pm");
        let mut daemon = Daemon::new(DaemonConfig {
            postmortem_dir: Some(PathBuf::from(&dir)),
            slow_replan_ms: Some(0.0),
            ..DaemonConfig::default()
        });
        ok(daemon.handle(&Request::Open {
            tenant: "a".into(),
            algo: Algo::Oa,
            m: 1,
            start: 0.0,
            engine: None,
        }));
        // A successful arrive publishes the per-tenant replan gauge too —
        // and with a 0ms slow threshold it also writes a postmortem bundle,
        // exercising the postmortem counter family.
        ok(daemon.handle(&Request::Arrive {
            tenant: "a".into(),
            deadline: 2.0,
            volume: 1.0,
        }));
        daemon.handle(&Request::Arrive {
            tenant: "ghost".into(),
            deadline: 1.0,
            volume: 1.0,
        });
        ok(daemon.handle(&Request::Checkpoint {
            tenant: None,
            dir: tmp_dir("manifest"),
        }));
        for row in daemon.hub().snapshot() {
            assert!(
                mpss_obs::names::known_metric(&row.name),
                "{} missing from mpss_obs::names::METRICS",
                row.name
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn debug_dump_writes_a_bundle_that_restores_bit_identically() {
        let dir = tmp_dir("debug-dump");
        let mut daemon = Daemon::new(DaemonConfig::default());
        ok(daemon.handle(&Request::Open {
            tenant: "acme".into(),
            algo: Algo::Oa,
            m: 2,
            start: 0.0,
            engine: None,
        }));
        for (deadline, volume) in [(4.0, 3.0), (6.0, 2.0)] {
            ok(daemon.handle(&Request::Arrive {
                tenant: "acme".into(),
                deadline,
                volume,
            }));
        }
        ok(daemon.handle(&Request::Advance {
            tenant: None,
            to: 1.0,
        }));
        // No postmortem dir configured: an explicit `dir` is required…
        let r = daemon.handle(&Request::DebugDump {
            tenant: "acme".into(),
            dir: None,
        });
        assert_eq!(r.error_kind(), Some("bad-request"));
        // …and with one, a bundle lands.
        let r = ok(daemon.handle(&Request::DebugDump {
            tenant: "acme".into(),
            dir: Some(dir.clone()),
        }));
        let Some(Json::Str(bundle)) = r.get("bundle") else {
            panic!("no bundle path: {}", r.render_line());
        };
        let bundles = crate::postmortem::find_bundles(Path::new(&dir)).unwrap();
        assert_eq!(bundles, vec![PathBuf::from(bundle)]);
        let manifest = crate::postmortem::read_manifest(&bundles[0]).unwrap();
        assert_eq!(manifest.get("reason"), Some(&Json::from("debug-dump")));
        // The bundle doubles as a checkpoint dir: restore from it and the
        // tenant's plan comes back bit-identical to the manifest's copy.
        let mut fresh = Daemon::new(DaemonConfig::default());
        ok(fresh.handle(&Request::Restore {
            tenant: Some("acme".into()),
            dir: bundle.clone(),
        }));
        let replayed = fresh.tenants["acme"].session.plan_json("acme");
        assert_eq!(
            replayed.render(),
            manifest.get("plan").unwrap().render(),
            "restored plan must match the manifest's plan byte for byte"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn panics_are_caught_bundled_and_survivable() {
        let dir = tmp_dir("panic");
        let mut daemon = Daemon::new(DaemonConfig {
            postmortem_dir: Some(PathBuf::from(&dir)),
            panic_on_op: Some("query-plan".into()),
            ..DaemonConfig::default()
        });
        ok(daemon.handle(&Request::Open {
            tenant: "sick".into(),
            algo: Algo::Avr,
            m: 1,
            start: 0.0,
            engine: None,
        }));
        let (r, shutdown) = daemon.handle_line(r#"{"op":"query-plan","tenant":"sick"}"#);
        assert!(!shutdown);
        assert_eq!(r.error_kind(), Some("internal"));
        assert!(error_message(&r).contains("injected panic"), "{r:?}");
        // The daemon is still alive and serving.
        ok(daemon.handle(&Request::Snapshot { tenant: None }));
        // The incident left a panic bundle behind.
        let bundles = crate::postmortem::find_bundles(Path::new(&dir)).unwrap();
        assert_eq!(bundles.len(), 1, "{bundles:?}");
        let manifest = crate::postmortem::read_manifest(&bundles[0]).unwrap();
        assert_eq!(manifest.get("reason"), Some(&Json::from("panic")));
        assert_eq!(manifest.get("tenant"), Some(&Json::from("sick")));
        assert_eq!(daemon.postmortems_written(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn slow_replans_capture_an_exemplar_trace() {
        let dir = tmp_dir("slow-replan");
        let mut daemon = Daemon::new(DaemonConfig {
            postmortem_dir: Some(PathBuf::from(&dir)),
            slow_replan_ms: Some(0.0), // every replan is "slow"
            ..DaemonConfig::default()
        });
        ok(daemon.handle(&Request::Open {
            tenant: "a".into(),
            algo: Algo::Oa,
            m: 1,
            start: 0.0,
            engine: None,
        }));
        ok(daemon.handle(&Request::Arrive {
            tenant: "a".into(),
            deadline: 2.0,
            volume: 1.0,
        }));
        let bundles = crate::postmortem::find_bundles(Path::new(&dir)).unwrap();
        assert_eq!(bundles.len(), 1, "{bundles:?}");
        let manifest = crate::postmortem::read_manifest(&bundles[0]).unwrap();
        assert_eq!(manifest.get("reason"), Some(&Json::from("slow-replan")));
        let replan = manifest.get("replan").expect("replan summary in manifest");
        assert!(matches!(replan.get("work_ops"), Some(Json::UInt(n)) if *n > 0));
        // The armed Chrome trace of the offending replan rode along.
        let trace = std::fs::read_to_string(bundles[0].join("replan.trace.json")).unwrap();
        mpss_obs::validate_chrome_trace(&trace).expect("bundle trace must be a valid Chrome trace");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_failing_tenants_dump_is_metrics_neutral_for_others() {
        let dir = tmp_dir("neutral");
        let mut daemon = Daemon::new(DaemonConfig {
            postmortem_dir: Some(PathBuf::from(&dir)),
            ..DaemonConfig::default()
        });
        for name in ["healthy", "sick"] {
            ok(daemon.handle(&Request::Open {
                tenant: name.into(),
                algo: Algo::Oa,
                m: 2,
                start: 0.0,
                engine: None,
            }));
            ok(daemon.handle(&Request::Arrive {
                tenant: name.into(),
                deadline: 4.0,
                volume: 2.0,
            }));
        }
        let healthy_rows = |daemon: &Daemon| -> Vec<String> {
            daemon
                .hub()
                .snapshot()
                .into_iter()
                .filter(|row| {
                    row.labels
                        .iter()
                        .any(|(k, v)| k == "tenant" && v == "healthy")
                })
                .map(|row| format!("{} {:?} {:?}", row.name, row.labels, row.value))
                .collect()
        };
        let before_plan = ok(daemon.handle(&Request::QueryPlan {
            tenant: "healthy".into(),
        }))
        .to_json()
        .render();
        // Captured *after* the query above: between this capture and the
        // re-capture below, only sick-addressed requests run.
        let before_rows = healthy_rows(&daemon);
        // The sick tenant fails (late arrival) and is debug-dumped.
        let r = daemon.handle(&Request::Arrive {
            tenant: "sick".into(),
            deadline: -1.0,
            volume: 1.0,
        });
        assert!(!r.is_ok());
        ok(daemon.handle(&Request::DebugDump {
            tenant: "sick".into(),
            dir: None,
        }));
        // The healthy tenant's metric rows and plan are untouched.
        assert_eq!(
            before_rows,
            healthy_rows(&daemon),
            "healthy tenant's metrics perturbed by neighbor's failure/dump"
        );
        let after_plan = ok(daemon.handle(&Request::QueryPlan {
            tenant: "healthy".into(),
        }))
        .to_json()
        .render();
        assert_eq!(before_plan, after_plan, "plan perturbed by neighbor's dump");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flight_rings_stay_bounded_and_observable() {
        let mut daemon = Daemon::new(DaemonConfig {
            flight_capacity: 4,
            ..DaemonConfig::default()
        });
        ok(daemon.handle(&Request::Open {
            tenant: "a".into(),
            algo: Algo::Avr,
            m: 1,
            start: 0.0,
            engine: None,
        }));
        for step in 1..=20 {
            ok(daemon.handle(&Request::Arrive {
                tenant: "a".into(),
                deadline: step as f64 + 1.0,
                volume: 0.1,
            }));
        }
        let (recorded, dropped) = daemon.flight_totals();
        assert!(recorded >= 21, "{recorded}");
        assert!(dropped > 0, "a 4-slot ring must have evicted: {dropped}");
        let rows: Vec<_> = daemon
            .hub()
            .snapshot()
            .into_iter()
            .filter(|row| row.name.starts_with("mpss_serve_flight_"))
            .collect();
        assert!(
            rows.iter()
                .any(|row| row.name == "mpss_serve_flight_events"),
            "{rows:?}"
        );
        let dropped_row = rows
            .iter()
            .find(|row| row.name == "mpss_serve_flight_dropped_total")
            .expect("dropped counter published");
        match dropped_row.value {
            mpss_obs::SnapshotValue::Counter(n) => {
                assert_eq!(n, daemon.tenants["a"].flight.recorder.dropped_total())
            }
            ref other => panic!("counter expected: {other:?}"),
        }
        assert!(daemon.obs_overhead_ns() > 0);
    }
}
