//! Workload characterization: the structural quantities that predict how
//! hard an instance is for each algorithm (load factor, density profile,
//! overlap degree, laminarity). Used by the `workload-atlas` experiment to
//! document what each family actually stresses.

use mpss_core::{Instance, Intervals};

/// Structural statistics of an instance.
#[derive(Clone, Debug, PartialEq)]
pub struct InstanceStats {
    /// Number of jobs.
    pub n: usize,
    /// Number of processors.
    pub m: usize,
    /// Horizon length (max deadline − min release).
    pub horizon: f64,
    /// Total volume divided by `m · horizon` — the average machine load if
    /// every processor ran at speed 1 throughout.
    pub load_factor: f64,
    /// Largest single-job density (a lower bound on any schedule's peak
    /// speed).
    pub max_density: f64,
    /// Peak of the total-density profile `Δ_t` over the event partition.
    pub peak_total_density: f64,
    /// Average number of simultaneously active jobs (time-weighted).
    pub mean_active: f64,
    /// Largest number of simultaneously active jobs.
    pub max_active: usize,
    /// Fraction of job pairs whose windows properly cross (neither nested
    /// nor disjoint) — 0 for laminar families.
    pub crossing_fraction: f64,
}

/// Computes [`InstanceStats`].
pub fn instance_stats(instance: &Instance<f64>) -> InstanceStats {
    let n = instance.n();
    let intervals = Intervals::from_instance(instance);
    let horizon = intervals.horizon();
    let total_volume: f64 = instance.jobs.iter().map(|j| j.volume).sum();
    let max_density = instance
        .jobs
        .iter()
        .map(|j| j.density())
        .fold(0.0f64, f64::max);

    let mut peak_total_density = 0.0f64;
    let mut active_time_weighted = 0.0f64;
    let mut max_active = 0usize;
    for j in 0..intervals.len() {
        let (a, b) = intervals.bounds(j);
        let active: Vec<_> = instance
            .jobs
            .iter()
            .filter(|job| job.active_in(a, b))
            .collect();
        let delta: f64 = active.iter().map(|job| job.density()).sum();
        peak_total_density = peak_total_density.max(delta);
        active_time_weighted += active.len() as f64 * (b - a);
        max_active = max_active.max(active.len());
    }

    let mut crossing = 0usize;
    let mut pairs = 0usize;
    for i in 0..n {
        for k in i + 1..n {
            pairs += 1;
            let (a, b) = (&instance.jobs[i], &instance.jobs[k]);
            let disjoint = a.deadline <= b.release || b.deadline <= a.release;
            let nested = (a.release <= b.release && b.deadline <= a.deadline)
                || (b.release <= a.release && a.deadline <= b.deadline);
            if !disjoint && !nested {
                crossing += 1;
            }
        }
    }

    InstanceStats {
        n,
        m: instance.m,
        horizon,
        load_factor: if horizon > 0.0 {
            total_volume / (instance.m as f64 * horizon)
        } else {
            0.0
        },
        max_density,
        peak_total_density,
        mean_active: if horizon > 0.0 {
            active_time_weighted / horizon
        } else {
            0.0
        },
        max_active,
        crossing_fraction: if pairs > 0 {
            crossing as f64 / pairs as f64
        } else {
            0.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families::{Family, WorkloadSpec};
    use mpss_core::job::job;

    #[test]
    fn hand_checked_statistics() {
        let ins = Instance::new(
            2,
            vec![job(0.0, 2.0, 4.0), job(1.0, 3.0, 1.0), job(0.0, 4.0, 2.0)],
        )
        .unwrap();
        let s = instance_stats(&ins);
        assert_eq!(s.n, 3);
        assert_eq!(s.horizon, 4.0);
        assert!((s.load_factor - 7.0 / 8.0).abs() < 1e-12);
        assert_eq!(s.max_density, 2.0);
        // Δ on [1,2): 2 + 0.5 + 0.5 = 3.
        assert!((s.peak_total_density - 3.0).abs() < 1e-12);
        assert_eq!(s.max_active, 3);
        // Pairs: (0,1) cross, (0,2) nested, (1,2) nested → 1/3.
        assert!((s.crossing_fraction - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn laminar_family_has_zero_crossings() {
        let ins = WorkloadSpec {
            family: Family::Laminar,
            n: 15,
            m: 2,
            horizon: 64,
            seed: 1,
        }
        .generate();
        assert_eq!(instance_stats(&ins).crossing_fraction, 0.0);
    }

    #[test]
    fn tight_load_family_is_actually_loaded() {
        let ins = WorkloadSpec {
            family: Family::TightLoad,
            n: 24,
            m: 4,
            horizon: 64,
            seed: 2,
        }
        .generate();
        let s = instance_stats(&ins);
        assert!(s.load_factor > 0.5, "load factor {}", s.load_factor);
    }

    #[test]
    fn adversarial_family_peaks_at_the_end() {
        let ins = WorkloadSpec {
            family: Family::AvrAdversarial,
            n: 8,
            m: 1,
            horizon: 256,
            seed: 0,
        }
        .generate();
        let s = instance_stats(&ins);
        // Total density at the last instant = Σ 2^i/256-ish; the peak is
        // much larger than the max single density? No: max single density
        // is the last level; the *sum* tops it.
        assert!(s.peak_total_density > s.max_density);
        assert_eq!(s.max_active, 8);
    }
}
