//! JSON trace import/export for instances, so experiments can be rerun on
//! externally supplied job traces and results archived alongside inputs.

use mpss_core::Instance;
use std::io::{Read, Write};
use std::path::Path;

/// Writes an instance as pretty-printed JSON.
pub fn write_trace(path: &Path, instance: &Instance<f64>) -> std::io::Result<()> {
    let mut file = std::io::BufWriter::new(std::fs::File::create(path)?);
    let text = serde_json::to_string_pretty(instance)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    file.write_all(text.as_bytes())?;
    file.flush()
}

/// Reads an instance back from JSON, re-validating its invariants.
pub fn read_trace(path: &Path) -> std::io::Result<Instance<f64>> {
    let mut file = std::io::BufReader::new(std::fs::File::open(path)?);
    let mut text = String::new();
    file.read_to_string(&mut text)?;
    let raw: Instance<f64> = serde_json::from_str(&text)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    // Re-validate: a hand-edited trace must not bypass the invariants.
    Instance::new(raw.m, raw.jobs)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families::{Family, WorkloadSpec};

    #[test]
    fn roundtrip_preserves_the_instance() {
        let dir = std::env::temp_dir().join("mpss-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.json");
        let ins = WorkloadSpec::new(Family::Uniform, 10, 2, 42).generate();
        write_trace(&path, &ins).unwrap();
        let back = read_trace(&path).unwrap();
        assert_eq!(back, ins);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn invalid_trace_is_rejected() {
        let dir = std::env::temp_dir().join("mpss-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("invalid.json");
        std::fs::write(
            &path,
            r#"{"m": 0, "jobs": [{"release": 0.0, "deadline": 1.0, "volume": 1.0}]}"#,
        )
        .unwrap();
        assert!(read_trace(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_errors() {
        assert!(read_trace(Path::new("/nonexistent/trace.json")).is_err());
    }
}
