//! Seeded workload generators for the `mpss` experiment harness.
//!
//! The paper has no empirical section, so the workload families here are
//! chosen to (a) exercise every structural regime of the algorithms —
//! under-loaded, over-loaded, nested, agreeable, bursty — and (b) include
//! the adversarial patterns known from the speed-scaling literature to
//! stress AVR and OA. All generators are deterministic in their seed and
//! emit integer coordinates by default, so every instance is exactly
//! representable in the exact-rational pipeline.

//!
//! ```
//! use mpss_workloads::{Family, WorkloadSpec};
//!
//! let spec = WorkloadSpec { family: Family::Bursty, n: 12, m: 3, horizon: 32, seed: 7 };
//! let a = spec.generate();
//! let b = spec.generate();
//! assert_eq!(a, b);                 // deterministic in the spec
//! assert_eq!(a.n(), 12);
//! assert_eq!(a.m, 3);
//! assert!(Family::ALL.len() >= 9);  // nine families to sweep over
//! ```

// `!(a < b)` on our FlowNum types deliberately reads as "b ≤ a, treating
// incomparable (impossible for validated inputs) as false"; rewriting via
// partial_cmp would obscure the tolerance-free intent.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod families;
pub mod perturb;
pub mod stats;
pub mod trace;

pub use families::{Family, WorkloadSpec};
pub use perturb::{jitter_releases, scale_slack, split_jobs};
pub use stats::{instance_stats, InstanceStats};
pub use trace::{read_trace, write_trace};
