//! Trace perturbation: controlled mutations of instances for robustness
//! testing and what-if analysis (how much does the optimum move if releases
//! jitter, deadlines tighten, or load grows?).

use mpss_core::{Instance, Job};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Jitters every release time by a uniform offset in `[−amount, +amount]`,
/// clamped so every job keeps at least half its original window (deadlines
/// are fixed). Without the half-window floor, large jitter would collapse
/// windows to slivers and blow densities (and optimal energy) up by orders
/// of magnitude — a measurement artifact, not a robustness signal.
pub fn jitter_releases(instance: &Instance<f64>, amount: f64, seed: u64) -> Instance<f64> {
    assert!(amount >= 0.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let jobs = instance
        .jobs
        .iter()
        .map(|j| {
            let offset = rng.gen_range(-amount..=amount);
            let latest = j.deadline - 0.5 * j.window();
            let r = (j.release + offset).max(0.0).min(latest);
            Job::new(r, j.deadline, j.volume)
        })
        .collect();
    Instance::new(instance.m, jobs).expect("jitter preserves validity")
}

/// Multiplies every window's slack around its midpoint by `factor`
/// (`factor < 1` tightens deadlines and releases symmetrically, `> 1`
/// relaxes them; volumes unchanged).
pub fn scale_slack(instance: &Instance<f64>, factor: f64) -> Instance<f64> {
    assert!(factor > 0.0);
    let jobs = instance
        .jobs
        .iter()
        .map(|j| {
            let mid = 0.5 * (j.release + j.deadline);
            let half = 0.5 * j.window() * factor;
            Job::new((mid - half).max(0.0), mid + half.max(1e-12), j.volume)
        })
        .collect();
    Instance::new(instance.m, jobs).expect("slack scaling preserves validity")
}

/// Splits every job into `parts` equal-volume sub-jobs sharing the window.
/// The optimal energy can only drop or stay equal (more scheduling freedom:
/// the parts may run in parallel on different processors).
pub fn split_jobs(instance: &Instance<f64>, parts: usize) -> Instance<f64> {
    assert!(parts >= 1);
    let jobs = instance
        .jobs
        .iter()
        .flat_map(|j| {
            let w = j.volume / parts as f64;
            std::iter::repeat_n(Job::new(j.release, j.deadline, w), parts)
        })
        .collect();
    Instance::new(instance.m, jobs).expect("splitting preserves validity")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families::{Family, WorkloadSpec};
    use mpss_core::job::job;

    fn base() -> Instance<f64> {
        WorkloadSpec {
            family: Family::Uniform,
            n: 8,
            m: 2,
            horizon: 16,
            seed: 1,
        }
        .generate()
    }

    #[test]
    fn jitter_keeps_windows_valid_and_is_deterministic() {
        let ins = base();
        let a = jitter_releases(&ins, 2.0, 9);
        let b = jitter_releases(&ins, 2.0, 9);
        assert_eq!(a, b);
        for (orig, new) in ins.jobs.iter().zip(&a.jobs) {
            assert!(new.release < new.deadline);
            assert_eq!(new.deadline, orig.deadline);
            assert!((new.release - orig.release).abs() <= 2.0 + 1e-9);
            // The half-window floor held.
            assert!(new.window() >= 0.5 * orig.window() - 1e-12);
        }
        assert_ne!(a, ins, "jitter of 2.0 should move something");
    }

    #[test]
    fn zero_jitter_is_identity_up_to_clamping() {
        let ins = base();
        assert_eq!(jitter_releases(&ins, 0.0, 4), ins);
    }

    #[test]
    fn slack_scaling_moves_boundaries_symmetrically() {
        let ins = Instance::new(1, vec![job(2.0, 6.0, 1.0)]).unwrap();
        let tight = scale_slack(&ins, 0.5);
        assert_eq!(tight.jobs[0].release, 3.0);
        assert_eq!(tight.jobs[0].deadline, 5.0);
        let relaxed = scale_slack(&ins, 2.0);
        assert_eq!(relaxed.jobs[0].release, 0.0);
        assert_eq!(relaxed.jobs[0].deadline, 8.0);
    }

    #[test]
    fn split_preserves_total_volume() {
        let ins = base();
        let split = split_jobs(&ins, 3);
        assert_eq!(split.n(), 3 * ins.n());
        assert!((split.total_volume() - ins.total_volume()).abs() < 1e-9);
    }

    #[test]
    fn splitting_never_raises_the_optimum() {
        use mpss_core::energy::schedule_energy;
        use mpss_core::power::Polynomial;
        let ins = WorkloadSpec {
            family: Family::Uniform,
            n: 5,
            m: 2,
            horizon: 10,
            seed: 2,
        }
        .generate();
        let p = Polynomial::new(2.0);
        let e0 = schedule_energy(&mpss_offline::optimal_schedule(&ins).unwrap().schedule, &p);
        let e_split = schedule_energy(
            &mpss_offline::optimal_schedule(&split_jobs(&ins, 2))
                .unwrap()
                .schedule,
            &p,
        );
        assert!(
            e_split <= e0 * (1.0 + 1e-9),
            "split raised OPT: {e0} -> {e_split}"
        );
    }

    #[test]
    fn relaxing_slack_never_raises_the_optimum() {
        use mpss_core::energy::schedule_energy;
        use mpss_core::power::Polynomial;
        let ins = WorkloadSpec {
            family: Family::Uniform,
            n: 6,
            m: 2,
            horizon: 12,
            seed: 3,
        }
        .generate();
        let p = Polynomial::new(2.0);
        let e0 = schedule_energy(&mpss_offline::optimal_schedule(&ins).unwrap().schedule, &p);
        let e_rel = schedule_energy(
            &mpss_offline::optimal_schedule(&scale_slack(&ins, 1.5))
                .unwrap()
                .schedule,
            &p,
        );
        assert!(
            e_rel <= e0 * (1.0 + 1e-9),
            "relaxing raised OPT: {e0} -> {e_rel}"
        );
    }
}
