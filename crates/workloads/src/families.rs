//! Workload families.

use mpss_core::job::job;
use mpss_core::{Instance, Job};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The workload families used throughout the experiment harness.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Family {
    /// Independent jobs: uniform releases, window lengths and volumes.
    Uniform,
    /// Arrivals clustered into a few bursts (all jobs of a burst share a
    /// release time) — the pattern that makes OA replan under pressure.
    Bursty,
    /// Laminar (dyadically nested) windows — the structure behind worst
    /// cases of density-based algorithms.
    Laminar,
    /// Agreeable deadlines: later release ⇒ later deadline.
    Agreeable,
    /// Near-full machine load: long windows, volumes scaled so the average
    /// required speed per processor is close to 1.
    TightLoad,
    /// The geometric AVR-adversarial pattern (Bansal et al.): jobs sharing
    /// one deadline with doubling densities, so AVR's speed ramps while OPT
    /// runs flat.
    AvrAdversarial,
    /// Poisson arrival process with exponential-ish windows — the queueing
    /// shape of datacenter request streams.
    Poisson,
    /// Heavy-tailed (Pareto-like) volumes on uniform windows: a few
    /// elephants among many mice.
    HeavyTail,
    /// Periodic real-time tasks: each task releases a job every period with
    /// deadline = next period (implicit-deadline task systems).
    Periodic,
}

impl Family {
    /// All families, for sweeps.
    pub const ALL: [Family; 9] = [
        Family::Uniform,
        Family::Bursty,
        Family::Laminar,
        Family::Agreeable,
        Family::TightLoad,
        Family::AvrAdversarial,
        Family::Poisson,
        Family::HeavyTail,
        Family::Periodic,
    ];

    /// Short stable name for tables.
    pub fn name(self) -> &'static str {
        match self {
            Family::Uniform => "uniform",
            Family::Bursty => "bursty",
            Family::Laminar => "laminar",
            Family::Agreeable => "agreeable",
            Family::TightLoad => "tight-load",
            Family::AvrAdversarial => "avr-adversarial",
            Family::Poisson => "poisson",
            Family::HeavyTail => "heavy-tail",
            Family::Periodic => "periodic",
        }
    }
}

/// A reproducible workload: family + size + seed.
#[derive(Copy, Clone, Debug, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Which family to draw from.
    pub family: Family,
    /// Number of jobs (families may round slightly, e.g. laminar trees).
    pub n: usize,
    /// Number of processors.
    pub m: usize,
    /// Horizon length (integer grid).
    pub horizon: u64,
    /// RNG seed.
    pub seed: u64,
}

impl WorkloadSpec {
    /// A spec with a 100-unit horizon.
    pub fn new(family: Family, n: usize, m: usize, seed: u64) -> WorkloadSpec {
        WorkloadSpec {
            family,
            n,
            m,
            horizon: 100,
            seed,
        }
    }

    /// Generates the instance (deterministic in the spec).
    pub fn generate(&self) -> Instance<f64> {
        assert!(self.n >= 1 && self.m >= 1 && self.horizon >= 4);
        let mut rng = StdRng::seed_from_u64(self.seed ^ (self.family as u64) << 32);
        let jobs = match self.family {
            Family::Uniform => self.uniform(&mut rng),
            Family::Bursty => self.bursty(&mut rng),
            Family::Laminar => self.laminar(&mut rng),
            Family::Agreeable => self.agreeable(&mut rng),
            Family::TightLoad => self.tight_load(&mut rng),
            Family::AvrAdversarial => self.avr_adversarial(),
            Family::Poisson => self.poisson(&mut rng),
            Family::HeavyTail => self.heavy_tail(&mut rng),
            Family::Periodic => self.periodic(&mut rng),
        };
        Instance::new(self.m, jobs).expect("generator produced an invalid instance")
    }

    fn uniform(&self, rng: &mut StdRng) -> Vec<Job<f64>> {
        let h = self.horizon;
        (0..self.n)
            .map(|_| {
                let r = rng.gen_range(0..h - 1);
                let span = rng.gen_range(1..=h - r);
                let w = rng.gen_range(1..=10) as f64;
                job(r as f64, (r + span) as f64, w)
            })
            .collect()
    }

    fn bursty(&self, rng: &mut StdRng) -> Vec<Job<f64>> {
        let h = self.horizon;
        let bursts = (self.n / 4).clamp(1, 8);
        let burst_times: Vec<u64> = (0..bursts).map(|_| rng.gen_range(0..h - 2)).collect();
        (0..self.n)
            .map(|i| {
                let r = burst_times[i % bursts];
                let span = rng.gen_range(1..=(h - r).min(h / 4).max(1));
                let w = rng.gen_range(1..=10) as f64;
                job(r as f64, (r + span) as f64, w)
            })
            .collect()
    }

    fn laminar(&self, rng: &mut StdRng) -> Vec<Job<f64>> {
        // Walk a dyadic tree over [0, horizon); each node contributes one
        // job spanning its whole range, until n jobs exist.
        let mut jobs = Vec::with_capacity(self.n);
        let mut queue = std::collections::VecDeque::new();
        queue.push_back((0u64, self.horizon));
        while jobs.len() < self.n {
            let Some((a, b)) = queue.pop_front() else {
                break;
            };
            if b - a < 1 {
                continue;
            }
            let w = rng.gen_range(1..=10) as f64;
            jobs.push(job(a as f64, b as f64, w));
            let mid = (a + b) / 2;
            if mid > a && b > mid {
                queue.push_back((a, mid));
                queue.push_back((mid, b));
            }
        }
        // Top up with unit jobs at random dyadic leaves if the tree ran out.
        while jobs.len() < self.n {
            let a = rng.gen_range(0..self.horizon - 1);
            jobs.push(job(a as f64, (a + 1) as f64, rng.gen_range(1..=10) as f64));
        }
        jobs
    }

    fn agreeable(&self, rng: &mut StdRng) -> Vec<Job<f64>> {
        let h = self.horizon;
        let mut releases: Vec<u64> = (0..self.n).map(|_| rng.gen_range(0..h - 2)).collect();
        releases.sort_unstable();
        let mut last_d = 0u64;
        releases
            .iter()
            .map(|&r| {
                let span = rng.gen_range(1..=(h - r).max(1));
                let d = (r + span).max(last_d + 1).min(h + self.n as u64);
                last_d = d;
                job(r as f64, d as f64, rng.gen_range(1..=10) as f64)
            })
            .collect()
    }

    fn tight_load(&self, rng: &mut StdRng) -> Vec<Job<f64>> {
        // Long windows; total volume ≈ m · horizon so the machine runs near
        // speed 1 everywhere.
        let h = self.horizon;
        let target = (self.m as u64 * h) as f64;
        let per_job = target / self.n as f64;
        (0..self.n)
            .map(|_| {
                let r = rng.gen_range(0..h / 4);
                let d = rng.gen_range(3 * h / 4..=h);
                let w = (per_job * rng.gen_range(0.5..1.5)).max(1.0);
                job(r as f64, d as f64, w)
            })
            .collect()
    }

    fn poisson(&self, rng: &mut StdRng) -> Vec<Job<f64>> {
        // Inter-arrival gaps geometric on the integer grid (the discrete
        // Poisson process), windows geometric too, clamped to the horizon.
        let h = self.horizon;
        let rate = self.n as f64 / h as f64;
        let mut t = 0u64;
        let mut jobs = Vec::with_capacity(self.n);
        for _ in 0..self.n {
            // Geometric gap with success probability min(1, rate).
            let p = rate.clamp(1e-3, 1.0);
            let mut gap = 0u64;
            while rng.gen_range(0.0..1.0) > p && gap < h / 2 {
                gap += 1;
            }
            t = (t + gap).min(h - 2);
            let mut span = 1u64;
            while rng.gen_range(0.0..1.0) > 0.3 && t + span < h {
                span += 1;
            }
            jobs.push(job(
                t as f64,
                (t + span) as f64,
                rng.gen_range(1..=6) as f64,
            ));
        }
        jobs
    }

    fn heavy_tail(&self, rng: &mut StdRng) -> Vec<Job<f64>> {
        // Pareto(α = 1.3)-shaped integer volumes, capped, on uniform
        // windows: elephants and mice.
        let h = self.horizon;
        (0..self.n)
            .map(|_| {
                let r = rng.gen_range(0..h - 1);
                let span = rng.gen_range(1..=h - r);
                let u: f64 = rng.gen_range(0.001..1.0);
                let w = (u.powf(-1.0 / 1.3)).clamp(1.0, 64.0).round();
                job(r as f64, (r + span) as f64, w)
            })
            .collect()
    }

    fn periodic(&self, rng: &mut StdRng) -> Vec<Job<f64>> {
        // A few implicit-deadline periodic tasks; jobs are the releases
        // within the horizon (truncated to n jobs total).
        let h = self.horizon;
        let num_tasks = (self.n / 4).clamp(1, 6);
        let mut jobs = Vec::with_capacity(self.n);
        let tasks: Vec<(u64, f64)> = (0..num_tasks)
            .map(|_| {
                let period = rng.gen_range(2..=(h / 2).max(2));
                let wcet = rng.gen_range(1..=4) as f64;
                (period, wcet)
            })
            .collect();
        'outer: for &(period, wcet) in &tasks {
            let mut t = 0u64;
            while t + period <= h {
                jobs.push(job(t as f64, (t + period) as f64, wcet));
                if jobs.len() >= self.n {
                    break 'outer;
                }
                t += period;
            }
        }
        // Horizon exhausted before n jobs: top up with unit fillers.
        while jobs.len() < self.n {
            let r = rng.gen_range(0..h - 1);
            jobs.push(job(r as f64, (r + 1) as f64, 1.0));
        }
        jobs.truncate(self.n);
        jobs
    }

    fn avr_adversarial(&self) -> Vec<Job<f64>> {
        // Geometric stack: job i releases at H − H/2^i, everyone deadlines
        // at H, equal volumes ⇒ densities double with i and AVR's total
        // speed ramps as deadlines approach, while OPT spreads each job's
        // work evenly.
        let levels = self.n.min(16); // beyond 2^16 the grid collapses
        let h = self.horizon.next_power_of_two().max(1 << levels.min(20));
        let mut jobs: Vec<Job<f64>> = (0..levels)
            .map(|i| {
                let r = h - (h >> i);
                job(r as f64, h as f64, 1.0)
            })
            .collect();
        // Pad to n with copies at the densest level.
        while jobs.len() < self.n {
            let r = h - 1;
            jobs.push(job(r as f64, h as f64, 1.0));
        }
        jobs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpss_core::Intervals;

    #[test]
    fn all_families_generate_valid_instances() {
        for family in Family::ALL {
            for seed in 0..5u64 {
                let spec = WorkloadSpec {
                    family,
                    n: 12,
                    m: 3,
                    horizon: 64,
                    seed,
                };
                let ins = spec.generate();
                assert_eq!(ins.n(), 12, "{family:?}");
                assert_eq!(ins.m, 3);
                assert!(!Intervals::from_instance(&ins).is_empty());
            }
        }
    }

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        for family in Family::ALL {
            let a = WorkloadSpec {
                family,
                n: 10,
                m: 2,
                horizon: 50,
                seed: 9,
            }
            .generate();
            let b = WorkloadSpec {
                family,
                n: 10,
                m: 2,
                horizon: 50,
                seed: 9,
            }
            .generate();
            let c = WorkloadSpec {
                family,
                n: 10,
                m: 2,
                horizon: 50,
                seed: 10,
            }
            .generate();
            assert_eq!(a, b, "{family:?} not deterministic");
            if family != Family::AvrAdversarial {
                assert_ne!(a, c, "{family:?} ignores the seed");
            }
        }
    }

    #[test]
    fn coordinates_are_integers() {
        for family in [
            Family::Uniform,
            Family::Bursty,
            Family::Laminar,
            Family::Agreeable,
        ] {
            let ins = WorkloadSpec {
                family,
                n: 16,
                m: 2,
                horizon: 40,
                seed: 3,
            }
            .generate();
            for j in &ins.jobs {
                assert_eq!(j.release.fract(), 0.0);
                assert_eq!(j.deadline.fract(), 0.0);
            }
        }
    }

    #[test]
    fn laminar_windows_are_laminar() {
        let ins = WorkloadSpec {
            family: Family::Laminar,
            n: 15,
            m: 2,
            horizon: 64,
            seed: 1,
        }
        .generate();
        for a in &ins.jobs {
            for b in &ins.jobs {
                let disjoint = a.deadline <= b.release || b.deadline <= a.release;
                let nested = (a.release <= b.release && b.deadline <= a.deadline)
                    || (b.release <= a.release && a.deadline <= b.deadline);
                assert!(disjoint || nested, "windows cross: {a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn agreeable_order_is_agreeable() {
        let ins = WorkloadSpec {
            family: Family::Agreeable,
            n: 20,
            m: 2,
            horizon: 80,
            seed: 5,
        }
        .generate();
        for w in ins.jobs.windows(2) {
            assert!(w[0].release <= w[1].release);
            assert!(w[0].deadline <= w[1].deadline);
        }
    }

    #[test]
    fn adversarial_densities_double() {
        let ins = WorkloadSpec {
            family: Family::AvrAdversarial,
            n: 8,
            m: 1,
            horizon: 256,
            seed: 0,
        }
        .generate();
        for w in ins.jobs.windows(2) {
            let ratio = w[1].density() / w[0].density();
            assert!((ratio - 2.0).abs() < 1e-9, "density ratio {ratio}");
        }
    }

    #[test]
    fn tight_load_is_heavy() {
        let ins = WorkloadSpec {
            family: Family::TightLoad,
            n: 20,
            m: 4,
            horizon: 100,
            seed: 2,
        }
        .generate();
        let total: f64 = ins.jobs.iter().map(|j| j.volume).sum();
        // Within a factor 2 of m·horizon by construction.
        assert!(
            total > 0.4 * 400.0 && total < 2.0 * 400.0,
            "total volume {total}"
        );
    }
}
