//! Certificate checking for offline results — the *certifying algorithm*
//! pattern: [`optimal_schedule`](crate::optimal_schedule) returns not just
//! a schedule but its phase structure, and this module re-verifies that the
//! two are consistent with the paper's optimality characterization without
//! re-running the algorithm:
//!
//! 1. the schedule is feasible (independent validator);
//! 2. every job runs at its phase's constant speed (Lemma 1 form);
//! 3. phase speeds are strictly decreasing (`s_1 > … > s_p`);
//! 4. processor reservations follow Lemma 3's formula
//!    `m_ij = min(n_ij, m − Σ_{l<i} m_lj)`;
//! 5. in every interval, each phase's jobs exactly fill its reserved
//!    processors (`Σ_k t_kj = m_ij·|I_j|`) with per-job times ≤ `|I_j|` —
//!    i.e. the schedule realizes a saturating flow of the phase's Fig. 1
//!    network.
//!
//! Conditions 1–5 are exactly the structure the paper's Lemmas 2–5 prove
//! an optimal schedule to have and which the algorithm constructs; a result
//! that passes cannot have been silently mangled between computation and
//! use (serialization, transformation, hand edits).

use crate::optimal::OptimalResult;
use mpss_core::validate::validate_schedule;
use mpss_core::Instance;
use mpss_numeric::FlowNum;

/// Why a certificate was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum CertificateError {
    /// The schedule itself is infeasible.
    Infeasible(String),
    /// A job's executed speed differs from its phase's speed.
    WrongJobSpeed { job: usize, expected: f64, got: f64 },
    /// A job appears in no phase (or in two).
    BrokenPartition { job: usize },
    /// Phase speeds are not strictly decreasing.
    SpeedsNotDecreasing { phase: usize },
    /// Lemma 3's reservation formula is violated.
    BadReservation {
        phase: usize,
        interval: usize,
        expected: usize,
        got: usize,
    },
    /// A phase's reserved processors are not exactly filled in an interval.
    NotSaturated { phase: usize, interval: usize },
    /// A job exceeds `|I_j|` execution time within one interval.
    OverfullInterval { job: usize, interval: usize },
}

impl std::fmt::Display for CertificateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?}")
    }
}

impl std::error::Error for CertificateError {}

/// Verifies the structural certificate of an offline result. `eps` is the
/// `f64` tolerance (pass 0 semantics via the exact type).
pub fn verify_certificate<T: FlowNum>(
    instance: &Instance<T>,
    result: &OptimalResult<T>,
    eps: f64,
) -> Result<(), CertificateError> {
    // 1. Feasibility.
    if let Err(v) = validate_schedule(instance, &result.schedule, eps) {
        return Err(CertificateError::Infeasible(format!(
            "{} violations",
            v.len()
        )));
    }

    // 2. Partition + per-job speeds match phase speeds.
    let mut phase_of = vec![usize::MAX; instance.n()];
    for (i, phase) in result.phases.iter().enumerate() {
        for &k in &phase.jobs {
            if phase_of[k] != usize::MAX {
                return Err(CertificateError::BrokenPartition { job: k });
            }
            phase_of[k] = i;
        }
    }
    if let Some(job) = phase_of.iter().position(|&p| p == usize::MAX) {
        return Err(CertificateError::BrokenPartition { job });
    }
    for seg in &result.schedule.segments {
        let expected = result.phases[phase_of[seg.job]].speed;
        if !T::close(seg.speed, expected, expected, eps) {
            return Err(CertificateError::WrongJobSpeed {
                job: seg.job,
                expected: expected.to_f64(),
                got: seg.speed.to_f64(),
            });
        }
    }

    // 3. Strictly decreasing ladder.
    for (i, w) in result.phases.windows(2).enumerate() {
        if !T::definitely_lt(w[1].speed, w[0].speed, w[0].speed, eps) {
            return Err(CertificateError::SpeedsNotDecreasing { phase: i + 1 });
        }
    }

    // 4 + 5. Reservations and saturation per interval.
    let iv = &result.intervals;
    let mut used = vec![0usize; iv.len()];
    for (i, phase) in result.phases.iter().enumerate() {
        #[allow(clippy::needless_range_loop)] // j indexes used[], bounds(), procs[] together
        for j in 0..iv.len() {
            let n_ij = phase
                .jobs
                .iter()
                .filter(|&&k| iv.job_active(&instance.jobs[k], j))
                .count();
            let expected = n_ij.min(instance.m - used[j]);
            if phase.procs[j] != expected {
                return Err(CertificateError::BadReservation {
                    phase: i,
                    interval: j,
                    expected,
                    got: phase.procs[j],
                });
            }
            // Saturation: total time of this phase's jobs inside I_j.
            let (a, b) = iv.bounds(j);
            let len = iv.length(j);
            let mut total = T::zero();
            for seg in &result.schedule.segments {
                if phase_of[seg.job] != i {
                    continue;
                }
                let lo = seg.start.max2(a);
                let hi = seg.end.min2(b);
                if lo < hi {
                    total += hi - lo;
                }
            }
            let target = T::from_usize(phase.procs[j]) * len;
            if !T::close(total, target, target.max2(T::one()), eps.max(1e-9)) {
                return Err(CertificateError::NotSaturated {
                    phase: i,
                    interval: j,
                });
            }
            // Per-job cap within the interval.
            for &k in &phase.jobs {
                let mut t_k = T::zero();
                for seg in result.schedule.segments.iter().filter(|s| s.job == k) {
                    let lo = seg.start.max2(a);
                    let hi = seg.end.min2(b);
                    if lo < hi {
                        t_k += hi - lo;
                    }
                }
                if T::definitely_lt(len, t_k, len, eps.max(1e-9)) {
                    return Err(CertificateError::OverfullInterval {
                        job: k,
                        interval: j,
                    });
                }
            }
            used[j] += phase.procs[j];
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimal_schedule;
    use mpss_core::job::job;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_instance(n: usize, m: usize, seed: u64) -> Instance<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let jobs = (0..n)
            .map(|_| {
                let r = rng.gen_range(0..10) as f64;
                let span = rng.gen_range(1..=6) as f64;
                job(r, r + span, rng.gen_range(1..=8) as f64)
            })
            .collect();
        Instance::new(m, jobs).unwrap()
    }

    #[test]
    fn genuine_results_pass() {
        for seed in 0..20u64 {
            let ins = random_instance(3 + (seed as usize % 7), 1 + (seed as usize % 4), seed);
            let res = optimal_schedule(&ins).unwrap();
            verify_certificate(&ins, &res, 1e-9)
                .unwrap_or_else(|e| panic!("seed {seed}: genuine certificate rejected: {e}"));
        }
    }

    #[test]
    fn exact_results_pass_at_zero_tolerance() {
        let ins = random_instance(6, 2, 7).to_rational();
        let res = optimal_schedule(&ins).unwrap();
        verify_certificate(&ins, &res, 0.0).unwrap();
    }

    #[test]
    fn tampered_speed_is_rejected() {
        let ins = random_instance(5, 2, 3);
        let mut res = optimal_schedule(&ins).unwrap();
        res.schedule.segments[0].speed *= 1.5;
        assert!(verify_certificate(&ins, &res, 1e-9).is_err());
    }

    #[test]
    fn tampered_phase_membership_is_rejected() {
        let ins = random_instance(5, 2, 4);
        let mut res = optimal_schedule(&ins).unwrap();
        if res.phases.len() >= 2 {
            let moved = res.phases[1].jobs.pop();
            if let Some(k) = moved {
                res.phases[0].jobs.push(k);
            }
            assert!(verify_certificate(&ins, &res, 1e-9).is_err());
        }
    }

    #[test]
    fn tampered_reservation_is_rejected() {
        let ins = random_instance(5, 2, 5);
        let mut res = optimal_schedule(&ins).unwrap();
        if let Some(j) = res.phases[0].procs.iter().position(|&x| x > 0) {
            res.phases[0].procs[j] += 1;
            let err = verify_certificate(&ins, &res, 1e-9).unwrap_err();
            assert!(matches!(
                err,
                CertificateError::BadReservation { .. } | CertificateError::NotSaturated { .. }
            ));
        }
    }

    #[test]
    fn dropped_segment_is_rejected_as_infeasible() {
        let ins = random_instance(5, 2, 6);
        let mut res = optimal_schedule(&ins).unwrap();
        res.schedule.segments.pop();
        assert!(matches!(
            verify_certificate(&ins, &res, 1e-9).unwrap_err(),
            CertificateError::Infeasible(_)
        ));
    }
}
