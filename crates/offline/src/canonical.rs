//! Canonicalization of arbitrary feasible schedules: the constructive
//! content of the paper's Lemmas 1 and 2.
//!
//! * **Lemma 1:** any feasible schedule can be modified so every job runs
//!   at one constant speed — keep each job's execution intervals and run it
//!   at its average speed; convexity makes the energy non-increasing.
//! * **Lemma 2:** within every interval of the event partition, execution
//!   can be rearranged so each processor runs a single constant speed —
//!   gather the per-job times, order by speed, and re-pack with
//!   McNaughton's wrap-around rule (legal because within the canonical
//!   partition a job executing in `I_j` is active throughout `I_j`, and its
//!   time there is at most `|I_j|`).
//!
//! [`canonicalize`] applies both, turning any validator-approved schedule
//! into the paper's normal form without increasing its energy under any
//! convex non-decreasing power function. The offline algorithm's output is
//! already in this form (canonicalization is idempotent on it — tested).

use mpss_core::{Instance, Intervals, Schedule, Segment};
use mpss_numeric::FlowNum;

/// Applies Lemma 1 (constant per-job speeds) and Lemma 2 (per-interval
/// wrap-around re-packing) to a feasible schedule.
///
/// The result completes the same per-job work in the same windows, uses no
/// more processors, and — by convexity — no more energy under any convex
/// non-decreasing power function. Validate the input first: garbage in,
/// garbage out.
///
/// ```
/// use mpss_core::{job::job, Instance, Schedule, Segment};
/// use mpss_core::energy::schedule_energy;
/// use mpss_core::power::Polynomial;
/// use mpss_offline::canonical::canonicalize;
///
/// let ins = Instance::new(1, vec![job(0.0, 4.0, 2.0)]).unwrap();
/// // A feasible but speed-varying schedule of the single job.
/// let mut s = Schedule::new(1);
/// s.push(Segment { job: 0, proc: 0, start: 0.0, end: 1.0, speed: 1.5 });
/// s.push(Segment { job: 0, proc: 0, start: 1.0, end: 2.0, speed: 0.5 });
/// let canon = canonicalize(&ins, &s);
/// // Lemma 1: the job now runs at one constant (average) speed.
/// assert!(canon.segments.iter().all(|seg| seg.speed == 1.0));
/// let p = Polynomial::new(2.0);
/// assert!(schedule_energy(&canon, &p) <= schedule_energy(&s, &p));
/// ```
pub fn canonicalize<T: FlowNum>(instance: &Instance<T>, schedule: &Schedule<T>) -> Schedule<T> {
    let intervals = Intervals::from_instance(instance);
    let n = instance.n();

    // ---- Lemma 1: per-job average speed over the job's own busy time.
    let mut total_time = vec![T::zero(); n];
    for seg in &schedule.segments {
        total_time[seg.job] += seg.duration();
    }
    let avg_speed: Vec<T> = (0..n)
        .map(|k| {
            if total_time[k].is_strictly_positive() {
                instance.jobs[k].volume / total_time[k]
            } else {
                T::zero()
            }
        })
        .collect();

    // ---- Lemma 2: per interval, per job, total executed time; then re-pack.
    let mut out = Schedule::new(schedule.m);
    for j in 0..intervals.len() {
        let (iv_start, iv_end) = intervals.bounds(j);
        let len = intervals.length(j);
        // Accumulate each job's time inside I_j.
        let mut time_in: Vec<T> = vec![T::zero(); n];
        for seg in &schedule.segments {
            let lo = seg.start.max2(iv_start);
            let hi = seg.end.min2(iv_end);
            if lo < hi {
                time_in[seg.job] += hi - lo;
            }
        }
        // Jobs present in I_j, fastest first (the paper's normal form sorts
        // per-interval speeds descending across processors).
        let mut present: Vec<(usize, T)> = (0..n)
            .filter(|&k| time_in[k].is_strictly_positive())
            .map(|k| (k, time_in[k].min2(len)))
            .collect();
        present.sort_by(|a, b| {
            avg_speed[b.0]
                .partial_cmp(&avg_speed[a.0])
                .expect("comparable speeds")
                .then(a.0.cmp(&b.0))
        });
        // Wrap-around packing.
        let mut proc = 0usize;
        let mut cap = len;
        for (k, mut t) in present {
            while T::definitely_lt(T::zero(), t, len, 1e-9) {
                if proc >= schedule.m {
                    break; // float dust beyond capacity
                }
                if !T::definitely_lt(T::zero(), cap, len, 1e-9) {
                    proc += 1;
                    cap = len;
                    continue;
                }
                let chunk = t.min2(cap);
                let start = iv_start + (len - cap);
                out.push(Segment {
                    job: k,
                    proc,
                    start,
                    end: start + chunk,
                    speed: avg_speed[k],
                });
                t -= chunk;
                cap -= chunk;
            }
        }
    }
    out.normalize();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::non_migratory::{non_migratory_schedule, AssignPolicy};
    use crate::optimal_schedule;
    use mpss_core::energy::schedule_energy;
    use mpss_core::job::job;
    use mpss_core::power::{Exponential, Polynomial, PowerFunction};
    use mpss_core::validate::assert_feasible;

    fn sample() -> Instance<f64> {
        Instance::new(
            2,
            vec![
                job(0.0, 4.0, 3.0),
                job(0.0, 2.0, 2.0),
                job(1.0, 3.0, 2.0),
                job(2.0, 6.0, 1.0),
            ],
        )
        .unwrap()
    }

    /// A deliberately wasteful feasible schedule: each job runs at twice its
    /// necessary speed in the first half of its window.
    fn wasteful(instance: &Instance<f64>) -> Schedule<f64> {
        let mut s = Schedule::new(instance.m);
        for (k, j) in instance.jobs.iter().enumerate() {
            let half = 0.5 * (j.release + j.deadline);
            s.push(Segment {
                job: k,
                proc: k % instance.m,
                start: j.release,
                end: half,
                speed: j.volume / (half - j.release),
            });
        }
        s
    }

    #[test]
    fn canonical_form_is_feasible_and_cheaper() {
        // Use a wasteful-but-feasible input on an instance where jobs on
        // one processor do not collide (round-robin halves collide here, so
        // use a 4-processor machine to keep the input feasible).
        let ins = Instance::new(4, sample().jobs).unwrap();
        let input = wasteful(&ins);
        assert_feasible(&ins, &input, 1e-9);
        let canon = canonicalize(&ins, &input);
        assert_feasible(&ins, &canon, 1e-9);
        for p in [
            Box::new(Polynomial::new(2.0)) as Box<dyn PowerFunction>,
            Box::new(Polynomial::new(3.0)),
            Box::new(Exponential),
        ] {
            let before = schedule_energy(&input, &p);
            let after = schedule_energy(&canon, &p);
            assert!(
                after <= before + 1e-9 * before,
                "{}: canonicalization raised energy {before} -> {after}",
                p.describe()
            );
        }
    }

    #[test]
    fn lemma1_gives_every_job_one_speed() {
        let ins = Instance::new(4, sample().jobs).unwrap();
        let canon = canonicalize(&ins, &wasteful(&ins));
        for k in 0..ins.n() {
            let speeds: Vec<f64> = canon
                .segments
                .iter()
                .filter(|s| s.job == k)
                .map(|s| s.speed)
                .collect();
            for w in speeds.windows(2) {
                assert!((w[0] - w[1]).abs() < 1e-12, "job {k} runs at two speeds");
            }
        }
    }

    #[test]
    fn idempotent_on_optimal_schedules() {
        let ins = sample();
        let opt = optimal_schedule(&ins).unwrap().schedule;
        let canon = canonicalize(&ins, &opt);
        assert_feasible(&ins, &canon, 1e-9);
        let p = Polynomial::new(2.0);
        let a = schedule_energy(&opt, &p);
        let b = schedule_energy(&canon, &p);
        assert!(
            (a - b).abs() <= 1e-9 * a,
            "canonicalizing the optimum changed its energy: {a} vs {b}"
        );
    }

    #[test]
    fn canonicalizing_non_migratory_keeps_it_feasible() {
        let ins = sample();
        let nm = non_migratory_schedule(&ins, 2.0, AssignPolicy::LeastLoaded);
        let canon = canonicalize(&ins, &nm.schedule);
        assert_feasible(&ins, &canon, 1e-9);
        let p = Polynomial::new(2.0);
        assert!(schedule_energy(&canon, &p) <= schedule_energy(&nm.schedule, &p) * (1.0 + 1e-9));
    }

    #[test]
    fn empty_schedule_stays_empty() {
        let ins: Instance<f64> = Instance::new(2, vec![]).unwrap();
        let canon = canonicalize(&ins, &Schedule::new(2));
        assert!(canon.is_empty());
    }
}
