//! The Bingham–Greenstreet-style LP baseline.
//!
//! Bingham & Greenstreet (ISPA 2008) showed the migratory offline problem
//! solvable by linear programming for general convex power functions; the
//! paper's stated motivation for its combinatorial algorithm is that the LP
//! route is "too high \[in complexity\] for most practical applications".
//! This module reproduces the LP route so the comparison can be measured:
//!
//! * pick a finite speed menu `σ_1 < … < σ_K` (the convex `P` is evaluated
//!   only at menu speeds — a piecewise-linear over-approximation);
//! * variables `t_{k,j,q} ≥ 0`: time job `k` runs at speed `σ_q` inside
//!   interval `I_j` (only for `k` active in `I_j`);
//! * constraints: per-job work completion (equality), per-job-per-interval
//!   time ≤ `|I_j|` (no self-parallelism), per-interval total time
//!   ≤ `m·|I_j|` (machine capacity);
//! * objective: `min Σ P(σ_q) · t_{k,j,q}`.
//!
//! Any feasible LP point packs into a feasible schedule by McNaughton
//! wrap-around (same argument as the flow algorithm), so `LP_opt ≥ OPT`;
//! with a menu fine enough to straddle every optimal speed,
//! `LP_opt → OPT` from above as `K → ∞` (convexity makes the two-point
//! mixture of adjacent menu speeds cost exactly the secant).

use crate::yds::yds_schedule;
use mpss_core::{Instance, Intervals, PowerFunction, Schedule, Segment};
use mpss_lp::{Constraint, LinearProgram, LpOutcome, Solution};

/// Result of the LP baseline.
#[derive(Clone, Debug)]
pub struct LpBaselineResult {
    /// Optimal LP objective (an upper bound on OPT's energy, tight as K→∞).
    pub energy: f64,
    /// A feasible schedule realizing `energy` (wrap-around packing).
    pub schedule: Schedule<f64>,
    /// LP size, for the complexity comparison.
    pub num_vars: usize,
    /// LP row count.
    pub num_constraints: usize,
}

/// Errors from the baseline.
#[derive(Debug)]
pub enum LpBaselineError {
    /// The inner solver failed structurally.
    Solver(mpss_lp::LpError),
    /// The LP was infeasible/unbounded (cannot happen with a menu whose top
    /// speed is ≥ the YDS peak; surfaced defensively).
    NoOptimum,
}

impl From<mpss_lp::LpError> for LpBaselineError {
    fn from(e: mpss_lp::LpError) -> Self {
        LpBaselineError::Solver(e)
    }
}

/// Solves the instance by the LP route with a `k_speeds`-point linear menu.
///
/// The menu top is the single-processor YDS peak speed (an upper bound on
/// any speed an optimal migratory schedule uses, since speeds only drop as
/// `m` grows).
pub fn lp_baseline(
    instance: &Instance<f64>,
    power: &impl PowerFunction,
    k_speeds: usize,
) -> Result<LpBaselineResult, LpBaselineError> {
    assert!(k_speeds >= 2, "need at least two menu speeds");
    if instance.is_empty() {
        return Ok(LpBaselineResult {
            energy: 0.0,
            schedule: Schedule::new(instance.m),
            num_vars: 0,
            num_constraints: 0,
        });
    }
    let intervals = Intervals::from_instance(instance);
    let nj = intervals.len();
    let n = instance.n();

    // Menu: linear grid (σ_1 > 0) topped by the YDS peak. The peak itself
    // is always in the menu so tight single-interval jobs stay feasible.
    let s_max = yds_schedule(instance)
        .speeds
        .first()
        .copied()
        .unwrap_or(1.0)
        .max(1e-9);
    let menu: Vec<f64> = (1..=k_speeds)
        .map(|q| s_max * q as f64 / k_speeds as f64)
        .collect();

    // Variable layout: (job, interval, menu index).
    let mut vars: Vec<(usize, usize, usize)> = Vec::new();
    for (k, job) in instance.jobs.iter().enumerate() {
        for j in 0..nj {
            if intervals.job_active(job, j) {
                for q in 0..menu.len() {
                    vars.push((k, j, q));
                }
            }
        }
    }
    let nv = vars.len();

    let objective: Vec<f64> = vars.iter().map(|&(_, _, q)| power.power(menu[q])).collect();
    let mut lp = LinearProgram::minimize(objective);

    // Work completion per job.
    for k in 0..n {
        let mut row = vec![0.0; nv];
        for (i, &(vk, _, q)) in vars.iter().enumerate() {
            if vk == k {
                row[i] = menu[q];
            }
        }
        lp = lp.subject_to(Constraint::eq(row, instance.jobs[k].volume));
    }
    // Per-job per-interval time cap (no self-parallelism).
    for k in 0..n {
        for j in 0..nj {
            if !intervals.job_active(&instance.jobs[k], j) {
                continue;
            }
            let mut row = vec![0.0; nv];
            let mut any = false;
            for (i, &(vk, vj, _)) in vars.iter().enumerate() {
                if vk == k && vj == j {
                    row[i] = 1.0;
                    any = true;
                }
            }
            if any {
                lp = lp.subject_to(Constraint::le(row, intervals.length(j)));
            }
        }
    }
    // Machine capacity per interval.
    for j in 0..nj {
        let mut row = vec![0.0; nv];
        let mut any = false;
        for (i, &(_, vj, _)) in vars.iter().enumerate() {
            if vj == j {
                row[i] = 1.0;
                any = true;
            }
        }
        if any {
            lp = lp.subject_to(Constraint::le(row, instance.m as f64 * intervals.length(j)));
        }
    }

    let num_constraints = lp.constraints.len();
    let sol = match mpss_lp::solve(&lp)? {
        LpOutcome::Optimal(s) => s,
        _ => return Err(LpBaselineError::NoOptimum),
    };

    let schedule = pack_solution(instance, &intervals, &sol, &vars, &menu);
    Ok(LpBaselineResult {
        energy: sol.objective,
        schedule,
        num_vars: nv,
        num_constraints,
    })
}

/// Packs an LP solution into a schedule: per interval, gather every job's
/// (speed, time) chunks — total per job ≤ `|I_j|` by the LP constraints —
/// and wrap them across the `m` processors job-contiguously.
fn pack_solution(
    instance: &Instance<f64>,
    intervals: &Intervals<f64>,
    sol: &Solution,
    vars: &[(usize, usize, usize)],
    menu: &[f64],
) -> Schedule<f64> {
    const TINY: f64 = 1e-11;
    let mut schedule = Schedule::new(instance.m);
    for j in 0..intervals.len() {
        let (iv_start, _) = intervals.bounds(j);
        let len = intervals.length(j);
        // Chunks per job, job-contiguous ordering.
        let mut chunks: Vec<(usize, f64, f64)> = Vec::new(); // (job, time, speed)
        for (i, &(k, jj, q)) in vars.iter().enumerate() {
            if jj == j && sol.x[i] > TINY {
                chunks.push((k, sol.x[i].min(len), menu[q]));
            }
        }
        chunks.sort_by(|a, b| a.0.cmp(&b.0).then(b.2.partial_cmp(&a.2).unwrap()));
        // Wrap-around packing.
        let mut proc = 0usize;
        let mut cap = len;
        for (job, mut t, speed) in chunks {
            while t > TINY {
                if proc >= instance.m {
                    break; // float dust beyond capacity
                }
                if cap <= TINY {
                    proc += 1;
                    cap = len;
                    continue;
                }
                let chunk = t.min(cap);
                let seg_start = iv_start + (len - cap);
                schedule.push(Segment {
                    job,
                    proc,
                    start: seg_start,
                    end: seg_start + chunk,
                    speed,
                });
                t -= chunk;
                cap -= chunk;
            }
        }
    }
    schedule.normalize();
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpss_core::energy::schedule_energy;
    use mpss_core::job::job;
    use mpss_core::power::Polynomial;
    use mpss_core::validate::assert_feasible;

    #[test]
    fn single_job_lp_matches_analytic_optimum_when_menu_hits_density() {
        // Density 0.5; menu with K=4 over s_max=0.5 contains 0.5 exactly.
        let ins = Instance::new(1, vec![job(0.0, 4.0, 2.0)]).unwrap();
        let p = Polynomial::new(2.0);
        let res = lp_baseline(&ins, &p, 4).unwrap();
        assert_feasible(&ins, &res.schedule, 1e-7);
        assert!((res.energy - 1.0).abs() < 1e-7, "E = {}", res.energy); // 0.25·4
    }

    #[test]
    fn lp_upper_bounds_tighten_with_finer_menus() {
        let ins = Instance::new(
            2,
            vec![job(0.0, 2.0, 2.0), job(0.0, 3.0, 1.5), job(1.0, 4.0, 2.0)],
        )
        .unwrap();
        let p = Polynomial::new(3.0);
        let coarse = lp_baseline(&ins, &p, 3).unwrap().energy;
        let medium = lp_baseline(&ins, &p, 9).unwrap().energy;
        let fine = lp_baseline(&ins, &p, 27).unwrap().energy;
        assert!(coarse >= medium - 1e-9, "coarse {coarse} < medium {medium}");
        assert!(medium >= fine - 1e-9, "medium {medium} < fine {fine}");
    }

    #[test]
    fn packed_schedule_is_feasible_and_matches_lp_energy() {
        let ins = Instance::new(
            2,
            vec![job(0.0, 2.0, 2.0), job(0.0, 2.0, 1.0), job(1.0, 3.0, 1.0)],
        )
        .unwrap();
        let p = Polynomial::new(2.0);
        let res = lp_baseline(&ins, &p, 12).unwrap();
        assert_feasible(&ins, &res.schedule, 1e-6);
        let packed_energy = schedule_energy(&res.schedule, &p);
        assert!(
            (packed_energy - res.energy).abs() <= 1e-6 * res.energy.max(1.0),
            "packed {packed_energy} vs LP {}",
            res.energy
        );
    }

    #[test]
    fn empty_instance() {
        let ins: Instance<f64> = Instance::new(2, vec![]).unwrap();
        let res = lp_baseline(&ins, &Polynomial::new(2.0), 4).unwrap();
        assert_eq!(res.energy, 0.0);
        assert_eq!(res.num_vars, 0);
    }

    #[test]
    fn lp_size_grows_with_menu_as_claimed() {
        let ins = Instance::new(2, vec![job(0.0, 2.0, 1.0), job(1.0, 3.0, 1.0)]).unwrap();
        let small = lp_baseline(&ins, &Polynomial::new(2.0), 4).unwrap();
        let large = lp_baseline(&ins, &Polynomial::new(2.0), 16).unwrap();
        assert_eq!(large.num_vars, 4 * small.num_vars);
    }
}
