//! The combinatorial optimal offline algorithm (paper Fig. 2, Theorem 1).
//!
//! The algorithm constructs an optimal schedule in *phases*. Phase `i`
//! identifies the set `J_i` of jobs that an optimal schedule runs at the
//! `i`-th highest speed `s_i`:
//!
//! 1. start with the estimate `J` = all jobs not yet placed in earlier
//!    phases (invariant of Lemma 4: `J_i ⊆ J` always);
//! 2. reserve `m_j = min{n_j, m − Σ_{l<i} m_lj}` processors in every
//!    interval `I_j` (Lemma 3), where `n_j` counts jobs of `J` active in
//!    `I_j`;
//! 3. conjecture the uniform speed `s = W/P` with `W = Σ_{J} w_k` and
//!    `P = Σ_j m_j |I_j|`;
//! 4. build the Fig. 1 network `G(J, m⃗, s)` and compute a maximum flow. If
//!    it saturates the target `F_G = P`, the estimate is correct: `J_i = J`,
//!    and the flow *is* a feasible assignment of per-interval execution
//!    times. Otherwise some interval vertex is deficient; a job edge into it
//!    carrying less than `|I_j|` flow identifies a job that provably does
//!    not belong to `J_i` (Lemma 4) — remove it and repeat.
//!
//! Within each interval the per-job times are packed onto the reserved
//! processors with McNaughton's wrap-around rule, which is feasible because
//! every `t_kj ≤ |I_j|` (Lemma 2's normal form).
//!
//! The schedule produced is optimal for **every** convex non-decreasing
//! power function simultaneously; `P(s)` never enters the computation.

use crate::flow_model::FlowModel;
use crate::incremental::{scratch_partition_ops, PreparedInstance};
use mpss_core::{Instance, Intervals, JobId, ModelError, Schedule, Segment};
use mpss_maxflow::{
    residual_reachable_tol, Dinic, FlowNetwork, MaxFlow, NodeId, PushRelabel, WarmStartable,
};
use mpss_numeric::FlowNum;
use mpss_obs::{Collector, NoopCollector, TrackedCollector};
use mpss_par::{race2, RaceWinner};

/// Which max-flow engine the offline algorithm runs internally.
///
/// Dinic is the production default (the scheduling networks are shallow
/// and unit-like, where blocking flows shine); push–relabel is provided for
/// the end-to-end engine ablation (`exp_maxflow_ablation`) and as a
/// correctness cross-check — both must produce schedules of identical
/// energy.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum FlowEngine {
    /// Dinic's blocking-flow algorithm (default).
    #[default]
    Dinic,
    /// Highest-label push–relabel with the gap heuristic.
    PushRelabel,
}

/// Tuning knobs for [`optimal_schedule_with`].
#[derive(Clone, Debug)]
pub struct OfflineOptions {
    /// Relative tolerance for the `f64` path (ignored by exact arithmetic).
    pub eps: f64,
    /// Record a per-round trace (used by the Fig. 2 experiment binary).
    pub record_trace: bool,
    /// The max-flow engine to run internally.
    pub engine: FlowEngine,
    /// Reuse the residual network across repair rounds of a phase instead of
    /// rebuilding it cold each round (default `true`). The warm path produces
    /// bit-identical phases — the removal rule below reads only the
    /// flow-invariant min-cut certificate, and all capacities are recomputed
    /// with expression-identical arithmetic — so this is purely a work
    /// optimisation. Set to `false` to get the cold solver as a differential
    /// oracle (`--cold-flow` in the CLI).
    pub warm_start: bool,
    /// Race Dinic and push–relabel on every max-flow probe (default
    /// `false`), keeping whichever finishes first and cancelling the other
    /// cooperatively. When set, [`OfflineOptions::engine`] is ignored.
    ///
    /// Racing is *sound*, not just fast-on-average: the value of a maximum
    /// flow is unique, and the only decision the solver hangs on the flow —
    /// Lemma 4's removal rule — reads the canonical min-cut certificate
    /// ([`residual_reachable_tol`]), which is identical for every maximum
    /// flow. So phases, speeds and energy are bit-identical whichever engine
    /// wins; only the segment-level packing within an accepted interval may
    /// differ (it is free to, up to the chosen maximum flow). Each race
    /// clones the probe network once; the loser's network and partial work
    /// counters are discarded (see [`MaxFlow::restore_stats`]).
    pub race_engines: bool,
}

impl Default for OfflineOptions {
    fn default() -> Self {
        OfflineOptions {
            eps: 1e-9,
            record_trace: false,
            engine: FlowEngine::Dinic,
            warm_start: true,
            race_engines: false,
        }
    }
}

/// Per-job execution spans carried from a previous plan, used to seed the
/// first max-flow of each phase when replanning a closely related instance
/// (the OA(m) driver re-solves after every arrival; surviving jobs keep most
/// of their flow).
///
/// `spans[k]` lists half-open wall-clock spans `(start, end)` during which
/// job `k` (an id of the instance being solved) was executing in the previous
/// plan. Spans may be unsorted and may overlap interval boundaries; they are
/// clipped against each interval when converted to seed flow. The seed is a
/// hint only: seeded flow never exceeds edge capacities, and the subsequent
/// re-augmentation restores maximality, so an arbitrarily wrong seed cannot
/// change the result — only the amount of residual work.
#[derive(Clone, Debug, Default)]
pub struct SeedPlan<T> {
    /// Per-job spans, indexed by the job ids of the instance being solved.
    pub spans: Vec<Vec<(T, T)>>,
}

/// One phase of the algorithm: the job set `J_i`, its uniform speed `s_i`,
/// and the processors it occupies per interval (`m_ij` of Lemma 3).
#[derive(Clone, Debug)]
pub struct PhaseInfo<T> {
    /// Uniform speed `s_i` of this phase.
    pub speed: T,
    /// Jobs executed at `s_i` (original instance ids).
    pub jobs: Vec<JobId>,
    /// `m_ij`: processors reserved in each interval.
    pub procs: Vec<usize>,
    /// Number of max-flow rounds this phase needed.
    pub rounds: usize,
}

/// One round of one phase, for the Fig. 2 execution trace.
#[derive(Clone, Debug)]
pub struct RoundTrace {
    /// Phase index (1-based, as in the paper).
    pub phase: usize,
    /// Size of the candidate set `J` at the start of the round.
    pub candidate_size: usize,
    /// Conjectured uniform speed `s = W/P`.
    pub speed: f64,
    /// Computed max-flow value `F`.
    pub flow: f64,
    /// Saturation target `F_G`.
    pub target: f64,
    /// Job removed at the end of the round (`None` when the round accepted).
    pub removed: Option<JobId>,
}

/// Result of the offline algorithm.
#[derive(Clone, Debug)]
pub struct OptimalResult<T: FlowNum> {
    /// The optimal schedule.
    pub schedule: Schedule<T>,
    /// The speed-level partition `J_1, …, J_p` with `s_1 > … > s_p`.
    pub phases: Vec<PhaseInfo<T>>,
    /// The interval partition used.
    pub intervals: Intervals<T>,
    /// Total number of max-flow computations performed.
    pub flow_computations: usize,
    /// Machine-independent count of *instance-derivation* operations this
    /// solve performed: event-partition construction, per-(job, interval)
    /// activity probes in the Lemma 3 reservation loop, and network-build
    /// scans. Engine-side work (augmentations, pushes) is accounted
    /// separately by [`EngineStats`](mpss_maxflow::EngineStats). This is
    /// the cost the prepared/incremental path attacks: with a
    /// [`PreparedInstance`] it grows as O(rounds · (n + |𝓘|)) instead of
    /// O(rounds · n · |𝓘|).
    pub work_ops: usize,
    /// Per-round trace (empty unless requested).
    pub trace: Vec<RoundTrace>,
}

impl<T: FlowNum> OptimalResult<T> {
    /// The speed assigned to `job`, if it was scheduled.
    pub fn speed_of(&self, job: JobId) -> Option<T> {
        self.phases
            .iter()
            .find(|p| p.jobs.contains(&job))
            .map(|p| p.speed)
    }
}

/// Computes an optimal schedule with default options.
///
/// ```
/// use mpss_core::{job::job, Instance};
/// use mpss_offline::optimal_schedule;
///
/// let ins = Instance::new(1, vec![job(0.0, 1.0, 3.0), job(0.0, 2.0, 1.0)]).unwrap();
/// let res = optimal_schedule(&ins).unwrap();
/// // Two speed levels: the tight job at 3, the relaxed one at 1.
/// let speeds: Vec<f64> = res.phases.iter().map(|p| p.speed).collect();
/// assert_eq!(speeds, vec![3.0, 1.0]);
/// ```
pub fn optimal_schedule<T: FlowNum>(
    instance: &Instance<T>,
) -> Result<OptimalResult<T>, ModelError> {
    optimal_schedule_with(instance, &OfflineOptions::default())
}

/// Computes an optimal schedule (paper Fig. 2). See the module docs for the
/// algorithm; returns [`ModelError::NoReservableTime`] only on inputs that
/// violate the instance invariants (defensive, unreachable for instances
/// built via [`Instance::new`]).
pub fn optimal_schedule_with<T: FlowNum>(
    instance: &Instance<T>,
    opts: &OfflineOptions,
) -> Result<OptimalResult<T>, ModelError> {
    optimal_schedule_observed(instance, opts, &mut NoopCollector)
}

/// [`optimal_schedule_with`] with an instrumentation [`Collector`].
///
/// Emits, per run:
///
/// * span `offline.optimal_schedule` wrapping the whole computation, with a
///   child span `offline.phase` per accepted phase (so a recording collector
///   aggregates the per-phase latency into `span.offline.phase.ms`);
/// * counters `offline.phases`, `offline.repair_rounds` (max-flow rounds,
///   accepted and deficient), `offline.jobs_removed` (Lemma 4 removals),
///   `offline.maxflow.invocations`, and the engine work counters
///   (`maxflow.dinic.*` / `maxflow.pr.*` from
///   [`EngineStats`](mpss_maxflow::EngineStats));
/// * histograms `offline.flow_vs_target` (computed flow over the saturation
///   target `F_G`, one observation per round — 1.0 means the conjectured
///   speed was accepted) and `offline.jobs_removed_per_phase`.
///
/// When `opts.race_engines` is on, the two contenders additionally record
/// onto forked tracks named `race.dinic` / `race.pr` (span `race.probe` per
/// attempt, instant `race.bail` on a cooperative cancel, instant
/// `race.cancelled` on the discarded loser), adopted back into `obs` at the
/// end of the solve — which is why the collector bound is
/// [`TrackedCollector`] rather than plain [`Collector`].
///
/// Passing [`NoopCollector`] makes this identical to
/// [`optimal_schedule_with`]: every instrumentation point inlines to nothing.
pub fn optimal_schedule_observed<T: FlowNum, C: TrackedCollector>(
    instance: &Instance<T>,
    opts: &OfflineOptions,
    obs: &mut C,
) -> Result<OptimalResult<T>, ModelError> {
    optimal_schedule_seeded(instance, opts, None, obs)
}

/// [`optimal_schedule_observed`] with an optional [`SeedPlan`] from a
/// previous, related solve.
///
/// When `opts.warm_start` is on, each phase's first network is primed from
/// the seed's clipped spans (then greedily topped up) before the engine runs,
/// and deficient repair rounds reuse the residual network: the removed job is
/// drained in place, capacities are retuned, and the engine re-augments from
/// the retained feasible flow instead of starting from zero. Extra
/// instrumentation: counters `maxflow.warm.reused_flow` (rounds that started
/// from non-zero retained or seeded flow), `maxflow.warm.drained` (drain
/// events — job removals plus retarget cancellations), and
/// `offline.cold_rounds_avoided` (repair rounds served by a retained network
/// instead of a cold rebuild).
pub fn optimal_schedule_seeded<T: FlowNum, C: TrackedCollector>(
    instance: &Instance<T>,
    opts: &OfflineOptions,
    seed: Option<&SeedPlan<T>>,
    obs: &mut C,
) -> Result<OptimalResult<T>, ModelError> {
    optimal_schedule_prepared(instance, opts, seed, None, obs)
}

/// [`optimal_schedule_seeded`] consuming a [`PreparedInstance`] maintained
/// incrementally across replans (see [`crate::incremental`]).
///
/// With `prepared = None` this *is* the legacy scratch pipeline — the
/// partition is re-sorted and every (job, interval) activity pair probed —
/// preserved as the differential test oracle. With `prepared = Some(p)`
/// (whose `intervals`/`ranges` must be exactly what
/// [`PreparedInstance::derive`] returns for `instance` — the planner
/// guarantees this, and debug builds assert it) the solve consumes the
/// maintained partition and contiguous active ranges instead: the Lemma 3
/// reservation loop counts actives by difference array in O(n + |𝓘|) per
/// round, and cold networks are built by `FlowModel::build_from_ranges`
/// with zero inactive probes. Both paths produce element-identical networks
/// and therefore bit-identical results; they differ only in
/// [`OptimalResult::work_ops`] and in the
/// `offline.incremental.reused_intervals` counter the prepared path emits.
pub fn optimal_schedule_prepared<T: FlowNum, C: TrackedCollector>(
    instance: &Instance<T>,
    opts: &OfflineOptions,
    seed: Option<&SeedPlan<T>>,
    prepared: Option<&PreparedInstance<T>>,
    obs: &mut C,
) -> Result<OptimalResult<T>, ModelError> {
    obs.span_start("offline.optimal_schedule");
    // Each race contender records onto its own track for the whole solve
    // (one fork per solve, not per probe); adopted at every exit point.
    let mut race_tracks = opts
        .race_engines
        .then(|| (obs.fork("race.dinic"), obs.fork("race.pr")));
    let (intervals, mut work_ops) = match prepared {
        Some(p) => {
            debug_assert_eq!(
                p.intervals,
                Intervals::from_instance(instance),
                "prepared partition diverged from the instance"
            );
            debug_assert!(
                instance
                    .jobs
                    .iter()
                    .enumerate()
                    .all(|(k, j)| p.ranges[k] == p.intervals.range_of(j)),
                "prepared ranges diverged from the instance"
            );
            (p.intervals.clone(), p.derivation_ops)
        }
        None => (
            Intervals::from_instance(instance),
            scratch_partition_ops(instance.n()),
        ),
    };
    let nj = intervals.len();
    let mut used = vec![0usize; nj];
    let mut remaining: Vec<JobId> = (0..instance.n()).collect();
    let mut schedule = Schedule::new(instance.m);
    let mut phases: Vec<PhaseInfo<T>> = Vec::new();
    let mut trace = Vec::new();
    let mut flow_computations = 0usize;
    let mut dinic = Dinic::new();
    let mut push_relabel = PushRelabel::new();

    while !remaining.is_empty() {
        let phase_index = phases.len() + 1;
        let mut cur = remaining.clone();
        let mut rounds = 0usize;
        obs.span_start("offline.phase");
        // Warm path: the network retained from the previous (deficient)
        // round of this phase, with the removed job already drained.
        let mut warm_fm: Option<FlowModel<T>> = None;

        let (m_j, speed, fm) = loop {
            rounds += 1;
            obs.count("offline.repair_rounds", 1);
            // Lemma 3 reservation.
            let mut m_j = vec![0usize; nj];
            if let Some(p) = prepared {
                // Count actives per interval with a difference array over
                // the candidates' contiguous ranges: O(|cur| + |𝓘|) and
                // integer-exact, so `m_j` matches the probe sweep below.
                let mut diff = vec![0isize; nj + 1];
                for &k in &cur {
                    let (lo, hi) = p.ranges[k];
                    diff[lo] += 1;
                    diff[hi] -= 1;
                }
                let mut n_active = 0isize;
                for (j, mj) in m_j.iter_mut().enumerate() {
                    n_active += diff[j];
                    let avail = instance.m - used[j];
                    if avail > 0 {
                        *mj = (n_active as usize).min(avail);
                    }
                }
                work_ops += cur.len() + nj;
            } else {
                for (j, mj) in m_j.iter_mut().enumerate() {
                    let avail = instance.m - used[j];
                    if avail == 0 {
                        continue;
                    }
                    let n_active = cur
                        .iter()
                        .filter(|&&k| intervals.job_active(&instance.jobs[k], j))
                        .count();
                    *mj = n_active.min(avail);
                    work_ops += cur.len();
                }
            }
            // Conjectured uniform speed s = W / P.
            let mut w_total = T::zero();
            for &k in &cur {
                w_total += instance.jobs[k].volume;
            }
            let mut p_total = T::zero();
            for (j, &mj) in m_j.iter().enumerate() {
                if mj > 0 {
                    p_total += T::from_usize(mj) * intervals.length(j);
                }
            }
            if !p_total.is_strictly_positive() {
                obs.span_end("offline.phase");
                adopt_race_tracks(obs, &mut race_tracks);
                flush_engine_stats::<T, C>(obs, &dinic, &push_relabel);
                obs.span_end("offline.optimal_schedule");
                return Err(ModelError::NoReservableTime);
            }
            let speed = w_total / p_total;

            let (mut fm, flow);
            if let Some(mut prev) = warm_fm.take() {
                // Reuse the residual network: the removed job was drained
                // when it was dropped; retune every capacity to the new
                // conjectured speed and re-augment from the retained flow.
                let drained = prev.retarget(instance, &intervals, &m_j, speed);
                if drained.is_strictly_positive() {
                    obs.count("maxflow.warm.drained", 1);
                }
                if prev.net.net_out_flow(prev.source).is_strictly_positive() {
                    obs.count("maxflow.warm.reused_flow", 1);
                }
                obs.count("offline.cold_rounds_avoided", 1);
                flow = if opts.race_engines {
                    race_flow(
                        &mut dinic,
                        &mut push_relabel,
                        &mut prev.net,
                        prev.source,
                        prev.sink,
                        true,
                        race_tracks.as_mut().expect("racing forks tracks"),
                        obs,
                    )
                } else {
                    match opts.engine {
                        FlowEngine::Dinic => {
                            dinic.re_max_flow(&mut prev.net, prev.source, prev.sink)
                        }
                        FlowEngine::PushRelabel => {
                            push_relabel.re_max_flow(&mut prev.net, prev.source, prev.sink)
                        }
                    }
                };
                fm = prev;
            } else {
                if let Some(p) = prepared {
                    fm = FlowModel::build_from_ranges(
                        instance, &intervals, &cur, &m_j, speed, &p.ranges,
                    );
                    // Derivation cost: the arcs that exist, not the probes.
                    work_ops += cur
                        .iter()
                        .map(|&k| p.ranges[k].1 - p.ranges[k].0)
                        .sum::<usize>()
                        + nj;
                } else {
                    fm = FlowModel::build(instance, &intervals, &cur, &m_j, speed);
                    // The scratch build probed every (candidate, used
                    // interval) pair for activity.
                    work_ops += cur.len() * fm.intervals_used.len();
                }
                if opts.warm_start {
                    let mut seeded = T::zero();
                    if let Some(sp) = seed {
                        // Map instance-job spans to candidate order.
                        let per_candidate: Vec<Vec<(T, T)>> = fm
                            .jobs
                            .iter()
                            .map(|&id| sp.spans.get(id).cloned().unwrap_or_default())
                            .collect();
                        seeded += fm.seed_from_spans(&intervals, &per_candidate);
                    }
                    seeded += fm.seed_greedy();
                    if seeded.is_strictly_positive() {
                        obs.count("maxflow.warm.reused_flow", 1);
                    }
                    flow = if opts.race_engines {
                        race_flow(
                            &mut dinic,
                            &mut push_relabel,
                            &mut fm.net,
                            fm.source,
                            fm.sink,
                            true,
                            race_tracks.as_mut().expect("racing forks tracks"),
                            obs,
                        )
                    } else {
                        match opts.engine {
                            FlowEngine::Dinic => dinic.re_max_flow(&mut fm.net, fm.source, fm.sink),
                            FlowEngine::PushRelabel => {
                                push_relabel.re_max_flow(&mut fm.net, fm.source, fm.sink)
                            }
                        }
                    };
                } else {
                    flow = if opts.race_engines {
                        race_flow(
                            &mut dinic,
                            &mut push_relabel,
                            &mut fm.net,
                            fm.source,
                            fm.sink,
                            false,
                            race_tracks.as_mut().expect("racing forks tracks"),
                            obs,
                        )
                    } else {
                        match opts.engine {
                            FlowEngine::Dinic => dinic.max_flow(&mut fm.net, fm.source, fm.sink),
                            FlowEngine::PushRelabel => {
                                push_relabel.max_flow(&mut fm.net, fm.source, fm.sink)
                            }
                        }
                    };
                }
            }
            flow_computations += 1;
            obs.count("offline.maxflow.invocations", 1);
            if obs.enabled() {
                let target = fm.target.to_f64();
                if target > 0.0 {
                    obs.observe("offline.flow_vs_target", flow.to_f64() / target);
                }
            }

            if T::close(flow, fm.target, fm.target, opts.eps) {
                if opts.record_trace {
                    trace.push(RoundTrace {
                        phase: phase_index,
                        candidate_size: cur.len(),
                        speed: speed.to_f64(),
                        flow: flow.to_f64(),
                        target: fm.target.to_f64(),
                        removed: None,
                    });
                }
                break (m_j, speed, fm);
            }

            // Deficient round: drop the job of Lemma 4's removal rule.
            let removed = select_removal(&fm, opts.eps);
            obs.count("offline.jobs_removed", 1);
            obs.instant("offline.job_removed");
            if opts.record_trace {
                trace.push(RoundTrace {
                    phase: phase_index,
                    candidate_size: cur.len(),
                    speed: speed.to_f64(),
                    flow: flow.to_f64(),
                    target: fm.target.to_f64(),
                    removed: Some(removed),
                });
            }
            let pos = cur
                .iter()
                .position(|&k| k == removed)
                .expect("removal candidate must be in the current set");
            cur.remove(pos);
            debug_assert!(
                !cur.is_empty(),
                "candidate set exhausted without saturation"
            );
            if cur.is_empty() {
                obs.span_end("offline.phase");
                adopt_race_tracks(obs, &mut race_tracks);
                flush_engine_stats::<T, C>(obs, &dinic, &push_relabel);
                obs.span_end("offline.optimal_schedule");
                return Err(ModelError::NoReservableTime);
            }
            if opts.warm_start {
                // Drain the removed job in place and keep the network for
                // the next round instead of rebuilding it from scratch.
                let k = fm
                    .jobs
                    .iter()
                    .position(|&id| id == removed)
                    .expect("removed job is a candidate of this phase");
                fm.remove_job(k);
                obs.count("maxflow.warm.drained", 1);
                warm_fm = Some(fm);
            }
        };

        // Phase accepted: the flow is a feasible time assignment. Pack every
        // reserved interval with McNaughton's wrap-around rule.
        for &j in &fm.intervals_used {
            let mut assignments: Vec<(JobId, T)> = fm
                .interval_assignments(j)
                .into_iter()
                .map(|(k, t)| (fm.jobs[k], t))
                .collect();
            // Longest-first ordering (the paper's Lemma 2 normal form).
            assignments.sort_by(|a, b| {
                b.1.partial_cmp(&a.1)
                    .expect("comparable times")
                    .then(a.0.cmp(&b.0))
            });
            let (start, _) = intervals.bounds(j);
            pack_interval(
                &mut schedule,
                &assignments,
                used[j],
                m_j[j],
                start,
                intervals.length(j),
                speed,
                opts.eps,
            );
        }

        // Bookkeeping: processors consumed, jobs placed.
        for (j, &mj) in m_j.iter().enumerate() {
            used[j] += mj;
        }
        remaining.retain(|k| !cur.contains(k));

        if let Some(prev) = phases.last() {
            debug_assert!(
                T::leq(speed, prev.speed, prev.speed, opts.eps),
                "phase speeds must be non-increasing: {:?} then {:?}",
                prev.speed,
                speed
            );
        }
        phases.push(PhaseInfo {
            speed,
            jobs: cur,
            procs: m_j,
            rounds,
        });
        obs.count("offline.phases", 1);
        obs.observe("offline.jobs_removed_per_phase", (rounds - 1) as f64);
        obs.span_end("offline.phase");
    }

    adopt_race_tracks(obs, &mut race_tracks);
    flush_engine_stats::<T, C>(obs, &dinic, &push_relabel);
    obs.span_end("offline.optimal_schedule");
    schedule.normalize();
    Ok(OptimalResult {
        schedule,
        phases,
        intervals,
        flow_computations,
        work_ops,
        trace,
    })
}

/// One engine-portfolio race: Dinic and push–relabel run concurrently on
/// clones of `net`, the first finisher's network replaces `net`, the loser
/// is cancelled and fully discarded.
///
/// `warm` selects [`WarmStartable::re_max_flow_cancelable`] (the network
/// already carries a feasible flow to keep) over the cold
/// [`MaxFlow::max_flow_cancelable`]. The loser's work counters are rolled
/// back to their pre-race snapshot so run totals count each probe exactly
/// once, by the engine that actually served it; `par.race.dinic_wins` /
/// `par.race.pr_wins` record who did.
///
/// Each contender records a `race.probe` span onto its own track in
/// `tracks` (timestamped on the thread that ran it), plus a `race.bail`
/// instant if it observed the cancel flag; after the join the loser's track
/// gets a `race.cancelled` instant, so traces show exactly one discarded
/// attempt per probe even when the loser finished without polling.
#[allow(clippy::too_many_arguments)]
fn race_flow<T: FlowNum, C: TrackedCollector>(
    dinic: &mut Dinic,
    push_relabel: &mut PushRelabel,
    net: &mut FlowNetwork<T>,
    source: NodeId,
    sink: NodeId,
    warm: bool,
    tracks: &mut (C::Track, C::Track),
    obs: &mut C,
) -> T {
    let dinic_snap = MaxFlow::<T>::stats(dinic);
    let pr_snap = MaxFlow::<T>::stats(push_relabel);
    // One clone per race: steal the probe network for one contender, clone
    // it for the other, move the winner's copy back.
    let base = std::mem::replace(net, FlowNetwork::new(2));
    let mut dinic_net = base.clone();
    let mut pr_net = base;
    let dinic_ref = &mut *dinic;
    let pr_ref = &mut *push_relabel;
    let (dinic_track, pr_track) = (&mut tracks.0, &mut tracks.1);
    let (winner, (flow, winning_net)) = race2(
        move |cancel| {
            dinic_track.span_start("race.probe");
            let f = if warm {
                dinic_ref.re_max_flow_cancelable(&mut dinic_net, source, sink, cancel)
            } else {
                dinic_ref.max_flow_cancelable(&mut dinic_net, source, sink, cancel)
            };
            if f.is_none() {
                dinic_track.instant("race.bail");
            }
            dinic_track.span_end("race.probe");
            Some((f?, dinic_net))
        },
        move |cancel| {
            pr_track.span_start("race.probe");
            let f = if warm {
                pr_ref.re_max_flow_cancelable(&mut pr_net, source, sink, cancel)
            } else {
                pr_ref.max_flow_cancelable(&mut pr_net, source, sink, cancel)
            };
            if f.is_none() {
                pr_track.instant("race.bail");
            }
            pr_track.span_end("race.probe");
            Some((f?, pr_net))
        },
    );
    *net = winning_net;
    match winner {
        RaceWinner::First => {
            obs.count("par.race.dinic_wins", 1);
            tracks.1.instant("race.cancelled");
            MaxFlow::<T>::restore_stats(push_relabel, pr_snap);
        }
        RaceWinner::Second => {
            obs.count("par.race.pr_wins", 1);
            tracks.0.instant("race.cancelled");
            MaxFlow::<T>::restore_stats(dinic, dinic_snap);
        }
    }
    flow
}

/// Adopts the race contenders' tracks back into the run's collector (in
/// fixed dinic-then-pr order, once per solve). No-op when not racing.
fn adopt_race_tracks<C: TrackedCollector>(obs: &mut C, tracks: &mut Option<(C::Track, C::Track)>) {
    if let Some((dinic_track, pr_track)) = tracks.take() {
        obs.adopt(dinic_track);
        obs.adopt(pr_track);
    }
}

/// Copies the engines' accumulated work counters
/// ([`EngineStats`](mpss_maxflow::EngineStats)) into the collector, so run
/// reports show algorithmic work — not just wall time. The engines are
/// created fresh per call, so their stats are exactly this run's work.
fn flush_engine_stats<T: FlowNum, C: Collector>(obs: &mut C, dinic: &Dinic, pr: &PushRelabel) {
    if !obs.enabled() {
        return;
    }
    let d = MaxFlow::<T>::stats(dinic);
    obs.count("maxflow.dinic.bfs_phases", d.bfs_phases);
    obs.count("maxflow.dinic.augmenting_paths", d.augmenting_paths);
    let p = MaxFlow::<T>::stats(pr);
    obs.count("maxflow.pr.pushes", p.pushes);
    obs.count("maxflow.pr.relabels", p.relabels);
    obs.count("maxflow.pr.gap_events", p.gap_events);
    obs.count("maxflow.pr.global_relabels", p.global_relabels);
    obs.count("maxflow.pr.current_arc_resets", p.current_arc_resets);
}

/// Lemma 4's removal rule, made engine- and history-invariant.
///
/// A rule that reads per-edge *flow values* (the previous implementation
/// took the least-loaded edge into the most deficient interval) depends on
/// which particular maximum flow the engine happened to find — max-flow
/// values are unique, flows are not — so Dinic and push–relabel, or a warm
/// and a cold run, could remove different (equally valid) jobs and then
/// walk different repair traces. Instead we read only the canonical min-cut
/// certificate: the set `S*` of vertices residual-reachable from the
/// source, which is identical for *every* maximum flow.
///
/// Rule: among candidate jobs whose vertex lies outside `S*` and that have
/// an edge into a reserved interval (`m_j > 0`) whose vertex also lies
/// outside `S*`, remove the smallest job id. Such a job's supply edge is
/// saturated in every maximum flow while the cut still separates it from a
/// deficient interval — exactly the Lemma 4 witness. When the flow is
/// deficient, some reserved interval's sink edge is unsaturated, putting
/// that interval outside `S*` (else an augmenting path would exist), and
/// every job active there is outside `S*` too, so a witness always exists;
/// the fallbacks below only guard tolerance degeneracies on the `f64` path
/// and stay deterministic and flow-invariant themselves.
fn select_removal<T: FlowNum>(fm: &FlowModel<T>, eps: f64) -> JobId {
    let reach = residual_reachable_tol(&fm.net, fm.source, eps);
    // Reserved intervals on the sink side of the cut.
    let cut_interval: Vec<bool> = fm
        .sink_edges
        .iter()
        .enumerate()
        .map(|(x, &e)| fm.net.capacity(e).is_strictly_positive() && !reach[fm.interval_vertex(x)])
        .collect();

    let mut best: Option<JobId> = None;
    for (k, edges) in fm.job_edges.iter().enumerate() {
        if !fm.alive[k] || reach[1 + k] {
            continue;
        }
        let witnesses = edges
            .iter()
            .any(|&(j, _)| fm.interval_pos(j).is_some_and(|x| cut_interval[x]));
        if witnesses {
            let id = fm.jobs[k];
            if best.is_none_or(|b| id < b) {
                best = Some(id);
            }
        }
    }
    if let Some(id) = best {
        return id;
    }
    // Tolerance degeneracy: fall back to the smallest unreachable candidate,
    // then to the smallest candidate outright.
    let alive = || {
        fm.jobs
            .iter()
            .enumerate()
            .filter(|&(k, _)| fm.alive[k])
            .map(|(k, &id)| (k, id))
    };
    alive()
        .find(|&(k, _)| !reach[1 + k])
        .or_else(|| alive().next())
        .expect("candidate set is non-empty in a deficient round")
        .1
}

/// McNaughton wrap-around packing of `assignments` (job, time) onto
/// processors `base_proc .. base_proc + m_j` within the interval
/// `[start, start + len)` at uniform `speed`.
///
/// Legal because every per-job time is ≤ `len` (edge capacities), so a job
/// split across the processor boundary occupies the *end* of the interval
/// on one processor and the *start* on the next — disjoint in real time.
#[allow(clippy::too_many_arguments)]
fn pack_interval<T: FlowNum>(
    schedule: &mut Schedule<T>,
    assignments: &[(JobId, T)],
    base_proc: usize,
    m_j: usize,
    start: T,
    len: T,
    speed: T,
    eps: f64,
) {
    let mut proc = 0usize;
    let mut cap = len; // remaining capacity on the current processor
    for &(job, t) in assignments {
        // Clamp float dust above |I_j|.
        let mut rt = t.min2(len);
        while T::definitely_lt(T::zero(), rt, len, eps) {
            if proc >= m_j {
                // Tolerance overflow on the f64 path: the residue is below
                // eps·len per construction; drop it (validator slack covers it).
                break;
            }
            if !T::definitely_lt(T::zero(), cap, len, eps) {
                proc += 1;
                cap = len;
                continue;
            }
            let chunk = rt.min2(cap);
            let seg_start = start + (len - cap);
            schedule.push(Segment {
                job,
                proc: base_proc + proc,
                start: seg_start,
                end: seg_start + chunk,
                speed,
            });
            rt -= chunk;
            cap -= chunk;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpss_core::energy::{schedule_energy, schedule_energy_exact};
    use mpss_core::job::job;
    use mpss_core::power::Polynomial;
    use mpss_core::validate::assert_feasible;
    use mpss_core::PowerFunction;
    use mpss_numeric::rational::rat;
    use mpss_numeric::Rational;

    #[test]
    fn single_job_runs_at_density_over_full_window() {
        let ins = Instance::new(1, vec![job(0.0, 4.0, 2.0)]).unwrap();
        let res = optimal_schedule(&ins).unwrap();
        assert_feasible(&ins, &res.schedule, 1e-9);
        assert_eq!(res.phases.len(), 1);
        assert!((res.phases[0].speed - 0.5).abs() < 1e-12);
        assert_eq!(res.schedule.len(), 1);
        let seg = res.schedule.segments[0];
        assert_eq!((seg.start, seg.end), (0.0, 4.0));
    }

    #[test]
    fn two_speed_levels_match_yds_structure() {
        // m = 1: job 0 is tight (speed 3 in [0,1)), job 1 relaxed (speed 1).
        let ins = Instance::new(1, vec![job(0.0, 1.0, 3.0), job(0.0, 2.0, 1.0)]).unwrap();
        let res = optimal_schedule(&ins).unwrap();
        assert_feasible(&ins, &res.schedule, 1e-9);
        assert_eq!(res.phases.len(), 2);
        assert!((res.phases[0].speed - 3.0).abs() < 1e-12);
        assert!((res.phases[1].speed - 1.0).abs() < 1e-12);
        assert_eq!(res.phases[0].jobs, vec![0]);
        assert_eq!(res.phases[1].jobs, vec![1]);
        let e = schedule_energy(&res.schedule, &Polynomial::new(2.0));
        assert!((e - 10.0).abs() < 1e-9, "E = {e}"); // 9·1 + 1·1
    }

    #[test]
    fn plenty_of_processors_gives_every_job_its_density() {
        // m ≥ n ⇒ each job runs alone at density over its whole window;
        // energy equals the per-job lower bound.
        let ins = Instance::new(
            4,
            vec![job(0.0, 2.0, 3.0), job(1.0, 4.0, 6.0), job(0.0, 8.0, 2.0)],
        )
        .unwrap();
        let res = optimal_schedule(&ins).unwrap();
        assert_feasible(&ins, &res.schedule, 1e-9);
        let alpha = Polynomial::new(3.0);
        let e = schedule_energy(&res.schedule, &alpha);
        let lb: f64 = ins
            .jobs
            .iter()
            .map(|j| alpha.power(j.density()) * j.window())
            .sum();
        assert!((e - lb).abs() < 1e-9, "E = {e}, LB = {lb}");
    }

    #[test]
    fn parallel_jobs_share_uniform_speed() {
        // 3 identical unit jobs, m = 3: all at speed 1/2 over [0, 2).
        let jobs = vec![job(0.0, 2.0, 1.0); 3];
        let ins = Instance::new(3, jobs).unwrap();
        let res = optimal_schedule(&ins).unwrap();
        assert_feasible(&ins, &res.schedule, 1e-9);
        assert_eq!(res.phases.len(), 1);
        assert!((res.phases[0].speed - 0.5).abs() < 1e-12);
    }

    #[test]
    fn migration_is_exploited_when_m_less_than_n() {
        // 3 identical jobs [0,3,w=3] on 2 processors: total work 9 over
        // 2 procs × 3 time = 6 proc-time ⇒ uniform speed 3/2, each job runs
        // 2 time units. Wrap-around forces at least one migration.
        let ins = Instance::new(2, vec![job(0.0, 3.0, 3.0); 3]).unwrap();
        let res = optimal_schedule(&ins).unwrap();
        assert_feasible(&ins, &res.schedule, 1e-9);
        assert_eq!(res.phases.len(), 1);
        assert!((res.phases[0].speed - 1.5).abs() < 1e-12);
        assert!(res.schedule.migrations() >= 1);
        let e = schedule_energy(&res.schedule, &Polynomial::new(2.0));
        assert!((e - 13.5).abs() < 1e-9); // (3/2)² · 6
    }

    #[test]
    fn exact_rational_pipeline_is_bit_exact() {
        let ins: Instance<Rational> = Instance::new(
            2,
            vec![
                job(rat(0, 1), rat(3, 1), rat(3, 1)),
                job(rat(0, 1), rat(3, 1), rat(3, 1)),
                job(rat(0, 1), rat(3, 1), rat(3, 1)),
            ],
        )
        .unwrap();
        let res = optimal_schedule(&ins).unwrap();
        assert_feasible(&ins, &res.schedule, 0.0);
        assert_eq!(res.phases[0].speed, rat(3, 2));
        assert_eq!(schedule_energy_exact(&res.schedule, 2), rat(27, 2));
    }

    #[test]
    fn speed_levels_are_strictly_decreasing() {
        let ins = Instance::new(
            2,
            vec![
                job(0.0, 1.0, 4.0),
                job(0.0, 1.0, 4.0),
                job(0.0, 4.0, 2.0),
                job(2.0, 6.0, 1.0),
            ],
        )
        .unwrap();
        let res = optimal_schedule(&ins).unwrap();
        assert_feasible(&ins, &res.schedule, 1e-9);
        for w in res.phases.windows(2) {
            assert!(
                w[0].speed > w[1].speed + 1e-12,
                "speeds not strictly decreasing: {:?}",
                res.phases.iter().map(|p| p.speed).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn trace_records_rounds() {
        let ins = Instance::new(1, vec![job(0.0, 1.0, 3.0), job(0.0, 2.0, 1.0)]).unwrap();
        let opts = OfflineOptions {
            record_trace: true,
            ..Default::default()
        };
        let res = optimal_schedule_with(&ins, &opts).unwrap();
        assert!(!res.trace.is_empty());
        // The last round of each phase accepts (removed = None).
        assert!(res.trace.iter().any(|r| r.removed.is_none()));
        // Some round must have removed the relaxed job from phase 1.
        assert!(res.trace.iter().any(|r| r.removed == Some(1)));
        assert_eq!(res.flow_computations, res.trace.len());
    }

    #[test]
    fn speed_of_reports_phase_speeds() {
        let ins = Instance::new(1, vec![job(0.0, 1.0, 3.0), job(0.0, 2.0, 1.0)]).unwrap();
        let res = optimal_schedule(&ins).unwrap();
        assert!((res.speed_of(0).unwrap() - 3.0).abs() < 1e-12);
        assert!((res.speed_of(1).unwrap() - 1.0).abs() < 1e-12);
        assert_eq!(res.speed_of(99), None);
    }

    #[test]
    fn empty_instance_gives_empty_schedule() {
        let ins: Instance<f64> = Instance::new(2, vec![]).unwrap();
        let res = optimal_schedule(&ins).unwrap();
        assert!(res.schedule.is_empty());
        assert!(res.phases.is_empty());
        assert_eq!(res.flow_computations, 0);
    }

    #[test]
    fn observed_run_reports_phases_rounds_and_engine_work() {
        use mpss_obs::RecordingCollector;
        let ins = Instance::new(1, vec![job(0.0, 1.0, 3.0), job(0.0, 2.0, 1.0)]).unwrap();
        let mut rec = RecordingCollector::new();
        let res = optimal_schedule_observed(&ins, &OfflineOptions::default(), &mut rec).unwrap();

        assert_eq!(rec.counter("offline.phases"), res.phases.len() as u64);
        assert_eq!(
            rec.counter("offline.maxflow.invocations"),
            res.flow_computations as u64
        );
        assert_eq!(
            rec.counter("offline.repair_rounds"),
            res.flow_computations as u64
        );
        // Two phases here, and phase 1 removed the relaxed job once.
        assert_eq!(rec.counter("offline.jobs_removed"), 1);
        // Dinic (the default engine) did real work; push–relabel none. With
        // warm start on (the default) the greedy seed can satisfy a round
        // outright, so only the BFS certification is guaranteed.
        assert!(rec.counter("maxflow.dinic.bfs_phases") >= 1);
        assert_eq!(rec.counter("maxflow.pr.pushes"), 0);
        // The warm path reported seeded/retained flow, and the one repair
        // round of phase 1 was served warm instead of rebuilt cold.
        assert!(rec.counter("maxflow.warm.reused_flow") >= 1);
        assert_eq!(rec.counter("offline.cold_rounds_avoided"), 1);
        assert!(rec.counter("maxflow.warm.drained") >= 1);

        // The cold oracle does the same rounds but augments every unit.
        let mut cold = RecordingCollector::new();
        let cold_opts = OfflineOptions {
            warm_start: false,
            ..Default::default()
        };
        let cold_res = optimal_schedule_observed(&ins, &cold_opts, &mut cold).unwrap();
        assert_eq!(cold_res.flow_computations, res.flow_computations);
        assert!(cold.counter("maxflow.dinic.augmenting_paths") >= 1);
        assert_eq!(cold.counter("offline.cold_rounds_avoided"), 0);
        assert_eq!(cold.counter("maxflow.warm.reused_flow"), 0);
        // Span tree: one root per phase, plus the wrapping span.
        assert_eq!(rec.spans().len(), 1);
        assert_eq!(rec.spans()[0].name, "offline.optimal_schedule");
        assert_eq!(rec.spans()[0].children.len(), res.phases.len());
        // Flow-vs-target ratio was observed once per round, each in (0, 1].
        let h = rec.histogram("offline.flow_vs_target").unwrap();
        assert_eq!(h.count(), res.flow_computations as u64);
        let s = h.summary();
        assert!(s.min > 0.0 && s.max <= 1.0 + 1e-9, "{s:?}");
    }

    #[test]
    fn observed_and_unobserved_runs_agree() {
        use mpss_obs::RecordingCollector;
        let ins = Instance::new(
            2,
            vec![job(0.0, 1.0, 4.0), job(0.0, 4.0, 2.0), job(2.0, 6.0, 1.0)],
        )
        .unwrap();
        let plain = optimal_schedule(&ins).unwrap();
        let mut rec = RecordingCollector::new();
        let observed =
            optimal_schedule_observed(&ins, &OfflineOptions::default(), &mut rec).unwrap();
        assert_eq!(plain.flow_computations, observed.flow_computations);
        assert_eq!(plain.phases.len(), observed.phases.len());
        assert_eq!(plain.schedule.segments, observed.schedule.segments);
    }

    #[test]
    fn racing_matches_single_engine_phases_and_energy() {
        use mpss_obs::RecordingCollector;
        let ins = Instance::new(
            2,
            vec![
                job(0.0, 1.0, 4.0),
                job(0.0, 1.0, 4.0),
                job(0.0, 4.0, 2.0),
                job(2.0, 6.0, 1.0),
            ],
        )
        .unwrap();
        for warm in [true, false] {
            let solo = optimal_schedule_with(
                &ins,
                &OfflineOptions {
                    warm_start: warm,
                    ..Default::default()
                },
            )
            .unwrap();
            let mut rec = RecordingCollector::new();
            let raced = optimal_schedule_observed(
                &ins,
                &OfflineOptions {
                    warm_start: warm,
                    race_engines: true,
                    ..Default::default()
                },
                &mut rec,
            )
            .unwrap();
            assert_feasible(&ins, &raced.schedule, 1e-9);
            // Phases, speeds, and repair traces are race-invariant...
            assert_eq!(solo.flow_computations, raced.flow_computations);
            assert_eq!(solo.phases.len(), raced.phases.len());
            for (a, b) in solo.phases.iter().zip(&raced.phases) {
                assert_eq!(a.speed.to_bits(), b.speed.to_bits());
                assert_eq!(a.jobs, b.jobs);
                assert_eq!(a.procs, b.procs);
                assert_eq!(a.rounds, b.rounds);
            }
            // ...and so is the energy (packing may differ, energy cannot).
            let p = Polynomial::new(2.0);
            let e_solo = schedule_energy(&solo.schedule, &p);
            let e_race = schedule_energy(&raced.schedule, &p);
            assert!((e_solo - e_race).abs() < 1e-12, "{e_solo} vs {e_race}");
            // Every probe was served by exactly one winner.
            assert_eq!(
                rec.counter("par.race.dinic_wins") + rec.counter("par.race.pr_wins"),
                raced.flow_computations as u64
            );
        }
    }

    #[test]
    fn staircase_instance_produces_expected_levels() {
        // Jobs with nested windows and decreasing urgency on m = 2.
        let ins = Instance::new(
            2,
            vec![
                job(0.0, 1.0, 5.0), // density 5, must run fast
                job(0.0, 2.0, 2.0),
                job(0.0, 4.0, 1.0),
                job(0.0, 8.0, 1.0),
            ],
        )
        .unwrap();
        let res = optimal_schedule(&ins).unwrap();
        assert_feasible(&ins, &res.schedule, 1e-9);
        let speeds: Vec<f64> = res.phases.iter().map(|p| p.speed).collect();
        assert!(speeds[0] >= 5.0 - 1e-9);
        for w in speeds.windows(2) {
            assert!(w[0] > w[1]);
        }
    }
}
