//! Cross-validation of the offline stack: the flow algorithm against YDS,
//! exact arithmetic against floats, the LP baseline, the lower bounds, and
//! the structural lemmas of the paper.

use crate::lower_bounds::{best_lower_bound, per_job_lower_bound};
use crate::lp_baseline::lp_baseline;
use crate::non_migratory::{non_migratory_schedule, AssignPolicy};
use crate::optimal::optimal_schedule;
use crate::yds::yds_schedule;
use mpss_core::energy::{schedule_energy, schedule_energy_exact, schedule_energy_poly};
use mpss_core::job::job;
use mpss_core::power::Polynomial;
use mpss_core::validate::assert_feasible;
use mpss_core::{Instance, Intervals, PowerFunction};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random integer-coordinate instance (exactly representable in both
/// numeric modes).
fn random_instance(n: usize, m: usize, horizon: u32, seed: u64) -> Instance<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let jobs = (0..n)
        .map(|_| {
            let r = rng.gen_range(0..horizon.saturating_sub(1)) as f64;
            let span = rng.gen_range(1..=horizon.saturating_sub(r as u32).max(1)) as f64;
            let w = rng.gen_range(1..=8) as f64;
            job(r, r + span, w)
        })
        .collect();
    Instance::new(m, jobs).expect("valid random instance")
}

#[test]
fn optimal_is_always_feasible_on_random_instances() {
    for seed in 0..40u64 {
        let n = 2 + (seed as usize % 10);
        let m = 1 + (seed as usize % 4);
        let ins = random_instance(n, m, 12, seed);
        let res = optimal_schedule(&ins).unwrap();
        assert_feasible(&ins, &res.schedule, 1e-9);
    }
}

#[test]
fn flow_algorithm_at_m1_matches_yds() {
    for seed in 100..130u64 {
        let n = 2 + (seed as usize % 8);
        let ins = random_instance(n, 1, 10, seed);
        let flow = optimal_schedule(&ins).unwrap();
        let yds = yds_schedule(&ins);
        assert_feasible(&ins, &flow.schedule, 1e-9);
        assert_feasible(&ins, &yds.schedule, 1e-9);
        for alpha in [2.0, 3.0] {
            let p = Polynomial::new(alpha);
            let ef = schedule_energy(&flow.schedule, &p);
            let ey = schedule_energy(&yds.schedule, &p);
            assert!(
                (ef - ey).abs() <= 1e-6 * ef.max(1.0),
                "seed {seed} α {alpha}: flow {ef} vs yds {ey}"
            );
        }
    }
}

#[test]
fn exact_and_float_pipelines_agree() {
    for seed in 200..220u64 {
        let n = 2 + (seed as usize % 6);
        let m = 1 + (seed as usize % 3);
        let ins = random_instance(n, m, 10, seed);
        let float_res = optimal_schedule(&ins).unwrap();
        let exact_res = optimal_schedule(&ins.to_rational()).unwrap();
        assert_feasible(&ins.to_rational(), &exact_res.schedule, 0.0);
        let ef = schedule_energy_poly(&float_res.schedule, 2);
        let er = schedule_energy_exact(&exact_res.schedule, 2).to_f64();
        assert!(
            (ef - er).abs() <= 1e-6 * ef.max(1.0),
            "seed {seed}: float {ef} vs exact {er}"
        );
        // Phase structure must match exactly (same speed ladder).
        assert_eq!(
            float_res.phases.len(),
            exact_res.phases.len(),
            "seed {seed}"
        );
        for (pf, pr) in float_res.phases.iter().zip(&exact_res.phases) {
            assert!(
                (pf.speed - pr.speed.to_f64()).abs() <= 1e-9 * pf.speed.max(1.0),
                "seed {seed}: phase speeds {} vs {:?}",
                pf.speed,
                pr.speed
            );
            assert_eq!(pf.jobs, pr.jobs, "seed {seed}");
        }
    }
}

#[test]
fn lp_baseline_upper_bounds_opt_and_converges() {
    for seed in 300..310u64 {
        let n = 2 + (seed as usize % 4);
        let m = 1 + (seed as usize % 2);
        let ins = random_instance(n, m, 8, seed);
        let p = Polynomial::new(2.0);
        let opt = schedule_energy(&optimal_schedule(&ins).unwrap().schedule, &p);
        let lp_fine = lp_baseline(&ins, &p, 24).unwrap().energy;
        assert!(
            lp_fine >= opt - 1e-6 * opt.max(1.0),
            "seed {seed}: LP {lp_fine} below OPT {opt}"
        );
        assert!(
            lp_fine <= opt * 1.05 + 1e-9,
            "seed {seed}: LP {lp_fine} too far above OPT {opt}"
        );
    }
}

#[test]
fn lower_bounds_never_exceed_opt() {
    for seed in 400..440u64 {
        let n = 2 + (seed as usize % 8);
        let m = 1 + (seed as usize % 4);
        let ins = random_instance(n, m, 12, seed);
        for alpha in [1.5, 2.0, 3.0] {
            let p = Polynomial::new(alpha);
            let opt = schedule_energy(&optimal_schedule(&ins).unwrap().schedule, &p);
            let lb = best_lower_bound(&ins, alpha);
            assert!(
                lb <= opt + 1e-6 * opt.max(1.0),
                "seed {seed} α {alpha}: LB {lb} > OPT {opt}"
            );
        }
    }
}

#[test]
fn non_migratory_never_beats_opt() {
    for seed in 500..520u64 {
        let n = 3 + (seed as usize % 6);
        let m = 2 + (seed as usize % 3);
        let ins = random_instance(n, m, 10, seed);
        let p = Polynomial::new(3.0);
        let opt = schedule_energy(&optimal_schedule(&ins).unwrap().schedule, &p);
        for policy in [
            AssignPolicy::GreedyEnergy,
            AssignPolicy::LeastLoaded,
            AssignPolicy::RoundRobin,
        ] {
            let nm = non_migratory_schedule(&ins, 3.0, policy);
            assert_feasible(&ins, &nm.schedule, 1e-9);
            let e = schedule_energy(&nm.schedule, &p);
            assert!(
                e >= opt - 1e-6 * opt.max(1.0),
                "seed {seed} {policy:?}: non-migratory {e} < OPT {opt}"
            );
        }
    }
}

#[test]
fn adding_processors_never_increases_energy() {
    // OPT(m+1) ≤ OPT(m): more processors only help.
    for seed in 600..620u64 {
        let ins1 = random_instance(6, 1, 10, seed);
        let p = Polynomial::new(2.5);
        let mut prev = f64::INFINITY;
        for m in 1..=4usize {
            let ins = Instance::new(m, ins1.jobs.clone()).unwrap();
            let e = schedule_energy(&optimal_schedule(&ins).unwrap().schedule, &p);
            assert!(
                e <= prev + 1e-6 * prev.clamp(1.0, 1e12),
                "seed {seed}: OPT({m}) = {e} > OPT({}) = {prev}",
                m - 1
            );
            prev = e;
        }
    }
}

/// Lemma 6 structural property: when **all jobs share one release time**
/// (the OA replanning situation for which the paper states the lemma — with
/// distinct releases the property provably fails, e.g. a job released late
/// at a high speed level forces a processor's speed up mid-schedule), the
/// per-processor speed profile of an optimal schedule is non-increasing
/// over time. Our phase-stacked construction realizes this normal form by
/// construction.
#[test]
fn per_processor_speed_profiles_are_non_increasing() {
    for seed in 700..730u64 {
        let n = 3 + (seed as usize % 7);
        let m = 1 + (seed as usize % 4);
        let mut ins = random_instance(n, m, 10, seed);
        for j in &mut ins.jobs {
            j.release = 0.0; // Lemma 6 hypothesis: common availability time
        }
        let res = optimal_schedule(&ins).unwrap();
        let iv = Intervals::from_instance(&ins);
        for proc in 0..m {
            let mut prev = f64::INFINITY;
            for j in 0..iv.len() {
                let (s, e) = iv.bounds(j);
                let mid = 0.5 * (s + e);
                let speed = res.schedule.speed_at(proc, mid);
                assert!(
                    speed <= prev + 1e-9 * prev.clamp(1.0, 1e12),
                    "seed {seed} proc {proc}: speed increased {prev} -> {speed} at interval {j}"
                );
                prev = speed;
            }
        }
    }
}

/// Universal optimality: the schedule does not depend on P, so its energy
/// must beat the LP baseline under *different* convex power functions too.
#[test]
fn universally_optimal_across_power_functions() {
    let ins = random_instance(5, 2, 8, 4242);
    let res = optimal_schedule(&ins).unwrap();
    let powers: Vec<Box<dyn PowerFunction>> = vec![
        Box::new(Polynomial::new(2.0)),
        Box::new(Polynomial::new(3.0)),
        Box::new(mpss_core::power::AffinePolynomial::new(1.0, 2.0, 0.5, 0.0)),
    ];
    for p in &powers {
        let opt = schedule_energy(&res.schedule, p);
        let lp = lp_baseline(&ins, p, 24).unwrap().energy;
        assert!(
            opt <= lp + 1e-6 * lp.max(1.0),
            "power {}: OPT {opt} > LP {lp}",
            p.describe()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The full optimality sandwich on arbitrary random instances:
    /// per-job LB ≤ OPT ≤ non-migratory heuristic.
    #[test]
    fn prop_optimality_sandwich(seed in 0u64..50_000, n in 2usize..9, m in 1usize..4) {
        let ins = random_instance(n, m, 10, seed);
        let p = Polynomial::new(2.0);
        let res = optimal_schedule(&ins).unwrap();
        assert_feasible(&ins, &res.schedule, 1e-9);
        let opt = schedule_energy(&res.schedule, &p);
        let lb = per_job_lower_bound(&ins, &p);
        let ub = schedule_energy(
            &non_migratory_schedule(&ins, 2.0, AssignPolicy::LeastLoaded).schedule,
            &p,
        );
        prop_assert!(lb <= opt + 1e-6 * opt.max(1.0), "LB {lb} > OPT {opt}");
        prop_assert!(opt <= ub + 1e-6 * ub.max(1.0), "OPT {opt} > UB {ub}");
    }

    /// Phase speeds are strictly decreasing and every job belongs to
    /// exactly one phase.
    #[test]
    fn prop_phase_partition(seed in 0u64..50_000, n in 2usize..9, m in 1usize..5) {
        let ins = random_instance(n, m, 10, seed);
        let res = optimal_schedule(&ins).unwrap();
        let mut seen = vec![false; n];
        for phase in &res.phases {
            for &k in &phase.jobs {
                prop_assert!(!seen[k], "job {k} in two phases");
                seen[k] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s), "some job unscheduled");
        for w in res.phases.windows(2) {
            prop_assert!(w[0].speed > w[1].speed - 1e-12,
                "phase speeds not decreasing: {} then {}", w[0].speed, w[1].speed);
        }
    }
}

/// End-to-end engine ablation: the offline algorithm must produce
/// equal-energy (indeed equal-phase) schedules under both internal max-flow
/// engines.
#[test]
fn both_flow_engines_yield_identical_optima() {
    use crate::optimal::{optimal_schedule_with, FlowEngine, OfflineOptions};
    for seed in 800..820u64 {
        let n = 3 + (seed as usize % 7);
        let m = 1 + (seed as usize % 4);
        let ins = random_instance(n, m, 10, seed);
        let dinic = optimal_schedule_with(&ins, &OfflineOptions::default()).unwrap();
        let pr = optimal_schedule_with(
            &ins,
            &OfflineOptions {
                engine: FlowEngine::PushRelabel,
                ..Default::default()
            },
        )
        .unwrap();
        assert_feasible(&ins, &pr.schedule, 1e-9);
        let p = Polynomial::new(2.0);
        let e_d = schedule_energy(&dinic.schedule, &p);
        let e_p = schedule_energy(&pr.schedule, &p);
        assert!(
            (e_d - e_p).abs() <= 1e-6 * e_d.max(1.0),
            "seed {seed}: dinic {e_d} vs push-relabel {e_p}"
        );
        assert_eq!(dinic.phases.len(), pr.phases.len(), "seed {seed}");
        for (a, b) in dinic.phases.iter().zip(&pr.phases) {
            assert!((a.speed - b.speed).abs() <= 1e-9 * a.speed.max(1.0));
            assert_eq!(a.jobs, b.jobs, "seed {seed}: different phase membership");
        }
    }
}

/// The Lemma 4 removal rule reads only the flow-invariant min-cut
/// certificate, so the *entire repair trace* — which job was removed in
/// which round, at which conjectured speed — must be identical across both
/// engines and across the warm/cold paths, not just the final phases.
#[test]
fn removal_traces_are_identical_across_engines_and_warm_modes() {
    use crate::optimal::{optimal_schedule_with, FlowEngine, OfflineOptions};
    for seed in 900..925u64 {
        let n = 3 + (seed as usize % 8);
        let m = 1 + (seed as usize % 4);
        let ins = random_instance(n, m, 10, seed);
        let configs = [
            (FlowEngine::Dinic, true),
            (FlowEngine::Dinic, false),
            (FlowEngine::PushRelabel, true),
            (FlowEngine::PushRelabel, false),
        ];
        let runs: Vec<_> = configs
            .iter()
            .map(|&(engine, warm_start)| {
                let opts = OfflineOptions {
                    record_trace: true,
                    engine,
                    warm_start,
                    ..Default::default()
                };
                optimal_schedule_with(&ins, &opts).unwrap()
            })
            .collect();
        let base = &runs[0];
        for (run, &(engine, warm)) in runs.iter().zip(&configs).skip(1) {
            assert_eq!(
                run.flow_computations, base.flow_computations,
                "seed {seed} {engine:?} warm {warm}: different round counts"
            );
            let key = |r: &crate::optimal::RoundTrace| (r.phase, r.candidate_size, r.removed);
            assert_eq!(
                run.trace.iter().map(key).collect::<Vec<_>>(),
                base.trace.iter().map(key).collect::<Vec<_>>(),
                "seed {seed} {engine:?} warm {warm}: repair traces diverged"
            );
            assert_eq!(run.phases.len(), base.phases.len(), "seed {seed}");
            for (a, b) in run.phases.iter().zip(&base.phases) {
                assert_eq!(
                    a.speed.to_bits(),
                    b.speed.to_bits(),
                    "seed {seed} {engine:?} warm {warm}: speeds not bit-identical"
                );
                assert_eq!(a.jobs, b.jobs, "seed {seed}: phase membership");
                assert_eq!(a.procs, b.procs, "seed {seed}: reservations");
                assert_eq!(a.rounds, b.rounds, "seed {seed}: rounds");
            }
        }
    }
}
