//! The Yao–Demers–Shenker (YDS) optimal single-processor algorithm
//! (FOCS 1995), implemented independently of the multi-processor flow
//! algorithm so the two can cross-validate each other at `m = 1`.
//!
//! Classic critical-interval peeling: repeatedly find the interval
//! `[t1, t2]` maximizing the intensity `g = W(t1, t2) / avail(t1, t2)`,
//! schedule its jobs at speed `g` with EDF, then freeze that time region and
//! recurse on the rest. Instead of re-mapping job coordinates after each
//! peel (the textbook presentation), this implementation keeps a list of
//! remaining *free* time intervals and measures availability through it —
//! the two views are equivalent (the free-time measure `φ` *is* the
//! textbook's time transformation), but this one emits segments directly in
//! original coordinates.

use mpss_core::{Instance, JobId, Schedule, Segment};
use mpss_numeric::FlowNum;

/// Result of YDS: a single-processor schedule (all segments on processor 0)
/// plus the critical speeds in discovery order (non-increasing).
#[derive(Clone, Debug)]
pub struct YdsResult<T: FlowNum> {
    /// The optimal single-processor schedule.
    pub schedule: Schedule<T>,
    /// Critical-interval speeds, in peel order (non-increasing).
    pub speeds: Vec<T>,
}

/// Free time of `free` lying inside `[a, b]`.
fn measure<T: FlowNum>(free: &[(T, T)], a: T, b: T) -> T {
    let mut total = T::zero();
    for &(s, e) in free {
        let lo = s.max2(a);
        let hi = e.min2(b);
        if lo < hi {
            total += hi - lo;
        }
    }
    total
}

/// Removes `[a, b]` from the free list.
fn block<T: FlowNum>(free: &mut Vec<(T, T)>, a: T, b: T) {
    let mut out = Vec::with_capacity(free.len() + 1);
    for &(s, e) in free.iter() {
        if e <= a || !(s < b) {
            out.push((s, e));
            continue;
        }
        if s < a {
            out.push((s, a));
        }
        if b < e {
            out.push((b, e));
        }
    }
    *free = out;
}

/// Computes the optimal single-processor schedule for `instance`'s job set.
///
/// ```
/// use mpss_core::{job::job, Instance};
/// use mpss_offline::yds_schedule;
///
/// let ins = Instance::new(1, vec![job(2.0, 3.0, 5.0), job(0.0, 5.0, 2.0)]).unwrap();
/// let res = yds_schedule(&ins);
/// // The tight inner job forms the first critical interval at speed 5.
/// assert_eq!(res.speeds[0], 5.0);
/// assert_eq!(res.speeds[1], 0.5); // outer job over the remaining 4 units
/// ```
///
/// `instance.m` is ignored: this is the `E¹_OPT` oracle used both as the
/// `m = 1` ground truth and inside the `m^{1−α} E¹_OPT` lower bound of
/// Theorem 3's proof. All segments land on processor 0 of a 1-processor
/// schedule.
pub fn yds_schedule<T: FlowNum>(instance: &Instance<T>) -> YdsResult<T> {
    let jobs = &instance.jobs;
    let mut schedule = Schedule::new(1);
    let mut speeds = Vec::new();
    if jobs.is_empty() {
        return YdsResult { schedule, speeds };
    }

    let t_min = instance.min_release().unwrap();
    let t_max = instance.max_deadline().unwrap();
    let mut free: Vec<(T, T)> = vec![(t_min, t_max)];
    let mut unscheduled: Vec<JobId> = (0..jobs.len()).collect();

    while !unscheduled.is_empty() {
        // Find the critical interval among (release, deadline) pairs, using
        // φ-containment: job k counts for [t1, t2] iff its free time outside
        // the candidate is zero on both sides (equivalently, the textbook's
        // transformed window is contained in the transformed candidate).
        // φ values are precomputed per event to keep each phase O(n³).
        let phi_r: Vec<T> = unscheduled
            .iter()
            .map(|&k| measure(&free, t_min, jobs[k].release))
            .collect();
        let phi_d: Vec<T> = unscheduled
            .iter()
            .map(|&k| measure(&free, t_min, jobs[k].deadline))
            .collect();

        let mut best: Option<(T, T, T, Vec<JobId>)> = None; // (g, t1, t2, set)
        for (a, &ka) in unscheduled.iter().enumerate() {
            let t1 = jobs[ka].release;
            let phi1 = phi_r[a];
            for (b, &kb) in unscheduled.iter().enumerate() {
                let t2 = jobs[kb].deadline;
                let phi2 = phi_d[b];
                if !(phi1 < phi2) {
                    continue; // zero available time (covers t1 ≥ t2 too)
                }
                let avail = phi2 - phi1;
                let mut w = T::zero();
                let mut set = Vec::new();
                for (c, &kc) in unscheduled.iter().enumerate() {
                    // φ-containment of [r, d] in [t1, t2].
                    if !(phi_r[c] < phi1) && !(phi2 < phi_d[c]) {
                        w += jobs[kc].volume;
                        set.push(kc);
                    }
                }
                if set.is_empty() {
                    continue;
                }
                let g = w / avail;
                if best.as_ref().is_none_or(|(bg, ..)| *bg < g) {
                    best = Some((g, t1, t2, set));
                }
            }
        }
        let (g, t1, t2, set) = best
            .expect("YDS invariant: every unscheduled job admits a positive-availability window");
        speeds.push(g);

        // EDF-schedule `set` at speed g inside free ∩ [t1, t2].
        let mut segments: Vec<(T, T)> = free
            .iter()
            .filter_map(|&(s, e)| {
                let lo = s.max2(t1);
                let hi = e.min2(t2);
                (lo < hi).then_some((lo, hi))
            })
            .collect();
        segments.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("comparable times"));
        edf_schedule(&mut schedule, jobs, &set, &segments, g, t_max - t_min);

        block(&mut free, t1, t2);
        unscheduled.retain(|k| !set.contains(k));
    }

    schedule.normalize();
    YdsResult { schedule, speeds }
}

/// Preemptive EDF over the chronological free `segments` at constant
/// `speed`; exactly feasible by the criticality of the chosen interval.
///
/// `scale` is the magnitude used by the tolerance tests on the `f64` path:
/// a remaining execution time below `eps · scale` counts as *finished*
/// (otherwise sub-ULP residues get picked, advance time by zero, and stall
/// the simulation).
fn edf_schedule<T: FlowNum>(
    schedule: &mut Schedule<T>,
    jobs: &[mpss_core::Job<T>],
    set: &[JobId],
    segments: &[(T, T)],
    speed: T,
    scale: T,
) {
    const EPS: f64 = 1e-9;
    // Remaining execution time per selected job.
    let mut rem: Vec<(JobId, T)> = set.iter().map(|&k| (k, jobs[k].volume / speed)).collect();
    let live = |r: T| T::definitely_lt(T::zero(), r, scale, EPS);

    for &(seg_start, seg_end) in segments {
        let mut t = seg_start;
        while t < seg_end {
            // Released, unfinished job with the earliest deadline.
            let mut pick: Option<usize> = None;
            for (i, &(k, r)) in rem.iter().enumerate() {
                if live(r) && !(t < jobs[k].release) {
                    match pick {
                        Some(p) if !(jobs[k].deadline < jobs[rem[p].0].deadline) => {}
                        _ => pick = Some(i),
                    }
                }
            }
            let Some(p) = pick else {
                // Nothing released: jump to the next release inside the segment.
                let next = rem
                    .iter()
                    .filter(|&&(k, r)| live(r) && t < jobs[k].release)
                    .map(|&(k, _)| jobs[k].release)
                    .fold(None::<T>, |acc, r| Some(acc.map_or(r, |a| a.min2(r))));
                match next {
                    Some(nr) if nr < seg_end => t = nr,
                    _ => break,
                }
                continue;
            };
            let (k, r) = rem[p];
            // Run until the job finishes, the segment ends, or a new release
            // arrives (a newly released job may have an earlier deadline).
            let mut until = seg_end.min2(t + r);
            for &(k2, r2) in &rem {
                if live(r2) && t < jobs[k2].release {
                    until = until.min2(jobs[k2].release);
                }
            }
            if !(t < until) {
                // Zero-length step (float dust): retire the residue and
                // re-run the pick instead of abandoning the segment.
                rem[p].1 = T::zero();
                continue;
            }
            schedule.push(Segment {
                job: k,
                proc: 0,
                start: t,
                end: until,
                speed,
            });
            rem[p].1 = r - (until - t);
            t = until;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpss_core::energy::{schedule_energy, schedule_energy_exact};
    use mpss_core::job::job;
    use mpss_core::power::Polynomial;
    use mpss_core::validate::assert_feasible;
    use mpss_numeric::rational::rat;
    use mpss_numeric::Rational;

    fn single(ins: &Instance<f64>) -> Instance<f64> {
        Instance::new(1, ins.jobs.clone()).unwrap()
    }

    #[test]
    fn one_job_runs_at_density() {
        let ins = Instance::new(1, vec![job(1.0, 5.0, 2.0)]).unwrap();
        let res = yds_schedule(&ins);
        assert_feasible(&ins, &res.schedule, 1e-9);
        assert_eq!(res.speeds, vec![0.5]);
    }

    #[test]
    fn textbook_two_level_instance() {
        let ins = Instance::new(1, vec![job(0.0, 1.0, 3.0), job(0.0, 2.0, 1.0)]).unwrap();
        let res = yds_schedule(&ins);
        assert_feasible(&ins, &res.schedule, 1e-9);
        assert_eq!(res.speeds.len(), 2);
        assert!((res.speeds[0] - 3.0).abs() < 1e-12);
        assert!((res.speeds[1] - 1.0).abs() < 1e-12);
        let e = schedule_energy(&res.schedule, &Polynomial::new(2.0));
        assert!((e - 10.0).abs() < 1e-9);
    }

    #[test]
    fn disjoint_jobs_each_get_their_density() {
        let ins = Instance::new(
            1,
            vec![job(0.0, 2.0, 1.0), job(2.0, 3.0, 2.0), job(3.0, 7.0, 2.0)],
        )
        .unwrap();
        let res = yds_schedule(&ins);
        assert_feasible(&ins, &res.schedule, 1e-9);
        let mut speeds = res.speeds.clone();
        speeds.sort_by(|a, b| b.partial_cmp(a).unwrap());
        assert!((speeds[0] - 2.0).abs() < 1e-12);
        assert!((speeds[1] - 0.5).abs() < 1e-12);
        assert!((speeds[2] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn nested_jobs_peel_from_the_middle() {
        // Inner tight job forces a high-speed island; the outer job flows
        // around it on both sides.
        let ins = Instance::new(1, vec![job(2.0, 3.0, 5.0), job(0.0, 5.0, 2.0)]).unwrap();
        let res = yds_schedule(&ins);
        assert_feasible(&ins, &res.schedule, 1e-9);
        assert!((res.speeds[0] - 5.0).abs() < 1e-12);
        // Outer job: 2 units over the remaining 4 free time units.
        assert!((res.speeds[1] - 0.5).abs() < 1e-12);
        // The outer job must run on both sides of the island.
        let outer_segs: Vec<_> = res
            .schedule
            .segments
            .iter()
            .filter(|s| s.job == 1)
            .collect();
        assert!(outer_segs.iter().any(|s| s.end <= 2.0 + 1e-9));
        assert!(outer_segs.iter().any(|s| s.start >= 3.0 - 1e-9));
    }

    #[test]
    fn edf_respects_late_releases_within_critical_interval() {
        let ins = Instance::new(1, vec![job(0.0, 4.0, 2.0), job(2.0, 4.0, 2.0)]).unwrap();
        let res = yds_schedule(&ins);
        assert_feasible(&ins, &res.schedule, 1e-9);
        // Uniform speed 1: g([0,4]) = 4/4 = 1 dominates.
        assert_eq!(res.speeds.len(), 1);
        assert!((res.speeds[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn exact_rational_yds() {
        let ins: Instance<Rational> = Instance::new(
            1,
            vec![
                job(rat(0, 1), rat(1, 1), rat(3, 1)),
                job(rat(0, 1), rat(2, 1), rat(1, 1)),
            ],
        )
        .unwrap();
        let res = yds_schedule(&ins);
        assert_feasible(&ins, &res.schedule, 0.0);
        assert_eq!(res.speeds, vec![rat(3, 1), rat(1, 1)]);
        assert_eq!(schedule_energy_exact(&res.schedule, 2), rat(10, 1));
    }

    #[test]
    fn speeds_are_non_increasing() {
        let ins = Instance::new(
            1,
            vec![
                job(0.0, 1.0, 2.0),
                job(0.5, 3.0, 1.0),
                job(2.0, 6.0, 3.0),
                job(4.0, 5.0, 2.0),
            ],
        )
        .unwrap();
        let res = yds_schedule(&single(&ins));
        assert_feasible(&ins, &res.schedule, 1e-9);
        for w in res.speeds.windows(2) {
            assert!(w[0] >= w[1] - 1e-9, "speeds increased: {:?}", res.speeds);
        }
    }

    #[test]
    fn empty_instance() {
        let ins: Instance<f64> = Instance::new(1, vec![]).unwrap();
        let res = yds_schedule(&ins);
        assert!(res.schedule.is_empty());
        assert!(res.speeds.is_empty());
    }
}
