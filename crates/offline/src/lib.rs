//! Offline algorithms for multi-processor speed scaling with migration.
//!
//! The centerpiece is [`optimal_schedule`], a from-scratch implementation of
//! the combinatorial polynomial-time algorithm of Albers–Antoniadis–Greiner
//! (SPAA 2011, Fig. 2): it partitions the jobs into speed-level sets
//! `J_1, …, J_p` (speeds `s_1 > … > s_p`) phase by phase, certifying each
//! candidate set with a maximum-flow computation on the job × interval
//! network of the paper's Fig. 1 and removing one provably-wrong job per
//! failed round (Lemma 4). The schedule it produces is optimal for **every**
//! convex non-decreasing power function simultaneously; no power function is
//! consumed by the algorithm.
//!
//! Around it:
//! * [`yds`] — the Yao–Demers–Shenker single-processor optimum, implemented
//!   independently (critical-interval peeling + EDF) and used to cross-check
//!   the `m = 1` case;
//! * [`lp_baseline`] — the Bingham–Greenstreet-style linear-programming
//!   comparator built on `mpss-lp`'s simplex;
//! * [`non_migratory`] — a greedy assignment + per-processor YDS heuristic
//!   quantifying the value of migration;
//! * [`lower_bounds`] — instance lower bounds used by the experiment
//!   harness and the test-suite.

//!
//! ```
//! use mpss_core::job::job;
//! use mpss_core::energy::schedule_energy;
//! use mpss_core::power::Polynomial;
//! use mpss_core::validate::assert_feasible;
//! use mpss_core::Instance;
//! use mpss_offline::{optimal_schedule, yds_schedule};
//!
//! // Three identical tight jobs on two processors: migration lets them
//! // share a uniform speed of 3/2 (paper §1's motivating effect).
//! let instance = Instance::new(2, vec![job(0.0, 3.0, 3.0); 3]).unwrap();
//! let res = optimal_schedule(&instance).unwrap();
//! assert_feasible(&instance, &res.schedule, 1e-9);
//! assert_eq!(res.phases.len(), 1);
//! assert!((res.phases[0].speed - 1.5).abs() < 1e-12);
//!
//! // Energy under P(s) = s²: (3/2)² · 6 processor-time units.
//! let e = schedule_energy(&res.schedule, &Polynomial::new(2.0));
//! assert!((e - 13.5).abs() < 1e-9);
//!
//! // At m = 1 the flow algorithm collapses to the YDS optimum.
//! let single = Instance::new(1, instance.jobs.clone()).unwrap();
//! let a = schedule_energy(&optimal_schedule(&single).unwrap().schedule, &Polynomial::new(2.0));
//! let b = schedule_energy(&yds_schedule(&single).schedule, &Polynomial::new(2.0));
//! assert!((a - b).abs() < 1e-9);
//! ```

// `!(a < b)` on our FlowNum types deliberately reads as "b ≤ a, treating
// incomparable (impossible for validated inputs) as false"; rewriting via
// partial_cmp would obscure the tolerance-free intent.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod canonical;
pub mod certificate;
pub mod discrete;
pub mod flow_model;
pub mod incremental;
pub mod lower_bounds;
pub mod lp_baseline;
pub mod non_migratory;
pub mod optimal;
pub mod sleep;
pub mod speed_bound;
pub mod yds;

pub use incremental::{IncrementalPlanner, IncrementalStats, PreparedInstance};
pub use optimal::{
    optimal_schedule, optimal_schedule_observed, optimal_schedule_prepared,
    optimal_schedule_seeded, optimal_schedule_with, FlowEngine, OfflineOptions, OptimalResult,
    PhaseInfo, SeedPlan,
};
pub use yds::yds_schedule;

#[cfg(test)]
mod tests_cross;
