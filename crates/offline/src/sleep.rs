//! Sleep-state (power-down) analysis.
//!
//! The paper's conclusion points to Irani–Shukla–Gupta's model — a
//! processor that draws static power even at speed zero but can be put into
//! a sleep state at a wake-up cost — and names combined speed-scaling +
//! power-down for multiprocessors as future work. This module layers that
//! model *on top of* a computed schedule: given each processor's busy
//! intervals, every idle gap independently chooses between staying on
//! (cost `static_power · gap`) and sleeping (cost `wake_cost` to come back
//! up). The optimal per-gap policy is the classical ski-rental threshold
//! `gap > wake_cost / static_power ⇒ sleep`, which this module implements
//! alongside the two naive policies for comparison.

use mpss_core::Schedule;
use mpss_sim::Timeline;

/// Idle-gap handling policy.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum IdlePolicy {
    /// Never sleep: every idle instant pays static power.
    NeverSleep,
    /// Sleep in every gap (and at the horizon boundaries), paying the wake
    /// cost each time work resumes.
    AlwaysSleep,
    /// Ski-rental threshold: sleep iff the gap is longer than
    /// `wake_cost / static_power` (optimal per gap).
    Threshold,
}

/// Energy breakdown of a schedule under the sleep-state model.
#[derive(Clone, Debug, PartialEq)]
pub struct SleepEnergy {
    /// Dynamic energy `Σ P(s)·dur` (independent of the idle policy).
    pub dynamic: f64,
    /// Static energy paid while on (busy time + kept-on gaps).
    pub static_on: f64,
    /// Total wake-up energy.
    pub wakeups: f64,
    /// Number of sleep→on transitions.
    pub num_wakeups: usize,
}

impl SleepEnergy {
    /// Total energy.
    pub fn total(&self) -> f64 {
        self.dynamic + self.static_on + self.wakeups
    }
}

/// Evaluates `schedule` in the sleep-state model over `[t0, t1)`.
///
/// Processors start asleep and must be awake exactly while running;
/// `static_power` is drawn whenever awake (including while executing, on
/// top of the dynamic power `p`), and each sleep→on transition costs
/// `wake_cost`.
pub fn sleep_energy(
    schedule: &Schedule<f64>,
    p: &impl mpss_core::PowerFunction,
    static_power: f64,
    wake_cost: f64,
    t0: f64,
    t1: f64,
    policy: IdlePolicy,
) -> SleepEnergy {
    assert!(static_power >= 0.0 && wake_cost >= 0.0 && t1 >= t0);
    let dynamic = mpss_core::energy::schedule_energy(schedule, p);
    let timeline = Timeline::build(schedule);
    let threshold = if static_power > 0.0 {
        wake_cost / static_power
    } else {
        f64::INFINITY
    };

    let mut static_on = 0.0;
    let mut wakeups = 0.0;
    let mut num_wakeups = 0usize;
    for proc in &timeline.processors {
        if proc.runs.is_empty() {
            continue; // stays asleep the whole horizon
        }
        // First wake-up of the day.
        wakeups += wake_cost;
        num_wakeups += 1;
        static_on += proc.busy_time();
        // Interior gaps.
        let mut gaps: Vec<f64> = Vec::new();
        for w in proc.runs.windows(2) {
            let gap = w[1].1 - w[0].2;
            if gap > 0.0 {
                gaps.push(gap);
            }
        }
        for gap in gaps {
            let sleep = match policy {
                IdlePolicy::NeverSleep => false,
                IdlePolicy::AlwaysSleep => true,
                IdlePolicy::Threshold => gap > threshold,
            };
            if sleep {
                wakeups += wake_cost;
                num_wakeups += 1;
            } else {
                static_on += gap * 1.0;
            }
        }
        // Boundary idle before the first run / after the last: the
        // processor simply wakes late and sleeps early — no extra cost
        // beyond the initial wake-up already counted.
        let _ = (t0, t1);
    }
    SleepEnergy {
        dynamic,
        static_on: static_on * static_power,
        wakeups,
        num_wakeups,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpss_core::job::job;
    use mpss_core::power::Polynomial;
    use mpss_core::{Instance, Segment};

    fn gap_schedule(gap: f64) -> Schedule<f64> {
        let mut s = Schedule::new(1);
        s.push(Segment {
            job: 0,
            proc: 0,
            start: 0.0,
            end: 1.0,
            speed: 1.0,
        });
        s.push(Segment {
            job: 1,
            proc: 0,
            start: 1.0 + gap,
            end: 2.0 + gap,
            speed: 1.0,
        });
        s
    }

    #[test]
    fn threshold_policy_dominates_both_naive_policies() {
        let p = Polynomial::new(2.0);
        for gap in [0.1, 0.5, 1.0, 2.0, 5.0, 20.0] {
            let s = gap_schedule(gap);
            let horizon = 2.0 + gap;
            let run = |policy| sleep_energy(&s, &p, 1.0, 2.0, 0.0, horizon, policy).total();
            let thr = run(IdlePolicy::Threshold);
            assert!(thr <= run(IdlePolicy::NeverSleep) + 1e-12, "gap {gap}");
            assert!(thr <= run(IdlePolicy::AlwaysSleep) + 1e-12, "gap {gap}");
        }
    }

    #[test]
    fn break_even_at_gap_equal_threshold() {
        let p = Polynomial::new(2.0);
        // static 1, wake 2 ⇒ threshold gap 2: exactly at the threshold both
        // choices cost the same (2 energy units).
        let s = gap_schedule(2.0);
        let never = sleep_energy(&s, &p, 1.0, 2.0, 0.0, 4.0, IdlePolicy::NeverSleep);
        let always = sleep_energy(&s, &p, 1.0, 2.0, 0.0, 4.0, IdlePolicy::AlwaysSleep);
        assert!((never.total() - always.total()).abs() < 1e-12);
    }

    #[test]
    fn accounting_breakdown_is_consistent() {
        let p = Polynomial::new(2.0);
        let s = gap_schedule(5.0);
        let e = sleep_energy(&s, &p, 0.5, 1.0, 0.0, 7.0, IdlePolicy::Threshold);
        // Dynamic: 2 segments of speed 1 for 1 each under s² = 2.
        assert!((e.dynamic - 2.0).abs() < 1e-12);
        // Gap 5 > threshold 2 ⇒ sleeps: 2 wakeups, busy static = 2·0.5 = 1.
        assert_eq!(e.num_wakeups, 2);
        assert!((e.static_on - 1.0).abs() < 1e-12);
        assert!((e.wakeups - 2.0).abs() < 1e-12);
        assert!((e.total() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn idle_processors_stay_asleep_for_free() {
        let p = Polynomial::new(2.0);
        let mut s = Schedule::new(4); // 3 processors never used
        s.push(Segment {
            job: 0,
            proc: 0,
            start: 0.0,
            end: 1.0,
            speed: 1.0,
        });
        let e = sleep_energy(&s, &p, 1.0, 3.0, 0.0, 10.0, IdlePolicy::Threshold);
        assert_eq!(e.num_wakeups, 1);
        assert!((e.total() - (1.0 + 1.0 + 3.0)).abs() < 1e-12);
    }

    #[test]
    fn works_on_real_optimal_schedules() {
        let ins = Instance::new(
            2,
            vec![job(0.0, 2.0, 2.0), job(4.0, 6.0, 2.0), job(0.0, 6.0, 1.0)],
        )
        .unwrap();
        let sched = crate::optimal_schedule(&ins).unwrap().schedule;
        let p = Polynomial::new(2.0);
        for policy in [
            IdlePolicy::NeverSleep,
            IdlePolicy::AlwaysSleep,
            IdlePolicy::Threshold,
        ] {
            let e = sleep_energy(&sched, &p, 0.2, 0.5, 0.0, 6.0, policy);
            assert!(e.total() >= e.dynamic);
        }
    }
}
