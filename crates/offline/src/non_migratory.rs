//! Non-migratory baseline: assign every job to one processor, then run YDS
//! per processor.
//!
//! Without migration the offline problem is NP-hard (Albers–Müller–
//! Schmelzer), so this is a heuristic upper bound, not an optimum. It
//! quantifies the paper's motivation: migration lets the optimal schedule
//! smooth load across processors, and the gap between this baseline and
//! [`optimal_schedule`](crate::optimal_schedule) is the measured value of
//! migration (the `migration-ablation` experiment).

use crate::yds::yds_schedule;
use mpss_core::energy::schedule_energy;
use mpss_core::power::Polynomial;
use mpss_core::{Instance, Schedule};

/// Job-to-processor assignment policy.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum AssignPolicy {
    /// Jobs (sorted by density, descending) go to the processor whose YDS
    /// energy increases the least — the strongest constructive heuristic.
    GreedyEnergy,
    /// Jobs go to the processor with the least assigned volume so far.
    LeastLoaded,
    /// Round-robin in input order — the weakest baseline.
    RoundRobin,
    /// [`GreedyEnergy`](AssignPolicy::GreedyEnergy) followed by
    /// single-job-move local search to a local optimum — the strongest
    /// non-migratory baseline in the migration ablation.
    GreedyWithLocalSearch,
}

/// Result of the non-migratory heuristic.
#[derive(Clone, Debug)]
pub struct NonMigratoryResult {
    /// The combined schedule (jobs stay on their assigned processor).
    pub schedule: Schedule<f64>,
    /// `assignment[i]` = processor of job `i`.
    pub assignment: Vec<usize>,
}

/// Builds a feasible non-migratory schedule under `P(s) = s^α`.
pub fn non_migratory_schedule(
    instance: &Instance<f64>,
    alpha: f64,
    policy: AssignPolicy,
) -> NonMigratoryResult {
    let m = instance.m;
    let n = instance.n();
    let power = Polynomial::new(alpha);
    let mut assignment = vec![usize::MAX; n];
    // Per-processor job id lists.
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); m];

    match policy {
        AssignPolicy::GreedyWithLocalSearch => {
            // Start from the greedy assignment, then move single jobs
            // between processors while total energy strictly improves.
            let greedy = non_migratory_schedule(instance, alpha, AssignPolicy::GreedyEnergy);
            assignment = greedy.assignment;
            buckets = vec![Vec::new(); m];
            for (i, &p) in assignment.iter().enumerate() {
                buckets[p].push(i);
            }
            let bucket_energy = |bucket: &[usize]| -> f64 {
                if bucket.is_empty() {
                    return 0.0;
                }
                let jobs: Vec<_> = bucket.iter().map(|&k| instance.jobs[k]).collect();
                let sub = Instance::new(1, jobs).expect("valid sub-instance");
                schedule_energy(&yds_schedule(&sub).schedule, &power)
            };
            let mut energies: Vec<f64> = buckets.iter().map(|b| bucket_energy(b)).collect();
            let mut improved = true;
            let mut rounds = 0usize;
            while improved && rounds < 8 * n.max(1) {
                improved = false;
                rounds += 1;
                #[allow(clippy::needless_range_loop)] // i indexes assignment[] and buckets together
                for i in 0..n {
                    let from = assignment[i];
                    for to in 0..m {
                        if to == from {
                            continue;
                        }
                        let mut b_from = buckets[from].clone();
                        b_from.retain(|&k| k != i);
                        let mut b_to = buckets[to].clone();
                        b_to.push(i);
                        let new_from = bucket_energy(&b_from);
                        let new_to = bucket_energy(&b_to);
                        let delta = (new_from + new_to) - (energies[from] + energies[to]);
                        if delta < -1e-9 {
                            buckets[from] = b_from;
                            buckets[to] = b_to;
                            energies[from] = new_from;
                            energies[to] = new_to;
                            assignment[i] = to;
                            improved = true;
                            break;
                        }
                    }
                }
            }
        }
        AssignPolicy::RoundRobin => {
            for i in 0..n {
                assignment[i] = i % m;
                buckets[i % m].push(i);
            }
        }
        AssignPolicy::LeastLoaded => {
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_by(|&a, &b| {
                instance.jobs[b]
                    .volume
                    .partial_cmp(&instance.jobs[a].volume)
                    .unwrap()
            });
            let mut load = vec![0.0f64; m];
            for i in order {
                let p = (0..m)
                    .min_by(|&a, &b| load[a].partial_cmp(&load[b]).unwrap())
                    .unwrap();
                assignment[i] = p;
                load[p] += instance.jobs[i].volume;
                buckets[p].push(i);
            }
        }
        AssignPolicy::GreedyEnergy => {
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_by(|&a, &b| {
                instance.jobs[b]
                    .density()
                    .partial_cmp(&instance.jobs[a].density())
                    .unwrap()
            });
            let mut energies = vec![0.0f64; m];
            for i in order {
                let mut best = (0usize, f64::INFINITY);
                for p in 0..m {
                    let mut jobs: Vec<_> = buckets[p].iter().map(|&k| instance.jobs[k]).collect();
                    jobs.push(instance.jobs[i]);
                    let sub = Instance::new(1, jobs).expect("valid sub-instance");
                    let e = schedule_energy(&yds_schedule(&sub).schedule, &power);
                    let delta = e - energies[p];
                    if delta < best.1 {
                        best = (p, delta);
                    }
                }
                assignment[i] = best.0;
                energies[best.0] += best.1;
                buckets[best.0].push(i);
            }
        }
    }

    // Per-processor YDS, remapped onto the global processor index and the
    // original job ids.
    let mut schedule = Schedule::new(m);
    for (p, bucket) in buckets.iter().enumerate() {
        if bucket.is_empty() {
            continue;
        }
        let jobs: Vec<_> = bucket.iter().map(|&k| instance.jobs[k]).collect();
        let sub = Instance::new(1, jobs).expect("valid sub-instance");
        let res = yds_schedule(&sub);
        for seg in res.schedule.segments {
            schedule.push(mpss_core::Segment {
                job: bucket[seg.job],
                proc: p,
                start: seg.start,
                end: seg.end,
                speed: seg.speed,
            });
        }
    }
    schedule.normalize();
    NonMigratoryResult {
        schedule,
        assignment,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpss_core::job::job;
    use mpss_core::validate::assert_feasible;

    fn sample() -> Instance<f64> {
        Instance::new(
            2,
            vec![
                job(0.0, 2.0, 2.0),
                job(0.0, 2.0, 2.0),
                job(1.0, 3.0, 1.0),
                job(2.0, 4.0, 2.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn all_policies_produce_feasible_schedules() {
        let ins = sample();
        for policy in [
            AssignPolicy::GreedyEnergy,
            AssignPolicy::LeastLoaded,
            AssignPolicy::RoundRobin,
        ] {
            let res = non_migratory_schedule(&ins, 2.0, policy);
            assert_feasible(&ins, &res.schedule, 1e-9);
            assert!(res.assignment.iter().all(|&p| p < 2));
        }
    }

    #[test]
    fn schedule_never_migrates() {
        let ins = sample();
        let res = non_migratory_schedule(&ins, 3.0, AssignPolicy::GreedyEnergy);
        assert_eq!(res.schedule.migrations(), 0);
        for seg in &res.schedule.segments {
            assert_eq!(seg.proc, res.assignment[seg.job]);
        }
    }

    #[test]
    fn greedy_energy_beats_or_ties_round_robin_on_skewed_load() {
        // Heavily skewed: two tight heavy jobs + two light ones. Round-robin
        // may stack the heavies; greedy should not do worse.
        let ins = Instance::new(
            2,
            vec![
                job(0.0, 1.0, 4.0),
                job(0.0, 1.0, 4.0),
                job(0.0, 4.0, 1.0),
                job(0.0, 4.0, 1.0),
            ],
        )
        .unwrap();
        let p = Polynomial::new(2.0);
        let greedy = schedule_energy(
            &non_migratory_schedule(&ins, 2.0, AssignPolicy::GreedyEnergy).schedule,
            &p,
        );
        let rr = schedule_energy(
            &non_migratory_schedule(&ins, 2.0, AssignPolicy::RoundRobin).schedule,
            &p,
        );
        assert!(greedy <= rr + 1e-9, "greedy {greedy} > round-robin {rr}");
    }
}

#[cfg(test)]
mod local_search_tests {
    use super::*;
    use mpss_core::job::job;
    use mpss_core::validate::assert_feasible;

    #[test]
    fn local_search_never_does_worse_than_greedy() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let p = Polynomial::new(2.0);
        for seed in 0..10u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let n = rng.gen_range(4..10);
            let m = rng.gen_range(2..4);
            let jobs: Vec<_> = (0..n)
                .map(|_| {
                    let r = rng.gen_range(0..8) as f64;
                    let span = rng.gen_range(1..=5) as f64;
                    job(r, r + span, rng.gen_range(1..=6) as f64)
                })
                .collect();
            let ins = Instance::new(m, jobs).unwrap();
            let greedy = non_migratory_schedule(&ins, 2.0, AssignPolicy::GreedyEnergy);
            let ls = non_migratory_schedule(&ins, 2.0, AssignPolicy::GreedyWithLocalSearch);
            assert_feasible(&ins, &ls.schedule, 1e-9);
            assert_eq!(ls.schedule.migrations(), 0);
            let eg = schedule_energy(&greedy.schedule, &p);
            let el = schedule_energy(&ls.schedule, &p);
            assert!(
                el <= eg + 1e-9 * eg,
                "seed {seed}: LS {el} worse than greedy {eg}"
            );
        }
    }

    #[test]
    fn local_search_fixes_a_bad_greedy_start() {
        // Two heavy same-window jobs plus two light ones on two processors:
        // the local optimum pairs heavy+light. Whatever greedy does, local
        // search must land at or below the paired configuration's energy.
        let ins = Instance::new(
            2,
            vec![
                job(0.0, 2.0, 4.0),
                job(0.0, 2.0, 4.0),
                job(2.0, 4.0, 1.0),
                job(2.0, 4.0, 1.0),
            ],
        )
        .unwrap();
        let p = Polynomial::new(2.0);
        let ls = non_migratory_schedule(&ins, 2.0, AssignPolicy::GreedyWithLocalSearch);
        let e = schedule_energy(&ls.schedule, &p);
        // Paired optimum: each proc runs one heavy (speed 2, E 8) and one
        // light (speed 0.5, E 0.5): total 17.
        assert!(e <= 17.0 + 1e-9, "local search stuck at {e}");
    }
}
