//! Peak-speed minimization and bounded-speed feasibility.
//!
//! The paper's model allows unbounded speeds; the bounded-speed line of
//! work it cites (Chan et al., Lam et al.) asks when a cap `c` on every
//! processor's speed still admits a feasible schedule. With migration the
//! question reduces to a flow feasibility test on the Fig. 1 network:
//! at cap `c` every job needs at least `w_k/c` time, at most `|I_j|` of it
//! per interval, against `min(n_j, m)·|I_j|` capacity per interval.
//!
//! A pleasant consequence of the phase structure: the *minimum achievable
//! peak speed* equals `s_1`, the first-phase speed of the optimal schedule
//! (energy optimality and peak-speed optimality coincide at the top level —
//! certified against the independent binary-search implementation in the
//! tests).

use crate::flow_model::FlowModel;
use mpss_core::{Instance, Intervals};
use mpss_maxflow::max_flow_dinic;

/// `true` iff the instance is schedulable on `instance.m` migratory
/// processors with every speed ≤ `cap`.
pub fn feasible_at_cap(instance: &Instance<f64>, cap: f64) -> bool {
    if instance.is_empty() {
        return true;
    }
    if cap <= 0.0 {
        return false;
    }
    let intervals = Intervals::from_instance(instance);
    let candidate: Vec<usize> = (0..instance.n()).collect();
    let m_j: Vec<usize> = (0..intervals.len())
        .map(|j| {
            candidate
                .iter()
                .filter(|&&k| intervals.job_active(&instance.jobs[k], j))
                .count()
                .min(instance.m)
        })
        .collect();
    // At cap c, job k must receive ≥ w_k/c processing time; the network's
    // source edges carry exactly that demand.
    let mut fm = FlowModel::build(instance, &intervals, &candidate, &m_j, cap);
    let flow = max_flow_dinic(&mut fm.net, fm.source, fm.sink);
    let demand: f64 = instance.jobs.iter().map(|j| j.volume / cap).sum();
    flow >= demand * (1.0 - 1e-9) - 1e-12
}

/// Minimum peak speed over all feasible migratory schedules, by binary
/// search over [`feasible_at_cap`] to relative precision `rel_eps`.
pub fn minimum_peak_speed_search(instance: &Instance<f64>, rel_eps: f64) -> f64 {
    if instance.is_empty() {
        return 0.0;
    }
    // Bracket: the max density is a lower bound; n × max density is enough
    // capacity everywhere, hence an upper bound.
    let max_density = instance
        .jobs
        .iter()
        .map(|j| j.density())
        .fold(0.0f64, f64::max);
    let mut lo = max_density / instance.m as f64;
    let mut hi = max_density * instance.n() as f64;
    debug_assert!(feasible_at_cap(instance, hi * (1.0 + 1e-6)));
    while hi - lo > rel_eps * hi.max(1e-12) {
        let mid = 0.5 * (lo + hi);
        if feasible_at_cap(instance, mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    hi
}

/// Minimum peak speed via the phase structure: `s_1` of the optimal
/// schedule (exact, no search).
///
/// ```
/// use mpss_core::{job::job, Instance};
/// use mpss_offline::speed_bound::{feasible_at_cap, minimum_peak_speed};
///
/// // 3 tight jobs on 2 processors: peak 3/2 suffices (and is necessary).
/// let ins = Instance::new(2, vec![job(0.0, 3.0, 3.0); 3]).unwrap();
/// let peak = minimum_peak_speed(&ins);
/// assert!((peak - 1.5).abs() < 1e-9);
/// assert!(feasible_at_cap(&ins, 1.5));
/// assert!(!feasible_at_cap(&ins, 1.4));
/// ```
pub fn minimum_peak_speed(instance: &Instance<f64>) -> f64 {
    if instance.is_empty() {
        return 0.0;
    }
    crate::optimal_schedule(instance)
        .expect("valid instance")
        .phases
        .first()
        .map(|p| p.speed)
        .unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpss_core::job::job;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn single_job_peak_is_its_density() {
        let ins = Instance::new(1, vec![job(0.0, 4.0, 2.0)]).unwrap();
        assert!((minimum_peak_speed(&ins) - 0.5).abs() < 1e-12);
        assert!(feasible_at_cap(&ins, 0.5));
        assert!(!feasible_at_cap(&ins, 0.49));
    }

    #[test]
    fn parallel_sharing_lowers_the_required_peak() {
        // 3 tight jobs on 2 procs: uniform speed 3/2 is both energy- and
        // peak-optimal; a single processor would need 3.
        let jobs = vec![job(0.0, 3.0, 3.0); 3];
        let two = Instance::new(2, jobs.clone()).unwrap();
        let one = Instance::new(1, jobs).unwrap();
        assert!((minimum_peak_speed(&two) - 1.5).abs() < 1e-9);
        assert!((minimum_peak_speed(&one) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn phase_speed_matches_binary_search_on_random_instances() {
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..20 {
            let n = rng.gen_range(2..9);
            let m = rng.gen_range(1..4);
            let jobs: Vec<_> = (0..n)
                .map(|_| {
                    let r = rng.gen_range(0..10) as f64;
                    let span = rng.gen_range(1..=6) as f64;
                    job(r, r + span, rng.gen_range(1..=8) as f64)
                })
                .collect();
            let ins = Instance::new(m, jobs).unwrap();
            let exact = minimum_peak_speed(&ins);
            let searched = minimum_peak_speed_search(&ins, 1e-9);
            assert!(
                (exact - searched).abs() <= 1e-6 * exact.max(1.0),
                "phase s₁ {exact} vs search {searched}"
            );
        }
    }

    #[test]
    fn feasibility_is_monotone_in_the_cap() {
        let ins = Instance::new(
            2,
            vec![job(0.0, 2.0, 3.0), job(0.0, 4.0, 2.0), job(1.0, 3.0, 2.0)],
        )
        .unwrap();
        let peak = minimum_peak_speed(&ins);
        assert!(!feasible_at_cap(&ins, peak * 0.95));
        assert!(feasible_at_cap(&ins, peak * 1.0 + 1e-9));
        assert!(feasible_at_cap(&ins, peak * 2.0));
    }

    #[test]
    fn empty_instance_needs_no_speed() {
        let ins: Instance<f64> = Instance::new(2, vec![]).unwrap();
        assert_eq!(minimum_peak_speed(&ins), 0.0);
        assert!(feasible_at_cap(&ins, 0.1));
    }
}
