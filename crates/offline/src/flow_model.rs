//! Construction of the paper's Fig. 1 network `G(J, m⃗, s)`.
//!
//! For a candidate job set `J`, reserved processor counts `m⃗ = (m_j)` and
//! uniform speed `s`, the network has
//!
//! * a source `u_0` with an edge to each job vertex `u_k` of capacity
//!   `w_k / s` (the processing time `J_k` needs at speed `s`),
//! * an edge `u_k → v_j` of capacity `|I_j|` for every interval `I_j` in
//!   which `J_k` is active and `m_j > 0` (a job can occupy at most the whole
//!   interval),
//! * an edge `v_j → v_0` (sink) of capacity `m_j · |I_j|` (total reserved
//!   processing time in `I_j`).
//!
//! `J` can be feasibly scheduled at speed `s` on the reserved processors iff
//! the maximum flow saturates every source edge, i.e. has value
//! `F_G = Σ w_k / s = Σ m_j |I_j|`.

use mpss_core::{Instance, Intervals, JobId};
use mpss_maxflow::{warm, EdgeId, FlowNetwork, NodeId};
use mpss_numeric::FlowNum;

/// The Fig. 1 network plus the bookkeeping needed to read flows back.
pub struct FlowModel<T: FlowNum> {
    /// The underlying flow network.
    pub net: FlowNetwork<T>,
    /// Source vertex `u_0`.
    pub source: NodeId,
    /// Sink vertex `v_0`.
    pub sink: NodeId,
    /// The candidate job ids, in vertex order (`jobs[k]` ↔ vertex `u_k`).
    pub jobs: Vec<JobId>,
    /// Interval indices with `m_j > 0`, in vertex order.
    pub intervals_used: Vec<usize>,
    /// `job_edges[k]` = `(interval_index, edge)` pairs for job `k`'s
    /// outgoing edges.
    pub job_edges: Vec<Vec<(usize, EdgeId)>>,
    /// `source_edges[k]` = edge `u_0 → u_k`.
    pub source_edges: Vec<EdgeId>,
    /// `sink_edges[x]` = edge `v_{intervals_used[x]} → v_0`.
    pub sink_edges: Vec<EdgeId>,
    /// The flow target `F_G = Σ m_j |I_j|`.
    pub target: T,
    /// `alive[k]` — false once job `k` was removed via [`FlowModel::remove_job`]
    /// (its vertex stays in the warm network with a zero supply capacity).
    pub alive: Vec<bool>,
}

impl<T: FlowNum> FlowModel<T> {
    /// Builds `G(J, m⃗, s)`.
    ///
    /// * `candidate` — the job ids of the current estimate `J`;
    /// * `m_j` — reserved processors per interval (0 ⇒ no vertex);
    /// * `speed` — the uniform speed `s = W/P`.
    pub fn build(
        instance: &Instance<T>,
        intervals: &Intervals<T>,
        candidate: &[JobId],
        m_j: &[usize],
        speed: T,
    ) -> FlowModel<T> {
        debug_assert_eq!(m_j.len(), intervals.len());
        let intervals_used: Vec<usize> = (0..intervals.len()).filter(|&j| m_j[j] > 0).collect();
        let n = candidate.len();
        let num_nodes = 2 + n + intervals_used.len();
        // Vertex layout: 0 = source, 1..=n jobs, then intervals, last = sink.
        let mut net: FlowNetwork<T> =
            FlowNetwork::with_capacity(num_nodes, n + intervals_used.len() + n * 4);
        let source = 0;
        let sink = num_nodes - 1;
        let interval_vertex = |x: usize| 1 + n + x;

        let mut source_edges = Vec::with_capacity(n);
        let mut job_edges: Vec<Vec<(usize, EdgeId)>> = Vec::with_capacity(n);
        let mut target = T::zero();

        for (k, &job_id) in candidate.iter().enumerate() {
            let job = &instance.jobs[job_id];
            source_edges.push(net.add_edge(source, 1 + k, job.volume / speed));
            let mut edges = Vec::new();
            for (x, &j) in intervals_used.iter().enumerate() {
                if intervals.job_active(job, j) {
                    edges.push((
                        j,
                        net.add_edge(1 + k, interval_vertex(x), intervals.length(j)),
                    ));
                }
            }
            job_edges.push(edges);
        }
        let mut sink_edges = Vec::with_capacity(intervals_used.len());
        for (x, &j) in intervals_used.iter().enumerate() {
            let cap = T::from_usize(m_j[j]) * intervals.length(j);
            target += cap;
            sink_edges.push(net.add_edge(interval_vertex(x), sink, cap));
        }
        // Seal the topology: build the CSR index once here so the engines and
        // warm-start walks never pay a rebuild mid-phase.
        net.finish();

        FlowModel {
            net,
            source,
            sink,
            jobs: candidate.to_vec(),
            intervals_used,
            job_edges,
            source_edges,
            sink_edges,
            target,
            alive: vec![true; n],
        }
    }

    /// [`FlowModel::build`] driven by precomputed contiguous active ranges
    /// instead of per-interval activity probes.
    ///
    /// `ranges[job_id]` is the interval-index range in which `job_id` is
    /// active (see [`Intervals::range_of`]); an incremental planner
    /// maintains those ranges across replans, so deriving the network costs
    /// O(Σ range lengths) — the arcs that exist — with **zero** predicate
    /// scans over inactive (job, interval) pairs, instead of the
    /// O(|candidate| · |intervals|) sweep of the scratch build.
    ///
    /// The result is element-identical to [`FlowModel::build`]: same vertex
    /// layout, same arc insertion order, expression-identical capacities —
    /// so engines find bit-identical flows on either. The unit tests and
    /// the incremental differential harness hold this equality.
    pub fn build_from_ranges(
        instance: &Instance<T>,
        intervals: &Intervals<T>,
        candidate: &[JobId],
        m_j: &[usize],
        speed: T,
        ranges: &[(usize, usize)],
    ) -> FlowModel<T> {
        debug_assert_eq!(m_j.len(), intervals.len());
        let intervals_used: Vec<usize> = (0..intervals.len()).filter(|&j| m_j[j] > 0).collect();
        let n = candidate.len();
        let num_nodes = 2 + n + intervals_used.len();
        let mut net: FlowNetwork<T> =
            FlowNetwork::with_capacity(num_nodes, n + intervals_used.len() + n * 4);
        let source = 0;
        let sink = num_nodes - 1;
        let interval_vertex = |x: usize| 1 + n + x;

        // Interval index → used-vertex position, so the range walk can emit
        // arcs against the same compacted vertex ids as the scratch build.
        const UNUSED: u32 = u32::MAX;
        let mut used_pos = vec![UNUSED; intervals.len()];
        for (x, &j) in intervals_used.iter().enumerate() {
            used_pos[j] = x as u32;
        }

        let mut source_edges = Vec::with_capacity(n);
        let mut job_edges: Vec<Vec<(usize, EdgeId)>> = Vec::with_capacity(n);
        let mut target = T::zero();

        for (k, &job_id) in candidate.iter().enumerate() {
            let job = &instance.jobs[job_id];
            source_edges.push(net.add_edge(source, 1 + k, job.volume / speed));
            let (lo, hi) = ranges[job_id];
            let mut edges = Vec::new();
            for (j, &pos) in used_pos.iter().enumerate().take(hi).skip(lo) {
                if pos == UNUSED {
                    continue;
                }
                debug_assert!(intervals.job_active(job, j), "stale range for job {job_id}");
                edges.push((
                    j,
                    net.add_edge(1 + k, interval_vertex(pos as usize), intervals.length(j)),
                ));
            }
            job_edges.push(edges);
        }
        let mut sink_edges = Vec::with_capacity(intervals_used.len());
        for (x, &j) in intervals_used.iter().enumerate() {
            let cap = T::from_usize(m_j[j]) * intervals.length(j);
            target += cap;
            sink_edges.push(net.add_edge(interval_vertex(x), sink, cap));
        }
        net.finish();

        FlowModel {
            net,
            source,
            sink,
            jobs: candidate.to_vec(),
            intervals_used,
            job_edges,
            source_edges,
            sink_edges,
            target,
            alive: vec![true; n],
        }
    }

    /// Position of interval `j` among the used intervals, if reserved.
    pub fn interval_pos(&self, j: usize) -> Option<usize> {
        self.intervals_used.binary_search(&j).ok()
    }

    /// Vertex index of the `x`-th used interval.
    #[inline]
    pub fn interval_vertex(&self, x: usize) -> usize {
        1 + self.jobs.len() + x
    }

    /// Warm-start removal of candidate job `k` (vertex index): drains all
    /// flow routed through `u_k` and zeroes its supply capacity, leaving
    /// the rest of the flow feasible. Returns the drained amount.
    pub fn remove_job(&mut self, k: usize) -> T {
        debug_assert!(self.alive[k], "job removed twice");
        let drained = warm::drain_node(&mut self.net, 1 + k, self.source, self.sink);
        warm::set_capacity(
            &mut self.net,
            self.source_edges[k],
            T::zero(),
            self.source,
            self.sink,
        );
        self.alive[k] = false;
        drained
    }

    /// Warm-start retarget to a fresh `(m⃗, speed)` probe: rewrites every
    /// supply capacity to `w_k / s` and every sink capacity to `m_j |I_j|`,
    /// draining any flow the tightened capacities no longer admit, and
    /// recomputes the saturation target. The capacity and target arithmetic
    /// is expression-identical to [`FlowModel::build`], so a warm-started
    /// round probes exactly the network a cold rebuild would.
    ///
    /// Returns the total flow drained by tightened capacities. `m_j` may
    /// only shrink relative to the round the network was built for (true
    /// within a phase: the candidate set only loses jobs); intervals whose
    /// reservation drops to zero keep their vertex with a zero sink
    /// capacity, which is flow-equivalent to having no vertex at all.
    pub fn retarget(
        &mut self,
        instance: &Instance<T>,
        intervals: &Intervals<T>,
        m_j: &[usize],
        speed: T,
    ) -> T {
        let mut drained = T::zero();
        for (k, &job_id) in self.jobs.iter().enumerate() {
            if !self.alive[k] {
                continue;
            }
            let cap = instance.jobs[job_id].volume / speed;
            drained += warm::set_capacity(
                &mut self.net,
                self.source_edges[k],
                cap,
                self.source,
                self.sink,
            );
        }
        let mut target = T::zero();
        for (x, &j) in self.intervals_used.iter().enumerate() {
            let cap = T::from_usize(m_j[j]) * intervals.length(j);
            target += cap;
            drained += warm::set_capacity(
                &mut self.net,
                self.sink_edges[x],
                cap,
                self.source,
                self.sink,
            );
        }
        self.target = target;
        drained
    }

    /// Greedy seeding: one pass over the job→interval edges pushing the
    /// residual bottleneck of each `source → u_k → v_j → sink` path.
    /// Returns the seeded flow value. Every seeded unit is one the engine
    /// does not have to discover through BFS + augmentation; the engine
    /// then only performs the corrective (rerouting) work.
    pub fn seed_greedy(&mut self) -> T {
        let mut seeded = T::zero();
        for k in 0..self.jobs.len() {
            if !self.alive[k] {
                continue;
            }
            for x in 0..self.job_edges[k].len() {
                let (j, e) = self.job_edges[k][x];
                let Some(pos) = self.interval_pos(j) else {
                    continue;
                };
                let supply = self.net.residual(self.source_edges[k]);
                if !supply.is_strictly_positive() {
                    break;
                }
                let path = [self.source_edges[k], e, self.sink_edges[pos]];
                seeded += warm::push_path(&mut self.net, &path, supply);
            }
        }
        seeded
    }

    /// Span-hint seeding for OA(m) replans: `spans[k]` lists wall-clock
    /// `(start, end)` stretches during which candidate job `k` executed in
    /// the *previous* plan. The overlap of those stretches with each new
    /// interval is used as a per-edge seed amount (clamped by the residual
    /// capacities), transplanting the surviving jobs' previous flow into
    /// the new network. Returns the seeded flow value.
    pub fn seed_from_spans(&mut self, intervals: &Intervals<T>, spans: &[Vec<(T, T)>]) -> T {
        let mut seeded = T::zero();
        for k in 0..self.jobs.len() {
            if !self.alive[k] || spans.get(k).is_none_or(|s| s.is_empty()) {
                continue;
            }
            for x in 0..self.job_edges[k].len() {
                let (j, e) = self.job_edges[k][x];
                let Some(pos) = self.interval_pos(j) else {
                    continue;
                };
                let (lo, hi) = intervals.bounds(j);
                let mut hint = T::zero();
                for &(a, b) in &spans[k] {
                    let s = a.max2(lo);
                    let t = b.min2(hi);
                    if s < t {
                        hint += t - s;
                    }
                }
                if !hint.is_strictly_positive() {
                    continue;
                }
                let path = [self.source_edges[k], e, self.sink_edges[pos]];
                seeded += warm::push_path(&mut self.net, &path, hint);
            }
        }
        seeded
    }

    /// After a max-flow run: the flow on `u_k → v_j`, i.e. the time job
    /// `candidate[k]` is scheduled in interval `j` (0 when no edge exists).
    pub fn time_in_interval(&self, k: usize, j: usize) -> T {
        self.job_edges[k]
            .iter()
            .find(|(jj, _)| *jj == j)
            .map(|(_, e)| self.net.flow(*e))
            .unwrap_or_else(T::zero)
    }

    /// All `(job_vertex_index, time)` pairs with positive flow into
    /// interval `j`.
    pub fn interval_assignments(&self, j: usize) -> Vec<(usize, T)> {
        let mut out = Vec::new();
        for (k, edges) in self.job_edges.iter().enumerate() {
            for (jj, e) in edges {
                if *jj == j {
                    let t = self.net.flow(*e);
                    if t.is_strictly_positive() {
                        out.push((k, t));
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpss_core::job::job;
    use mpss_maxflow::max_flow_dinic;

    fn instance() -> Instance<f64> {
        // Two jobs on one processor, disjoint halves of [0, 2).
        Instance::new(1, vec![job(0.0, 1.0, 2.0), job(1.0, 2.0, 2.0)]).unwrap()
    }

    #[test]
    fn network_shape_matches_fig1() {
        let ins = instance();
        let iv = Intervals::from_instance(&ins);
        let fm = FlowModel::build(&ins, &iv, &[0, 1], &[1, 1], 2.0);
        // source + 2 jobs + 2 intervals + sink
        assert_eq!(fm.net.num_nodes(), 6);
        // 2 source edges + 2 job-interval edges + 2 sink edges
        assert_eq!(fm.net.num_edges(), 6);
        assert_eq!(fm.target, 2.0);
        assert_eq!(fm.jobs, vec![0, 1]);
        assert_eq!(fm.intervals_used, vec![0, 1]);
    }

    #[test]
    fn saturating_flow_exists_iff_feasible() {
        let ins = instance();
        let iv = Intervals::from_instance(&ins);
        let mut fm = FlowModel::build(&ins, &iv, &[0, 1], &[1, 1], 2.0);
        let f = max_flow_dinic(&mut fm.net, fm.source, fm.sink);
        assert!((f - fm.target).abs() < 1e-12);
        assert!((fm.time_in_interval(0, 0) - 1.0).abs() < 1e-12);
        assert!((fm.time_in_interval(1, 1) - 1.0).abs() < 1e-12);
        assert_eq!(fm.time_in_interval(0, 1), 0.0); // job 0 inactive in I_1
    }

    #[test]
    fn infeasible_speed_leaves_deficit() {
        let ins = instance();
        let iv = Intervals::from_instance(&ins);
        // Speed 1 cannot finish 2 units within each 1-length window alone,
        // and the capacities w/s = 2 > |I_j| = 1 also exceed interval edges.
        let mut fm = FlowModel::build(&ins, &iv, &[0, 1], &[1, 1], 1.0);
        let f = max_flow_dinic(&mut fm.net, fm.source, fm.sink);
        assert!(f < 4.0 - 1e-9); // F_G would be Σ w/s = 4
    }

    #[test]
    fn zero_reservation_intervals_get_no_vertex() {
        let ins = Instance::new(1, vec![job(0.0, 2.0, 1.0), job(1.0, 2.0, 1.0)]).unwrap();
        let iv = Intervals::from_instance(&ins);
        let fm = FlowModel::build(&ins, &iv, &[0, 1], &[0, 1], 1.0);
        assert_eq!(fm.intervals_used, vec![1]);
        // Job 0 active in both intervals but only interval 1 has a vertex.
        assert_eq!(fm.job_edges[0].len(), 1);
    }

    #[test]
    fn build_from_ranges_is_element_identical_to_build() {
        // Overlapping windows, shared deadlines, and a zero-reservation
        // interval, over a partial candidate set.
        let ins = Instance::new(
            2,
            vec![
                job(0.0, 4.0, 2.0),
                job(1.0, 3.0, 4.0),
                job(2.0, 8.0, 1.0),
                job(1.0, 8.0, 3.0),
            ],
        )
        .unwrap();
        let iv = Intervals::from_instance(&ins);
        let ranges: Vec<(usize, usize)> = ins.jobs.iter().map(|j| iv.range_of(j)).collect();
        for (candidate, m_j) in [
            (vec![0, 1, 2, 3], vec![2, 2, 1, 1, 2]),
            (vec![0, 2], vec![1, 0, 1, 1, 0]),
            (vec![3], vec![0, 1, 1, 1, 1]),
        ] {
            let a = FlowModel::build(&ins, &iv, &candidate, &m_j, 1.5);
            let b = FlowModel::build_from_ranges(&ins, &iv, &candidate, &m_j, 1.5, &ranges);
            assert_eq!(a.jobs, b.jobs);
            assert_eq!(a.intervals_used, b.intervals_used);
            assert_eq!(a.job_edges, b.job_edges);
            assert_eq!(a.source_edges, b.source_edges);
            assert_eq!(a.sink_edges, b.sink_edges);
            assert_eq!(a.target.to_bits(), b.target.to_bits());
            assert_eq!(a.net.num_nodes(), b.net.num_nodes());
            let edges_a: Vec<_> = a.net.iter_edges().collect();
            let edges_b: Vec<_> = b.net.iter_edges().collect();
            assert_eq!(edges_a, edges_b, "arc arena must match element-wise");
        }
    }

    #[test]
    fn interval_assignments_report_positive_flows() {
        let ins = instance();
        let iv = Intervals::from_instance(&ins);
        let mut fm = FlowModel::build(&ins, &iv, &[0, 1], &[1, 1], 2.0);
        max_flow_dinic(&mut fm.net, fm.source, fm.sink);
        let a0 = fm.interval_assignments(0);
        assert_eq!(a0.len(), 1);
        assert_eq!(a0[0].0, 0);
    }
}
