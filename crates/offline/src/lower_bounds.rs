//! Instance lower bounds on optimal energy.
//!
//! Used by the experiment harness to sanity-check optimality (OPT must lie
//! between every lower bound and every baseline's energy) and inside the
//! competitive-ratio reports.

use crate::yds::yds_schedule;
use mpss_core::energy::schedule_energy;
use mpss_core::{Instance, PowerFunction};
use mpss_numeric::KahanSum;

/// Per-job lower bound: each job in isolation costs at least
/// `P(δ_i) · (d_i − r_i)` — running `w_i` spread over its entire window at
/// constant density is the cheapest possible treatment of that job, and
/// energy is additive over jobs.
///
/// Valid for convex non-decreasing `P` with `P(0) = 0` (for `P(0) > 0`,
/// compressing a job *saves* idle power and the bound breaks).
pub fn per_job_lower_bound(instance: &Instance<f64>, p: &impl PowerFunction) -> f64 {
    debug_assert!(
        p.power(0.0).abs() < 1e-12,
        "per-job bound requires P(0) = 0"
    );
    let mut sum = KahanSum::new();
    for j in &instance.jobs {
        sum.add(p.power(j.density()) * j.window());
    }
    sum.value()
}

/// The `m^{1−α} · E¹_OPT` lower bound from the proof of Theorem 3: an
/// optimal `m`-processor schedule, flattened onto a single processor
/// running the per-instant speed sum, costs at most `m^{α−1}` times more,
/// so `E_OPT(σ) ≥ m^{1−α} E¹_OPT(σ)`.
///
/// `E¹_OPT` is computed exactly by YDS. Only valid for `P(s) = s^α`.
pub fn single_processor_scaled_lower_bound(instance: &Instance<f64>, alpha: f64) -> f64 {
    assert!(alpha > 1.0);
    let single = yds_schedule(instance);
    let e1 = schedule_energy(&single.schedule, &mpss_core::power::Polynomial::new(alpha));
    (instance.m as f64).powf(1.0 - alpha) * e1
}

/// The larger (tighter) of the two bounds for `P(s) = s^α`.
pub fn best_lower_bound(instance: &Instance<f64>, alpha: f64) -> f64 {
    let p = mpss_core::power::Polynomial::new(alpha);
    per_job_lower_bound(instance, &p).max(single_processor_scaled_lower_bound(instance, alpha))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpss_core::job::job;
    use mpss_core::power::Polynomial;

    #[test]
    fn per_job_bound_is_tight_for_isolated_jobs() {
        // One job alone: the bound *is* the optimum.
        let ins = Instance::new(1, vec![job(0.0, 4.0, 2.0)]).unwrap();
        let p = Polynomial::new(3.0);
        let lb = per_job_lower_bound(&ins, &p);
        assert!((lb - 0.125 * 4.0).abs() < 1e-12); // (0.5)³·4
    }

    #[test]
    fn scaled_single_proc_bound_is_tight_for_full_parallel_load() {
        // m identical fully-stretched jobs: OPT = m · δ^α · T while
        // E¹_OPT = (mδ)^α · T, so the scaled bound is exactly OPT.
        let m = 4;
        let ins = Instance::new(m, vec![job(0.0, 2.0, 2.0); m]).unwrap();
        let alpha = 2.0;
        let lb = single_processor_scaled_lower_bound(&ins, alpha);
        let opt = m as f64 * 1.0f64.powf(alpha) * 2.0;
        assert!((lb - opt).abs() < 1e-9, "lb = {lb}, opt = {opt}");
    }

    #[test]
    fn bounds_are_positive_and_ordered_sanely() {
        let ins = Instance::new(
            2,
            vec![job(0.0, 1.0, 2.0), job(0.0, 3.0, 1.0), job(1.0, 4.0, 2.0)],
        )
        .unwrap();
        let lb = best_lower_bound(&ins, 2.5);
        assert!(lb > 0.0);
        let p = Polynomial::new(2.5);
        assert!(lb >= per_job_lower_bound(&ins, &p) - 1e-12);
    }
}
