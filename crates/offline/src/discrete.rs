//! Discrete speed levels.
//!
//! Real processors expose a finite menu of frequencies (the setting of
//! Li–Yao and Ishihara–Yasuura, cited by the paper as the discrete-speed
//! line of work). The classical two-speed theorem says: a job that would
//! ideally run at speed `s` runs optimally at the two *adjacent* menu
//! speeds `σ_lo ≤ s ≤ σ_hi`, time-mixed to preserve its work. Applying the
//! mixture segment-by-segment to our continuous optimum yields a
//! menu-feasible schedule whose energy equals the continuous schedule's
//! energy under the piecewise-linear interpolation of `P` on the menu —
//! and since that interpolation is itself convex non-decreasing, the
//! universal optimality of Theorem 1 makes the result *optimal among all
//! menu-restricted migratory schedules* (the test-suite certifies this by
//! matching the discretized energy against the independent LP optimum on
//! the same menu).

use mpss_core::{Schedule, Segment};

/// Errors from menu discretization.
#[derive(Debug, Clone, PartialEq)]
pub enum DiscretizeError {
    /// The menu is empty or not strictly increasing/positive.
    BadMenu,
    /// A segment needs a speed above the top menu speed.
    SpeedAboveMenu { required: f64, top: f64 },
}

impl std::fmt::Display for DiscretizeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiscretizeError::BadMenu => write!(f, "menu must be strictly increasing and positive"),
            DiscretizeError::SpeedAboveMenu { required, top } => {
                write!(f, "required speed {required} exceeds top menu speed {top}")
            }
        }
    }
}

impl std::error::Error for DiscretizeError {}

/// Converts a continuous-speed schedule to one using only `menu` speeds
/// (strictly increasing, positive), via the per-segment two-speed mixture.
///
/// ```
/// use mpss_core::{Schedule, Segment};
/// use mpss_offline::discrete::discretize_speeds;
///
/// let mut s = Schedule::new(1);
/// s.push(Segment { job: 0, proc: 0, start: 0.0, end: 2.0, speed: 1.5 });
/// let d = discretize_speeds(&s, &[1.0, 2.0]).unwrap();
/// // 1.5 = half time at 2.0 + half at 1.0 (work preserved: 3.0).
/// assert_eq!(d.segments.len(), 2);
/// assert_eq!(d.total_work(), 3.0);
/// ```
///
/// Each segment `[a, b)` at speed `s` becomes at most two segments inside
/// the same window on the same processor: the `σ_hi` part first, then the
/// `σ_lo` part, with `t_hi·σ_hi + t_lo·σ_lo = s·(b − a)`. Below the lowest
/// menu speed, the job runs at `σ_1` for `s(b−a)/σ_1 ≤ b − a` time and the
/// processor idles the rest — feasibility is preserved in every case.
pub fn discretize_speeds(
    schedule: &Schedule<f64>,
    menu: &[f64],
) -> Result<Schedule<f64>, DiscretizeError> {
    if menu.is_empty() || menu[0] <= 0.0 || menu.windows(2).any(|w| w[1] <= w[0]) {
        return Err(DiscretizeError::BadMenu);
    }
    let top = *menu.last().unwrap();
    let mut out = Schedule::new(schedule.m);
    for seg in &schedule.segments {
        let s = seg.speed;
        let dur = seg.duration();
        if s > top * (1.0 + 1e-12) {
            return Err(DiscretizeError::SpeedAboveMenu { required: s, top });
        }
        // Exact menu hit (or top-speed clamp within tolerance).
        if let Some(&hit) = menu.iter().find(|&&q| (q - s).abs() <= 1e-12 * q.max(1.0)) {
            out.push(Segment { speed: hit, ..*seg });
            continue;
        }
        if s < menu[0] {
            // Run at the lowest speed for the work-preserving prefix.
            let t = s * dur / menu[0];
            out.push(Segment {
                speed: menu[0],
                end: seg.start + t,
                ..*seg
            });
            continue;
        }
        // Adjacent pair straddling s.
        let hi_idx = menu.partition_point(|&q| q < s);
        let (lo, hi) = (menu[hi_idx - 1], menu[hi_idx]);
        // t_hi·hi + (dur − t_hi)·lo = s·dur
        let t_hi = dur * (s - lo) / (hi - lo);
        out.push(Segment {
            speed: hi,
            end: seg.start + t_hi,
            ..*seg
        });
        out.push(Segment {
            speed: lo,
            start: seg.start + t_hi,
            ..*seg
        });
    }
    out.normalize();
    Ok(out)
}

/// Energy of a continuous schedule under the piecewise-linear interpolation
/// of `P` on `menu` — by construction exactly the energy of
/// [`discretize_speeds`]' output under the true `P`.
pub fn interpolated_energy(
    schedule: &Schedule<f64>,
    power: &impl mpss_core::PowerFunction,
    menu: &[f64],
) -> f64 {
    let pl = mpss_core::power::PiecewiseLinear::new(
        std::iter::once((0.0, power.power(0.0) * 0.0))
            .chain(menu.iter().map(|&q| (q, power.power(q))))
            .collect(),
    );
    mpss_core::energy::schedule_energy(schedule, &pl)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lp_baseline::lp_baseline;
    use crate::optimal_schedule;
    use crate::yds::yds_schedule;
    use mpss_core::energy::schedule_energy;
    use mpss_core::job::job;
    use mpss_core::power::Polynomial;
    use mpss_core::validate::assert_feasible;
    use mpss_core::Instance;

    fn menu_for(instance: &Instance<f64>, k: usize) -> Vec<f64> {
        let s_max = yds_schedule(instance)
            .speeds
            .first()
            .copied()
            .unwrap_or(1.0);
        (1..=k).map(|q| s_max * q as f64 / k as f64).collect()
    }

    #[test]
    fn discretized_schedule_is_feasible_and_work_preserving() {
        let ins = Instance::new(
            2,
            vec![job(0.0, 3.0, 4.0), job(0.0, 2.0, 3.0), job(1.0, 4.0, 2.0)],
        )
        .unwrap();
        let cont = optimal_schedule(&ins).unwrap().schedule;
        let menu = menu_for(&ins, 7);
        let disc = discretize_speeds(&cont, &menu).unwrap();
        assert_feasible(&ins, &disc, 1e-9);
        // Only menu speeds appear.
        for seg in &disc.segments {
            assert!(
                menu.iter().any(|&q| (q - seg.speed).abs() < 1e-9),
                "off-menu speed {}",
                seg.speed
            );
        }
    }

    #[test]
    fn energy_equals_piecewise_linear_interpolation() {
        let ins = Instance::new(2, vec![job(0.0, 4.0, 5.0), job(1.0, 3.0, 3.0)]).unwrap();
        let cont = optimal_schedule(&ins).unwrap().schedule;
        let p = Polynomial::new(2.5);
        let menu = menu_for(&ins, 9);
        let disc = discretize_speeds(&cont, &menu).unwrap();
        let e_disc = schedule_energy(&disc, &p);
        let e_interp = interpolated_energy(&cont, &p, &menu);
        assert!(
            (e_disc - e_interp).abs() <= 1e-9 * e_disc.max(1.0),
            "discretized {e_disc} vs interpolated {e_interp}"
        );
        // And convexity makes discretization a (weak) penalty.
        let e_cont = schedule_energy(&cont, &p);
        assert!(e_disc >= e_cont - 1e-9);
    }

    #[test]
    fn discretized_optimum_matches_the_lp_on_the_same_menu() {
        // The theorem-grade identity: two-speed mixing of the continuous
        // optimum = optimal menu-restricted schedule = LP optimum.
        let ins = Instance::new(
            2,
            vec![job(0.0, 2.0, 2.0), job(0.0, 2.0, 1.0), job(1.0, 3.0, 1.0)],
        )
        .unwrap();
        let p = Polynomial::new(2.0);
        let k = 12;
        let cont = optimal_schedule(&ins).unwrap().schedule;
        let menu = menu_for(&ins, k);
        let disc = discretize_speeds(&cont, &menu).unwrap();
        let e_disc = schedule_energy(&disc, &p);
        let e_lp = lp_baseline(&ins, &p, k).unwrap().energy; // same menu construction
        assert!(
            (e_disc - e_lp).abs() <= 1e-6 * e_lp.max(1.0),
            "discretized {e_disc} vs LP {e_lp}"
        );
    }

    #[test]
    fn below_menu_speeds_idle_the_remainder() {
        let mut cont = Schedule::new(1);
        cont.push(Segment {
            job: 0,
            proc: 0,
            start: 0.0,
            end: 4.0,
            speed: 0.25,
        });
        let disc = discretize_speeds(&cont, &[1.0, 2.0]).unwrap();
        assert_eq!(disc.len(), 1);
        assert_eq!(disc.segments[0].speed, 1.0);
        assert!((disc.segments[0].end - 1.0).abs() < 1e-12); // 0.25·4 / 1.0
    }

    #[test]
    fn rejects_bad_menus_and_too_slow_menus() {
        let mut cont = Schedule::new(1);
        cont.push(Segment {
            job: 0,
            proc: 0,
            start: 0.0,
            end: 1.0,
            speed: 5.0,
        });
        assert_eq!(
            discretize_speeds(&cont, &[]).unwrap_err(),
            DiscretizeError::BadMenu
        );
        assert_eq!(
            discretize_speeds(&cont, &[2.0, 1.0]).unwrap_err(),
            DiscretizeError::BadMenu
        );
        assert!(matches!(
            discretize_speeds(&cont, &[1.0, 2.0]).unwrap_err(),
            DiscretizeError::SpeedAboveMenu { .. }
        ));
    }
}
