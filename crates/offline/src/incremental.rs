//! Incremental instance maintenance for repeated, closely-related solves.
//!
//! The online drivers re-run the offline optimum after every arrival: the
//! sub-instance solved at time `t` differs from the previous one by *one*
//! arriving job (plus any jobs that completed in between), yet the scratch
//! pipeline re-derives everything — re-sorts the event partition, re-probes
//! every (job, interval) activity pair in the Lemma 3 reservation loop, and
//! re-scans them all again building the Fig. 1 network. That derivation
//! work is Θ(rounds · n · |𝓘|) per replan even though the *answer* changes
//! by O(delta).
//!
//! This module makes the derivation incremental:
//!
//! * [`PreparedInstance`] — the partition plus each job's contiguous active
//!   interval range (activity `I_j ⊆ [r, d)` is monotone in `j`, so the
//!   active set is exactly one range; see `Intervals::range_of`). With the
//!   ranges in hand, the reservation loop counts actives with a difference
//!   array in O(n + |𝓘|) instead of O(n · |𝓘|), and the network is built
//!   arc-by-arc with zero inactive probes
//!   (`FlowModel::build_from_ranges`) — element-identical to the scratch
//!   build, so every downstream decision (max-flow value, canonical
//!   min-cut removal order, packing) is bit-identical.
//! * [`IncrementalPlanner`] — keeps a refcounted
//!   [`EventPartition`] alive across replans and splices each arriving or
//!   expiring job's deadline in or out individually, so maintaining the
//!   partition and ranges costs O(delta · log n + n) bookkeeping per sync
//!   rather than a fresh O(n log n) sort plus the quadratic probe sweeps.
//!
//! Soundness rests on a *pure-function* property rather than on trusting
//! the planner state: `sync` returns exactly the `PreparedInstance` that
//! [`PreparedInstance::derive`] would compute from scratch for the same
//! live set (the differential tests drive random interleavings against the
//! rebuild oracle). A restored session, whose planner starts empty,
//! therefore produces the same prepared instance — and hence a
//! bit-identical plan — as the uninterrupted session that patched its way
//! there.

use mpss_core::{EventPartition, Instance, Intervals};
use mpss_numeric::FlowNum;
use mpss_obs::{Collector, NoopCollector};

/// An interval partition with per-job contiguous active ranges, ready to be
/// consumed by `optimal_schedule_prepared` in place of its scratch
/// derivation.
#[derive(Clone, Debug, PartialEq)]
pub struct PreparedInstance<T> {
    /// The event partition — must equal `Intervals::from_instance` of the
    /// instance being solved.
    pub intervals: Intervals<T>,
    /// `ranges[job_id]` = the interval-index range `lo..hi` in which the
    /// job is active (equal to `intervals.range_of(&jobs[job_id])`).
    pub ranges: Vec<(usize, usize)>,
    /// Machine-independent count of derivation operations (searches,
    /// splices, scans) spent producing this value — what
    /// `OptimalResult::work_ops` accounts against the scratch pipeline.
    pub derivation_ops: usize,
}

impl<T: FlowNum> PreparedInstance<T> {
    /// Scratch derivation: the pure function the incremental planner must
    /// agree with. Also the entry point for one-shot prepared solves (e.g.
    /// the exact-rational golden corpus in the differential harness).
    pub fn derive(instance: &Instance<T>) -> PreparedInstance<T> {
        let intervals = Intervals::from_instance(instance);
        let ranges: Vec<(usize, usize)> = instance
            .jobs
            .iter()
            .map(|j| intervals.range_of(j))
            .collect();
        let derivation_ops = scratch_partition_ops(instance.n());
        PreparedInstance {
            intervals,
            ranges,
            derivation_ops,
        }
    }
}

/// Derivation-op cost of the scratch partition build for `n` jobs: the
/// 2n event-time collection plus the comparison sort (`2n·log₂(2n)`) plus
/// one range search per job. Used so the scratch and incremental paths are
/// accounted in the same machine-independent currency.
pub(crate) fn scratch_partition_ops(n: usize) -> usize {
    let events = 2 * n;
    events + events * log2_ceil(events) + n * log2_ceil(n + 1)
}

fn log2_ceil(x: usize) -> usize {
    (usize::BITS - x.max(1).leading_zeros()) as usize
}

/// Per-sync work accounting of an [`IncrementalPlanner`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IncrementalStats {
    /// Network arcs whose derivation was patched (added or dropped with an
    /// arriving/expiring job, or re-derived after a full rebuild) rather
    /// than re-discovered by a quadratic probe sweep. Grows with the
    /// per-event delta, not with the live-job count.
    pub patched_arcs: u64,
    /// Syncs that fell back to a full from-scratch re-derivation (first
    /// sync after construction or restore, or detected divergence).
    pub rebuilt: u64,
    /// Partition breakpoints carried over unchanged from the previous
    /// sync's partition.
    pub reused_intervals: u64,
}

impl IncrementalStats {
    /// Accumulates another sync's stats into a running total.
    pub fn absorb(&mut self, other: IncrementalStats) {
        self.patched_arcs += other.patched_arcs;
        self.rebuilt += other.rebuilt;
        self.reused_intervals += other.reused_intervals;
    }
}

/// Maintains the event partition and active ranges of a *staircase* live
/// set — every job released at the current clock, as produced by the OA(m)
/// session replans — across a stream of arrivals, completions and clock
/// advances.
///
/// The caller passes the full live set each sync (sorted ascending by a
/// stable per-job key, e.g. the session job id); the planner diffs it
/// against the previous sync's set and splices only the changes into its
/// [`EventPartition`]. A key seen with a different deadline, or a removal
/// of an unknown deadline, is treated as divergence and answered with a
/// full rebuild — never with a wrong partition.
#[derive(Clone, Debug, Default)]
pub struct IncrementalPlanner<T> {
    /// Refcounted distinct deadlines of the live jobs (all `> now`).
    events: EventPartition<T>,
    /// Last synced live set: `(key, deadline)` ascending by key.
    live: Vec<(usize, T)>,
    /// Last synced ranges, aligned with `live` (used to price departures).
    ranges: Vec<(usize, usize)>,
    /// Whether at least one sync has happened (an empty live set is a
    /// valid synced state, distinct from "never synced").
    primed: bool,
}

impl<T: FlowNum> IncrementalPlanner<T> {
    /// A fresh planner; its first [`IncrementalPlanner::sync`] is a rebuild.
    pub fn new() -> IncrementalPlanner<T> {
        IncrementalPlanner {
            events: EventPartition::new(),
            live: Vec::new(),
            ranges: Vec::new(),
            primed: false,
        }
    }

    /// Brings the planner up to date with the live set at clock `now` and
    /// returns the prepared instance for the staircase sub-instance whose
    /// job `i` is `(release = now, deadline = live[i].1)` — exactly what
    /// [`PreparedInstance::derive`] would return for it — plus this sync's
    /// work accounting.
    ///
    /// `live` must be sorted ascending by key with every deadline `> now`;
    /// a violation is answered with a full rebuild, not an error.
    pub fn sync(&mut self, now: T, live: &[(usize, T)]) -> (PreparedInstance<T>, IncrementalStats) {
        self.sync_observed(now, live, &mut NoopCollector)
    }

    /// [`IncrementalPlanner::sync`] with an instrumentation [`Collector`]:
    /// emits `offline.incremental.patched_arcs`,
    /// `offline.incremental.rebuilt` and
    /// `offline.incremental.reused_intervals`.
    pub fn sync_observed<C: Collector>(
        &mut self,
        now: T,
        live: &[(usize, T)],
        obs: &mut C,
    ) -> (PreparedInstance<T>, IncrementalStats) {
        let mut stats = IncrementalStats::default();
        let mut ops = 0usize;
        let breakpoints_before = self.events.len();

        let patched = if self.primed {
            match self.patch(live, &mut stats, &mut ops) {
                Some(removed_splices) => {
                    stats.reused_intervals = (breakpoints_before - removed_splices) as u64;
                    true
                }
                None => false,
            }
        } else {
            false
        };
        if !patched {
            self.rebuild(live, &mut stats, &mut ops);
        }
        self.primed = true;

        let prepared = self.finish(now, live, &mut stats, &mut ops);
        obs.count("offline.incremental.patched_arcs", stats.patched_arcs);
        obs.count(
            "offline.incremental.reused_intervals",
            stats.reused_intervals,
        );
        if stats.rebuilt > 0 {
            obs.count("offline.incremental.rebuilt", stats.rebuilt);
        }
        (prepared, stats)
    }

    /// Diffs `live` against the previous sync and splices the changes.
    /// Returns the number of breakpoints spliced *out*, or `None` on
    /// divergence (leaving a rebuild to recover).
    fn patch(
        &mut self,
        live: &[(usize, T)],
        stats: &mut IncrementalStats,
        ops: &mut usize,
    ) -> Option<usize> {
        let log = log2_ceil(self.events.len() + 1);
        let mut removed_splices = 0usize;
        let mut a = 0; // previous live
        let mut b = 0; // new live
        while a < self.live.len() || b < live.len() {
            *ops += 1;
            match (self.live.get(a), live.get(b)) {
                // Departed (key only in the previous set): drop its
                // deadline and price its arcs out.
                (Some(&(ka, da)), other) if other.is_none_or(|&(kb, _)| ka < kb) => {
                    let (_, spliced) = self.events.remove(&da)?;
                    removed_splices += usize::from(spliced);
                    *ops += log;
                    let (lo, hi) = self.ranges[a];
                    stats.patched_arcs += (hi - lo) as u64 + 1;
                    a += 1;
                }
                (Some(&(ka, da)), Some(&(kb, db))) if ka == kb => {
                    if da != db {
                        return None; // a live job's deadline never moves
                    }
                    a += 1;
                    b += 1;
                }
                // Arrived: splice its deadline in (arcs priced in finish(),
                // once the new partition fixes its range).
                (_, Some(&(_, db))) => {
                    self.events.insert(db);
                    *ops += log;
                    b += 1;
                }
                _ => unreachable!(),
            }
        }
        Some(removed_splices)
    }

    /// Full re-derivation: re-inserts every live deadline into a fresh
    /// partition. The recovery path for first syncs and divergence.
    fn rebuild(&mut self, live: &[(usize, T)], stats: &mut IncrementalStats, ops: &mut usize) {
        stats.rebuilt += 1;
        stats.reused_intervals = 0;
        self.events = EventPartition::new();
        for (_, d) in live {
            self.events.insert(*d);
            *ops += log2_ceil(self.events.len());
        }
    }

    /// Materializes the prepared instance from the synced partition and
    /// records the new live set.
    fn finish(
        &mut self,
        now: T,
        live: &[(usize, T)],
        stats: &mut IncrementalStats,
        ops: &mut usize,
    ) -> PreparedInstance<T> {
        // The staircase partition is [now, d_1 < … < d_q] — `now` is every
        // live job's release. An empty live set has an empty partition
        // (matching `Intervals::from_instance` of an empty instance).
        let mut times: Vec<T> = Vec::with_capacity(self.events.len() + 1);
        if !live.is_empty() {
            times.push(now);
            times.extend_from_slice(self.events.times());
        }
        *ops += times.len();
        let sorted = times.windows(2).all(|w| w[0] < w[1]);
        let (intervals, staircase) = if sorted {
            (Intervals::from_sorted_times(times), true)
        } else {
            // Defensive: a deadline ≤ now (callers validate the
            // sub-instance first, so this is unreachable in practice) —
            // fall back to the scratch normalization.
            stats.rebuilt += 1;
            stats.reused_intervals = 0;
            (Intervals::from_times(times), false)
        };

        let log = log2_ceil(self.events.len() + 1);
        let mut ranges: Vec<(usize, usize)> = Vec::with_capacity(live.len());
        for &(_, d) in live {
            *ops += log;
            if staircase {
                // Every live job is released at `now` (= position 0) and
                // its deadline sits at 1 + its position among the events.
                let hi = match self.events.position_of(&d) {
                    Some(p) => p + 1,
                    None => unreachable!("synced deadline missing from partition"),
                };
                ranges.push((0, hi));
            } else {
                // Non-staircase fallback: the exact `range_of` computation.
                let n = intervals.len();
                let lo = intervals.times.partition_point(|v| *v < now).min(n);
                let below = intervals.times.partition_point(|v| !(d < *v));
                let hi = below.saturating_sub(1).min(n).max(lo);
                ranges.push((lo, hi));
            }
        }

        // Newly arrived jobs' arcs are patched in: price them now that
        // their ranges are known.
        let mut a = 0;
        for (b, &(k, _)) in live.iter().enumerate() {
            while a < self.live.len() && self.live[a].0 < k {
                a += 1;
            }
            if !(a < self.live.len() && self.live[a].0 == k) {
                let (lo, hi) = ranges[b];
                stats.patched_arcs += (hi - lo) as u64 + 1;
            }
            *ops += 1;
        }

        self.live = live.to_vec();
        self.ranges = ranges.clone();
        PreparedInstance {
            intervals,
            ranges,
            derivation_ops: *ops,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpss_core::job::job;
    use mpss_obs::RecordingCollector;

    /// The staircase sub-instance a session would solve for this live set.
    fn staircase(now: f64, live: &[(usize, f64)]) -> Instance<f64> {
        let jobs = live.iter().map(|&(_, d)| job(now, d, 1.0)).collect();
        Instance::new(2, jobs).unwrap()
    }

    fn assert_matches_derive(prepared: &PreparedInstance<f64>, now: f64, live: &[(usize, f64)]) {
        let oracle = PreparedInstance::derive(&staircase(now, live));
        assert_eq!(prepared.intervals, oracle.intervals);
        assert_eq!(prepared.ranges, oracle.ranges);
    }

    #[test]
    fn sync_equals_scratch_derivation_across_arrivals_and_expiries() {
        let mut planner = IncrementalPlanner::new();

        // First sync: rebuild.
        let live1 = [(0, 5.0), (1, 8.0)];
        let (p1, s1) = planner.sync(0.0, &live1);
        assert_matches_derive(&p1, 0.0, &live1);
        assert_eq!(s1.rebuilt, 1);

        // Arrival (key 2, shares job 0's deadline) + clock advance.
        let live2 = [(0, 5.0), (1, 8.0), (2, 5.0)];
        let (p2, s2) = planner.sync(1.0, &live2);
        assert_matches_derive(&p2, 1.0, &live2);
        assert_eq!(s2.rebuilt, 0);
        // Only the arrival was priced: active in [1,5) only, so 1 interval
        // arc + 1 supply arc.
        assert_eq!(s2.patched_arcs, 2);
        assert_eq!(s2.reused_intervals, 2);

        // Two departures, one arrival.
        let live3 = [(1, 8.0), (3, 9.0)];
        let (p3, s3) = planner.sync(5.5, &live3);
        assert_matches_derive(&p3, 5.5, &live3);
        assert_eq!(s3.rebuilt, 0);

        // Everything gone.
        let (p4, _) = planner.sync(9.5, &[]);
        assert!(p4.intervals.is_empty());
        assert!(p4.ranges.is_empty());
    }

    #[test]
    fn divergent_bookkeeping_triggers_rebuild_not_corruption() {
        let mut planner = IncrementalPlanner::new();
        planner.sync(0.0, &[(0, 5.0)]);
        // Same key, different deadline: impossible for a real session, so
        // the planner must notice and rebuild.
        let live = [(0, 6.0)];
        let mut rec = RecordingCollector::new();
        let (p, s) = planner.sync_observed(1.0, &live, &mut rec);
        assert_matches_derive(&p, 1.0, &live);
        assert_eq!(s.rebuilt, 1);
        assert_eq!(rec.counter("offline.incremental.rebuilt"), 1);
    }

    #[test]
    fn patched_arcs_scale_with_delta_not_live_count() {
        let mut planner = IncrementalPlanner::new();
        let mut live: Vec<(usize, f64)> = (0..500).map(|k| (k, 1000.0 + k as f64)).collect();
        planner.sync(0.0, &live);
        // One arrival into a 500-job live set.
        live.push((500, 1000.5));
        let (p, s) = planner.sync(0.5, &live);
        assert_matches_derive(&p, 0.5, &live);
        // The new job is active in exactly one interval ([0.5, 1000.0)
        // splits... its deadline 1000.5 sits after breakpoint 1000.0):
        // 2 interval arcs + 1 supply arc, independent of the 500 others.
        assert_eq!(s.patched_arcs, 3);
        assert!(s.reused_intervals >= 500);
    }

    #[test]
    fn derive_handles_non_staircase_instances() {
        // PreparedInstance::derive is general: staggered releases too.
        let ins = Instance::new(
            2,
            vec![job(0.0, 4.0, 2.0), job(1.0, 3.0, 4.0), job(2.0, 8.0, 1.0)],
        )
        .unwrap();
        let p = PreparedInstance::derive(&ins);
        for (k, j) in ins.jobs.iter().enumerate() {
            assert_eq!(p.ranges[k], p.intervals.range_of(j));
        }
    }
}
