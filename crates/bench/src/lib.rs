//! Shared utilities for the experiment binaries.
//!
//! The paper is an extended abstract without an empirical section: its
//! figures are the flow network (Fig. 1) and two pseudocode listings
//! (Figs. 2–3), and its quantitative content is Theorems 1–3. Each
//! `exp_*` binary in `src/bin/` regenerates one of those artifacts —
//! structurally for the figures, as a measured table (with the theorem's
//! bound printed beside the measurement) for the theorems. EXPERIMENTS.md
//! records the outputs.

use mpss_obs::json::Json;
use mpss_obs::RecordingCollector;
use std::fmt::Write as _;
use std::path::Path;
use std::time::Instant;

/// A fixed-width text table that prints like the tables in EXPERIMENTS.md.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Table {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Adds one row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate() {
                widths[c] = widths[c].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |out: &mut String, cells: &[String]| {
            for c in 0..ncols {
                let _ = write!(out, "{:>w$}  ", cells[c], w = widths[c]);
            }
            out.push('\n');
        };
        fmt_row(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * ncols;
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(&mut out, row);
        }
        out
    }

    /// Renders and prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// The table as JSON: an array of objects keyed by the column headers.
    /// Cells that parse as numbers are emitted as numbers.
    pub fn to_json(&self) -> Json {
        Json::Arr(
            self.rows
                .iter()
                .map(|row| {
                    let mut obj = Json::object();
                    for (header, cell) in self.headers.iter().zip(row) {
                        let value = match cell.parse::<f64>() {
                            Ok(v) => Json::Num(v),
                            Err(_) => Json::from(cell.as_str()),
                        };
                        obj.push(header, value);
                    }
                    obj
                })
                .collect(),
        )
    }
}

/// Assembles an experiment's JSON document: its name, every measured table,
/// and — when a [`RecordingCollector`] was attached to the runs — the full
/// observability report (spans, counters, histograms) under `"observability"`.
/// This is how `exp_*` binaries expose *work done* (augmenting paths, repair
/// rounds, …) next to wall time in their machine-readable output.
pub fn experiment_report(
    name: &str,
    tables: &[(&str, &Table)],
    collector: Option<&RecordingCollector>,
) -> Json {
    let mut doc = Json::object();
    doc.push("experiment", Json::from(name));
    let mut tables_obj = Json::object();
    for (title, table) in tables {
        tables_obj.push(title, table.to_json());
    }
    doc.push("tables", tables_obj);
    if let Some(rec) = collector {
        doc.push("observability", rec.to_json());
    }
    doc
}

/// Writes [`experiment_report`] pretty-printed to `path`.
pub fn write_experiment_report(
    path: &Path,
    name: &str,
    tables: &[(&str, &Table)],
    collector: Option<&RecordingCollector>,
) -> std::io::Result<()> {
    std::fs::write(
        path,
        experiment_report(name, tables, collector).render_pretty(),
    )
}

/// The git revision to stamp on bench snapshots: `MPSS_GIT_REV` if set
/// (lets CI pin the rev it checked out), else `git rev-parse --short HEAD`,
/// else `"unknown"` (e.g. running from an exported tarball).
pub fn bench_git_rev() -> String {
    if let Ok(rev) = std::env::var("MPSS_GIT_REV") {
        let rev = rev.trim().to_string();
        if !rev.is_empty() {
            return rev;
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Records one benchmark snapshot — experiment name, wall time, and the
/// work counters worth tracking across commits — into the cumulative
/// trajectory file (`BENCH_TRAJECTORY.json` at the repo root: a
/// chronological JSON array with one entry per (name, git revision)).
/// Stamps the current revision via [`bench_git_rev`]; see
/// [`record_bench_snapshot_at`] for the semantics.
pub fn record_bench_snapshot(
    path: &Path,
    name: &str,
    wall_ms: f64,
    counters: &[(&str, u64)],
) -> std::io::Result<()> {
    record_bench_snapshot_at(path, name, &bench_git_rev(), wall_ms, counters)
}

/// [`record_bench_snapshot`] plus noise-tolerant *stats*: wall-clock-shaped
/// values (overhead percentages, latencies) that are worth tracking across
/// commits but too machine-dependent to gate. Stats land under the entry's
/// `histograms` key as `{stat: {"mean": value}}`, which `report-diff`
/// reports as histogram shifts without gating them — counters gate, stats
/// inform.
pub fn record_bench_snapshot_with_stats(
    path: &Path,
    name: &str,
    wall_ms: f64,
    counters: &[(&str, u64)],
    stats: &[(&str, f64)],
) -> std::io::Result<()> {
    record_bench_snapshot_full(path, name, &bench_git_rev(), wall_ms, counters, stats)
}

/// [`record_bench_snapshot`] with an explicit revision stamp. Entries are
/// keyed by `(name, git_rev)`: rerunning a snapshot at the same revision
/// replaces that entry in place (reruns are idempotent), while a new
/// revision *appends*, growing the per-name history that
/// `mpss-cli report-diff --bench` gates newest-against-previous. Entries of
/// other names — and the same name at other revisions — are preserved.
pub fn record_bench_snapshot_at(
    path: &Path,
    name: &str,
    git_rev: &str,
    wall_ms: f64,
    counters: &[(&str, u64)],
) -> std::io::Result<()> {
    record_bench_snapshot_full(path, name, git_rev, wall_ms, counters, &[])
}

/// The full recorder behind the `record_bench_snapshot*` family: explicit
/// revision stamp, gated counters, and ungated stats (see
/// [`record_bench_snapshot_with_stats`]).
pub fn record_bench_snapshot_full(
    path: &Path,
    name: &str,
    git_rev: &str,
    wall_ms: f64,
    counters: &[(&str, u64)],
    stats: &[(&str, f64)],
) -> std::io::Result<()> {
    let mut entries: Vec<Json> = match std::fs::read_to_string(path) {
        Ok(text) => match Json::parse(&text) {
            Ok(Json::Arr(items)) => items
                .into_iter()
                .filter(|e| {
                    e.get("name") != Some(&Json::from(name))
                        || e.get("git_rev") != Some(&Json::from(git_rev))
                })
                .collect(),
            _ => Vec::new(),
        },
        Err(_) => Vec::new(),
    };
    let mut entry = Json::object();
    entry.push("name", Json::from(name));
    entry.push("git_rev", Json::from(git_rev));
    entry.push("wall_ms", Json::Num(wall_ms));
    let mut cs = Json::object();
    for (key, value) in counters {
        cs.push(key, Json::UInt(*value));
    }
    entry.push("counters", cs);
    if !stats.is_empty() {
        let mut hs = Json::object();
        for (key, value) in stats {
            let mut summary = Json::object();
            summary.push("mean", Json::Num(*value));
            hs.push(key, summary);
        }
        entry.push("histograms", hs);
    }
    entries.push(entry);
    std::fs::write(path, Json::Arr(entries).render_pretty())
}

/// Wall-clock time of `f`, in milliseconds, together with its result.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64() * 1e3)
}

/// Maps `f` over `items` on the shared worker pool ([`mpss_par::ThreadPool`]
/// sized from `MPSS_THREADS` / available parallelism), returning outputs in
/// input order. Kept as a thin re-wrap so every `exp_*` binary's sweeps go
/// through the same pool the library hot paths use.
pub fn parallel_map<I, O, F>(items: Vec<I>, f: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    mpss_par::ThreadPool::from_env().scope_map(items, f)
}

/// Simple summary statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct Stats {
    /// Arithmetic mean.
    pub mean: f64,
    /// Maximum.
    pub max: f64,
    /// Minimum.
    pub min: f64,
}

/// Computes [`Stats`] over a slice (zeros for empty input).
pub fn stats(xs: &[f64]) -> Stats {
    if xs.is_empty() {
        return Stats::default();
    }
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    let max = xs.iter().fold(f64::MIN, |a, &b| a.max(b));
    let min = xs.iter().fold(f64::MAX, |a, &b| a.min(b));
    Stats { mean, max, min }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["alpha".into(), "2".into()]);
        t.row(vec!["x".into(), "123456".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[2].trim_end().ends_with('2'));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn table_rejects_wrong_arity() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only one".into()]);
    }

    #[test]
    fn table_to_json_types_numbers_and_strings() {
        let mut t = Table::new(&["engine", "ms"]);
        t.row(vec!["dinic".into(), "1.5".into()]);
        let json = t.to_json();
        let Json::Arr(rows) = &json else {
            panic!("expected array")
        };
        assert_eq!(rows[0].get("engine"), Some(&Json::from("dinic")));
        assert_eq!(rows[0].get("ms"), Some(&Json::Num(1.5)));
    }

    #[test]
    fn experiment_report_embeds_collector_output() {
        use mpss_obs::Collector;
        let mut t = Table::new(&["n", "ms"]);
        t.row(vec!["10".into(), "0.5".into()]);
        let mut rec = RecordingCollector::new();
        rec.count("maxflow.dinic.augmenting_paths", 12);
        let doc = experiment_report("ablation", &[("real", &t)], Some(&rec));
        let text = doc.render_pretty();
        assert!(text.contains("\"experiment\": \"ablation\""));
        assert!(text.contains("\"real\""));
        assert!(text.contains("\"maxflow.dinic.augmenting_paths\": 12"));
        // Without a collector the observability section is absent.
        let bare = experiment_report("ablation", &[("real", &t)], None);
        assert!(bare.get("observability").is_none());
    }

    #[test]
    fn bench_snapshot_keys_by_name_and_revision() {
        let dir = std::env::temp_dir().join("mpss-bench-snapshot-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_TEST.json");
        let _ = std::fs::remove_file(&path);

        record_bench_snapshot_at(&path, "alpha", "rev1", 1.5, &[("offline.phases", 4)]).unwrap();
        record_bench_snapshot_at(&path, "beta", "rev1", 2.5, &[]).unwrap();
        // Rerunning `alpha` at the same revision replaces its entry…
        record_bench_snapshot_at(&path, "alpha", "rev1", 9.25, &[("offline.phases", 5)]).unwrap();
        // …while a new revision appends, growing the trajectory.
        record_bench_snapshot_at(&path, "alpha", "rev2", 3.0, &[("offline.phases", 5)]).unwrap();

        let doc = Json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let Json::Arr(entries) = &doc else {
            panic!("expected array")
        };
        assert_eq!(entries.len(), 3);
        let alphas: Vec<&Json> = entries
            .iter()
            .filter(|e| e.get("name") == Some(&Json::from("alpha")))
            .collect();
        assert_eq!(alphas.len(), 2);
        assert_eq!(alphas[0].get("git_rev"), Some(&Json::from("rev1")));
        assert_eq!(alphas[0].get("wall_ms"), Some(&Json::Num(9.25)));
        assert_eq!(
            alphas[0].get("counters").unwrap().get("offline.phases"),
            Some(&Json::UInt(5))
        );
        assert_eq!(alphas[1].get("git_rev"), Some(&Json::from("rev2")));

        // The CLI's `--bench` gate consumes exactly this file shape.
        let gate =
            mpss_obs::diff_bench_trajectory(&doc, Some("alpha"), &mpss_obs::DiffOptions::default())
                .unwrap();
        assert_eq!(gate.comparisons.len(), 1);
        assert_eq!(gate.comparisons[0].baseline_rev, "rev1");
        assert_eq!(gate.comparisons[0].candidate_rev, "rev2");
        assert!(!gate.is_regression());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bench_git_rev_honors_the_env_override() {
        // Avoid mutating the process environment (tests run in parallel):
        // exercise the fallback chain only through its observable contract —
        // a non-empty stamp always comes back.
        let rev = bench_git_rev();
        assert!(!rev.is_empty());
    }

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map((0..100).collect::<Vec<_>>(), |x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_handles_empty_and_single() {
        assert!(parallel_map(Vec::<i32>::new(), |x| x).is_empty());
        assert_eq!(parallel_map(vec![7], |x| x + 1), vec![8]);
    }

    #[test]
    fn stats_basics() {
        let s = stats(&[1.0, 2.0, 3.0]);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(stats(&[]).mean, 0.0);
    }

    #[test]
    fn timed_reports_nonnegative() {
        let (v, ms) = timed(|| 42);
        assert_eq!(v, 42);
        assert!(ms >= 0.0);
    }
}
