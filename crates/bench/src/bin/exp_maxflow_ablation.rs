//! `maxflow-ablation`: design-choice ablation for the offline solver's
//! inner engine — Dinic vs highest-label push–relabel, on the real
//! job × interval networks produced by the algorithm and on random dense
//! networks. Both must agree on every value; Dinic is the production
//! default because the scheduling networks are shallow and unit-like.
//!
//! Beyond wall time, each row reports the engines' *work counters*
//! ([`EngineStats`](mpss_maxflow::EngineStats)): BFS phases and augmenting
//! paths for Dinic, pushes/relabels for push–relabel — machine-independent
//! measures that separate "did less work" from "ran on a faster machine".
//!
//! Section (c) is the heuristics ablation the CSR rewrite is gated on:
//! flat-arc push–relabel with current-arc pointers, the gap heuristic and
//! periodic global relabeling versus the retained legacy `Vec<Edge>`
//! engines, on Genrmf-style frame networks (Goldberg's rmf family) — the
//! standard shape where exact distance labels beat label-climbing by a
//! wide margin. The run aborts unless the heuristics cut total
//! push–relabel work by ≥3x.
//!
//! Run: `cargo run -p mpss-bench --release --bin exp_maxflow_ablation`
//! `--smoke` shrinks sections (a)/(b) for CI and appends a snapshot of the
//! section-(c) work counters (stamped with the git revision) to the
//! cumulative `BENCH_TRAJECTORY.json` in the working directory — gate it
//! with `mpss-cli report-diff --bench`. A path argument writes the tables
//! as an experiment JSON document.

use mpss_bench::{record_bench_snapshot, timed, write_experiment_report, Table};
use mpss_core::Intervals;
use mpss_maxflow::reference::{self, RefNetwork};
use mpss_maxflow::{Dinic, FlowNetwork, MaxFlow, PushRelabel};
use mpss_obs::{Collector, RecordingCollector};
use mpss_offline::flow_model::FlowModel;
use mpss_workloads::{Family, WorkloadSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::Path;

/// Runs both engines on clones of `net`, returning per-engine
/// (flow, ms, stats) and asserting the values agree.
fn race(
    net: &FlowNetwork<f64>,
    s: usize,
    t: usize,
) -> (
    (f64, f64, mpss_maxflow::EngineStats),
    (f64, f64, mpss_maxflow::EngineStats),
) {
    let mut dinic = Dinic::new();
    let mut n1 = net.clone();
    let (f1, t1) = timed(|| dinic.max_flow(&mut n1, s, t));
    let mut pr = PushRelabel::new();
    let mut n2 = net.clone();
    let (f2, t2) = timed(|| pr.max_flow(&mut n2, s, t));
    assert!(
        (f1 - f2).abs() <= 1e-9 * f1.max(1.0),
        "engines disagree: dinic {f1} vs push-relabel {f2}"
    );
    (
        (f1, t1, MaxFlow::<f64>::stats(&dinic)),
        (f2, t2, MaxFlow::<f64>::stats(&pr)),
    )
}

/// Deterministic splitmix64 stream. The rmf inter-frame capacities must be
/// identical on every machine and rand version — the ≥3x gate is an exact
/// work-count comparison, so the workload cannot float with a dependency.
struct SplitMix(u64);

impl SplitMix {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
}

/// Genrmf-style frame network: `b` square frames of `a × a` grid nodes,
/// huge-capacity edges inside each frame, small random capacities between
/// consecutive frames. Flow crosses every frame boundary, so height fields
/// that track true distances (global relabeling) pay off maximally.
fn rmf_network(a: usize, b: usize, rng: &mut SplitMix) -> FlowNetwork<f64> {
    let frame = a * a;
    let n = frame * b;
    let node = |f: usize, x: usize, y: usize| f * frame + x * a + y;
    let big = (frame * b) as f64 * 4.0;
    let mut net = FlowNetwork::new(n);
    for f in 0..b {
        for x in 0..a {
            for y in 0..a {
                if x + 1 < a {
                    net.add_edge(node(f, x, y), node(f, x + 1, y), big);
                    net.add_edge(node(f, x + 1, y), node(f, x, y), big);
                }
                if y + 1 < a {
                    net.add_edge(node(f, x, y), node(f, x, y + 1), big);
                    net.add_edge(node(f, x, y + 1), node(f, x, y), big);
                }
            }
        }
        if f + 1 < b {
            for x in 0..a {
                for y in 0..a {
                    let tx = (rng.next_u64() as usize) % a;
                    let ty = (rng.next_u64() as usize) % a;
                    let cap = 1.0 + (rng.next_u64() % 100) as f64 / 10.0;
                    net.add_edge(node(f, x, y), node(f + 1, tx, ty), cap);
                }
            }
        }
    }
    net
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args.iter().find(|a| !a.starts_with("--")).cloned();
    let started = std::time::Instant::now();
    let mut rec = RecordingCollector::new();

    println!("(a) real scheduling networks G(J, m⃗, s) — all jobs as candidate set\n");
    let mut t = Table::new(&[
        "n",
        "nodes",
        "edges",
        "dinic (ms)",
        "bfs",
        "aug paths",
        "pr (ms)",
        "pushes",
        "relabels",
        "values agree",
    ]);
    let real_sizes: &[usize] = if smoke { &[20, 40] } else { &[20, 40, 80, 160] };
    for &n in real_sizes {
        let instance = WorkloadSpec {
            family: Family::Uniform,
            n,
            m: 4,
            horizon: 2 * n as u64,
            seed: 7,
        }
        .generate();
        let intervals = Intervals::from_instance(&instance);
        let candidate: Vec<usize> = (0..n).collect();
        let m_j: Vec<usize> = (0..intervals.len())
            .map(|j| {
                candidate
                    .iter()
                    .filter(|&&k| intervals.job_active(&instance.jobs[k], j))
                    .count()
                    .min(instance.m)
            })
            .collect();
        let w: f64 = instance.jobs.iter().map(|j| j.volume).sum();
        let p: f64 = m_j
            .iter()
            .enumerate()
            .map(|(j, &mj)| mj as f64 * intervals.length(j))
            .sum();
        let fm = FlowModel::build(&instance, &intervals, &candidate, &m_j, w / p);

        let ((_, t1, ds), (_, t2, ps)) = race(&fm.net, fm.source, fm.sink);
        rec.count("maxflow.dinic.bfs_phases", ds.bfs_phases);
        rec.count("maxflow.dinic.augmenting_paths", ds.augmenting_paths);
        rec.count("maxflow.pr.pushes", ps.pushes);
        rec.count("maxflow.pr.relabels", ps.relabels);
        t.row(vec![
            n.to_string(),
            fm.net.num_nodes().to_string(),
            fm.net.num_edges().to_string(),
            format!("{t1:.3}"),
            ds.bfs_phases.to_string(),
            ds.augmenting_paths.to_string(),
            format!("{t2:.3}"),
            ps.pushes.to_string(),
            ps.relabels.to_string(),
            "✓".into(),
        ]);
    }
    t.print();

    println!("\n(b) random dense networks (density 0.3, integer capacities)\n");
    let mut t2 = Table::new(&[
        "nodes",
        "edges",
        "dinic (ms)",
        "bfs",
        "aug paths",
        "pr (ms)",
        "pushes",
        "relabels",
        "values agree",
    ]);
    let dense_sizes: &[usize] = if smoke {
        &[50, 100]
    } else {
        &[50, 100, 200, 400]
    };
    for &nodes in dense_sizes {
        let mut rng = StdRng::seed_from_u64(17);
        let mut net: FlowNetwork<f64> = FlowNetwork::new(nodes);
        for u in 0..nodes {
            for v in 0..nodes {
                if u != v && rng.gen_bool(0.3) {
                    net.add_edge(u, v, rng.gen_range(0..=50u32) as f64);
                }
            }
        }
        let edges = net.num_edges();
        let ((_, t1, ds), (_, t2r, ps)) = race(&net, 0, nodes - 1);
        rec.count("maxflow.dinic.bfs_phases", ds.bfs_phases);
        rec.count("maxflow.dinic.augmenting_paths", ds.augmenting_paths);
        rec.count("maxflow.pr.pushes", ps.pushes);
        rec.count("maxflow.pr.relabels", ps.relabels);
        t2.row(vec![
            nodes.to_string(),
            edges.to_string(),
            format!("{t1:.3}"),
            ds.bfs_phases.to_string(),
            ds.augmenting_paths.to_string(),
            format!("{t2r:.3}"),
            ps.pushes.to_string(),
            ps.relabels.to_string(),
            "✓".into(),
        ]);
    }
    t2.print();
    println!(
        "\nshape check: on the shallow bipartite scheduling networks Dinic behaves like\n\
         Hopcroft–Karp and is the faster engine; push–relabel narrows the gap (or wins)\n\
         on dense random graphs. Values always agree — the engines certify each other.\n\
         Work counters tell the same story machine-independently: Dinic's augmenting\n\
         paths stay near the bipartite matching bound on the scheduling networks."
    );

    println!("\n(c) heuristics ablation — CSR PR (current-arc + gap + global relabel) vs legacy engines, rmf networks\n");
    let mut t3 = Table::new(&[
        "a×a×b",
        "nodes",
        "edges",
        "legacy pr ops",
        "csr pr ops",
        "pr ratio",
        "legacy dinic ops",
        "csr dinic ops",
        "values agree",
    ]);
    let mut rng = SplitMix(777);
    let mut legacy_pr_ops = 0u64;
    let mut csr_pr_ops = 0u64;
    for &(a, b) in &[(4usize, 64usize), (6, 48), (6, 24), (8, 16)] {
        let net = rmf_network(a, b, &mut rng);
        let (s, t) = (0, net.num_nodes() - 1);

        let mut csr_net = net.clone();
        let mut pr = PushRelabel::new();
        let f_csr_pr = pr.max_flow(&mut csr_net, s, t);
        let pr_ops = MaxFlow::<f64>::stats(&pr).total_ops();

        let mut legacy: RefNetwork<f64> = RefNetwork::from_network(&net);
        let (f_legacy_pr, legacy_pr) = reference::push_relabel(&mut legacy, s, t);

        let mut dinic_net = net.clone();
        let mut dinic = Dinic::new();
        let f_csr_dinic = dinic.max_flow(&mut dinic_net, s, t);
        let dinic_ops = MaxFlow::<f64>::stats(&dinic).total_ops();

        let mut legacy_d: RefNetwork<f64> = RefNetwork::from_network(&net);
        let (f_legacy_dinic, legacy_ds) = reference::dinic(&mut legacy_d, s, t);

        for (x, y) in [
            (f_csr_pr, f_legacy_pr),
            (f_csr_dinic, f_legacy_dinic),
            (f_csr_pr, f_csr_dinic),
        ] {
            assert!(
                (x - y).abs() <= 1e-9 * x.abs().max(1.0),
                "rmf {a}x{a}x{b}: engines disagree ({x} vs {y})"
            );
        }
        legacy_pr_ops += legacy_pr.total_ops();
        csr_pr_ops += pr_ops;
        t3.row(vec![
            format!("{a}x{a}x{b}"),
            net.num_nodes().to_string(),
            net.num_edges().to_string(),
            legacy_pr.total_ops().to_string(),
            pr_ops.to_string(),
            format!(
                "{:.2}x",
                legacy_pr.total_ops() as f64 / pr_ops.max(1) as f64
            ),
            legacy_ds.total_ops().to_string(),
            dinic_ops.to_string(),
            "✓".into(),
        ]);
    }
    t3.print();
    rec.count("exp.legacy.pr_ops", legacy_pr_ops);
    rec.count("exp.csr.pr_ops", csr_pr_ops);
    let ratio = legacy_pr_ops as f64 / csr_pr_ops.max(1) as f64;
    println!(
        "\ntotal push-relabel work: legacy {legacy_pr_ops}, csr+heuristics {csr_pr_ops} \
         ({ratio:.2}x reduction)"
    );
    assert!(
        ratio >= 3.0,
        "heuristics must cut push-relabel work ≥3x on the rmf family, got {ratio:.2}x"
    );

    if let Some(out) = out {
        write_experiment_report(
            Path::new(&out),
            "maxflow_ablation",
            &[
                ("real_networks", &t),
                ("random_networks", &t2),
                ("rmf_heuristics", &t3),
            ],
            Some(&rec),
        )
        .expect("writing experiment report");
        println!("\nexperiment JSON written to {out}");
    }
    if smoke {
        let bench = Path::new("BENCH_TRAJECTORY.json");
        record_bench_snapshot(
            bench,
            "maxflow_ablation_smoke",
            started.elapsed().as_secs_f64() * 1e3,
            &[
                ("exp.legacy.pr_ops", legacy_pr_ops),
                ("exp.csr.pr_ops", csr_pr_ops),
            ],
        )
        .expect("writing bench snapshot");
        println!("bench snapshot recorded in {}", bench.display());
    }
}
