//! `maxflow-ablation`: design-choice ablation for the offline solver's
//! inner engine — Dinic vs highest-label push–relabel, on the real
//! job × interval networks produced by the algorithm and on random dense
//! networks. Both must agree on every value; Dinic is the production
//! default because the scheduling networks are shallow and unit-like.
//!
//! Beyond wall time, each row reports the engines' *work counters*
//! ([`EngineStats`](mpss_maxflow::EngineStats)): BFS phases and augmenting
//! paths for Dinic, pushes/relabels for push–relabel — machine-independent
//! measures that separate "did less work" from "ran on a faster machine".
//!
//! Run: `cargo run -p mpss-bench --release --bin exp_maxflow_ablation`
//! Pass a path argument to also write the tables (with the work counters)
//! as an experiment JSON document.

use mpss_bench::{timed, write_experiment_report, Table};
use mpss_core::Intervals;
use mpss_maxflow::{Dinic, FlowNetwork, MaxFlow, PushRelabel};
use mpss_obs::{Collector, RecordingCollector};
use mpss_offline::flow_model::FlowModel;
use mpss_workloads::{Family, WorkloadSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::Path;

/// Runs both engines on clones of `net`, returning per-engine
/// (flow, ms, stats) and asserting the values agree.
fn race(
    net: &FlowNetwork<f64>,
    s: usize,
    t: usize,
) -> (
    (f64, f64, mpss_maxflow::EngineStats),
    (f64, f64, mpss_maxflow::EngineStats),
) {
    let mut dinic = Dinic::new();
    let mut n1 = net.clone();
    let (f1, t1) = timed(|| dinic.max_flow(&mut n1, s, t));
    let mut pr = PushRelabel::new();
    let mut n2 = net.clone();
    let (f2, t2) = timed(|| pr.max_flow(&mut n2, s, t));
    assert!(
        (f1 - f2).abs() <= 1e-9 * f1.max(1.0),
        "engines disagree: dinic {f1} vs push-relabel {f2}"
    );
    (
        (f1, t1, MaxFlow::<f64>::stats(&dinic)),
        (f2, t2, MaxFlow::<f64>::stats(&pr)),
    )
}

fn main() {
    let mut rec = RecordingCollector::new();

    println!("(a) real scheduling networks G(J, m⃗, s) — all jobs as candidate set\n");
    let mut t = Table::new(&[
        "n",
        "nodes",
        "edges",
        "dinic (ms)",
        "bfs",
        "aug paths",
        "pr (ms)",
        "pushes",
        "relabels",
        "values agree",
    ]);
    for n in [20usize, 40, 80, 160] {
        let instance = WorkloadSpec {
            family: Family::Uniform,
            n,
            m: 4,
            horizon: 2 * n as u64,
            seed: 7,
        }
        .generate();
        let intervals = Intervals::from_instance(&instance);
        let candidate: Vec<usize> = (0..n).collect();
        let m_j: Vec<usize> = (0..intervals.len())
            .map(|j| {
                candidate
                    .iter()
                    .filter(|&&k| intervals.job_active(&instance.jobs[k], j))
                    .count()
                    .min(instance.m)
            })
            .collect();
        let w: f64 = instance.jobs.iter().map(|j| j.volume).sum();
        let p: f64 = m_j
            .iter()
            .enumerate()
            .map(|(j, &mj)| mj as f64 * intervals.length(j))
            .sum();
        let fm = FlowModel::build(&instance, &intervals, &candidate, &m_j, w / p);

        let ((_, t1, ds), (_, t2, ps)) = race(&fm.net, fm.source, fm.sink);
        rec.count("maxflow.dinic.bfs_phases", ds.bfs_phases);
        rec.count("maxflow.dinic.augmenting_paths", ds.augmenting_paths);
        rec.count("maxflow.pr.pushes", ps.pushes);
        rec.count("maxflow.pr.relabels", ps.relabels);
        t.row(vec![
            n.to_string(),
            fm.net.num_nodes().to_string(),
            fm.net.num_edges().to_string(),
            format!("{t1:.3}"),
            ds.bfs_phases.to_string(),
            ds.augmenting_paths.to_string(),
            format!("{t2:.3}"),
            ps.pushes.to_string(),
            ps.relabels.to_string(),
            "✓".into(),
        ]);
    }
    t.print();

    println!("\n(b) random dense networks (density 0.3, integer capacities)\n");
    let mut t2 = Table::new(&[
        "nodes",
        "edges",
        "dinic (ms)",
        "bfs",
        "aug paths",
        "pr (ms)",
        "pushes",
        "relabels",
        "values agree",
    ]);
    for nodes in [50usize, 100, 200, 400] {
        let mut rng = StdRng::seed_from_u64(17);
        let mut net: FlowNetwork<f64> = FlowNetwork::new(nodes);
        for u in 0..nodes {
            for v in 0..nodes {
                if u != v && rng.gen_bool(0.3) {
                    net.add_edge(u, v, rng.gen_range(0..=50u32) as f64);
                }
            }
        }
        let edges = net.num_edges();
        let ((_, t1, ds), (_, t2r, ps)) = race(&net, 0, nodes - 1);
        rec.count("maxflow.dinic.bfs_phases", ds.bfs_phases);
        rec.count("maxflow.dinic.augmenting_paths", ds.augmenting_paths);
        rec.count("maxflow.pr.pushes", ps.pushes);
        rec.count("maxflow.pr.relabels", ps.relabels);
        t2.row(vec![
            nodes.to_string(),
            edges.to_string(),
            format!("{t1:.3}"),
            ds.bfs_phases.to_string(),
            ds.augmenting_paths.to_string(),
            format!("{t2r:.3}"),
            ps.pushes.to_string(),
            ps.relabels.to_string(),
            "✓".into(),
        ]);
    }
    t2.print();
    println!(
        "\nshape check: on the shallow bipartite scheduling networks Dinic behaves like\n\
         Hopcroft–Karp and is the faster engine; push–relabel narrows the gap (or wins)\n\
         on dense random graphs. Values always agree — the engines certify each other.\n\
         Work counters tell the same story machine-independently: Dinic's augmenting\n\
         paths stay near the bipartite matching bound on the scheduling networks."
    );

    if let Some(out) = std::env::args().nth(1) {
        write_experiment_report(
            Path::new(&out),
            "maxflow_ablation",
            &[("real_networks", &t), ("random_networks", &t2)],
            Some(&rec),
        )
        .expect("writing experiment report");
        println!("\nexperiment JSON written to {out}");
    }
}
