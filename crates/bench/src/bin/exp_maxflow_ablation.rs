//! `maxflow-ablation`: design-choice ablation for the offline solver's
//! inner engine — Dinic vs highest-label push–relabel, on the real
//! job × interval networks produced by the algorithm and on random dense
//! networks. Both must agree on every value; Dinic is the production
//! default because the scheduling networks are shallow and unit-like.
//!
//! Run: `cargo run -p mpss-bench --release --bin exp_maxflow_ablation`

use mpss_bench::{timed, Table};
use mpss_core::Intervals;
use mpss_maxflow::{max_flow_dinic, max_flow_push_relabel, FlowNetwork};
use mpss_offline::flow_model::FlowModel;
use mpss_workloads::{Family, WorkloadSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    println!("(a) real scheduling networks G(J, m⃗, s) — all jobs as candidate set\n");
    let mut t = Table::new(&[
        "n",
        "nodes",
        "edges",
        "dinic (ms)",
        "push-relabel (ms)",
        "values agree",
    ]);
    for n in [20usize, 40, 80, 160] {
        let instance = WorkloadSpec {
            family: Family::Uniform,
            n,
            m: 4,
            horizon: 2 * n as u64,
            seed: 7,
        }
        .generate();
        let intervals = Intervals::from_instance(&instance);
        let candidate: Vec<usize> = (0..n).collect();
        let m_j: Vec<usize> = (0..intervals.len())
            .map(|j| {
                candidate
                    .iter()
                    .filter(|&&k| intervals.job_active(&instance.jobs[k], j))
                    .count()
                    .min(instance.m)
            })
            .collect();
        let w: f64 = instance.jobs.iter().map(|j| j.volume).sum();
        let p: f64 = m_j
            .iter()
            .enumerate()
            .map(|(j, &mj)| mj as f64 * intervals.length(j))
            .sum();
        let fm = FlowModel::build(&instance, &intervals, &candidate, &m_j, w / p);

        let mut net1 = fm.net.clone();
        let (f1, t1) = timed(|| max_flow_dinic(&mut net1, fm.source, fm.sink));
        let mut net2 = fm.net.clone();
        let (f2, t2) = timed(|| max_flow_push_relabel(&mut net2, fm.source, fm.sink));
        let agree = (f1 - f2).abs() <= 1e-9 * f1.max(1.0);
        t.row(vec![
            n.to_string(),
            fm.net.num_nodes().to_string(),
            fm.net.num_edges().to_string(),
            format!("{t1:.3}"),
            format!("{t2:.3}"),
            if agree { "✓".into() } else { "✗".into() },
        ]);
        assert!(agree);
    }
    t.print();

    println!("\n(b) random dense networks (density 0.3, integer capacities)\n");
    let mut t2 = Table::new(&[
        "nodes",
        "edges",
        "dinic (ms)",
        "push-relabel (ms)",
        "values agree",
    ]);
    for nodes in [50usize, 100, 200, 400] {
        let mut rng = StdRng::seed_from_u64(17);
        let mut net: FlowNetwork<f64> = FlowNetwork::new(nodes);
        for u in 0..nodes {
            for v in 0..nodes {
                if u != v && rng.gen_bool(0.3) {
                    net.add_edge(u, v, rng.gen_range(0..=50u32) as f64);
                }
            }
        }
        let edges = net.num_edges();
        let mut n1 = net.clone();
        let (f1, t1) = timed(|| max_flow_dinic(&mut n1, 0, nodes - 1));
        let mut n2 = net.clone();
        let (f2, t2r) = timed(|| max_flow_push_relabel(&mut n2, 0, nodes - 1));
        let agree = (f1 - f2).abs() <= 1e-9 * f1.max(1.0);
        t2.row(vec![
            nodes.to_string(),
            edges.to_string(),
            format!("{t1:.3}"),
            format!("{t2r:.3}"),
            if agree { "✓".into() } else { "✗".into() },
        ]);
        assert!(agree);
    }
    t2.print();
    println!(
        "\nshape check: on the shallow bipartite scheduling networks Dinic behaves like\n\
         Hopcroft–Karp and is the faster engine; push–relabel narrows the gap (or wins)\n\
         on dense random graphs. Values always agree — the engines certify each other."
    );
}
