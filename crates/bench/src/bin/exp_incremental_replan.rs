//! Incremental-replan scaling: sublinear derivation work per arrival.
//!
//! Drives two [`OaSession`]s over the *same* deterministic arrival stream —
//! one with the incremental planner (the default), one forced onto the
//! from-scratch path — and compares the machine-independent derivation work
//! ([`OaSession::replan_work`], i.e. [`OptimalResult::work_ops`] summed over
//! replans) between them. The executed schedules must be bit-identical: the
//! incremental path is a pure work optimisation, so any divergence is a bug,
//! not noise.
//!
//! The stream is a burst of `n` arrivals whose deadlines cluster onto ~48
//! distinct values (the shape `mpss-serve` tenants produce: many jobs, few
//! deadline classes), followed by a tail of trickle arrivals interleaved
//! with advances past early deadlines so the planner also exercises its
//! removal splices at full live-set size. Scratch derivation per replan is
//! Θ(n log n) partition sorting plus Θ(n·|𝓘|) activity probes per round;
//! the prepared path pays Θ(Δ log n) maintenance plus Θ(n + |𝓘|) per round,
//! so the work ratio grows with the live-set size. The binary asserts the
//! ≥5x total-work reduction at n ≥ 1024 directly — a maintenance regression
//! fails the run, not just a table entry.
//!
//! Usage: `exp_incremental_replan [--smoke] [REPORT.json]`. `--smoke` runs
//! a reduced sweep and appends an `incremental_replan_smoke` entry
//! (`incr.patched_arcs`, `incr.replan_ms`) to `BENCH_TRAJECTORY.json` for
//! the `report-diff --bench` trajectory gate.
//!
//! [`OptimalResult::work_ops`]: mpss_offline::OptimalResult::work_ops

use mpss_bench::{record_bench_snapshot, timed, write_experiment_report, Table};
use mpss_core::Schedule;
use mpss_offline::IncrementalStats;
use mpss_online::OaSession;
use std::path::Path;

/// Distinct deadline clusters in the burst (the staircase width, so the
/// interval partition stays ~this many events wide regardless of `n`).
const CLUSTERS: usize = 48;
/// Earliest cluster deadline; clusters sit at `BASE + 0 .. BASE + CLUSTERS`.
const BASE: f64 = 10.0;

struct Outcome {
    executed: Schedule<f64>,
    replans: usize,
    flows: usize,
    work: u64,
    stats: IncrementalStats,
    wall_ms: f64,
}

/// Runs the deterministic stream for live-set size `n` on `m` processors.
fn drive(n: usize, m: usize, incremental: bool) -> Outcome {
    let (session, wall_ms) = timed(|| {
        let mut s = OaSession::new(m, 0.0);
        s.set_incremental(incremental);
        // Burst: n jobs released together. Deadlines skew onto the earliest
        // clusters (7 of 8 jobs in the first six classes, the rest striped
        // across the remaining grid) — the shape serve tenants produce:
        // most work due soon, a thin tail of stragglers keeping the full
        // staircase wide.
        for k in 0..n {
            let bucket = if k % 8 != 0 {
                k % 6
            } else {
                6 + (k / 8) % (CLUSTERS - 6)
            };
            let deadline = BASE + bucket as f64;
            s.arrive(deadline, 1.0).expect("burst arrival");
        }
        // Tail: advance past the early clusters (draining completed jobs)
        // with trickle arrivals in between, so syncs splice removals out of
        // a ~n-job partition instead of rebuilding it.
        for step in 0..16 {
            let now = BASE + 0.5 + step as f64 * 0.5;
            s.advance_to(now).expect("tail advance");
            s.arrive((now + 20.0).ceil(), 1.0).expect("tail arrival");
        }
        s
    });
    Outcome {
        replans: session.replans(),
        flows: session.flow_computations(),
        work: session.replan_work(),
        stats: session.incremental_stats(),
        executed: session.finish().expect("finish"),
        wall_ms,
    }
}

/// Bit-level equality of two executed schedules.
fn assert_identical(a: &Schedule<f64>, b: &Schedule<f64>, ctx: &str) {
    assert_eq!(a.m, b.m, "{ctx}: processor count");
    assert_eq!(a.segments.len(), b.segments.len(), "{ctx}: segment count");
    for (sa, sb) in a.segments.iter().zip(&b.segments) {
        assert_eq!(sa.proc, sb.proc, "{ctx}: proc");
        assert_eq!(sa.job, sb.job, "{ctx}: job");
        assert_eq!(sa.start.to_bits(), sb.start.to_bits(), "{ctx}: start");
        assert_eq!(sa.end.to_bits(), sb.end.to_bits(), "{ctx}: end");
        assert_eq!(sa.speed.to_bits(), sb.speed.to_bits(), "{ctx}: speed");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args.iter().find(|a| !a.starts_with("--")).cloned();
    let started = std::time::Instant::now();

    let sweep: &[usize] = if smoke {
        &[128, 1024]
    } else {
        &[128, 512, 1024]
    };
    let m = 8;

    let mut table = Table::new(&[
        "n",
        "replans",
        "scratch work",
        "incr work",
        "ratio",
        "patched arcs",
        "arcs/replan",
        "reused ivals",
        "rebuilt",
        "scratch ms",
        "incr ms",
    ]);

    let mut total_patched = 0u64;
    let mut total_incr_ms = 0.0f64;
    for &n in sweep {
        let scratch = drive(n, m, false);
        let incr = drive(n, m, true);

        // The incremental path must change the cost of replans, never their
        // outcome: identical executed schedules, replan and flow counts.
        assert_identical(&scratch.executed, &incr.executed, &format!("n={n}"));
        assert_eq!(scratch.replans, incr.replans, "n={n}: replans");
        assert_eq!(scratch.flows, incr.flows, "n={n}: flow computations");
        assert_eq!(
            scratch.stats,
            IncrementalStats::default(),
            "n={n}: scratch session must not touch the planner"
        );
        // Counters scale with the per-event delta: after the first sync
        // rebuilds, every burst/tail arrival patches instead.
        assert!(incr.stats.patched_arcs > 0, "n={n}: no arcs patched");
        assert!(
            incr.stats.reused_intervals > 0,
            "n={n}: no intervals reused"
        );
        assert!(
            (incr.stats.rebuilt as usize) * 10 < incr.replans,
            "n={n}: planner rebuilt {} of {} syncs — patching is not engaging",
            incr.stats.rebuilt,
            incr.replans
        );

        let ratio = scratch.work as f64 / incr.work.max(1) as f64;
        if n >= 1024 {
            assert!(
                ratio >= 5.0,
                "n={n}: derivation-work reduction {ratio:.2}x < the 5x floor \
                 (scratch {} vs incremental {})",
                scratch.work,
                incr.work
            );
        }

        total_patched += incr.stats.patched_arcs;
        total_incr_ms += incr.wall_ms;
        table.row(vec![
            n.to_string(),
            incr.replans.to_string(),
            scratch.work.to_string(),
            incr.work.to_string(),
            format!("{ratio:.1}x"),
            incr.stats.patched_arcs.to_string(),
            format!(
                "{:.1}",
                incr.stats.patched_arcs as f64 / incr.replans as f64
            ),
            incr.stats.reused_intervals.to_string(),
            incr.stats.rebuilt.to_string(),
            format!("{:.0}", scratch.wall_ms),
            format!("{:.0}", incr.wall_ms),
        ]);
    }

    table.print();
    println!(
        "\nexecuted schedules were bit-identical on every row; the ≥5x \
         derivation-work floor held at n=1024."
    );

    if let Some(path) = &out_path {
        write_experiment_report(
            Path::new(path),
            "incremental_replan",
            &[("scaling", &table)],
            None,
        )
        .expect("writing report");
        println!("report written to {path}");
    }

    if smoke {
        let bench = Path::new("BENCH_TRAJECTORY.json");
        record_bench_snapshot(
            bench,
            "incremental_replan_smoke",
            started.elapsed().as_secs_f64() * 1e3,
            &[
                ("incr.patched_arcs", total_patched),
                ("incr.replan_ms", total_incr_ms.round() as u64),
            ],
        )
        .expect("writing bench snapshot");
        println!("bench snapshot recorded in {}", bench.display());
    }
}
