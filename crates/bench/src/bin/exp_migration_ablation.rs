//! `migration-ablation`: quantifies the paper's motivation for allowing
//! migration — the energy gap between the optimal migratory schedule and
//! non-migratory heuristics, by machine size and load.
//!
//! Run: `cargo run -p mpss-bench --release --bin exp_migration_ablation`

use mpss_bench::{parallel_map, stats, Table};
use mpss_core::energy::schedule_energy;
use mpss_core::job::job;
use mpss_core::power::Polynomial;
use mpss_core::Instance;
use mpss_offline::non_migratory::{non_migratory_schedule, AssignPolicy};
use mpss_offline::optimal_schedule;
use mpss_workloads::{Family, WorkloadSpec};

const SEEDS: u64 = 5;

fn main() {
    let alpha = 3.0;
    let p = Polynomial::new(alpha);

    println!("Migration ablation — OPT(migration) vs per-processor YDS heuristics, α = {alpha}\n");
    let mut t = Table::new(&[
        "family",
        "m",
        "greedy+LS/OPT",
        "greedy/OPT",
        "least-load/OPT",
        "round-robin/OPT",
        "migrations in OPT",
    ]);
    for family in [Family::Uniform, Family::Bursty, Family::TightLoad] {
        for m in [2usize, 4, 8] {
            let results = parallel_map((0..SEEDS).collect::<Vec<_>>(), |seed| {
                let instance = WorkloadSpec {
                    family,
                    n: 3 * m,
                    m,
                    horizon: 24,
                    seed,
                }
                .generate();
                let opt_res = optimal_schedule(&instance).unwrap();
                let opt = schedule_energy(&opt_res.schedule, &p);
                let run = |policy| {
                    schedule_energy(
                        &non_migratory_schedule(&instance, alpha, policy).schedule,
                        &p,
                    ) / opt
                };
                (
                    run(AssignPolicy::GreedyWithLocalSearch),
                    run(AssignPolicy::GreedyEnergy),
                    run(AssignPolicy::LeastLoaded),
                    run(AssignPolicy::RoundRobin),
                    opt_res.schedule.migrations() as f64,
                )
            });
            let ls = stats(&results.iter().map(|r| r.0).collect::<Vec<_>>());
            let g = stats(&results.iter().map(|r| r.1).collect::<Vec<_>>());
            let l = stats(&results.iter().map(|r| r.2).collect::<Vec<_>>());
            let rr = stats(&results.iter().map(|r| r.3).collect::<Vec<_>>());
            let mig = stats(&results.iter().map(|r| r.4).collect::<Vec<_>>());
            t.row(vec![
                family.name().to_string(),
                m.to_string(),
                format!("{:.3}", ls.mean),
                format!("{:.3}", g.mean),
                format!("{:.3}", l.mean),
                format!("{:.3}", rr.mean),
                format!("{:.0}", mig.mean),
            ]);
        }
    }
    t.print();

    // The crafted worst case: k identical tight jobs on k−1 processors.
    println!("\ncrafted stress (k identical tight jobs on k−1 processors):\n");
    let mut t2 = Table::new(&["k", "OPT (migratory)", "best non-migratory", "penalty"]);
    for k in [3usize, 4, 6, 8] {
        let m = k - 1;
        let instance = Instance::new(m, vec![job(0.0, k as f64, k as f64); k]).unwrap();
        let opt = schedule_energy(&optimal_schedule(&instance).unwrap().schedule, &p);
        let nm = [
            AssignPolicy::GreedyWithLocalSearch,
            AssignPolicy::GreedyEnergy,
            AssignPolicy::LeastLoaded,
            AssignPolicy::RoundRobin,
        ]
        .into_iter()
        .map(|policy| {
            schedule_energy(
                &non_migratory_schedule(&instance, alpha, policy).schedule,
                &p,
            )
        })
        .fold(f64::INFINITY, f64::min);
        t2.row(vec![
            k.to_string(),
            format!("{opt:.3}"),
            format!("{nm:.3}"),
            format!("{:+.1}%", 100.0 * (nm - opt) / opt),
        ]);
    }
    t2.print();
    println!(
        "\nshape check: random loads show small but consistent migration savings\n\
         (migration smooths load); the crafted family shows the structural gap —\n\
         without migration some processor must run two tight jobs back-to-back."
    );
}
