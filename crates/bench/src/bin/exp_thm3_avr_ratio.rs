//! `thm3-avr-ratio`: Theorem 3 as a measured table. Sweeps α × m × family
//! (including the AVR-adversarial nested family) and reports measured
//! ratios of AVR(m) against the bound `(2α)^α/2 + 1`, plus the proof's two
//! scaffolding inequalities.
//!
//! Run: `cargo run -p mpss-bench --release --bin exp_thm3_avr_ratio`

use mpss_bench::{parallel_map, stats, Table};
use mpss_core::energy::schedule_energy;
use mpss_core::power::Polynomial;
use mpss_offline::{optimal_schedule, yds_schedule};
use mpss_online::avr_schedule;
use mpss_workloads::{Family, WorkloadSpec};

const SEEDS: u64 = 5;

fn main() {
    let alphas = [1.5, 2.0, 2.5, 3.0];
    let ms = [1usize, 2, 4, 8];

    println!("Theorem 3 — AVR(m) competitive ratio vs bound (2α)^α/2 + 1");
    println!(
        "sweep: {} families × {SEEDS} seeds per cell, n = 10, horizon 24\n",
        Family::ALL.len()
    );

    let mut t = Table::new(&[
        "alpha",
        "m",
        "mean ratio",
        "max ratio",
        "bound",
        "proof ineq",
        "within",
    ]);
    for &alpha in &alphas {
        let p = Polynomial::new(alpha);
        for &m in &ms {
            let cases: Vec<(Family, u64)> = Family::ALL
                .iter()
                .flat_map(|&f| (0..SEEDS).map(move |s| (f, s)))
                .collect();
            let results = parallel_map(cases, |(family, seed)| {
                let horizon = if family == Family::AvrAdversarial {
                    1024
                } else {
                    24
                };
                let instance = WorkloadSpec {
                    family,
                    n: 10,
                    m,
                    horizon,
                    seed,
                }
                .generate();
                let e_opt = schedule_energy(&optimal_schedule(&instance).unwrap().schedule, &p);
                let e_avr = schedule_energy(&avr_schedule(&instance), &p);
                let e1_opt = schedule_energy(&yds_schedule(&instance).schedule, &p);
                // Proof scaffolding: E_AVR ≤ m^{1−α}(2α)^α/2 · E¹_OPT + E_OPT.
                let rhs =
                    (m as f64).powf(1.0 - alpha) * (2.0 * alpha).powf(alpha) / 2.0 * e1_opt + e_opt;
                (e_avr / e_opt, e_avr <= rhs * (1.0 + 1e-6))
            });
            let ratios: Vec<f64> = results.iter().map(|r| r.0).collect();
            let proof_ok = results.iter().all(|r| r.1);
            let s = stats(&ratios);
            let within = s.max <= p.avr_bound() * (1.0 + 1e-9);
            t.row(vec![
                format!("{alpha}"),
                format!("{m}"),
                format!("{:.4}", s.mean),
                format!("{:.4}", s.max),
                format!("{:.3}", p.avr_bound()),
                if proof_ok { "✓".into() } else { "✗".into() },
                if within { "✓".into() } else { "✗".into() },
            ]);
            assert!(within && proof_ok, "α = {alpha}, m = {m} violated");
        }
    }
    t.print();

    // The adversarial family alone, to show the ratio actually climbing.
    println!("\nAVR-adversarial family only (m = 1, α = 3, deeper nestings):");
    let p = Polynomial::new(3.0);
    let mut t2 = Table::new(&["levels n", "measured ratio", "bound"]);
    for n in [4usize, 8, 12, 16] {
        let instance = WorkloadSpec {
            family: Family::AvrAdversarial,
            n,
            m: 1,
            horizon: 1 << 16,
            seed: 0,
        }
        .generate();
        let e_opt = schedule_energy(&optimal_schedule(&instance).unwrap().schedule, &p);
        let e_avr = schedule_energy(&avr_schedule(&instance), &p);
        t2.row(vec![
            n.to_string(),
            format!("{:.4}", e_avr / e_opt),
            format!("{:.1}", p.avr_bound()),
        ]);
    }
    t2.print();
    println!("\nALL CELLS WITHIN BOUND ✓ (proof inequalities hold on every instance)");
}
