//! `workload-atlas`: structural characterization of every workload family —
//! documents what each family actually stresses (load, density peaks,
//! overlap structure) next to how each algorithm fares on it.
//!
//! Run: `cargo run -p mpss-bench --release --bin exp_workload_atlas`

use mpss_bench::{parallel_map, stats, Table};
use mpss_core::energy::schedule_energy;
use mpss_core::power::Polynomial;
use mpss_offline::optimal_schedule;
use mpss_online::{avr_schedule, oa_schedule};
use mpss_workloads::stats::instance_stats;
use mpss_workloads::{Family, WorkloadSpec};

const SEEDS: u64 = 4;

fn main() {
    let alpha = 3.0;
    let p = Polynomial::new(alpha);
    println!("Workload atlas (n = 16, m = 4, {SEEDS} seeds per family, α = {alpha})\n");
    let mut t = Table::new(&[
        "family", "load", "max δ", "peak Δ", "mean act", "cross%", "OA/OPT", "AVR/OPT",
    ]);
    for family in Family::ALL {
        let horizon = if family == Family::AvrAdversarial {
            4096
        } else {
            48
        };
        let rows = parallel_map((0..SEEDS).collect::<Vec<_>>(), |seed| {
            let instance = WorkloadSpec {
                family,
                n: 16,
                m: 4,
                horizon,
                seed,
            }
            .generate();
            let st = instance_stats(&instance);
            let e_opt = schedule_energy(&optimal_schedule(&instance).unwrap().schedule, &p);
            let oa = schedule_energy(&oa_schedule(&instance).unwrap().schedule, &p) / e_opt;
            let avr = schedule_energy(&avr_schedule(&instance), &p) / e_opt;
            (st, oa, avr)
        });
        let load = stats(&rows.iter().map(|r| r.0.load_factor).collect::<Vec<_>>());
        let maxd = stats(&rows.iter().map(|r| r.0.max_density).collect::<Vec<_>>());
        let peak = stats(
            &rows
                .iter()
                .map(|r| r.0.peak_total_density)
                .collect::<Vec<_>>(),
        );
        let act = stats(&rows.iter().map(|r| r.0.mean_active).collect::<Vec<_>>());
        let cross = stats(
            &rows
                .iter()
                .map(|r| r.0.crossing_fraction)
                .collect::<Vec<_>>(),
        );
        let oa = stats(&rows.iter().map(|r| r.1).collect::<Vec<_>>());
        let avr = stats(&rows.iter().map(|r| r.2).collect::<Vec<_>>());
        t.row(vec![
            family.name().to_string(),
            format!("{:.2}", load.mean),
            format!("{:.2}", maxd.mean),
            format!("{:.2}", peak.mean),
            format!("{:.1}", act.mean),
            format!("{:.0}%", 100.0 * cross.mean),
            format!("{:.3}", oa.mean),
            format!("{:.3}", avr.mean),
        ]);
    }
    t.print();
    println!(
        "\nreading guide: load = volume / (m·horizon); max δ bounds any schedule's peak\n\
         speed from below; peak Δ is AVR's worst instant; cross% = windows that\n\
         properly overlap (0 for laminar). Online ratios worsen with load and with\n\
         bursty/adversarial arrival structure, not with size — matching §3's analysis."
    );
}
