//! `lp-vs-combinatorial`: measures the paper's motivating claim that the
//! Bingham–Greenstreet LP route is "too high \[in complexity\] for most
//! practical applications" while the combinatorial algorithm is practical.
//! Two tables: (a) accuracy of the LP vs its menu size K, (b) runtime of
//! both solvers as the instance grows.
//!
//! Run: `cargo run -p mpss-bench --release --bin exp_lp_vs_combinatorial`

use mpss_bench::{timed, Table};
use mpss_core::energy::schedule_energy;
use mpss_core::power::Polynomial;
use mpss_offline::lp_baseline::lp_baseline;
use mpss_offline::optimal_schedule;
use mpss_workloads::{Family, WorkloadSpec};

fn main() {
    let alpha = 2.0;
    let p = Polynomial::new(alpha);

    // (a) Accuracy vs menu size on a fixed instance.
    let instance = WorkloadSpec {
        family: Family::Uniform,
        n: 6,
        m: 2,
        horizon: 12,
        seed: 9,
    }
    .generate();
    let (opt, t_opt) = timed(|| optimal_schedule(&instance).unwrap());
    let e_opt = schedule_energy(&opt.schedule, &p);

    println!("(a) LP accuracy vs menu size K (n = 6, m = 2; OPT = {e_opt:.4}, flow algorithm {t_opt:.2} ms)\n");
    let mut t = Table::new(&[
        "K",
        "LP vars",
        "LP rows",
        "LP energy",
        "gap vs OPT",
        "time (ms)",
    ]);
    for k in [3usize, 6, 12, 24, 48] {
        let (res, ms) = timed(|| lp_baseline(&instance, &p, k).unwrap());
        t.row(vec![
            k.to_string(),
            res.num_vars.to_string(),
            res.num_constraints.to_string(),
            format!("{:.4}", res.energy),
            format!("{:+.3}%", 100.0 * (res.energy - e_opt) / e_opt),
            format!("{ms:.2}"),
        ]);
    }
    t.print();

    // (b) Runtime scaling of both solvers.
    println!("\n(b) runtime scaling (K = 12 for the LP; uniform family, m = 2)\n");
    let mut t2 = Table::new(&[
        "n",
        "flow algo (ms)",
        "flow computations",
        "LP (ms)",
        "LP vars",
        "slowdown",
    ]);
    for n in [4usize, 8, 12, 16, 20, 24] {
        let instance = WorkloadSpec {
            family: Family::Uniform,
            n,
            m: 2,
            horizon: 2 * n as u64,
            seed: 1,
        }
        .generate();
        let (opt, t_flow) = timed(|| optimal_schedule(&instance).unwrap());
        let (lp, t_lp) = timed(|| lp_baseline(&instance, &p, 12).unwrap());
        t2.row(vec![
            n.to_string(),
            format!("{t_flow:.2}"),
            opt.flow_computations.to_string(),
            format!("{t_lp:.2}"),
            lp.num_vars.to_string(),
            format!("{:.0}×", t_lp / t_flow.max(1e-3)),
        ]);
    }
    t2.print();
    println!(
        "\nshape check (matches the paper's positioning): the LP's variable count grows\n\
         as n × intervals × K — quadratically in n for fixed K — and dense-simplex time\n\
         grows roughly cubically in that size, so the slowdown factor over the\n\
         combinatorial algorithm diverges as n grows; meanwhile the LP's energy only\n\
         converges to OPT from above as the speed menu K is refined."
    );
}
