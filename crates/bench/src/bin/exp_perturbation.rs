//! `perturbation`: robustness of the algorithms' behavior under trace
//! mutations — release jitter, slack tightening/relaxing. The offline
//! optimum must move smoothly (monotone for one-sided mutations); online
//! ratios may degrade with tighter slack but must stay within the theorem
//! bounds throughout.
//!
//! Run: `cargo run -p mpss-bench --release --bin exp_perturbation`

use mpss_bench::{parallel_map, stats, Table};
use mpss_core::energy::schedule_energy;
use mpss_core::power::Polynomial;
use mpss_offline::optimal_schedule;
use mpss_online::{avr_schedule, oa_schedule};
use mpss_workloads::perturb::{jitter_releases, scale_slack};
use mpss_workloads::{Family, WorkloadSpec};

const SEEDS: u64 = 4;

fn main() {
    let alpha = 3.0;
    let p = Polynomial::new(alpha);

    println!("(a) slack scaling: windows shrink/grow around their midpoints (α = {alpha})\n");
    let mut t = Table::new(&[
        "slack factor",
        "OPT energy",
        "OA/OPT",
        "AVR/OPT",
        "within bounds",
    ]);
    for factor in [0.5f64, 0.75, 1.0, 1.5, 2.0] {
        let rows = parallel_map((0..SEEDS).collect::<Vec<_>>(), |seed| {
            let base = WorkloadSpec {
                family: Family::Uniform,
                n: 12,
                m: 3,
                horizon: 24,
                seed,
            }
            .generate();
            let ins = scale_slack(&base, factor);
            let e_opt = schedule_energy(&optimal_schedule(&ins).unwrap().schedule, &p);
            let oa = schedule_energy(&oa_schedule(&ins).unwrap().schedule, &p) / e_opt;
            let avr = schedule_energy(&avr_schedule(&ins), &p) / e_opt;
            (e_opt, oa, avr)
        });
        let e = stats(&rows.iter().map(|r| r.0).collect::<Vec<_>>());
        let oa = stats(&rows.iter().map(|r| r.1).collect::<Vec<_>>());
        let avr = stats(&rows.iter().map(|r| r.2).collect::<Vec<_>>());
        let ok = oa.max <= p.oa_bound() && avr.max <= p.avr_bound();
        t.row(vec![
            format!("{factor}"),
            format!("{:.2}", e.mean),
            format!("{:.4}", oa.mean),
            format!("{:.4}", avr.mean),
            if ok { "✓".into() } else { "✗".into() },
        ]);
        assert!(ok);
    }
    t.print();

    println!("\n(b) release jitter (slack factor 1, jitter amplitude sweep)\n");
    let mut t2 = Table::new(&["jitter ±", "ΔOPT vs base (mean)", "OA/OPT", "AVR/OPT"]);
    for amount in [0.0f64, 0.5, 1.0, 2.0, 4.0] {
        let rows = parallel_map((0..SEEDS).collect::<Vec<_>>(), |seed| {
            let base = WorkloadSpec {
                family: Family::Uniform,
                n: 12,
                m: 3,
                horizon: 24,
                seed,
            }
            .generate();
            let e_base = schedule_energy(&optimal_schedule(&base).unwrap().schedule, &p);
            let ins = jitter_releases(&base, amount, seed ^ 0xA5A5);
            let e_opt = schedule_energy(&optimal_schedule(&ins).unwrap().schedule, &p);
            let oa = schedule_energy(&oa_schedule(&ins).unwrap().schedule, &p) / e_opt;
            let avr = schedule_energy(&avr_schedule(&ins), &p) / e_opt;
            (e_opt / e_base - 1.0, oa, avr)
        });
        let d = stats(&rows.iter().map(|r| r.0).collect::<Vec<_>>());
        let oa = stats(&rows.iter().map(|r| r.1).collect::<Vec<_>>());
        let avr = stats(&rows.iter().map(|r| r.2).collect::<Vec<_>>());
        t2.row(vec![
            format!("{amount}"),
            format!("{:+.2}%", 100.0 * d.mean),
            format!("{:.4}", oa.mean),
            format!("{:.4}", avr.mean),
        ]);
    }
    t2.print();
    println!(
        "\nshape check: tighter slack (factor < 1) raises everyone's energy; relaxing\n\
         lowers it (monotonicity, tested exactly in the fuzz-suite). Jitter raises OPT\n\
         gradually (forward-clamped jitter halves some windows at high amplitude) while\n\
         every online ratio stays within its theorem bound throughout."
    );
}
