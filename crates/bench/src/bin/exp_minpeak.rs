//! `min-peak`: bounded-speed extension — the minimum peak speed needed for
//! feasibility with migration, computed two independent ways (the optimal
//! schedule's first-phase speed `s₁` vs binary search over the flow
//! feasibility test), and how it decays with machine size.
//!
//! Run: `cargo run -p mpss-bench --release --bin exp_minpeak`

use mpss_bench::Table;
use mpss_offline::speed_bound::{feasible_at_cap, minimum_peak_speed, minimum_peak_speed_search};
use mpss_workloads::{Family, WorkloadSpec};

fn main() {
    println!("Minimum feasible peak speed (migratory), two independent computations\n");
    let mut t = Table::new(&[
        "family",
        "m",
        "s₁ (phase)",
        "binary search",
        "agree",
        "cap 0.99·s₁ feasible?",
    ]);
    for family in [Family::Uniform, Family::Bursty, Family::TightLoad] {
        for m in [1usize, 2, 4, 8] {
            let instance = WorkloadSpec {
                family,
                n: 12,
                m,
                horizon: 24,
                seed: 6,
            }
            .generate();
            let s1 = minimum_peak_speed(&instance);
            let searched = minimum_peak_speed_search(&instance, 1e-9);
            let agree = (s1 - searched).abs() <= 1e-6 * s1.max(1.0);
            let below = feasible_at_cap(&instance, 0.99 * s1);
            t.row(vec![
                family.name().to_string(),
                m.to_string(),
                format!("{s1:.4}"),
                format!("{searched:.4}"),
                if agree { "✓".into() } else { "✗".into() },
                if below {
                    "yes (✗!)".into()
                } else {
                    "no (✓)".into()
                },
            ]);
            assert!(agree && !below);
        }
    }
    t.print();
    println!(
        "\nshape check: the energy-optimal schedule is simultaneously peak-speed optimal\n\
         (its top speed level s₁ is the max flow-intensity over job subsets, which any\n\
         feasible schedule must reach); more processors strictly lower the needed peak\n\
         until every job runs alone at its density."
    );
}
