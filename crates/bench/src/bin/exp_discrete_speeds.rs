//! `discrete-speeds`: the discrete-frequency extension (the Li–Yao /
//! Ishihara–Yasuura setting referenced by the paper). Converts the
//! continuous optimum onto finite speed menus and measures the
//! discretization penalty, certifying the result against the independent
//! LP optimum on the same menu.
//!
//! Run: `cargo run -p mpss-bench --release --bin exp_discrete_speeds`

use mpss_bench::Table;
use mpss_core::energy::schedule_energy;
use mpss_core::power::Polynomial;
use mpss_core::validate::validate_schedule;
use mpss_offline::discrete::discretize_speeds;
use mpss_offline::lp_baseline::lp_baseline;
use mpss_offline::{optimal_schedule, yds_schedule};
use mpss_workloads::{Family, WorkloadSpec};

fn main() {
    let alpha = 3.0;
    let p = Polynomial::new(alpha);
    let instance = WorkloadSpec {
        family: Family::Uniform,
        n: 6,
        m: 2,
        horizon: 12,
        seed: 13,
    }
    .generate();
    let cont = optimal_schedule(&instance).unwrap().schedule;
    let e_cont = schedule_energy(&cont, &p);
    let s_max = yds_schedule(&instance).speeds[0];

    println!("Discrete speed menus (α = {alpha}, n = 6, m = 2, continuous OPT = {e_cont:.4})\n");
    let mut t = Table::new(&[
        "menu size K",
        "discretized energy",
        "penalty vs continuous",
        "LP on same menu",
        "disc = LP",
    ]);
    for k in [2usize, 4, 8, 16, 32] {
        let menu: Vec<f64> = (1..=k).map(|q| s_max * q as f64 / k as f64).collect();
        let disc = discretize_speeds(&cont, &menu).unwrap();
        assert!(validate_schedule(&instance, &disc, 1e-9).is_ok());
        let e_disc = schedule_energy(&disc, &p);
        let e_lp = lp_baseline(&instance, &p, k).unwrap().energy;
        let agree = (e_disc - e_lp).abs() <= 1e-6 * e_lp.max(1.0);
        t.row(vec![
            k.to_string(),
            format!("{e_disc:.4}"),
            format!("{:+.3}%", 100.0 * (e_disc - e_cont) / e_cont),
            format!("{e_lp:.4}"),
            if agree { "✓".into() } else { "✗".into() },
        ]);
        assert!(
            agree,
            "two-speed mixture must equal the LP optimum on the menu"
        );
        assert!(e_disc >= e_cont - 1e-9);
    }
    t.print();
    println!(
        "\nshape check: the penalty decays roughly quadratically in the menu spacing\n\
         (convexity: mixing adjacent speeds costs the secant, a second-order excess),\n\
         and the two-speed mixture of the continuous optimum is *exactly* the optimal\n\
         menu-restricted schedule — it matches the independently-solved LP every time."
    );
}
