//! `oa-vs-avr`: head-to-head comparison of the paper's two online
//! algorithms. Theory predicts OA(m)'s guarantee `α^α` is always below
//! AVR(m)'s `(2α)^α/2 + 1 = 2^{α−1}α^α + 1`; measured energies should show
//! OA ahead on adversarial and bursty loads while both stay near OPT on
//! easy ones.
//!
//! Run: `cargo run -p mpss-bench --release --bin exp_oa_vs_avr`

use mpss_bench::{parallel_map, stats, Table};
use mpss_core::energy::schedule_energy;
use mpss_core::power::Polynomial;
use mpss_offline::optimal_schedule;
use mpss_online::{avr_schedule, oa_schedule};
use mpss_workloads::{Family, WorkloadSpec};

const SEEDS: u64 = 6;

fn main() {
    let alpha = 3.0;
    let p = Polynomial::new(alpha);
    let m = 4;

    println!("OA(m) vs AVR(m), α = {alpha}, m = {m}, n = 12, {SEEDS} seeds per family\n");
    println!(
        "theoretical guarantees: OA {:.1} < AVR {:.1} for every α > 1\n",
        p.oa_bound(),
        p.avr_bound()
    );

    let mut t = Table::new(&[
        "family",
        "mean OA/OPT",
        "mean AVR/OPT",
        "max OA/OPT",
        "max AVR/OPT",
        "winner",
    ]);
    let mut oa_wins = 0usize;
    for family in Family::ALL {
        let horizon = if family == Family::AvrAdversarial {
            4096
        } else {
            32
        };
        let results = parallel_map((0..SEEDS).collect::<Vec<_>>(), |seed| {
            let instance = WorkloadSpec {
                family,
                n: 12,
                m,
                horizon,
                seed,
            }
            .generate();
            let e_opt = schedule_energy(&optimal_schedule(&instance).unwrap().schedule, &p);
            let e_oa = schedule_energy(&oa_schedule(&instance).unwrap().schedule, &p);
            let e_avr = schedule_energy(&avr_schedule(&instance), &p);
            (e_oa / e_opt, e_avr / e_opt)
        });
        let oa: Vec<f64> = results.iter().map(|r| r.0).collect();
        let avr: Vec<f64> = results.iter().map(|r| r.1).collect();
        let (so, sa) = (stats(&oa), stats(&avr));
        let winner = if so.mean <= sa.mean { "OA" } else { "AVR" };
        if so.mean <= sa.mean {
            oa_wins += 1;
        }
        t.row(vec![
            family.name().to_string(),
            format!("{:.4}", so.mean),
            format!("{:.4}", sa.mean),
            format!("{:.4}", so.max),
            format!("{:.4}", sa.max),
            winner.to_string(),
        ]);
    }
    t.print();
    println!(
        "\nshape check: OA wins or ties on {oa_wins}/{} families (theory: OA's guarantee\n\
         dominates AVR's for every α > 1; AVR can still win small races on easy loads).",
        Family::ALL.len()
    );

    // Guarantee curves by α — the analytic content of §3.
    println!("\nguarantee curves (not measurements):");
    let mut t2 = Table::new(&[
        "alpha",
        "OA bound α^α",
        "AVR bound (2α)^α/2+1",
        "AVR/OA factor",
    ]);
    for alpha in [1.25, 1.5, 2.0, 2.5, 3.0, 4.0] {
        let p = Polynomial::new(alpha);
        t2.row(vec![
            format!("{alpha}"),
            format!("{:.3}", p.oa_bound()),
            format!("{:.3}", p.avr_bound()),
            format!("{:.3}", p.avr_bound() / p.oa_bound()),
        ]);
    }
    t2.print();
}
