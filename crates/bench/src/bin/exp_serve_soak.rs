//! `serve-soak`: does the `mpss-serve` daemon hold a four-digit tenant
//! count and a six-digit arrival stream without unbounded memory, and does
//! a mid-run kill/restore leave it *bit-identical* to a daemon that never
//! died?
//!
//! The harness drives a [`Daemon`] through the same request surface a
//! network client would use — `open`, `arrive`, broadcast `advance`,
//! periodic `checkpoint` — with a mixed OA/AVR tenant population and a
//! sliding compaction window, and checks three things:
//!
//! * **scale** — ≥1000 concurrent tenants and ≥100k cumulative arrivals in
//!   `--smoke` mode (the CI configuration; the full run is ~1M arrivals);
//! * **bit-identical restore** — halfway through, every tenant is frozen to
//!   disk, a *fresh* daemon restores the fleet, re-freezes it, and the two
//!   checkpoint directories must match byte for byte; the restored daemon
//!   then serves the rest of the soak, so the back half also proves the
//!   revived fleet stays live;
//! * **bounded memory** — the compaction window must keep every tenant's
//!   retained executed history small regardless of stream length, with RSS
//!   reported (and sanity-bounded) from `/proc/self/status`.
//!
//! Run: `cargo run -p mpss-bench --release --bin exp_serve_soak -- --smoke`
//! `--smoke` also appends a `serve_soak_smoke` snapshot to the cumulative
//! `BENCH_TRAJECTORY.json` — gated work counters (`serve.tenants`,
//! `serve.arrivals`, the flight-recorder tallies) plus ungated
//! wall-clock-shaped stats (`serve.checkpoint_ms` and
//! `flight.overhead_pct`, the always-on black-box cost as a percent of
//! wall time) — gate it with `mpss-cli report-diff --bench`.
//!
//! The soak also *asserts in-binary* that the black box stays under 1% of
//! wall time. With `--postmortem-dir DIR [--slow-replan-ms MS]` the daemon
//! additionally dumps postmortem bundles (CI injects a 0 ms threshold to
//! force one) and the harness asserts a bundle landed.

use mpss_bench::{record_bench_snapshot_with_stats, Table};
use mpss_serve::protocol::{Algo, Request};
use mpss_serve::{Daemon, DaemonConfig};
use std::path::{Path, PathBuf};

/// Retained-history ceiling per tenant: the compaction window covers ~3
/// rounds, so anything within an order of magnitude of the per-round
/// segment count is "bounded"; an unbounded history would blow through
/// this within a few dozen rounds.
const MAX_RETAINED_SEGMENTS: u64 = 1000;

struct SoakConfig {
    tenants: usize,
    /// Every round sends one arrival per tenant, then a broadcast advance.
    rounds: usize,
    /// Tenants whose index is a multiple of this run OA (flow replanning —
    /// the expensive engine); the rest run AVR.
    oa_stride: usize,
    checkpoint_every: usize,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let flag = |name: &str| -> Option<&str> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .map(String::as_str)
    };
    let postmortem_dir = flag("--postmortem-dir").map(PathBuf::from);
    let slow_replan_ms: Option<f64> = flag("--slow-replan-ms").map(|v| {
        v.parse()
            .unwrap_or_else(|_| panic!("bad --slow-replan-ms `{v}`"))
    });
    assert!(
        slow_replan_ms.is_none() || postmortem_dir.is_some(),
        "--slow-replan-ms needs --postmortem-dir"
    );
    let config = if smoke {
        SoakConfig {
            tenants: 1000,
            rounds: 100,
            oa_stride: 20, // 50 OA tenants
            checkpoint_every: 25,
        }
    } else {
        SoakConfig {
            tenants: 2000,
            rounds: 500,
            oa_stride: 40, // 50 OA tenants
            checkpoint_every: 100,
        }
    };
    let started = std::time::Instant::now();
    let planned = config.tenants * config.rounds;
    println!(
        "serve-soak: {} tenants ({} OA, {} AVR), {} rounds, {} arrivals planned",
        config.tenants,
        config.tenants.div_ceil(config.oa_stride),
        config.tenants - config.tenants.div_ceil(config.oa_stride),
        config.rounds,
        planned,
    );
    let rss_start = rss_mb();

    let daemon_config = DaemonConfig {
        compact_window: Some(3.0),
        threads: None,
        postmortem_dir: postmortem_dir.clone(),
        slow_replan_ms,
        ..DaemonConfig::default()
    };
    let mut daemon = Daemon::new(daemon_config.clone());
    for k in 0..config.tenants {
        let algo = if k % config.oa_stride == 0 {
            Algo::Oa
        } else {
            Algo::Avr
        };
        let response = daemon.handle(&Request::Open {
            tenant: format!("tenant-{k:04}"),
            algo,
            m: 2,
            start: 0.0,
            engine: None,
        });
        assert!(response.is_ok(), "open {k}: {}", response.render_line());
    }
    assert!(daemon.tenant_count() >= 1000 || !smoke);

    let scratch = scratch_dir();
    let mut arrivals: u64 = 0;
    let mut checkpoint_ms: f64 = 0.0;
    let mut checkpoints: u64 = 0;
    let kill_round = config.rounds / 2;
    let mut rss_mid = 0.0;
    let mut obs_ns_carry: u64 = 0;
    let mut flight_carry: (u64, u64) = (0, 0);
    let mut postmortems_carry: u64 = 0;
    for round in 1..=config.rounds {
        let t = round as f64;
        for k in 0..config.tenants {
            let response = daemon.handle(&Request::Arrive {
                tenant: format!("tenant-{k:04}"),
                deadline: t + 1.5,
                volume: 0.3,
            });
            assert!(
                response.is_ok(),
                "arrive r{round} t{k}: {}",
                response.render_line()
            );
            arrivals += 1;
        }
        let response = daemon.handle(&Request::Advance {
            tenant: None,
            to: t,
        });
        assert!(
            response.is_ok(),
            "advance r{round}: {}",
            response.render_line()
        );

        if round % config.checkpoint_every == 0 {
            let dir = scratch.join(format!("round-{round}"));
            let ms = checkpoint_all(&mut daemon, &dir);
            checkpoint_ms += ms;
            checkpoints += 1;
            println!("  round {round:4}: checkpointed fleet in {ms:.1} ms");
        }
        if round == kill_round {
            // The black-box tallies die with the killed daemon: carry them.
            obs_ns_carry += daemon.obs_overhead_ns();
            let (recorded, dropped) = daemon.flight_totals();
            flight_carry.0 += recorded;
            flight_carry.1 += dropped;
            postmortems_carry += daemon.postmortems_written();
            daemon = kill_and_restore(daemon, &daemon_config, &scratch);
            rss_mid = rss_mb();
            println!(
                "  round {round:4}: killed the daemon, restored {} tenants bit-identically \
                 (RSS {rss_mid:.0} MB)",
                daemon.tenant_count()
            );
        }
    }
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    let rss_end = rss_mb();

    // Always-on black box: the flight recorders and structured logging ran
    // for the whole soak. Total their cost (pre-kill tallies were carried)
    // and hold the line at <1% of wall time.
    let obs_ns = obs_ns_carry + daemon.obs_overhead_ns();
    let (live_recorded, live_dropped) = daemon.flight_totals();
    let flight_recorded = flight_carry.0 + live_recorded;
    let flight_dropped = flight_carry.1 + live_dropped;
    let postmortems = postmortems_carry + daemon.postmortems_written();
    let overhead_pct = obs_ns as f64 / (wall_ms * 1e6) * 100.0;
    println!(
        "black box: {obs_ns} ns over {} requests ({:.0} ns/request), {overhead_pct:.3}% of wall",
        arrivals + config.rounds as u64,
        obs_ns as f64 / (arrivals + config.rounds as u64) as f64,
    );
    assert!(
        overhead_pct < 1.0,
        "black-box overhead {overhead_pct:.3}% of wall time — the always-on recorder must stay under 1%"
    );
    if let Some(dir) = &postmortem_dir {
        if slow_replan_ms.is_some() {
            let bundles = mpss_serve::find_bundles(dir).expect("listing postmortem bundles");
            assert!(
                !bundles.is_empty(),
                "a slow-replan threshold was set but no postmortem bundle landed in {}",
                dir.display()
            );
            println!(
                "postmortem: {} bundle(s) in {} (first: {})",
                bundles.len(),
                dir.display(),
                bundles[0].display()
            );
        }
    }

    // Bounded memory: compaction must have kept every tenant's retained
    // history flat, independent of how many rounds ran.
    let snapshot = daemon.handle(&Request::Snapshot { tenant: None });
    assert!(snapshot.is_ok(), "{}", snapshot.render_line());
    let rows = match snapshot.get("tenants") {
        Some(mpss_obs::json::Json::Arr(rows)) => rows,
        other => panic!("snapshot returned {other:?}"),
    };
    assert_eq!(rows.len(), config.tenants);
    let mut max_segments = 0u64;
    let mut total_compacted = 0u64;
    for row in rows {
        let retained = uint(row, "executed_segments");
        let compacted = uint(row, "compacted_segments");
        assert!(
            retained <= MAX_RETAINED_SEGMENTS,
            "tenant {:?} retains {retained} segments — compaction is not bounding history",
            row.get("tenant"),
        );
        assert!(
            compacted > 0,
            "tenant {:?} never compacted anything over {} rounds",
            row.get("tenant"),
            config.rounds,
        );
        max_segments = max_segments.max(retained);
        total_compacted += compacted;
    }
    // RSS is machine-dependent; this is a tripwire against runaway growth,
    // not a precise bound (the real invariant is the segment ceiling above).
    if rss_end > 0.0 {
        assert!(
            rss_end < 4096.0,
            "soak RSS reached {rss_end:.0} MB — memory is not bounded"
        );
    }

    assert_eq!(arrivals as usize, planned);
    if smoke {
        assert!(
            daemon.tenant_count() >= 1000,
            "smoke must soak ≥1000 tenants"
        );
        assert!(arrivals >= 100_000, "smoke must push ≥100k arrivals");
    }

    let mut table = Table::new(&["measure", "value"]);
    table.row(vec!["tenants".into(), daemon.tenant_count().to_string()]);
    table.row(vec!["arrivals".into(), arrivals.to_string()]);
    table.row(vec!["rounds".into(), config.rounds.to_string()]);
    table.row(vec![
        "checkpoints (fleet-wide)".into(),
        checkpoints.to_string(),
    ]);
    table.row(vec![
        "checkpoint wall (ms total)".into(),
        format!("{checkpoint_ms:.1}"),
    ]);
    table.row(vec![
        "max retained segments/tenant".into(),
        max_segments.to_string(),
    ]);
    table.row(vec![
        "segments compacted (fleet)".into(),
        total_compacted.to_string(),
    ]);
    table.row(vec![
        "RSS start/mid/end (MB)".into(),
        format!("{rss_start:.0} / {rss_mid:.0} / {rss_end:.0}"),
    ]);
    table.row(vec![
        "flight events recorded/dropped".into(),
        format!("{flight_recorded} / {flight_dropped}"),
    ]);
    table.row(vec!["postmortem bundles".into(), postmortems.to_string()]);
    table.row(vec![
        "black-box overhead (% wall)".into(),
        format!("{overhead_pct:.3}"),
    ]);
    table.row(vec!["wall (ms)".into(), format!("{wall_ms:.0}")]);
    table.print();
    println!(
        "\nkill/restore at round {kill_round} was byte-identical on disk and the restored\n\
         fleet served the remaining {} rounds; history stayed ≤{max_segments} segments/tenant.",
        config.rounds - kill_round,
    );

    let _ = std::fs::remove_dir_all(&scratch);

    if smoke {
        let bench = Path::new("BENCH_TRAJECTORY.json");
        record_bench_snapshot_with_stats(
            bench,
            "serve_soak_smoke",
            wall_ms,
            &[
                ("serve.tenants", daemon.tenant_count() as u64),
                ("serve.arrivals", arrivals),
                ("serve.flight.events", flight_recorded),
                ("serve.flight.dropped", flight_dropped),
                ("serve.postmortems", postmortems),
            ],
            // Checkpoint wall and recorder overhead are wall-clock-shaped
            // (machine noise swamps a 25% gate); the hard <1% overhead gate
            // is the assert above, the trajectory entries just track trends.
            &[
                ("serve.checkpoint_ms", checkpoint_ms),
                ("flight.overhead_pct", overhead_pct),
            ],
        )
        .expect("writing bench snapshot");
        println!("bench snapshot recorded in {}", bench.display());
    }
}

/// Fleet-wide checkpoint into `dir`, returning the wall milliseconds the
/// daemon spent serving it.
fn checkpoint_all(daemon: &mut Daemon, dir: &Path) -> f64 {
    let start = std::time::Instant::now();
    let response = daemon.handle(&Request::Checkpoint {
        tenant: None,
        dir: dir.to_string_lossy().into_owned(),
    });
    assert!(response.is_ok(), "{}", response.render_line());
    start.elapsed().as_secs_f64() * 1e3
}

/// The kill-restore differential: freeze `daemon` to disk, drop it, restore
/// a fresh daemon from the files, re-freeze the restored fleet, and demand
/// the two directories match byte for byte. Returns the restored daemon.
fn kill_and_restore(mut daemon: Daemon, config: &DaemonConfig, scratch: &Path) -> Daemon {
    let before = scratch.join("killed");
    let after = scratch.join("restored");
    checkpoint_all(&mut daemon, &before);
    drop(daemon); // the "kill"
    let mut revived = Daemon::new(config.clone());
    let response = revived.handle(&Request::Restore {
        tenant: None,
        dir: before.to_string_lossy().into_owned(),
    });
    assert!(response.is_ok(), "restore: {}", response.render_line());
    checkpoint_all(&mut revived, &after);
    for entry in std::fs::read_dir(&before).expect("reading checkpoint dir") {
        let path = entry.expect("dir entry").path();
        let Some(name) = path.file_name() else {
            continue;
        };
        let a = std::fs::read(&path).expect("reading original checkpoint");
        let b = std::fs::read(after.join(name)).expect("reading re-frozen checkpoint");
        assert_eq!(
            a, b,
            "checkpoint {name:?} changed across kill/restore — restore is not bit-identical"
        );
    }
    revived
}

fn uint(row: &mpss_obs::json::Json, key: &str) -> u64 {
    match row.get(key) {
        Some(mpss_obs::json::Json::UInt(n)) => *n,
        other => panic!("snapshot `{key}` was {other:?}"),
    }
}

fn scratch_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mpss-serve-soak-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Resident set size in MB from `/proc/self/status`, or 0.0 where that
/// pseudo-file does not exist.
fn rss_mb() -> f64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0.0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmRSS:") {
            let kb: f64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0.0);
            return kb / 1024.0;
        }
    }
    0.0
}
