//! `general-convex`: Theorem 1's "any convex non-decreasing power function"
//! claim. The combinatorial algorithm never reads `P`, so one schedule must
//! simultaneously beat the (P-specific) LP baseline under qualitatively
//! different convex power functions.
//!
//! Run: `cargo run -p mpss-bench --release --bin exp_general_convex`

use mpss_bench::Table;
use mpss_core::energy::schedule_energy;
use mpss_core::power::{
    check_convex_nondecreasing, AffinePolynomial, Exponential, PiecewiseLinear, Polynomial,
    PowerFunction,
};
use mpss_offline::lp_baseline::lp_baseline;
use mpss_offline::optimal_schedule;
use mpss_workloads::{Family, WorkloadSpec};

fn main() {
    let instance = WorkloadSpec {
        family: Family::Uniform,
        n: 6,
        m: 2,
        horizon: 12,
        seed: 21,
    }
    .generate();
    let schedule = optimal_schedule(&instance).unwrap().schedule;

    let powers: Vec<Box<dyn PowerFunction + Sync>> = vec![
        Box::new(Polynomial::new(2.0)),
        Box::new(Polynomial::new(3.0)),
        Box::new(AffinePolynomial::new(1.0, 2.0, 4.0, 0.0)),
        Box::new(Exponential),
        Box::new(PiecewiseLinear::new(vec![
            (0.0, 0.0),
            (1.0, 0.5),
            (2.0, 2.0),
            (4.0, 10.0),
            (16.0, 200.0),
        ])),
    ];

    println!("Universal optimality: one schedule, many power functions (n = 6, m = 2)\n");
    let mut t = Table::new(&[
        "power function",
        "convex✓",
        "schedule energy",
        "LP(K=32) energy",
        "schedule ≤ LP",
    ]);
    for p in &powers {
        let convex = check_convex_nondecreasing(p, 16.0, 257).is_none();
        let mine = schedule_energy(&schedule, p);
        let lp = lp_baseline(&instance, p, 32).unwrap().energy;
        let ok = mine <= lp * (1.0 + 1e-6);
        t.row(vec![
            p.describe(),
            if convex { "✓".into() } else { "✗".into() },
            format!("{mine:.4}"),
            format!("{lp:.4}"),
            if ok {
                "✓".into()
            } else {
                "✗ VIOLATION".into()
            },
        ]);
        assert!(convex && ok, "{} violated universality", p.describe());
    }
    t.print();
    println!(
        "\nshape check: the algorithm consumed no power function, yet its single schedule\n\
         is at or below the P-specific LP optimum for every convex non-decreasing P —\n\
         the universal-optimality content of Theorem 1."
    );
}
