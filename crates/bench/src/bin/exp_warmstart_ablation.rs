//! `warmstart-ablation`: does warm-starting the max-flow engine across
//! repair rounds (and seeding OA(m) replans from the surviving flow)
//! actually avoid work, and does it ever change the answer?
//!
//! For each workload the offline solver runs twice — cold (every round
//! rebuilds the network from scratch) and warm (rounds within a phase
//! retarget the retained residual network). Rows report wall time plus the
//! machine-independent work counters: Dinic augmenting paths / BFS phases,
//! rounds served warm (`offline.cold_rounds_avoided`), drains, and seeded
//! reuse. The phase structures are asserted bit-identical on every row —
//! the ablation is void if the optimisation is observable in the output.
//!
//! Run: `cargo run -p mpss-bench --release --bin exp_warmstart_ablation`
//! `--smoke` shrinks the sweep for CI and appends a snapshot (wall time +
//! augmentation counters, stamped with the git revision) to the cumulative
//! `BENCH_TRAJECTORY.json` in the working directory — gate it with
//! `mpss-cli report-diff --bench`; a path argument writes the tables as an
//! experiment JSON document.

use mpss_bench::{record_bench_snapshot, timed, write_experiment_report, Table};
use mpss_obs::{Collector, RecordingCollector};
use mpss_offline::{optimal_schedule_observed, OfflineOptions, OptimalResult};
use mpss_online::{oa_schedule_observed_with, OaOptions};
use mpss_workloads::{Family, WorkloadSpec};
use std::path::Path;

fn assert_same_phases(a: &OptimalResult<f64>, b: &OptimalResult<f64>, ctx: &str) {
    assert_eq!(a.phases.len(), b.phases.len(), "{ctx}: phase count");
    for (pa, pb) in a.phases.iter().zip(&b.phases) {
        assert_eq!(pa.speed.to_bits(), pb.speed.to_bits(), "{ctx}: speed");
        assert_eq!(pa.jobs, pb.jobs, "{ctx}: jobs");
        assert_eq!(pa.procs, pb.procs, "{ctx}: procs");
        assert_eq!(pa.rounds, pb.rounds, "{ctx}: rounds");
    }
    assert_eq!(a.flow_computations, b.flow_computations, "{ctx}: rounds");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args.iter().find(|a| !a.starts_with("--"));
    let started = std::time::Instant::now();
    let mut rec = RecordingCollector::new();

    println!("(a) offline solver: cold rebuild vs warm retained residual network\n");
    let mut t = Table::new(&[
        "family",
        "n",
        "cold (ms)",
        "cold aug",
        "warm (ms)",
        "warm aug",
        "aug saved",
        "rounds warm",
        "drains",
        "phases equal",
    ]);
    let mut total_cold_aug = 0u64;
    let mut total_warm_aug = 0u64;
    let families: &[Family] = if smoke {
        &[Family::Uniform, Family::Bursty]
    } else {
        &[Family::Uniform, Family::Bursty, Family::Laminar]
    };
    let offline_sizes: &[usize] = if smoke { &[40, 80] } else { &[40, 80, 160] };
    for &family in families {
        for &n in offline_sizes {
            let instance = WorkloadSpec {
                family,
                n,
                m: 4,
                horizon: 2 * n as u64,
                seed: 13,
            }
            .generate();
            let mut cold_rec = RecordingCollector::new();
            let cold_opts = OfflineOptions {
                warm_start: false,
                ..Default::default()
            };
            let (cold, cold_ms) =
                timed(|| optimal_schedule_observed(&instance, &cold_opts, &mut cold_rec).unwrap());
            let mut warm_rec = RecordingCollector::new();
            let warm_opts = OfflineOptions::default();
            let (warm, warm_ms) =
                timed(|| optimal_schedule_observed(&instance, &warm_opts, &mut warm_rec).unwrap());
            let ctx = format!("{}/{n}", family.name());
            assert_same_phases(&warm, &cold, &ctx);

            let cold_aug = cold_rec.counter("maxflow.dinic.augmenting_paths");
            let warm_aug = warm_rec.counter("maxflow.dinic.augmenting_paths");
            total_cold_aug += cold_aug;
            total_warm_aug += warm_aug;
            rec.count("exp.cold.augmenting_paths", cold_aug);
            rec.count("exp.warm.augmenting_paths", warm_aug);
            rec.count(
                "maxflow.warm.reused_flow",
                warm_rec.counter("maxflow.warm.reused_flow"),
            );
            rec.count(
                "maxflow.warm.drained",
                warm_rec.counter("maxflow.warm.drained"),
            );
            rec.count(
                "offline.cold_rounds_avoided",
                warm_rec.counter("offline.cold_rounds_avoided"),
            );
            t.row(vec![
                family.name().to_string(),
                n.to_string(),
                format!("{cold_ms:.3}"),
                cold_aug.to_string(),
                format!("{warm_ms:.3}"),
                warm_aug.to_string(),
                format!("{}", cold_aug as i64 - warm_aug as i64),
                warm_rec.counter("offline.cold_rounds_avoided").to_string(),
                warm_rec.counter("maxflow.warm.drained").to_string(),
                "✓".into(),
            ]);
        }
    }
    t.print();
    assert!(
        total_warm_aug < total_cold_aug,
        "warm start should reduce total augmenting paths: warm {total_warm_aug} vs cold {total_cold_aug}"
    );
    println!(
        "\ntotal Dinic augmenting paths: cold {total_cold_aug}, warm {total_warm_aug} \
         ({:.1}% saved)\n",
        100.0 * (total_cold_aug - total_warm_aug) as f64 / total_cold_aug.max(1) as f64
    );

    println!("(b) OA(m): cold replans vs replans seeded from the surviving flow\n");
    let mut t2 = Table::new(&[
        "n",
        "replans",
        "cold (ms)",
        "cold aug",
        "seeded (ms)",
        "seeded aug",
        "reseeded replans",
        "jobs seeded",
        "energy rel diff",
    ]);
    let oa_sizes: &[usize] = if smoke { &[25, 50] } else { &[25, 50, 100] };
    for &n in oa_sizes {
        let instance = WorkloadSpec {
            family: Family::Uniform,
            n,
            m: 4,
            horizon: 2 * n as u64,
            seed: 13,
        }
        .generate();
        let mut cold_rec = RecordingCollector::new();
        let cold_opts = OaOptions {
            offline: OfflineOptions {
                warm_start: false,
                ..Default::default()
            },
            reseed: false,
        };
        let (cold, cold_ms) =
            timed(|| oa_schedule_observed_with(&instance, &cold_opts, &mut cold_rec).unwrap());
        let mut warm_rec = RecordingCollector::new();
        let warm_opts = OaOptions::default();
        let (warm, warm_ms) =
            timed(|| oa_schedule_observed_with(&instance, &warm_opts, &mut warm_rec).unwrap());
        assert_eq!(cold.replans, warm.replans, "OA n={n}: replans");
        // Each replan's *phases* are bit-identical for identical
        // sub-instances, but the committed packing is only unique up to the
        // chosen max flow, so remaining volumes (and hence energies) drift
        // slightly across replans. Both runs are legitimate OA schedules;
        // we pin feasibility and bound the drift.
        mpss_core::validate::validate_schedule(&instance, &cold.schedule, 1e-6).unwrap();
        mpss_core::validate::validate_schedule(&instance, &warm.schedule, 1e-6).unwrap();
        let p = mpss_core::power::Polynomial::new(2.0);
        let e_cold = mpss_core::energy::schedule_energy(&cold.schedule, &p);
        let e_warm = mpss_core::energy::schedule_energy(&warm.schedule, &p);
        let rel = (e_cold - e_warm).abs() / e_cold.max(1e-12);
        assert!(rel <= 1e-3, "OA n={n}: energy diverged ({rel:.2e})");
        rec.count("oa.reseed.replans", warm_rec.counter("oa.reseed.replans"));
        rec.count("oa.reseed.jobs", warm_rec.counter("oa.reseed.jobs"));
        t2.row(vec![
            n.to_string(),
            cold.replans.to_string(),
            format!("{cold_ms:.3}"),
            cold_rec
                .counter("maxflow.dinic.augmenting_paths")
                .to_string(),
            format!("{warm_ms:.3}"),
            warm_rec
                .counter("maxflow.dinic.augmenting_paths")
                .to_string(),
            warm_rec.counter("oa.reseed.replans").to_string(),
            warm_rec.counter("oa.reseed.jobs").to_string(),
            format!("{rel:.2e}"),
        ]);
    }
    t2.print();
    println!(
        "\nwarm start is a pure work optimisation: offline phase structures are\n\
         bit-identical on every row, and OA energies stay within the flow-choice\n\
         drift bound while the retained residual network absorbs the repair\n\
         rounds' augmentation work."
    );

    if let Some(out) = out {
        write_experiment_report(
            Path::new(out),
            "warmstart_ablation",
            &[("offline_warm_vs_cold", &t), ("oa_reseed", &t2)],
            Some(&rec),
        )
        .expect("writing experiment report");
        println!("\nexperiment JSON written to {out}");
    }
    if smoke {
        let bench = Path::new("BENCH_TRAJECTORY.json");
        record_bench_snapshot(
            bench,
            "warmstart_ablation_smoke",
            started.elapsed().as_secs_f64() * 1e3,
            &[
                ("exp.cold.augmenting_paths", total_cold_aug),
                ("exp.warm.augmenting_paths", total_warm_aug),
                (
                    "offline.cold_rounds_avoided",
                    rec.counter("offline.cold_rounds_avoided"),
                ),
                ("maxflow.warm.drained", rec.counter("maxflow.warm.drained")),
            ],
        )
        .expect("writing bench snapshot");
        println!("bench snapshot recorded in {}", bench.display());
    }
}
