//! `thm2-oa-ratio`: Theorem 2 as a measured table. Sweeps α × m × workload
//! family × seeds and reports the worst and mean measured competitive ratio
//! of OA(m) next to the theorem's bound `α^α`.
//!
//! Run: `cargo run -p mpss-bench --release --bin exp_thm2_oa_ratio`

use mpss_bench::{parallel_map, stats, Table};
use mpss_core::energy::schedule_energy;
use mpss_core::power::Polynomial;
use mpss_offline::optimal_schedule;
use mpss_online::oa_schedule;
use mpss_workloads::{Family, WorkloadSpec};

const SEEDS: u64 = 5;

fn main() {
    let alphas = [1.5, 2.0, 2.5, 3.0];
    let ms = [1usize, 2, 4, 8];

    println!("Theorem 2 — OA(m) competitive ratio vs bound α^α");
    println!(
        "sweep: {} families × {SEEDS} seeds per cell, n = 10, horizon 24\n",
        Family::ALL.len()
    );

    let mut t = Table::new(&[
        "alpha",
        "m",
        "mean ratio",
        "max ratio",
        "bound α^α",
        "within",
    ]);
    let mut worst_overall: f64 = 0.0;
    for &alpha in &alphas {
        let p = Polynomial::new(alpha);
        for &m in &ms {
            let cases: Vec<(Family, u64)> = Family::ALL
                .iter()
                .flat_map(|&f| (0..SEEDS).map(move |s| (f, s)))
                .collect();
            let ratios = parallel_map(cases, |(family, seed)| {
                let instance = WorkloadSpec {
                    family,
                    n: 10,
                    m,
                    horizon: 24,
                    seed,
                }
                .generate();
                let e_opt = schedule_energy(&optimal_schedule(&instance).unwrap().schedule, &p);
                let e_oa = schedule_energy(&oa_schedule(&instance).unwrap().schedule, &p);
                e_oa / e_opt
            });
            let s = stats(&ratios);
            worst_overall = worst_overall.max(s.max);
            let within = s.max <= p.oa_bound() * (1.0 + 1e-9);
            t.row(vec![
                format!("{alpha}"),
                format!("{m}"),
                format!("{:.4}", s.mean),
                format!("{:.4}", s.max),
                format!("{:.3}", p.oa_bound()),
                if within { "✓".into() } else { "✗".into() },
            ]);
            assert!(within, "α = {alpha}, m = {m}: ratio {} > α^α", s.max);
        }
    }
    t.print();
    println!(
        "\nshape check (matches the theory): every measured ratio ≤ α^α; the bound is\n\
         loose on random workloads — the worst measured ratio across the sweep is {worst_overall:.4}.\n\
         ALL CELLS WITHIN BOUND ✓"
    );
}
