//! `potential-audit`: Theorem 2's proof replayed numerically. Along real
//! OA(m) runs, evaluates the paper's potential function Φ(t) and checks the
//! integrated drift inequality
//!
//! ```text
//! E_OA(0..t) − α^α·E_OPT(0..t) + Φ(t) ≤ 0   for all t
//! ```
//!
//! on a dense grid, per workload family.
//!
//! Run: `cargo run -p mpss-bench --release --bin exp_potential_audit`

use mpss_bench::{parallel_map, Table};
use mpss_online::audit_oa_potential;
use mpss_workloads::{Family, WorkloadSpec};

fn main() {
    println!("Potential-function audit of Theorem 2's proof (n = 8, m = 2, 128 samples)\n");
    let mut t = Table::new(&[
        "family",
        "alpha",
        "max drift (must be ≤ 0)",
        "min drift",
        "holds",
    ]);
    let mut all_ok = true;
    for family in Family::ALL {
        let rows = parallel_map(vec![2.0f64, 3.0], |alpha| {
            let horizon = if family == Family::AvrAdversarial {
                1024
            } else {
                20
            };
            let instance = WorkloadSpec {
                family,
                n: 8,
                m: 2,
                horizon,
                seed: 12,
            }
            .generate();
            let audit = audit_oa_potential(&instance, alpha, 128);
            let min = audit.drift.iter().copied().fold(f64::INFINITY, f64::min);
            (alpha, audit.max_violation, min, audit.holds(1e-6))
        });
        for (alpha, max_v, min_d, ok) in rows {
            all_ok &= ok;
            t.row(vec![
                family.name().to_string(),
                format!("{alpha}"),
                format!("{:.3e}", max_v),
                format!("{min_d:.3}"),
                if ok { "✓".into() } else { "✗".into() },
            ]);
        }
    }
    t.print();
    println!(
        "\nshape check: the drift stays non-positive along every run — the potential\n\
         banks exactly enough headroom before each arrival to pay for OA's later\n\
         regret, which is the mechanism of the α^α proof. {}",
        if all_ok {
            "ALL AUDITS PASS ✓"
        } else {
            "AUDIT FAILURES ✗"
        }
    );
    assert!(all_ok);
}
