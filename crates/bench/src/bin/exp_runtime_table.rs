//! `thm1-runtime`: Theorem 1's "polynomial time" claim as a measured
//! scaling table — wall-clock and flow-computation counts of the offline
//! algorithm as n and m grow, with the observed growth exponent.
//!
//! Run: `cargo run -p mpss-bench --release --bin exp_runtime_table`

use mpss_bench::{timed, Table};
use mpss_offline::optimal_schedule;
use mpss_workloads::{Family, WorkloadSpec};

fn main() {
    println!("Offline algorithm runtime scaling (uniform family, horizon = 2n)\n");
    let mut t = Table::new(&[
        "n",
        "m",
        "time (ms)",
        "flow comps",
        "phases",
        "ms growth vs prev n",
    ]);
    for &m in &[2usize, 8, 32] {
        let mut prev: Option<f64> = None;
        for &n in &[25usize, 50, 100, 200, 400] {
            let instance = WorkloadSpec {
                family: Family::Uniform,
                n,
                m,
                horizon: 2 * n as u64,
                seed: 3,
            }
            .generate();
            let (res, ms) = timed(|| optimal_schedule(&instance).unwrap());
            let growth = prev
                .map(|p| format!("{:.2}×", ms / p))
                .unwrap_or_else(|| "-".to_string());
            prev = Some(ms);
            t.row(vec![
                n.to_string(),
                m.to_string(),
                format!("{ms:.1}"),
                res.flow_computations.to_string(),
                res.phases.len().to_string(),
                growth,
            ]);
        }
    }
    t.print();
    println!(
        "\nshape check: doubling n multiplies the time by a bounded constant (~5–15×,\n\
         i.e. a low-degree polynomial — the combinatorial bound is O(n²) flow\n\
         computations, each itself polynomial), never anything super-polynomial.\n\
         Larger m *increases* the number of phases (with more processors fewer jobs\n\
         are forced to share a speed level, so more distinct levels survive), which\n\
         is why the m = 32 sweep is the slowest despite identical job counts."
    );
}
