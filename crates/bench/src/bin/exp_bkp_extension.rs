//! `bkp-extension`: the paper's conclusion notes that BKP (Bansal–Kimbrel–
//! Pruhs) beats Optimal Available for large α on one processor and poses
//! its multi-processor extension as an open problem. This experiment
//! compares the three online strategies at m = 1 across α.
//!
//! Run: `cargo run -p mpss-bench --release --bin exp_bkp_extension`

use mpss_bench::{parallel_map, stats, Table};
use mpss_core::energy::schedule_energy;
use mpss_core::power::Polynomial;
use mpss_offline::optimal_schedule;
use mpss_online::{avr_schedule, bkp_schedule, oa_schedule};
use mpss_workloads::{Family, WorkloadSpec};

const SEEDS: u64 = 5;

fn main() {
    println!("Online strategies at m = 1 (BKP is single-processor; its m > 1 extension");
    println!("is the paper's open problem). n = 8, families × {SEEDS} seeds per cell.\n");

    let mut t = Table::new(&[
        "alpha",
        "OA/OPT (mean)",
        "AVR/OPT (mean)",
        "BKP/OPT (mean)",
        "OA bound",
        "AVR bound",
        "BKP bound",
    ]);
    for alpha in [1.5f64, 2.0, 2.5, 3.0] {
        let p = Polynomial::new(alpha);
        let cases: Vec<(Family, u64)> = [Family::Uniform, Family::Bursty, Family::Laminar]
            .iter()
            .flat_map(|&f| (0..SEEDS).map(move |s| (f, s)))
            .collect();
        let results = parallel_map(cases, |(family, seed)| {
            let instance = WorkloadSpec {
                family,
                n: 8,
                m: 1,
                horizon: 20,
                seed,
            }
            .generate();
            let e_opt = schedule_energy(&optimal_schedule(&instance).unwrap().schedule, &p);
            let e_oa = schedule_energy(&oa_schedule(&instance).unwrap().schedule, &p);
            let e_avr = schedule_energy(&avr_schedule(&instance), &p);
            let e_bkp = schedule_energy(&bkp_schedule(&instance, 96).schedule, &p);
            (e_oa / e_opt, e_avr / e_opt, e_bkp / e_opt)
        });
        let oa = stats(&results.iter().map(|r| r.0).collect::<Vec<_>>());
        let avr = stats(&results.iter().map(|r| r.1).collect::<Vec<_>>());
        let bkp = stats(&results.iter().map(|r| r.2).collect::<Vec<_>>());
        let bkp_bound = 2.0 * (alpha / (alpha - 1.0)).powf(alpha) * std::f64::consts::E.powf(alpha);
        t.row(vec![
            format!("{alpha}"),
            format!("{:.4}", oa.mean),
            format!("{:.4}", avr.mean),
            format!("{:.4}", bkp.mean),
            format!("{:.2}", p.oa_bound()),
            format!("{:.2}", p.avr_bound()),
            format!("{:.2}", bkp_bound),
        ]);
    }
    t.print();
    println!(
        "\nshape check: on typical loads OA tracks OPT closest (it *replans optimally*),\n\
         BKP pays its deliberate e-factor speed padding, AVR sits between — consistent\n\
         with the guarantees' ordering at small α (α^α < 2(α/(α−1))^α e^α there); BKP's\n\
         advantage over OA is asymptotic in α and adversarial, not average-case."
    );
}
