//! `par-scaling`: how do the three parallel hot paths scale with the worker
//! pool, and do they stay bit-identical to their sequential oracles?
//!
//! Three sections, one per `mpss-par` integration:
//!
//! * **(a) parallel AVR(m)** — per-interval peel + McNaughton chunked over
//!   the pool vs the sequential loop; segments must be bit-identical at
//!   every thread count.
//! * **(b) engine-portfolio racing** — every offline max-flow probe runs
//!   Dinic vs push–relabel concurrently, keeping the first finisher;
//!   phases/speeds/energy must match the solo-Dinic solve, and the win
//!   split shows which engine actually serves the probes.
//! * **(c) batched solves** — `mpss::batch::solve_many` sharding a
//!   directory-sized batch of independent instances.
//!
//! Speedups are *per machine*: a single-core container runs everything at
//! ~1.0×, which is exactly what the table should say there — the
//! correctness assertions (bit-identity, phase equality) are the portable
//! part of this experiment, wall clock is not.
//!
//! Run: `cargo run -p mpss-bench --release --bin exp_par_scaling`
//! `--smoke` shrinks every size for CI and appends a snapshot (wall time +
//! key counters, stamped with the git revision) to the cumulative
//! `BENCH_TRAJECTORY.json` in the working directory — gate it with
//! `mpss-cli report-diff --bench`; a path argument writes the tables as an
//! experiment JSON document.

use mpss::batch::solve_many;
use mpss_bench::{record_bench_snapshot, timed, write_experiment_report, Table};
use mpss_core::energy::schedule_energy;
use mpss_core::power::Polynomial;
use mpss_obs::{Collector, RecordingCollector};
use mpss_offline::{optimal_schedule_observed, optimal_schedule_with, OfflineOptions};
use mpss_online::{avr_schedule, avr_schedule_parallel};
use mpss_par::ThreadPool;
use mpss_workloads::{Family, WorkloadSpec};
use std::path::Path;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args.iter().find(|a| !a.starts_with("--"));
    let started = std::time::Instant::now();
    let mut rec = RecordingCollector::new();
    let threads_available = std::thread::available_parallelism()
        .map(|t| t.get())
        .unwrap_or(1);
    println!(
        "machine: {threads_available} hardware threads available \
         (speedup columns are machine-relative)\n"
    );
    let thread_counts = [1usize, 2, 4, 8];

    println!("(a) parallel AVR(m): per-interval work chunked over the pool\n");
    let avr_n = if smoke { 200 } else { 4000 };
    let instance = WorkloadSpec {
        family: Family::Uniform,
        n: avr_n,
        m: 8,
        horizon: 2 * avr_n as u64,
        seed: 11,
    }
    .generate();
    let (seq, seq_ms) = timed(|| avr_schedule(&instance));
    let mut t_avr = Table::new(&["threads", "ms", "speedup", "bit-identical"]);
    t_avr.row(vec![
        "seq".into(),
        format!("{seq_ms:.2}"),
        "1.00".into(),
        "—".into(),
    ]);
    for threads in thread_counts {
        let pool = ThreadPool::new(threads);
        let (par, ms) = timed(|| avr_schedule_parallel(&instance, &pool));
        assert_eq!(
            seq.segments, par.segments,
            "parallel AVR diverged at {threads} threads"
        );
        t_avr.row(vec![
            threads.to_string(),
            format!("{ms:.2}"),
            format!("{:.2}", seq_ms / ms.max(1e-9)),
            "✓".into(),
        ]);
    }
    t_avr.print();

    println!("\n(b) engine-portfolio racing: Dinic vs push–relabel per probe\n");
    let mut t_race = Table::new(&[
        "family",
        "n",
        "solo (ms)",
        "raced (ms)",
        "dinic wins",
        "pr wins",
        "phases equal",
    ]);
    let race_sizes: &[usize] = if smoke { &[20] } else { &[40, 80, 160] };
    for family in [Family::Uniform, Family::Bursty] {
        for &n in race_sizes {
            let instance = WorkloadSpec {
                family,
                n,
                m: 4,
                horizon: 2 * n as u64,
                seed: 13,
            }
            .generate();
            let (solo, solo_ms) =
                timed(|| optimal_schedule_with(&instance, &OfflineOptions::default()).unwrap());
            let mut race_rec = RecordingCollector::new();
            let race_opts = OfflineOptions {
                race_engines: true,
                ..Default::default()
            };
            let (raced, race_ms) =
                timed(|| optimal_schedule_observed(&instance, &race_opts, &mut race_rec).unwrap());
            assert_eq!(solo.phases.len(), raced.phases.len());
            for (a, b) in solo.phases.iter().zip(&raced.phases) {
                assert_eq!(a.speed.to_bits(), b.speed.to_bits(), "speed under racing");
                assert_eq!(a.jobs, b.jobs, "job partition under racing");
            }
            let p = Polynomial::new(3.0);
            let (e_solo, e_race) = (
                schedule_energy(&solo.schedule, &p),
                schedule_energy(&raced.schedule, &p),
            );
            assert!(
                (e_solo - e_race).abs() <= 1e-9 * e_solo.max(1.0),
                "energy diverged under racing: {e_solo} vs {e_race}"
            );
            let (dw, pw) = (
                race_rec.counter("par.race.dinic_wins"),
                race_rec.counter("par.race.pr_wins"),
            );
            assert_eq!(dw + pw, raced.flow_computations as u64);
            rec.count("par.race.dinic_wins", dw);
            rec.count("par.race.pr_wins", pw);
            t_race.row(vec![
                family.name().to_string(),
                n.to_string(),
                format!("{solo_ms:.2}"),
                format!("{race_ms:.2}"),
                dw.to_string(),
                pw.to_string(),
                "✓".into(),
            ]);
        }
    }
    t_race.print();

    println!("\n(c) batched solves: independent instances sharded over the pool\n");
    let batch_size = if smoke { 4 } else { 16 };
    let batch_n = if smoke { 16 } else { 60 };
    let batch: Vec<_> = (0..batch_size)
        .map(|k| {
            WorkloadSpec {
                family: Family::ALL[k % Family::ALL.len()],
                n: batch_n,
                m: 4,
                horizon: 2 * batch_n as u64,
                seed: 100 + k as u64,
            }
            .generate()
        })
        .collect();
    let opts = OfflineOptions::default();
    let baseline = solve_many(&batch, &opts, &ThreadPool::new(1));
    let base_ms = {
        let (_, ms) = timed(|| solve_many(&batch, &opts, &ThreadPool::new(1)));
        ms
    };
    let mut t_batch = Table::new(&["threads", "ms", "speedup", "outputs equal"]);
    t_batch.row(vec![
        "1".into(),
        format!("{base_ms:.2}"),
        "1.00".into(),
        "—".into(),
    ]);
    for threads in thread_counts.iter().skip(1) {
        let (outputs, ms) = timed(|| solve_many(&batch, &opts, &ThreadPool::new(*threads)));
        for (a, b) in baseline.iter().zip(&outputs) {
            let (ra, rb) = (a.result.as_ref().unwrap(), b.result.as_ref().unwrap());
            assert_eq!(
                ra.schedule.segments, rb.schedule.segments,
                "batched solve diverged at {threads} threads"
            );
        }
        rec.count("par.tasks", batch.len() as u64);
        t_batch.row(vec![
            threads.to_string(),
            format!("{ms:.2}"),
            format!("{:.2}", base_ms / ms.max(1e-9)),
            "✓".into(),
        ]);
    }
    t_batch.print();
    println!(
        "\nall three parallel paths reproduced their sequential oracles exactly;\n\
         speedups above are for this machine's {threads_available} hardware thread(s)."
    );

    if let Some(out) = out {
        write_experiment_report(
            Path::new(out),
            "par_scaling",
            &[
                ("avr_parallel", &t_avr),
                ("engine_racing", &t_race),
                ("batched_solves", &t_batch),
            ],
            Some(&rec),
        )
        .expect("writing experiment report");
        println!("\nexperiment JSON written to {out}");
    }
    if smoke {
        let bench = Path::new("BENCH_TRAJECTORY.json");
        record_bench_snapshot(
            bench,
            "par_scaling_smoke",
            started.elapsed().as_secs_f64() * 1e3,
            &[
                ("par.tasks", rec.counter("par.tasks")),
                ("par.race.dinic_wins", rec.counter("par.race.dinic_wins")),
                ("par.race.pr_wins", rec.counter("par.race.pr_wins")),
            ],
        )
        .expect("writing bench snapshot");
        println!("bench snapshot recorded in {}", bench.display());
    }
}
