//! `fig2-trace`: executes the paper's Fig. 2 algorithm on a small instance
//! with full per-round tracing — the runnable counterpart of the pseudocode
//! listing (phases, candidate sets, conjectured speeds, flow values, job
//! removals).
//!
//! Run: `cargo run -p mpss-bench --release --bin exp_fig2_trace`

use mpss_bench::Table;
use mpss_core::job::job;
use mpss_core::Instance;
use mpss_offline::optimal::{optimal_schedule_with, OfflineOptions};

fn main() {
    // A three-level instance on two processors: one frantic job, a tight
    // pair, and two relaxed stragglers.
    let instance = Instance::new(
        2,
        vec![
            job(0.0, 1.0, 6.0), // J0: density 6 — top speed level
            job(0.0, 2.0, 3.0), // J1
            job(0.0, 2.0, 3.0), // J2
            job(0.0, 6.0, 2.0), // J3
            job(2.0, 8.0, 2.0), // J4
        ],
    )
    .expect("valid instance");

    let opts = OfflineOptions {
        record_trace: true,
        ..Default::default()
    };
    let res = optimal_schedule_with(&instance, &opts).expect("optimal schedule");

    println!(
        "Fig. 2 execution trace (n = {}, m = {}):\n",
        instance.n(),
        instance.m
    );
    let mut t = Table::new(&[
        "phase",
        "round |J|",
        "speed s=W/P",
        "flow F",
        "target F_G",
        "action",
    ]);
    for r in &res.trace {
        let action = match r.removed {
            Some(k) => format!("remove J{k}"),
            None => "accept: J_i found".to_string(),
        };
        t.row(vec![
            format!("{}", r.phase),
            format!("{}", r.candidate_size),
            format!("{:.4}", r.speed),
            format!("{:.4}", r.flow),
            format!("{:.4}", r.target),
            action,
        ]);
    }
    t.print();

    println!("\nResulting speed-level partition (s_1 > s_2 > … > s_p):");
    for (i, phase) in res.phases.iter().enumerate() {
        println!(
            "  J_{} = {:?} at speed {:.4}, occupying {:?} processors per interval",
            i + 1,
            phase.jobs,
            phase.speed,
            phase.procs
        );
    }
    println!("\ntotal max-flow computations: {}", res.flow_computations);

    println!("\nFinal schedule:");
    for seg in &res.schedule.segments {
        println!(
            "  proc {}  J{}  [{:.3}, {:.3})  speed {:.3}",
            seg.proc, seg.job, seg.start, seg.end, seg.speed
        );
    }
    mpss_core::validate::assert_feasible(&instance, &res.schedule, 1e-9);
    println!("\nschedule validated feasible ✓");
}
