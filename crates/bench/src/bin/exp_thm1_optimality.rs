//! `thm1-optimality`: Theorem 1 as a measured table. For a sweep of
//! workload families and machine sizes, the combinatorial algorithm's
//! energy is sandwiched by independent oracles:
//!
//! ```text
//! max(lower bounds)  ≤  OPT(flow)  ≤  LP baseline  ≤  non-migratory
//! ```
//!
//! plus bit-exactness against the rational pipeline and equality with YDS
//! at m = 1.
//!
//! Run: `cargo run -p mpss-bench --release --bin exp_thm1_optimality`

use mpss_bench::{parallel_map, Table};
use mpss_core::energy::{schedule_energy, schedule_energy_exact, schedule_energy_poly};
use mpss_core::power::Polynomial;
use mpss_core::validate::validate_schedule;
use mpss_offline::lower_bounds::best_lower_bound;
use mpss_offline::lp_baseline::lp_baseline;
use mpss_offline::non_migratory::{non_migratory_schedule, AssignPolicy};
use mpss_offline::{optimal_schedule, yds_schedule};
use mpss_workloads::{Family, WorkloadSpec};

struct Row {
    family: &'static str,
    m: usize,
    lb: f64,
    opt: f64,
    lp: f64,
    nm: f64,
    exact_dev: f64,
    ok: bool,
}

fn main() {
    let alpha = 2.0;
    let p = Polynomial::new(alpha);
    let mut cases = Vec::new();
    for family in Family::ALL {
        for m in [1usize, 2, 4] {
            cases.push((family, m));
        }
    }

    let rows = parallel_map(cases, |(family, m)| {
        let spec = WorkloadSpec {
            family,
            n: 8,
            m,
            horizon: 16,
            seed: 42,
        };
        let instance = spec.generate();
        let res = optimal_schedule(&instance).expect("optimal");
        let feasible = validate_schedule(&instance, &res.schedule, 1e-9).is_ok();
        let opt = schedule_energy(&res.schedule, &p);
        let lb = best_lower_bound(&instance, alpha);
        let lp = lp_baseline(&instance, &p, 24).expect("lp").energy;
        let nm = schedule_energy(
            &non_migratory_schedule(&instance, alpha, AssignPolicy::GreedyEnergy).schedule,
            &p,
        );
        // Exact-pipeline agreement.
        let exact = optimal_schedule(&instance.to_rational()).expect("exact");
        let exact_e = schedule_energy_exact(&exact.schedule, 2).to_f64();
        let float_e = schedule_energy_poly(&res.schedule, 2);
        let exact_dev = (exact_e - float_e).abs() / exact_e.max(1.0);
        // m = 1 cross-check against YDS.
        let yds_ok = if m == 1 {
            let e_yds = schedule_energy(&yds_schedule(&instance).schedule, &p);
            (e_yds - opt).abs() <= 1e-6 * opt.max(1.0)
        } else {
            true
        };
        let ok = feasible
            && yds_ok
            && lb <= opt * (1.0 + 1e-6)
            && opt <= lp * (1.0 + 1e-6)
            && opt <= nm * (1.0 + 1e-6)
            && exact_dev < 1e-6;
        Row {
            family: family.name(),
            m,
            lb,
            opt,
            lp,
            nm,
            exact_dev,
            ok,
        }
    });

    println!("Theorem 1 — optimality sandwich, α = {alpha}, n = 8, seed 42\n");
    let mut t = Table::new(&[
        "family",
        "m",
        "lower bnd",
        "OPT(flow)",
        "LP(K=24)",
        "non-migr",
        "exact dev",
        "verdict",
    ]);
    let mut all_ok = true;
    for r in rows {
        all_ok &= r.ok;
        t.row(vec![
            r.family.to_string(),
            r.m.to_string(),
            format!("{:.3}", r.lb),
            format!("{:.3}", r.opt),
            format!("{:.3}", r.lp),
            format!("{:.3}", r.nm),
            format!("{:.1e}", r.exact_dev),
            if r.ok {
                "✓".into()
            } else {
                "✗ VIOLATION".into()
            },
        ]);
    }
    t.print();
    println!(
        "\ninvariants checked per row: feasibility; LB ≤ OPT ≤ LP ≤/≈ non-migratory;\n\
         float-vs-rational deviation; YDS equality at m = 1."
    );
    println!(
        "\noverall: {}",
        if all_ok {
            "ALL ROWS PASS ✓"
        } else {
            "VIOLATIONS FOUND ✗"
        }
    );
    assert!(all_ok);
}
