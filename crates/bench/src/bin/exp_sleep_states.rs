//! `sleep-states`: the power-down extension the paper's conclusion poses
//! as future work (Irani–Shukla–Gupta model: static power while awake,
//! wake-up energy per sleep→on transition). Sweeps the wake cost and shows
//! the crossover between never-sleeping and threshold sleeping on an
//! optimal multi-processor schedule.
//!
//! Run: `cargo run -p mpss-bench --release --bin exp_sleep_states`

use mpss_bench::Table;
use mpss_core::power::Polynomial;
use mpss_offline::optimal_schedule;
use mpss_offline::sleep::{sleep_energy, IdlePolicy};
use mpss_workloads::{Family, WorkloadSpec};

fn main() {
    let alpha = 3.0;
    let p = Polynomial::new(alpha);
    let instance = WorkloadSpec {
        family: Family::Bursty,
        n: 16,
        m: 4,
        horizon: 48,
        seed: 4,
    }
    .generate();
    let schedule = optimal_schedule(&instance).unwrap().schedule;
    let horizon = 48.0;
    let static_power = 0.5;

    println!(
        "Sleep-state layer on an optimal schedule (n = 16, m = 4, static power {static_power},\n\
         α = {alpha}; energies include dynamic + static + wake-up):\n"
    );
    let mut t = Table::new(&[
        "wake cost γ",
        "threshold γ/σ",
        "never-sleep",
        "always-sleep",
        "threshold",
        "wakeups",
        "best",
    ]);
    for wake in [0.1f64, 0.5, 1.0, 2.0, 5.0, 10.0] {
        let never = sleep_energy(
            &schedule,
            &p,
            static_power,
            wake,
            0.0,
            horizon,
            IdlePolicy::NeverSleep,
        );
        let always = sleep_energy(
            &schedule,
            &p,
            static_power,
            wake,
            0.0,
            horizon,
            IdlePolicy::AlwaysSleep,
        );
        let thr = sleep_energy(
            &schedule,
            &p,
            static_power,
            wake,
            0.0,
            horizon,
            IdlePolicy::Threshold,
        );
        let best = never.total().min(always.total());
        assert!(thr.total() <= best + 1e-9, "threshold policy must dominate");
        let winner = if (thr.total() - never.total()).abs() < 1e-9 {
            "≈never"
        } else if (thr.total() - always.total()).abs() < 1e-9 {
            "≈always"
        } else {
            "threshold"
        };
        t.row(vec![
            format!("{wake}"),
            format!("{:.1}", wake / static_power),
            format!("{:.3}", never.total()),
            format!("{:.3}", always.total()),
            format!("{:.3}", thr.total()),
            thr.num_wakeups.to_string(),
            winner.to_string(),
        ]);
    }
    t.print();
    println!(
        "\nshape check: cheap wake-ups ⇒ threshold ≈ always-sleep; expensive wake-ups ⇒\n\
         threshold ≈ never-sleep; in between it strictly beats both (per-gap ski rental).\n\
         This is the combined speed-scaling + power-down regime the paper's conclusion\n\
         flags as the open multiprocessor question."
    );
}
