//! `fig3-trace`: executes the paper's Fig. 3 algorithm — AVR(m) — on a
//! small instance, printing the per-interval peel/share decisions that the
//! pseudocode describes.
//!
//! Run: `cargo run -p mpss-bench --release --bin exp_fig3_trace`

use mpss_bench::Table;
use mpss_core::job::job;
use mpss_core::{Instance, Intervals};
use mpss_online::avr_schedule;

fn main() {
    let instance = Instance::new(
        2,
        vec![
            job(0.0, 1.0, 4.0), // density 4 — gets peeled while active
            job(0.0, 4.0, 4.0), // density 1
            job(0.0, 4.0, 2.0), // density 1/2
            job(2.0, 4.0, 3.0), // density 3/2, arrives mid-stream
        ],
    )
    .expect("valid instance");

    let intervals = Intervals::from_instance(&instance);
    println!("AVR(2) per-interval decisions (δ_i = w_i/(d_i − r_i)):\n");
    let mut t = Table::new(&["interval", "active (job: δ)", "peeled", "s_Δ = Δ'/|M|"]);

    for j in 0..intervals.len() {
        let (a, b) = intervals.bounds(j);
        let mut active: Vec<(usize, f64)> = instance
            .jobs
            .iter()
            .enumerate()
            .filter(|(_, job)| job.active_in(a, b))
            .map(|(k, job)| (k, job.density()))
            .collect();
        active.sort_by(|x, y| y.1.partial_cmp(&x.1).unwrap());
        let mut total: f64 = active.iter().map(|x| x.1).sum();
        let mut m_left = instance.m;
        let mut peeled = Vec::new();
        let mut idx = 0;
        while idx < active.len() && m_left > 0 {
            let (k, d) = active[idx];
            if d <= total / m_left as f64 {
                break;
            }
            peeled.push(format!("J{k}@{d:.2}"));
            total -= d;
            m_left -= 1;
            idx += 1;
        }
        let shared = &active[idx..];
        let s_avg = if shared.is_empty() {
            0.0
        } else {
            total / m_left as f64
        };
        t.row(vec![
            format!("[{a:.0},{b:.0})"),
            active
                .iter()
                .map(|(k, d)| format!("J{k}:{d:.2}"))
                .collect::<Vec<_>>()
                .join(" "),
            if peeled.is_empty() {
                "-".into()
            } else {
                peeled.join(" ")
            },
            format!("{s_avg:.3}"),
        ]);
    }
    t.print();

    let schedule = avr_schedule(&instance);
    mpss_core::validate::assert_feasible(&instance, &schedule, 1e-9);
    println!("\nResulting AVR(2) schedule (validated feasible ✓):");
    for seg in &schedule.segments {
        println!(
            "  proc {}  J{}  [{:.3}, {:.3})  speed {:.3}",
            seg.proc, seg.job, seg.start, seg.end, seg.speed
        );
    }
    println!(
        "\ninvariant: at every instant, Σ_l s_l = Δ_t (total active density) — \
         checked by the unit tests; migrations used: {}",
        schedule.migrations()
    );
}
