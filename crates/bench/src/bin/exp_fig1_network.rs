//! `fig1-network`: regenerates the paper's Fig. 1 — the flow network
//! `G(J, m⃗, s)` — for a sample instance shaped like the figure (a job set
//! schedulable in a scattered subset of intervals), as Graphviz DOT plus a
//! structural summary.
//!
//! Run: `cargo run -p mpss-bench --release --bin exp_fig1_network [out.dot]`

use mpss_core::job::job;
use mpss_core::{Instance, Intervals};
use mpss_maxflow::dot::to_dot;
use mpss_maxflow::{decompose_flow, max_flow_dinic};
use mpss_offline::flow_model::FlowModel;

fn main() {
    // Ten jobs over twelve intervals; like Fig. 1, only a subset of jobs
    // (J1, J5, ..., J10) forms the candidate set and only some intervals
    // (I2, I3, I7, ..., I12) receive reserved processors.
    let instance = Instance::new(
        3,
        vec![
            job(1.0, 3.0, 4.0),  // J1  — active in I2, I3
            job(0.0, 1.0, 2.0),  // J2
            job(0.0, 2.0, 3.0),  // J3
            job(3.0, 6.0, 2.0),  // J4
            job(6.0, 8.0, 3.0),  // J5  — active in the late block
            job(6.0, 9.0, 2.0),  // J6
            job(7.0, 10.0, 4.0), // J7
            job(8.0, 11.0, 2.0), // J8
            job(9.0, 12.0, 3.0), // J9
            job(6.0, 12.0, 5.0), // J10
        ],
    )
    .expect("valid instance");
    let intervals = Intervals::from_instance(&instance);

    // The Fig. 1 candidate set: J1 plus the late jobs J5..J10.
    let candidate = vec![0usize, 4, 5, 6, 7, 8, 9];
    // Reserve per Lemma 3 with nothing used yet.
    let m_j: Vec<usize> = (0..intervals.len())
        .map(|j| {
            candidate
                .iter()
                .filter(|&&k| intervals.job_active(&instance.jobs[k], j))
                .count()
                .min(instance.m)
        })
        .collect();
    let total_w: f64 = candidate.iter().map(|&k| instance.jobs[k].volume).sum();
    let total_p: f64 = m_j
        .iter()
        .enumerate()
        .map(|(j, &mj)| mj as f64 * intervals.length(j))
        .sum();
    let speed = total_w / total_p;

    let mut fm = FlowModel::build(&instance, &intervals, &candidate, &m_j, speed);
    let flow = max_flow_dinic(&mut fm.net, fm.source, fm.sink);

    println!("G(J, m⃗, s) for the Fig. 1-shaped sample");
    println!("  candidate jobs      : {candidate:?}");
    println!("  intervals w/ vertex : {:?}", fm.intervals_used);
    println!("  conjectured speed s : {speed:.4}");
    println!("  flow target F_G     : {:.4}", fm.target);
    println!("  max-flow value      : {flow:.4}");
    println!(
        "  nodes = {} (1 source + {} jobs + {} intervals + 1 sink), edges = {}",
        fm.net.num_nodes(),
        fm.jobs.len(),
        fm.intervals_used.len(),
        fm.net.num_edges()
    );

    // Flow decomposition: each path reads "job k's processing time routes
    // into interval I_j".
    println!("\nflow decomposition (source → job → interval → sink):");
    for path in decompose_flow(&fm.net, fm.source, fm.sink) {
        if path.is_cycle || path.nodes.len() != 4 {
            continue;
        }
        let job_v = path.nodes[1] - 1;
        let iv_v = path.nodes[2] - 1 - fm.jobs.len();
        println!(
            "  J{} runs {:.3} time units in I{}",
            fm.jobs[job_v] + 1,
            path.amount,
            fm.intervals_used[iv_v] + 1
        );
    }

    let njobs = fm.jobs.len();
    let jobs = fm.jobs.clone();
    let ivs = fm.intervals_used.clone();
    let dot = to_dot(
        &fm.net,
        move |v| {
            if v == 0 {
                "u0".to_string()
            } else if v <= njobs {
                format!("J{}", jobs[v - 1] + 1)
            } else if v <= njobs + ivs.len() {
                format!("I{}", ivs[v - 1 - njobs] + 1)
            } else {
                "v0".to_string()
            }
        },
        move |v| {
            if v == 0 {
                Some("source")
            } else if v <= njobs {
                Some("jobs")
            } else {
                Some("intervals")
            }
        },
    );

    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "fig1_network.dot".to_string());
    std::fs::write(&out, &dot).expect("write dot file");
    println!("\nDOT written to {out} (render with `dot -Tpdf`):\n");
    println!("{dot}");
}
