//! Criterion bench: the LP baseline vs the combinatorial algorithm — the
//! quantitative form of the paper's "LP complexity too high" positioning.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpss_core::power::Polynomial;
use mpss_offline::lp_baseline::lp_baseline;
use mpss_offline::optimal_schedule;
use mpss_workloads::{Family, WorkloadSpec};

fn bench_lp_vs_flow(c: &mut Criterion) {
    let mut group = c.benchmark_group("lp_vs_combinatorial");
    group.sample_size(10);
    let p = Polynomial::new(2.0);
    for n in [4usize, 6, 8] {
        let instance = WorkloadSpec {
            family: Family::Uniform,
            n,
            m: 2,
            horizon: 2 * n as u64,
            seed: 1,
        }
        .generate();
        group.bench_with_input(BenchmarkId::new("flow", n), &instance, |b, ins| {
            b.iter(|| optimal_schedule(std::hint::black_box(ins)).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("lp_k12", n), &instance, |b, ins| {
            b.iter(|| lp_baseline(std::hint::black_box(ins), &p, 12).unwrap());
        });
    }
    group.finish();
}

fn bench_lp_by_menu(c: &mut Criterion) {
    let mut group = c.benchmark_group("lp_menu_size");
    group.sample_size(10);
    let p = Polynomial::new(2.0);
    let instance = WorkloadSpec {
        family: Family::Uniform,
        n: 6,
        m: 2,
        horizon: 12,
        seed: 9,
    }
    .generate();
    for k in [6usize, 12, 24] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| lp_baseline(std::hint::black_box(&instance), &p, k).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lp_vs_flow, bench_lp_by_menu);
criterion_main!(benches);
