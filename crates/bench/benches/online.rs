//! Criterion bench: the online algorithms — OA(m)'s replanning cost vs
//! AVR(m)'s per-interval balancing (Theorems 2–3's algorithms).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpss_online::{avr_schedule, oa_schedule};
use mpss_workloads::{Family, WorkloadSpec};

fn bench_oa(c: &mut Criterion) {
    let mut group = c.benchmark_group("online/oa");
    group.sample_size(10);
    for n in [20usize, 40, 80] {
        let instance = WorkloadSpec {
            family: Family::Bursty,
            n,
            m: 4,
            horizon: 2 * n as u64,
            seed: 5,
        }
        .generate();
        group.bench_with_input(BenchmarkId::from_parameter(n), &instance, |b, ins| {
            b.iter(|| oa_schedule(std::hint::black_box(ins)).unwrap());
        });
    }
    group.finish();
}

fn bench_avr(c: &mut Criterion) {
    let mut group = c.benchmark_group("online/avr");
    for n in [20usize, 40, 80, 160] {
        let instance = WorkloadSpec {
            family: Family::Bursty,
            n,
            m: 4,
            horizon: 2 * n as u64,
            seed: 5,
        }
        .generate();
        group.bench_with_input(BenchmarkId::from_parameter(n), &instance, |b, ins| {
            b.iter(|| avr_schedule(std::hint::black_box(ins)));
        });
    }
    group.finish();
}

fn bench_exact_mode(c: &mut Criterion) {
    let mut group = c.benchmark_group("online/exact_vs_float");
    group.sample_size(10);
    let instance = WorkloadSpec {
        family: Family::Bursty,
        n: 16,
        m: 2,
        horizon: 32,
        seed: 5,
    }
    .generate();
    group.bench_function("avr_f64", |b| {
        b.iter(|| avr_schedule(std::hint::black_box(&instance)));
    });
    let exact = instance.to_rational();
    group.bench_function("avr_rational", |b| {
        b.iter(|| avr_schedule(std::hint::black_box(&exact)));
    });
    group.bench_function("oa_f64", |b| {
        b.iter(|| oa_schedule(std::hint::black_box(&instance)).unwrap());
    });
    group.bench_function("oa_rational", |b| {
        b.iter(|| oa_schedule(std::hint::black_box(&exact)).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_oa, bench_avr, bench_exact_mode);
criterion_main!(benches);
