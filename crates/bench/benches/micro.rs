//! Micro-benchmarks of the hot substrate pieces: rational arithmetic (the
//! exact mode's cost), the schedule validator, and schedule normalization.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpss_core::validate::validate_schedule;
use mpss_numeric::Rational;
use mpss_offline::optimal_schedule;
use mpss_workloads::{Family, WorkloadSpec};

fn bench_rational_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro/rational");
    // Denominators from a small set (as in real instances, where they are
    // divisors of a few interval lengths) so the running lcm stays bounded.
    let xs: Vec<Rational> = (1..200i128)
        .map(|i| Rational::new(i, 1 + (i % 16)))
        .collect();
    group.bench_function("sum_200", |b| {
        b.iter(|| {
            let mut acc = Rational::ZERO;
            for &x in std::hint::black_box(&xs) {
                acc += x;
            }
            acc
        })
    });
    group.bench_function("mul_chain_200", |b| {
        b.iter(|| {
            let mut acc = Rational::ONE;
            for &x in std::hint::black_box(&xs) {
                acc = (acc * x / (x + Rational::ONE)).max(Rational::new(1, 720720));
            }
            acc
        })
    });
    group.finish();
}

fn bench_validator(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro/validator");
    for n in [50usize, 200] {
        let instance = WorkloadSpec {
            family: Family::Uniform,
            n,
            m: 4,
            horizon: 2 * n as u64,
            seed: 3,
        }
        .generate();
        let sched = optimal_schedule(&instance).unwrap().schedule;
        group.bench_with_input(
            BenchmarkId::from_parameter(n),
            &(instance, sched),
            |b, (i, s)| {
                b.iter(|| {
                    validate_schedule(std::hint::black_box(i), std::hint::black_box(s), 1e-9)
                });
            },
        );
    }
    group.finish();
}

fn bench_normalize(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro/normalize");
    let instance = WorkloadSpec {
        family: Family::Uniform,
        n: 200,
        m: 4,
        horizon: 400,
        seed: 3,
    }
    .generate();
    let sched = optimal_schedule(&instance).unwrap().schedule;
    group.bench_function("normalize_200_jobs", |b| {
        b.iter_batched(
            || sched.clone(),
            |mut s| {
                s.normalize();
                s
            },
            criterion::BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_rational_ops,
    bench_validator,
    bench_normalize
);
criterion_main!(benches);
