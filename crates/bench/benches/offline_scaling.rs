//! Criterion bench: offline optimal algorithm scaling in n and m
//! (the `thm1-runtime` experiment's statistical counterpart).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpss_offline::optimal_schedule;
use mpss_workloads::{Family, WorkloadSpec};

fn bench_offline_by_n(c: &mut Criterion) {
    let mut group = c.benchmark_group("offline/by_n");
    group.sample_size(10);
    for n in [25usize, 50, 100, 200] {
        let instance = WorkloadSpec {
            family: Family::Uniform,
            n,
            m: 4,
            horizon: 2 * n as u64,
            seed: 3,
        }
        .generate();
        group.bench_with_input(BenchmarkId::from_parameter(n), &instance, |b, ins| {
            b.iter(|| optimal_schedule(std::hint::black_box(ins)).unwrap());
        });
    }
    group.finish();
}

fn bench_offline_by_m(c: &mut Criterion) {
    let mut group = c.benchmark_group("offline/by_m");
    group.sample_size(10);
    for m in [1usize, 2, 4, 8, 16] {
        let instance = WorkloadSpec {
            family: Family::Uniform,
            n: 100,
            m,
            horizon: 200,
            seed: 3,
        }
        .generate();
        group.bench_with_input(BenchmarkId::from_parameter(m), &instance, |b, ins| {
            b.iter(|| optimal_schedule(std::hint::black_box(ins)).unwrap());
        });
    }
    group.finish();
}

fn bench_offline_by_family(c: &mut Criterion) {
    let mut group = c.benchmark_group("offline/by_family");
    group.sample_size(10);
    for family in Family::ALL {
        let instance = WorkloadSpec {
            family,
            n: 80,
            m: 4,
            horizon: 160,
            seed: 3,
        }
        .generate();
        group.bench_with_input(
            BenchmarkId::from_parameter(family.name()),
            &instance,
            |b, ins| {
                b.iter(|| optimal_schedule(std::hint::black_box(ins)).unwrap());
            },
        );
    }
    group.finish();
}

fn bench_exact_vs_float(c: &mut Criterion) {
    let mut group = c.benchmark_group("offline/numeric_mode");
    group.sample_size(10);
    let instance = WorkloadSpec {
        family: Family::Uniform,
        n: 40,
        m: 2,
        horizon: 80,
        seed: 3,
    }
    .generate();
    group.bench_function("f64", |b| {
        b.iter(|| optimal_schedule(std::hint::black_box(&instance)).unwrap());
    });
    let exact = instance.to_rational();
    group.bench_function("rational", |b| {
        b.iter(|| optimal_schedule(std::hint::black_box(&exact)).unwrap());
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_offline_by_n,
    bench_offline_by_m,
    bench_offline_by_family,
    bench_exact_vs_float
);
criterion_main!(benches);
