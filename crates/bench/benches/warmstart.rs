//! Criterion bench: warm-start residual reuse vs cold rebuild — the
//! statistical counterpart of `exp_warmstart_ablation`. Covers the offline
//! solver (repair rounds share one residual network per phase) and the
//! OA(m) driver (each replan seeds from the surviving jobs' previous flow).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpss_offline::{optimal_schedule_with, OfflineOptions};
use mpss_online::{oa_schedule_with_options, OaOptions};
use mpss_workloads::{Family, WorkloadSpec};

fn bench_offline_warm_vs_cold(c: &mut Criterion) {
    let mut group = c.benchmark_group("warmstart/offline");
    group.sample_size(10);
    for n in [50usize, 100, 200] {
        let instance = WorkloadSpec {
            family: Family::Uniform,
            n,
            m: 4,
            horizon: 2 * n as u64,
            seed: 11,
        }
        .generate();
        for (label, warm_start) in [("warm", true), ("cold", false)] {
            let opts = OfflineOptions {
                warm_start,
                ..Default::default()
            };
            group.bench_with_input(BenchmarkId::new(label, n), &instance, |b, ins| {
                b.iter(|| optimal_schedule_with(std::hint::black_box(ins), &opts).unwrap());
            });
        }
    }
    group.finish();
}

fn bench_oa_reseed_vs_cold(c: &mut Criterion) {
    let mut group = c.benchmark_group("warmstart/oa");
    group.sample_size(10);
    for n in [25usize, 50, 100] {
        let instance = WorkloadSpec {
            family: Family::Uniform,
            n,
            m: 4,
            horizon: 2 * n as u64,
            seed: 11,
        }
        .generate();
        for (label, warm) in [("reseeded", true), ("cold", false)] {
            let opts = OaOptions {
                offline: OfflineOptions {
                    warm_start: warm,
                    ..Default::default()
                },
                reseed: warm,
            };
            group.bench_with_input(BenchmarkId::new(label, n), &instance, |b, ins| {
                b.iter(|| oa_schedule_with_options(std::hint::black_box(ins), &opts).unwrap());
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_offline_warm_vs_cold, bench_oa_reseed_vs_cold);
criterion_main!(benches);
