//! Criterion bench: the two max-flow engines on scheduling-shaped and
//! random networks (the `maxflow-ablation` experiment's statistical
//! counterpart).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpss_core::Intervals;
use mpss_maxflow::{max_flow_dinic, max_flow_push_relabel, FlowNetwork};
use mpss_offline::flow_model::FlowModel;
use mpss_workloads::{Family, WorkloadSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn scheduling_network(n: usize) -> FlowNetwork<f64> {
    let instance = WorkloadSpec {
        family: Family::Uniform,
        n,
        m: 4,
        horizon: 2 * n as u64,
        seed: 7,
    }
    .generate();
    let intervals = Intervals::from_instance(&instance);
    let candidate: Vec<usize> = (0..n).collect();
    let m_j: Vec<usize> = (0..intervals.len())
        .map(|j| {
            candidate
                .iter()
                .filter(|&&k| intervals.job_active(&instance.jobs[k], j))
                .count()
                .min(instance.m)
        })
        .collect();
    let w: f64 = instance.jobs.iter().map(|j| j.volume).sum();
    let p: f64 = m_j
        .iter()
        .enumerate()
        .map(|(j, &mj)| mj as f64 * intervals.length(j))
        .sum();
    FlowModel::build(&instance, &intervals, &candidate, &m_j, w / p).net
}

fn random_network(nodes: usize) -> FlowNetwork<f64> {
    let mut rng = StdRng::seed_from_u64(17);
    let mut net: FlowNetwork<f64> = FlowNetwork::new(nodes);
    for u in 0..nodes {
        for v in 0..nodes {
            if u != v && rng.gen_bool(0.3) {
                net.add_edge(u, v, rng.gen_range(0..=50u32) as f64);
            }
        }
    }
    net
}

fn bench_engines_scheduling(c: &mut Criterion) {
    let mut group = c.benchmark_group("maxflow/scheduling");
    for n in [40usize, 80, 160] {
        let net = scheduling_network(n);
        let sink = net.num_nodes() - 1;
        group.bench_with_input(BenchmarkId::new("dinic", n), &net, |b, net| {
            b.iter_batched(
                || net.clone(),
                |mut net| max_flow_dinic(&mut net, 0, sink),
                criterion::BatchSize::SmallInput,
            );
        });
        group.bench_with_input(BenchmarkId::new("push_relabel", n), &net, |b, net| {
            b.iter_batched(
                || net.clone(),
                |mut net| max_flow_push_relabel(&mut net, 0, sink),
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_engines_random(c: &mut Criterion) {
    let mut group = c.benchmark_group("maxflow/random");
    group.sample_size(20);
    for nodes in [100usize, 200] {
        let net = random_network(nodes);
        group.bench_with_input(BenchmarkId::new("dinic", nodes), &net, |b, net| {
            b.iter_batched(
                || net.clone(),
                |mut net| max_flow_dinic(&mut net, 0, nodes - 1),
                criterion::BatchSize::SmallInput,
            );
        });
        group.bench_with_input(BenchmarkId::new("push_relabel", nodes), &net, |b, net| {
            b.iter_batched(
                || net.clone(),
                |mut net| max_flow_push_relabel(&mut net, 0, nodes - 1),
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engines_scheduling, bench_engines_random);
criterion_main!(benches);
