//! Two-contender racing with cooperative cancellation.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Which contender of a [`race2`] produced the returned output.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum RaceWinner {
    /// The first closure finished first.
    First,
    /// The second closure finished first.
    Second,
}

/// Runs two closures concurrently and returns the first finisher's output,
/// cancelling the other.
///
/// Each contender receives a *cancellation flag* that the **other**
/// contender's victory sets; it is expected to poll the flag at its outer
/// loop and bail out with `None` once set (returning `None` without being
/// cancelled is a contract violation and panics — a contender that can fail
/// must encode the failure inside `O`). The loser's output, partial or
/// complete, is dropped: callers that maintain per-contender state (work
/// counters, network clones) must keep only the winner's.
///
/// The race is sound for the mpss engines because the *value* of a maximum
/// flow is unique and every downstream decision (the offline solver's
/// removal rule) reads only flow-invariant certificates — whichever engine
/// wins, the observable result is the same. Which contender wins is
/// nevertheless timing-dependent; treat [`RaceWinner`] as observability,
/// never as data.
///
/// One contender runs on the calling thread, so a race costs a single
/// spawned (scoped) thread.
///
/// ```
/// use mpss_par::{race2, RaceWinner};
/// use std::sync::atomic::Ordering;
///
/// // A sprinter against a poller that yields until it is cancelled.
/// let (_winner, value) = race2(
///     |_cancel| Some(42),
///     |cancel| {
///         while !cancel.load(Ordering::Relaxed) {
///             std::thread::yield_now();
///         }
///         None // cancelled — allowed to give up
///     },
/// );
/// assert_eq!(value, 42);
/// ```
pub fn race2<O, A, B>(first: A, second: B) -> (RaceWinner, O)
where
    O: Send,
    A: FnOnce(&AtomicBool) -> Option<O> + Send,
    B: FnOnce(&AtomicBool) -> Option<O> + Send,
{
    let cancel_first = AtomicBool::new(false);
    let cancel_second = AtomicBool::new(false);
    let podium: Mutex<Option<(RaceWinner, O)>> = Mutex::new(None);
    std::thread::scope(|scope| {
        scope.spawn(|| {
            if let Some(out) = first(&cancel_first) {
                let mut slot = podium.lock().expect("podium poisoned");
                if slot.is_none() {
                    *slot = Some((RaceWinner::First, out));
                    cancel_second.store(true, Ordering::Relaxed);
                }
            }
        });
        if let Some(out) = second(&cancel_second) {
            let mut slot = podium.lock().expect("podium poisoned");
            if slot.is_none() {
                *slot = Some((RaceWinner::Second, out));
                cancel_first.store(true, Ordering::Relaxed);
            }
        }
    });
    podium
        .into_inner()
        .expect("podium poisoned")
        .expect("a contender returned None without being cancelled")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontested_contender_wins() {
        // The second contender refuses to finish until cancelled, so the
        // first always wins, whatever the thread interleaving.
        let (winner, out) = race2(
            |_c| Some(42),
            |c: &AtomicBool| {
                while !c.load(Ordering::Relaxed) {
                    std::thread::yield_now();
                }
                None
            },
        );
        assert_eq!(winner, RaceWinner::First);
        assert_eq!(out, 42);
    }

    #[test]
    fn symmetric_race_returns_some_result() {
        let (_, out) = race2(|_| Some("a"), |_| Some("a"));
        assert_eq!(out, "a");
    }

    #[test]
    fn loser_output_is_dropped_not_merged() {
        let (winner, out) = race2(
            |c: &AtomicBool| {
                while !c.load(Ordering::Relaxed) {
                    std::thread::yield_now();
                }
                None
            },
            |_c| Some(7),
        );
        assert_eq!(winner, RaceWinner::Second);
        assert_eq!(out, 7);
    }
}
