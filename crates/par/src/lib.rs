//! Deterministic scoped-thread parallelism for the `mpss` workspace.
//!
//! The workspace's hot paths are embarrassingly parallel at three different
//! granularities — independent *instances* (the batched serving shape),
//! independent *intervals* (AVR(m)'s per-interval peel + wrap-around), and
//! independent *engines* racing on the same max-flow probe — yet none of
//! them may change a single output byte when parallelised. This crate
//! provides the two primitives all of them share, built on `std` only
//! (the build environment is offline; like `mpss-numeric` and `mpss-obs`,
//! it depends on nothing outside the standard library):
//!
//! * [`ThreadPool`] with [`ThreadPool::scope_map`] — fan a `Vec` of items
//!   over scoped worker threads and join **in submission order**, whatever
//!   order the workers finish in. With one thread (or one item) it degrades
//!   to the plain sequential iterator, so `MPSS_THREADS=1` is a bit-exact
//!   oracle for any parallel run.
//! * [`race2`] — run two closures concurrently, return the first finisher's
//!   output, and cancel the loser through an [`AtomicBool`] it is expected
//!   to poll. The max-flow engines poll it in their outer loops, which is
//!   what makes engine-portfolio racing (Dinic vs push–relabel on clones of
//!   the same network) a pure latency optimisation.
//!
//! Thread-count policy lives here too: [`ThreadPool::from_env`] reads the
//! `MPSS_THREADS` environment variable and falls back to
//! [`std::thread::available_parallelism`], and every consumer (CLI
//! `--threads`, batch API, experiment harness) routes through it so one
//! knob controls the whole workspace.
//!
//! ```
//! use mpss_par::ThreadPool;
//!
//! let pool = ThreadPool::new(4);
//! let squares = pool.scope_map((0..8).collect::<Vec<_>>(), |x| x * x);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]); // submission order
//! ```

mod pool;
mod race;

pub use pool::{chunk_ranges, ThreadPool};
pub use race::{race2, RaceWinner};

pub use std::sync::atomic::AtomicBool;
