//! The ordered-join scoped worker pool.

use std::num::NonZeroUsize;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Name of the environment variable overriding the worker count.
pub const THREADS_ENV: &str = "MPSS_THREADS";

/// A fixed-width worker pool for scoped, deterministic fan-out.
///
/// The pool is a *policy* object: it owns no long-lived threads. Each
/// [`scope_map`](ThreadPool::scope_map) call spawns up to `threads` scoped
/// workers (`std::thread::scope`), which pull items off a shared atomic
/// cursor and write results into per-item slots; the scope join guarantees
/// every worker finished before results are read back, and the slots
/// guarantee the output order equals the submission order regardless of
/// completion order. A panic inside the mapped closure propagates out of
/// the scope, exactly like the sequential loop it replaces.
#[derive(Clone, Debug)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// A pool that runs `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> ThreadPool {
        ThreadPool {
            threads: threads.max(1),
        }
    }

    /// The workspace-default pool: `MPSS_THREADS` if set to a positive
    /// integer, otherwise [`std::thread::available_parallelism`].
    pub fn from_env() -> ThreadPool {
        ThreadPool::with_threads(None)
    }

    /// [`from_env`](ThreadPool::from_env) with an explicit override on top
    /// (the CLI's `--threads N` beats the environment, which beats the
    /// hardware default).
    pub fn with_threads(explicit: Option<usize>) -> ThreadPool {
        let threads = explicit
            .filter(|&t| t > 0)
            .or_else(|| {
                std::env::var(THREADS_ENV)
                    .ok()
                    .and_then(|v| v.trim().parse::<usize>().ok())
                    .filter(|&t| t > 0)
            })
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(NonZeroUsize::get)
                    .unwrap_or(4)
            });
        ThreadPool::new(threads)
    }

    /// The number of workers this pool fans out to.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Maps `f` over `items` on scoped workers, returning results in
    /// submission order. Sequential (and allocation-free beyond the output
    /// `Vec`) when the pool has one thread or there is at most one item.
    pub fn scope_map<I, O, F>(&self, items: Vec<I>, f: F) -> Vec<O>
    where
        I: Send,
        O: Send,
        F: Fn(I) -> O + Sync,
    {
        self.scope_map_indexed(items, |_, item| f(item))
    }

    /// [`scope_map`](ThreadPool::scope_map) where the closure also receives
    /// the item's submission index (for seeding or labelling work without
    /// packing the index into every item).
    pub fn scope_map_indexed<I, O, F>(&self, items: Vec<I>, f: F) -> Vec<O>
    where
        I: Send,
        O: Send,
        F: Fn(usize, I) -> O + Sync,
    {
        let n = items.len();
        let workers = self.threads.min(n);
        if workers <= 1 {
            return items
                .into_iter()
                .enumerate()
                .map(|(idx, item)| f(idx, item))
                .collect();
        }
        // Items and results live in per-index slots so workers can claim
        // work through one atomic cursor and deposit results wherever they
        // belong; the slot mutexes are uncontended (each index is touched
        // by exactly one worker).
        let input: Vec<Mutex<Option<I>>> = items
            .into_iter()
            .map(|item| Mutex::new(Some(item)))
            .collect();
        let output: Vec<Mutex<Option<O>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let idx = cursor.fetch_add(1, Ordering::Relaxed);
                    if idx >= n {
                        break;
                    }
                    let item = input[idx]
                        .lock()
                        .expect("input slot poisoned")
                        .take()
                        .expect("each item is claimed exactly once");
                    let out = f(idx, item);
                    *output[idx].lock().expect("output slot poisoned") = Some(out);
                });
            }
        });
        output
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("output slot poisoned")
                    .expect("scope join implies every slot was filled")
            })
            .collect()
    }
}

impl Default for ThreadPool {
    fn default() -> ThreadPool {
        ThreadPool::from_env()
    }
}

/// Splits `0..n` into at most `parts` contiguous ranges whose lengths
/// differ by at most one — the canonical work split for index-addressed
/// data (AVR's interval list). Deterministic in `n` and `parts` alone.
pub fn chunk_ranges(n: usize, parts: usize) -> Vec<Range<usize>> {
    let parts = parts.clamp(1, n.max(1));
    if n == 0 {
        return Vec::new();
    }
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let len = base + usize::from(p < extra);
        out.push(start..start + len);
        start += len;
    }
    debug_assert_eq!(start, n);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_map_preserves_submission_order() {
        let pool = ThreadPool::new(8);
        // Reverse sleep-free "work skew": later items finish first on real
        // pools; order must still come back 0..n.
        let out = pool.scope_map((0..200).collect::<Vec<_>>(), |x| x * 3);
        assert_eq!(out, (0..200).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn scope_map_indexed_sees_submission_indices() {
        let pool = ThreadPool::new(4);
        let out = pool.scope_map_indexed(vec!["a", "b", "c"], |idx, s| format!("{idx}:{s}"));
        assert_eq!(out, vec!["0:a", "1:b", "2:c"]);
    }

    #[test]
    fn single_thread_pool_is_sequential() {
        let pool = ThreadPool::new(1);
        assert_eq!(pool.threads(), 1);
        let out = pool.scope_map(vec![1, 2, 3], |x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn empty_and_single_item_inputs() {
        let pool = ThreadPool::new(8);
        assert!(pool.scope_map(Vec::<i32>::new(), |x| x).is_empty());
        assert_eq!(pool.scope_map(vec![9], |x| x * 2), vec![18]);
    }

    #[test]
    fn zero_thread_request_clamps_to_one() {
        assert_eq!(ThreadPool::new(0).threads(), 1);
    }

    #[test]
    fn explicit_override_beats_everything() {
        assert_eq!(ThreadPool::with_threads(Some(3)).threads(), 3);
        // `Some(0)` is treated as "no override".
        assert!(ThreadPool::with_threads(Some(0)).threads() >= 1);
    }

    #[test]
    fn parallel_and_sequential_results_agree() {
        let items: Vec<u64> = (0..97).collect();
        let seq = ThreadPool::new(1).scope_map(items.clone(), |x| x.wrapping_mul(2654435761));
        let par = ThreadPool::new(7).scope_map(items, |x| x.wrapping_mul(2654435761));
        assert_eq!(seq, par);
    }

    #[test]
    fn chunk_ranges_cover_exactly_once() {
        for n in 0..40 {
            for parts in 1..10 {
                let ranges = chunk_ranges(n, parts);
                let covered: Vec<usize> = ranges.iter().cloned().flatten().collect();
                assert_eq!(covered, (0..n).collect::<Vec<_>>(), "n={n} parts={parts}");
                if n > 0 {
                    let max = ranges.iter().map(|r| r.len()).max().unwrap();
                    let min = ranges.iter().map(|r| r.len()).min().unwrap();
                    assert!(max - min <= 1, "uneven split: n={n} parts={parts}");
                }
            }
        }
    }

    #[test]
    fn worker_panic_propagates() {
        // `std::thread::scope` re-panics ("a scoped thread panicked") when a
        // worker dies, so a failed map can never be mistaken for success.
        let pool = ThreadPool::new(4);
        let r = std::panic::catch_unwind(|| {
            pool.scope_map(vec![0, 1, 2, 3], |x| {
                if x == 2 {
                    panic!("mapped closure panicked");
                }
                x
            })
        });
        assert!(r.is_err());
    }
}
