//! The ordered-join scoped worker pool.

use mpss_obs::{Collector, TrackedCollector};
use std::num::NonZeroUsize;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Name of the environment variable overriding the worker count.
pub const THREADS_ENV: &str = "MPSS_THREADS";

/// A fixed-width worker pool for scoped, deterministic fan-out.
///
/// The pool is a *policy* object: it owns no long-lived threads. Each
/// [`scope_map`](ThreadPool::scope_map) call spawns up to `threads` scoped
/// workers (`std::thread::scope`), which pull items off a shared atomic
/// cursor and write results into per-item slots; the scope join guarantees
/// every worker finished before results are read back, and the slots
/// guarantee the output order equals the submission order regardless of
/// completion order. A panic inside the mapped closure propagates out of
/// the scope, exactly like the sequential loop it replaces.
#[derive(Clone, Debug)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// A pool that runs `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> ThreadPool {
        ThreadPool {
            threads: threads.max(1),
        }
    }

    /// The workspace-default pool: `MPSS_THREADS` if set to a positive
    /// integer, otherwise [`std::thread::available_parallelism`].
    pub fn from_env() -> ThreadPool {
        ThreadPool::with_threads(None)
    }

    /// [`from_env`](ThreadPool::from_env) with an explicit override on top
    /// (the CLI's `--threads N` beats the environment, which beats the
    /// hardware default).
    pub fn with_threads(explicit: Option<usize>) -> ThreadPool {
        let threads = explicit
            .filter(|&t| t > 0)
            .or_else(|| {
                std::env::var(THREADS_ENV)
                    .ok()
                    .and_then(|v| v.trim().parse::<usize>().ok())
                    .filter(|&t| t > 0)
            })
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(NonZeroUsize::get)
                    .unwrap_or(4)
            });
        ThreadPool::new(threads)
    }

    /// The number of workers this pool fans out to.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Maps `f` over `items` on scoped workers, returning results in
    /// submission order. Sequential (and allocation-free beyond the output
    /// `Vec`) when the pool has one thread or there is at most one item.
    pub fn scope_map<I, O, F>(&self, items: Vec<I>, f: F) -> Vec<O>
    where
        I: Send,
        O: Send,
        F: Fn(I) -> O + Sync,
    {
        self.scope_map_indexed(items, |_, item| f(item))
    }

    /// [`scope_map`](ThreadPool::scope_map) where the closure also receives
    /// the item's submission index (for seeding or labelling work without
    /// packing the index into every item).
    pub fn scope_map_indexed<I, O, F>(&self, items: Vec<I>, f: F) -> Vec<O>
    where
        I: Send,
        O: Send,
        F: Fn(usize, I) -> O + Sync,
    {
        let n = items.len();
        let workers = self.threads.min(n);
        if workers <= 1 {
            return items
                .into_iter()
                .enumerate()
                .map(|(idx, item)| f(idx, item))
                .collect();
        }
        // Items and results live in per-index slots so workers can claim
        // work through one atomic cursor and deposit results wherever they
        // belong; the slot mutexes are uncontended (each index is touched
        // by exactly one worker).
        let input: Vec<Mutex<Option<I>>> = items
            .into_iter()
            .map(|item| Mutex::new(Some(item)))
            .collect();
        let output: Vec<Mutex<Option<O>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let idx = cursor.fetch_add(1, Ordering::Relaxed);
                    if idx >= n {
                        break;
                    }
                    let item = input[idx]
                        .lock()
                        .expect("input slot poisoned")
                        .take()
                        .expect("each item is claimed exactly once");
                    let out = f(idx, item);
                    *output[idx].lock().expect("output slot poisoned") = Some(out);
                });
            }
        });
        output
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("output slot poisoned")
                    .expect("scope join implies every slot was filled")
            })
            .collect()
    }

    /// [`scope_map_indexed`](ThreadPool::scope_map_indexed) with per-worker
    /// observability tracks: each worker records onto its own collector
    /// (forked from `obs` as `worker-0`, `worker-1`, …), and the tracks are
    /// adopted back **in worker-index order** after the join — so the merged
    /// report/trace is deterministic even though items race across workers.
    ///
    /// With a sequential pool everything records onto a single `worker-0`
    /// track, keeping `MPSS_THREADS=1` runs structurally comparable to
    /// parallel ones.
    pub fn scope_map_tracked<I, O, F, C>(&self, items: Vec<I>, obs: &mut C, f: F) -> Vec<O>
    where
        I: Send,
        O: Send,
        C: TrackedCollector,
        F: Fn(usize, I, &mut C::Track) -> O + Sync,
    {
        let n = items.len();
        let workers = self.threads.min(n);
        if workers <= 1 {
            let mut track = obs.fork("worker-0");
            let out = items
                .into_iter()
                .enumerate()
                .map(|(idx, item)| {
                    track.count("par.worker.items", 1);
                    f(idx, item, &mut track)
                })
                .collect();
            obs.adopt(track);
            return out;
        }
        let input: Vec<Mutex<Option<I>>> = items
            .into_iter()
            .map(|item| Mutex::new(Some(item)))
            .collect();
        let output: Vec<Mutex<Option<O>>> = (0..n).map(|_| Mutex::new(None)).collect();
        // Tracks ride back through per-worker slots, like results do through
        // per-item slots; worker w deposits into slot w, so adoption order
        // is worker order, not completion order.
        let returned: Vec<Mutex<Option<C::Track>>> =
            (0..workers).map(|_| Mutex::new(None)).collect();
        let tracks: Vec<C::Track> = (0..workers)
            .map(|w| obs.fork(&format!("worker-{w}")))
            .collect();
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for (w, mut track) in tracks.into_iter().enumerate() {
                let f = &f;
                let cursor = &cursor;
                let input = &input;
                let output = &output;
                let returned = &returned;
                scope.spawn(move || {
                    loop {
                        let idx = cursor.fetch_add(1, Ordering::Relaxed);
                        if idx >= n {
                            break;
                        }
                        let item = input[idx]
                            .lock()
                            .expect("input slot poisoned")
                            .take()
                            .expect("each item is claimed exactly once");
                        track.count("par.worker.items", 1);
                        let out = f(idx, item, &mut track);
                        *output[idx].lock().expect("output slot poisoned") = Some(out);
                    }
                    *returned[w].lock().expect("track slot poisoned") = Some(track);
                });
            }
        });
        for slot in returned {
            let track = slot
                .into_inner()
                .expect("track slot poisoned")
                .expect("scope join implies every worker returned its track");
            obs.adopt(track);
        }
        output
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("output slot poisoned")
                    .expect("scope join implies every slot was filled")
            })
            .collect()
    }
}

impl Default for ThreadPool {
    fn default() -> ThreadPool {
        ThreadPool::from_env()
    }
}

/// Splits `0..n` into at most `parts` contiguous ranges whose lengths
/// differ by at most one — the canonical work split for index-addressed
/// data (AVR's interval list). Deterministic in `n` and `parts` alone.
pub fn chunk_ranges(n: usize, parts: usize) -> Vec<Range<usize>> {
    let parts = parts.clamp(1, n.max(1));
    if n == 0 {
        return Vec::new();
    }
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let len = base + usize::from(p < extra);
        out.push(start..start + len);
        start += len;
    }
    debug_assert_eq!(start, n);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_map_preserves_submission_order() {
        let pool = ThreadPool::new(8);
        // Reverse sleep-free "work skew": later items finish first on real
        // pools; order must still come back 0..n.
        let out = pool.scope_map((0..200).collect::<Vec<_>>(), |x| x * 3);
        assert_eq!(out, (0..200).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn scope_map_indexed_sees_submission_indices() {
        let pool = ThreadPool::new(4);
        let out = pool.scope_map_indexed(vec!["a", "b", "c"], |idx, s| format!("{idx}:{s}"));
        assert_eq!(out, vec!["0:a", "1:b", "2:c"]);
    }

    #[test]
    fn single_thread_pool_is_sequential() {
        let pool = ThreadPool::new(1);
        assert_eq!(pool.threads(), 1);
        let out = pool.scope_map(vec![1, 2, 3], |x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn empty_and_single_item_inputs() {
        let pool = ThreadPool::new(8);
        assert!(pool.scope_map(Vec::<i32>::new(), |x| x).is_empty());
        assert_eq!(pool.scope_map(vec![9], |x| x * 2), vec![18]);
    }

    #[test]
    fn zero_thread_request_clamps_to_one() {
        assert_eq!(ThreadPool::new(0).threads(), 1);
    }

    #[test]
    fn explicit_override_beats_everything() {
        assert_eq!(ThreadPool::with_threads(Some(3)).threads(), 3);
        // `Some(0)` is treated as "no override".
        assert!(ThreadPool::with_threads(Some(0)).threads() >= 1);
    }

    #[test]
    fn parallel_and_sequential_results_agree() {
        let items: Vec<u64> = (0..97).collect();
        let seq = ThreadPool::new(1).scope_map(items.clone(), |x| x.wrapping_mul(2654435761));
        let par = ThreadPool::new(7).scope_map(items, |x| x.wrapping_mul(2654435761));
        assert_eq!(seq, par);
    }

    #[test]
    fn chunk_ranges_cover_exactly_once() {
        for n in 0..40 {
            for parts in 1..10 {
                let ranges = chunk_ranges(n, parts);
                let covered: Vec<usize> = ranges.iter().cloned().flatten().collect();
                assert_eq!(covered, (0..n).collect::<Vec<_>>(), "n={n} parts={parts}");
                if n > 0 {
                    let max = ranges.iter().map(|r| r.len()).max().unwrap();
                    let min = ranges.iter().map(|r| r.len()).min().unwrap();
                    assert!(max - min <= 1, "uneven split: n={n} parts={parts}");
                }
            }
        }
    }

    #[test]
    fn tracked_map_merges_worker_counts_deterministically() {
        use mpss_obs::{Collector, RecordingCollector};
        let pool = ThreadPool::new(4);
        let mut rec = RecordingCollector::new();
        let out = pool.scope_map_tracked((0..40u64).collect(), &mut rec, |_, x, track| {
            track.count("work.items", 1);
            x * 2
        });
        assert_eq!(out, (0..40u64).map(|x| x * 2).collect::<Vec<_>>());
        // Every item counted exactly once, whichever worker took it — both
        // by the closure and by the pool's own per-worker claim counter.
        assert_eq!(rec.counter("work.items"), 40);
        assert_eq!(rec.counter("par.worker.items"), 40);
    }

    #[test]
    fn worker_item_claims_cover_sequential_runs_too() {
        use mpss_obs::RecordingCollector;
        let mut rec = RecordingCollector::new();
        ThreadPool::new(1).scope_map_tracked((0..7).collect::<Vec<i32>>(), &mut rec, |_, x, _| x);
        assert_eq!(rec.counter("par.worker.items"), 7);
    }

    #[test]
    fn tracked_map_names_one_track_per_worker() {
        use mpss_obs::{Collector, TraceCollector};
        let pool = ThreadPool::new(3);
        let mut trace = TraceCollector::new("main");
        pool.scope_map_tracked((0..9).collect::<Vec<i32>>(), &mut trace, |_, x, track| {
            track.instant("tick");
            x
        });
        assert_eq!(
            trace.track_names(),
            ["main", "worker-0", "worker-1", "worker-2"]
        );
        // All nine instants landed on worker tracks (none on main).
        let on_workers = trace
            .events()
            .iter()
            .filter(|e| e.track >= 1 && matches!(e.kind, mpss_obs::TraceEventKind::Instant(_)))
            .count();
        assert_eq!(on_workers, 9);

        // The sequential pool still forks a single worker track.
        let mut solo = TraceCollector::new("main");
        ThreadPool::new(1).scope_map_tracked(vec![1], &mut solo, |_, x: i32, track| {
            track.instant("tick");
            x
        });
        assert_eq!(solo.track_names(), ["main", "worker-0"]);
    }

    #[test]
    fn tracked_map_with_noop_collector_matches_scope_map() {
        use mpss_obs::NoopCollector;
        let pool = ThreadPool::new(4);
        let plain = pool.scope_map((0..50).collect::<Vec<i32>>(), |x| x + 1);
        let tracked = pool.scope_map_tracked(
            (0..50).collect::<Vec<i32>>(),
            &mut NoopCollector,
            |_, x, _| x + 1,
        );
        assert_eq!(plain, tracked);
    }

    #[test]
    fn worker_panic_propagates() {
        // `std::thread::scope` re-panics ("a scoped thread panicked") when a
        // worker dies, so a failed map can never be mistaken for success.
        let pool = ThreadPool::new(4);
        let r = std::panic::catch_unwind(|| {
            pool.scope_map(vec![0, 1, 2, 3], |x| {
                if x == 2 {
                    panic!("mapped closure panicked");
                }
                x
            })
        });
        assert!(r.is_err());
    }
}
