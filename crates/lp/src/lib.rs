//! A dense two-phase primal simplex solver.
//!
//! Built as the substrate for the Bingham–Greenstreet LP baseline
//! (`mpss-offline::lp_baseline`): the paper positions its combinatorial
//! algorithm against an LP formulation whose "complexity is too high for
//! most practical applications", and reproducing that comparison honestly
//! requires actually solving the LP. The solver handles
//!
//! ```text
//! min / max  c·x
//! s.t.       a_i·x {≤, =, ≥} b_i    for every constraint i
//!            x ≥ 0
//! ```
//!
//! via the textbook two-phase tableau method: phase 1 minimizes the sum of
//! artificial variables to find a basic feasible solution, phase 2 optimizes
//! the true objective. Dantzig pricing with a Bland's-rule fallback after a
//! run of degenerate pivots guarantees termination.
//!
//! ```
//! use mpss_lp::{solve, Constraint, LinearProgram};
//!
//! // max 3x + 5y  s.t.  x ≤ 4,  2y ≤ 12,  3x + 2y ≤ 18,  x, y ≥ 0.
//! let lp = LinearProgram::maximize(vec![3.0, 5.0])
//!     .subject_to(Constraint::le(vec![1.0, 0.0], 4.0))
//!     .subject_to(Constraint::le(vec![0.0, 2.0], 12.0))
//!     .subject_to(Constraint::le(vec![3.0, 2.0], 18.0));
//! let sol = solve(&lp).unwrap().expect_optimal("bounded and feasible");
//! assert!((sol.objective - 36.0).abs() < 1e-9);
//! assert!((sol.x[0] - 2.0).abs() < 1e-9 && (sol.x[1] - 6.0).abs() < 1e-9);
//! ```

mod simplex;
mod types;

pub use simplex::solve;
pub use types::{Constraint, LinearProgram, LpError, LpOutcome, Relation, Solution};

#[cfg(test)]
mod tests;
