//! Problem and result types for the simplex solver.

/// Relation of a linear constraint.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Relation {
    /// `a·x ≤ b`
    Le,
    /// `a·x = b`
    Eq,
    /// `a·x ≥ b`
    Ge,
}

/// One linear constraint `coeffs · x  rel  rhs`.
#[derive(Clone, Debug)]
pub struct Constraint {
    /// Dense coefficient row (length = number of variables).
    pub coeffs: Vec<f64>,
    /// The relation.
    pub rel: Relation,
    /// Right-hand side.
    pub rhs: f64,
}

impl Constraint {
    /// `coeffs · x ≤ rhs`.
    pub fn le(coeffs: Vec<f64>, rhs: f64) -> Constraint {
        Constraint {
            coeffs,
            rel: Relation::Le,
            rhs,
        }
    }
    /// `coeffs · x = rhs`.
    pub fn eq(coeffs: Vec<f64>, rhs: f64) -> Constraint {
        Constraint {
            coeffs,
            rel: Relation::Eq,
            rhs,
        }
    }
    /// `coeffs · x ≥ rhs`.
    pub fn ge(coeffs: Vec<f64>, rhs: f64) -> Constraint {
        Constraint {
            coeffs,
            rel: Relation::Ge,
            rhs,
        }
    }
}

/// A linear program over non-negative variables.
#[derive(Clone, Debug)]
pub struct LinearProgram {
    /// Objective coefficients `c`.
    pub objective: Vec<f64>,
    /// The constraints.
    pub constraints: Vec<Constraint>,
    /// `true` to minimize `c·x`, `false` to maximize.
    pub minimize: bool,
}

impl LinearProgram {
    /// A minimization problem.
    pub fn minimize(objective: Vec<f64>) -> LinearProgram {
        LinearProgram {
            objective,
            constraints: Vec::new(),
            minimize: true,
        }
    }
    /// A maximization problem.
    pub fn maximize(objective: Vec<f64>) -> LinearProgram {
        LinearProgram {
            objective,
            constraints: Vec::new(),
            minimize: false,
        }
    }
    /// Adds a constraint (builder style).
    pub fn subject_to(mut self, c: Constraint) -> LinearProgram {
        self.constraints.push(c);
        self
    }
    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.objective.len()
    }
}

/// An optimal solution.
#[derive(Clone, Debug)]
pub struct Solution {
    /// Optimal objective value (of the *original* objective).
    pub objective: f64,
    /// Optimal variable assignment.
    pub x: Vec<f64>,
    /// Dual values (shadow prices), one per constraint, signed so that
    /// strong duality holds against the *original* objective:
    /// `Σ_i duals[i] · rhs[i] = objective`. A constraint's dual is the
    /// marginal change of the optimum per unit of its right-hand side.
    pub duals: Vec<f64>,
}

/// Outcome of a solve.
#[derive(Clone, Debug)]
pub enum LpOutcome {
    /// Optimum found.
    Optimal(Solution),
    /// No feasible point exists.
    Infeasible,
    /// The objective is unbounded over the feasible region.
    Unbounded,
}

impl LpOutcome {
    /// Unwraps the optimal solution, panicking otherwise.
    pub fn expect_optimal(self, msg: &str) -> Solution {
        match self {
            LpOutcome::Optimal(s) => s,
            other => panic!("{msg}: got {other:?}"),
        }
    }
}

/// Structural errors (malformed input).
#[derive(Clone, Debug, PartialEq)]
pub enum LpError {
    /// A constraint row has a different arity than the objective.
    DimensionMismatch {
        constraint: usize,
        expected: usize,
        got: usize,
    },
    /// A coefficient or rhs is NaN/infinite.
    NonFinite,
    /// The pivot loop exceeded its iteration budget (numerical trouble).
    IterationLimit,
}

impl std::fmt::Display for LpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LpError::DimensionMismatch {
                constraint,
                expected,
                got,
            } => write!(
                f,
                "constraint {constraint}: expected {expected} coefficients, got {got}"
            ),
            LpError::NonFinite => write!(f, "non-finite coefficient in LP"),
            LpError::IterationLimit => write!(f, "simplex iteration limit exceeded"),
        }
    }
}

impl std::error::Error for LpError {}
