//! Two-phase dense tableau simplex.

use crate::types::{Constraint, LinearProgram, LpError, LpOutcome, Relation, Solution};

const EPS: f64 = 1e-9;

/// The dense tableau: `rows × cols`, last column is the RHS, one extra row
/// (the last) is the objective row in reduced-cost form.
struct Tableau {
    rows: usize,
    cols: usize, // includes RHS column
    a: Vec<f64>, // row-major
    basis: Vec<usize>,
}

impl Tableau {
    #[inline]
    fn at(&self, r: usize, c: usize) -> f64 {
        self.a[r * self.cols + c]
    }
    #[inline]
    fn at_mut(&mut self, r: usize, c: usize) -> &mut f64 {
        &mut self.a[r * self.cols + c]
    }

    /// Gauss pivot on (`pr`, `pc`).
    fn pivot(&mut self, pr: usize, pc: usize) {
        let cols = self.cols;
        let pivot = self.at(pr, pc);
        debug_assert!(pivot.abs() > EPS, "pivot too small: {pivot}");
        let inv = 1.0 / pivot;
        for c in 0..cols {
            *self.at_mut(pr, c) *= inv;
        }
        for r in 0..self.rows {
            if r == pr {
                continue;
            }
            let factor = self.at(r, pc);
            if factor.abs() <= EPS {
                continue;
            }
            // Row operation: split the row-major buffer so the pivot row can
            // be read while the target row is written.
            let (pr_off, r_off) = (pr * cols, r * cols);
            for c in 0..cols {
                let pv = self.a[pr_off + c];
                self.a[r_off + c] -= factor * pv;
            }
        }
        self.basis[pr] = pc;
    }

    /// One simplex iteration on the objective row `obj_row`, restricted to
    /// columns `0..num_cols` and constraint rows `0..m_rows`. Returns:
    /// `Ok(true)` optimal, `Ok(false)` pivoted, `Err(())` unbounded.
    fn step(
        &mut self,
        obj_row: usize,
        m_rows: usize,
        num_cols: usize,
        bland: bool,
    ) -> Result<bool, ()> {
        // Entering column: most negative reduced cost (Dantzig) or first
        // negative (Bland).
        let mut pc: Option<usize> = None;
        let mut best = -EPS;
        for c in 0..num_cols {
            let rc = self.at(obj_row, c);
            if rc < best {
                pc = Some(c);
                if bland {
                    break;
                }
                best = rc;
            }
        }
        let Some(pc) = pc else { return Ok(true) };

        // Leaving row: minimum ratio test (Bland tie-break on basis index).
        let rhs_col = self.cols - 1;
        let mut pr: Option<usize> = None;
        let mut best_ratio = f64::INFINITY;
        for r in 0..m_rows {
            let a = self.at(r, pc);
            if a > EPS {
                let ratio = self.at(r, rhs_col) / a;
                let better = ratio < best_ratio - EPS
                    || (ratio < best_ratio + EPS
                        && pr.is_none_or(|p| self.basis[r] < self.basis[p]));
                if better {
                    best_ratio = ratio;
                    pr = Some(r);
                }
            }
        }
        let Some(pr) = pr else { return Err(()) };
        self.pivot(pr, pc);
        Ok(false)
    }
}

/// Solves `lp`. See crate docs for the accepted form (`x ≥ 0` implicit).
pub fn solve(lp: &LinearProgram) -> Result<LpOutcome, LpError> {
    let n = lp.num_vars();
    // Validation.
    if lp.objective.iter().any(|v| !v.is_finite()) {
        return Err(LpError::NonFinite);
    }
    for (i, c) in lp.constraints.iter().enumerate() {
        if c.coeffs.len() != n {
            return Err(LpError::DimensionMismatch {
                constraint: i,
                expected: n,
                got: c.coeffs.len(),
            });
        }
        if c.coeffs.iter().any(|v| !v.is_finite()) || !c.rhs.is_finite() {
            return Err(LpError::NonFinite);
        }
    }

    let m = lp.constraints.len();
    // Normalize rows to non-negative RHS.
    let rows: Vec<Constraint> = lp
        .constraints
        .iter()
        .map(|c| {
            if c.rhs < 0.0 {
                let rel = match c.rel {
                    Relation::Le => Relation::Ge,
                    Relation::Ge => Relation::Le,
                    Relation::Eq => Relation::Eq,
                };
                Constraint {
                    coeffs: c.coeffs.iter().map(|v| -v).collect(),
                    rel,
                    rhs: -c.rhs,
                }
            } else {
                c.clone()
            }
        })
        .collect();

    // Column layout: [structural | slack/surplus | artificial | RHS].
    let num_slack = rows
        .iter()
        .filter(|c| matches!(c.rel, Relation::Le | Relation::Ge))
        .count();
    let num_art = rows
        .iter()
        .filter(|c| matches!(c.rel, Relation::Ge | Relation::Eq))
        .count();
    let slack0 = n;
    let art0 = n + num_slack;
    let total = n + num_slack + num_art;
    let cols = total + 1;
    // Two objective rows: phase-2 objective then phase-1 objective (last).
    let tab_rows = m + 2;

    let mut t = Tableau {
        rows: tab_rows,
        cols,
        a: vec![0.0; tab_rows * cols],
        basis: vec![usize::MAX; m],
    };

    let mut next_slack = slack0;
    let mut next_art = art0;
    // For dual extraction: per row, the column whose constraint-matrix
    // column is ±e_row, plus that sign (slack +1, surplus −1, artificial +1).
    let mut dual_col: Vec<(usize, f64)> = Vec::with_capacity(m);
    for (r, c) in rows.iter().enumerate() {
        for (j, &v) in c.coeffs.iter().enumerate() {
            *t.at_mut(r, j) = v;
        }
        *t.at_mut(r, cols - 1) = c.rhs;
        match c.rel {
            Relation::Le => {
                *t.at_mut(r, next_slack) = 1.0;
                t.basis[r] = next_slack;
                dual_col.push((next_slack, 1.0));
                next_slack += 1;
            }
            Relation::Ge => {
                *t.at_mut(r, next_slack) = -1.0;
                dual_col.push((next_slack, -1.0));
                next_slack += 1;
                *t.at_mut(r, next_art) = 1.0;
                t.basis[r] = next_art;
                next_art += 1;
            }
            Relation::Eq => {
                *t.at_mut(r, next_art) = 1.0;
                t.basis[r] = next_art;
                dual_col.push((next_art, 1.0));
                next_art += 1;
            }
        }
    }

    // Phase-2 objective row (row m): minimize c·x (negate for max).
    let sign = if lp.minimize { 1.0 } else { -1.0 };
    for j in 0..n {
        *t.at_mut(m, j) = sign * lp.objective[j];
    }
    // Phase-1 objective row (row m+1): minimize Σ artificials. Express in
    // terms of non-basic variables by subtracting the artificial rows.
    for j in art0..total {
        *t.at_mut(m + 1, j) = 1.0;
    }
    for r in 0..m {
        if t.basis[r] >= art0 {
            let (r_off, o_off) = (r * cols, (m + 1) * cols);
            for cc in 0..cols {
                let v = t.a[r_off + cc];
                t.a[o_off + cc] -= v;
            }
        }
    }

    let iter_limit = 50 * (m + total + 10);

    // Phase 1.
    if num_art > 0 {
        run(&mut t, m + 1, m, total, iter_limit)?.map_err(|_| LpError::IterationLimit)?;
        let phase1 = -t.at(m + 1, cols - 1);
        if phase1 > 1e-7 {
            return Ok(LpOutcome::Infeasible);
        }
        // Drive remaining artificials out of the basis where possible.
        for r in 0..m {
            if t.basis[r] >= art0 {
                if let Some(pc) = (0..art0).find(|&c| t.at(r, c).abs() > EPS) {
                    t.pivot(r, pc);
                }
                // Otherwise the row is redundant (all-zero); leave it.
            }
        }
    }

    // Phase 2 — forbid artificials from re-entering by restricting pricing
    // to structural + slack columns.
    match run(&mut t, m, m, art0, iter_limit)? {
        Ok(()) => {}
        Err(()) => return Ok(LpOutcome::Unbounded),
    }

    // Read the solution.
    let mut x = vec![0.0; n];
    for r in 0..m {
        let b = t.basis[r];
        if b < n {
            x[b] = t.at(r, cols - 1);
        }
    }
    let objective: f64 = lp.objective.iter().zip(&x).map(|(c, v)| c * v).sum();
    // Duals: the phase-2 objective row holds reduced costs r_j = c_j − y·A_j
    // for the internal minimization. A row's auxiliary column has c_j = 0
    // and A_j = ±e_i, so y_i = ∓r_j; the rows that had a negative original
    // rhs were negated on entry, which flips the dual's sign back; and a
    // maximization negated c, flipping once more.
    let duals: Vec<f64> = (0..m)
        .map(|r| {
            let (col, aux_sign) = dual_col[r];
            let rhs_sign = if lp.constraints[r].rhs < 0.0 {
                -1.0
            } else {
                1.0
            };
            -t.at(m, col) * aux_sign * sign * rhs_sign
        })
        .collect();
    Ok(LpOutcome::Optimal(Solution {
        objective,
        x,
        duals,
    }))
}

/// Runs the pivot loop on objective row `obj_row`, pricing columns
/// `0..num_cols` with ratio tests over constraint rows `0..m_rows`.
/// Outer `Err` = structural error (iteration limit), inner `Err(())` =
/// unbounded.
#[allow(clippy::type_complexity)]
fn run(
    t: &mut Tableau,
    obj_row: usize,
    m_rows: usize,
    num_cols: usize,
    iter_limit: usize,
) -> Result<Result<(), ()>, LpError> {
    let mut degenerate_run = 0usize;
    let mut last_obj = f64::INFINITY;
    for _ in 0..iter_limit {
        // Switch to Bland's rule after a stretch of degenerate pivots to
        // break cycles.
        let bland = degenerate_run > 20;
        match t.step(obj_row, m_rows, num_cols, bland) {
            Ok(true) => return Ok(Ok(())),
            Ok(false) => {
                let obj = t.at(obj_row, t.cols - 1);
                if (obj - last_obj).abs() <= EPS {
                    degenerate_run += 1;
                } else {
                    degenerate_run = 0;
                }
                last_obj = obj;
            }
            Err(()) => return Ok(Err(())),
        }
    }
    Err(LpError::IterationLimit)
}
