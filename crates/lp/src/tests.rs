//! Solver tests: textbook LPs, edge cases, degeneracy, and randomized
//! feasibility/optimality checks.

use crate::{solve, Constraint, LinearProgram, LpError, LpOutcome};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn opt(lp: &LinearProgram) -> crate::Solution {
    solve(lp)
        .expect("well-formed LP")
        .expect_optimal("expected optimum")
}

/// Checks a solution is feasible for `lp` within `tol`.
fn assert_feasible_point(lp: &LinearProgram, x: &[f64], tol: f64) {
    for (i, c) in lp.constraints.iter().enumerate() {
        let lhs: f64 = c.coeffs.iter().zip(x).map(|(a, v)| a * v).sum();
        let ok = match c.rel {
            crate::Relation::Le => lhs <= c.rhs + tol,
            crate::Relation::Ge => lhs >= c.rhs - tol,
            crate::Relation::Eq => (lhs - c.rhs).abs() <= tol,
        };
        assert!(ok, "constraint {i} violated: lhs = {lhs}, rhs = {}", c.rhs);
    }
    for (j, &v) in x.iter().enumerate() {
        assert!(v >= -tol, "x[{j}] = {v} negative");
    }
}

#[test]
fn textbook_maximization() {
    // max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → (2, 6), obj 36.
    let lp = LinearProgram::maximize(vec![3.0, 5.0])
        .subject_to(Constraint::le(vec![1.0, 0.0], 4.0))
        .subject_to(Constraint::le(vec![0.0, 2.0], 12.0))
        .subject_to(Constraint::le(vec![3.0, 2.0], 18.0));
    let s = opt(&lp);
    assert!((s.objective - 36.0).abs() < 1e-9);
    assert!((s.x[0] - 2.0).abs() < 1e-9);
    assert!((s.x[1] - 6.0).abs() < 1e-9);
}

#[test]
fn minimization_with_ge_rows_uses_phase_one() {
    // min 2x + 3y s.t. x + y ≥ 10, x ≥ 2, y ≥ 3 → x = 7, y = 3, obj 23.
    let lp = LinearProgram::minimize(vec![2.0, 3.0])
        .subject_to(Constraint::ge(vec![1.0, 1.0], 10.0))
        .subject_to(Constraint::ge(vec![1.0, 0.0], 2.0))
        .subject_to(Constraint::ge(vec![0.0, 1.0], 3.0));
    let s = opt(&lp);
    assert!((s.objective - 23.0).abs() < 1e-9, "obj = {}", s.objective);
    assert_feasible_point(&lp, &s.x, 1e-9);
}

#[test]
fn equality_constraints() {
    // min x + 2y s.t. x + y = 4, x − y = 0 → x = y = 2, obj 6.
    let lp = LinearProgram::minimize(vec![1.0, 2.0])
        .subject_to(Constraint::eq(vec![1.0, 1.0], 4.0))
        .subject_to(Constraint::eq(vec![1.0, -1.0], 0.0));
    let s = opt(&lp);
    assert!((s.objective - 6.0).abs() < 1e-9);
    assert!((s.x[0] - 2.0).abs() < 1e-9);
}

#[test]
fn detects_infeasible() {
    let lp = LinearProgram::minimize(vec![1.0])
        .subject_to(Constraint::le(vec![1.0], 1.0))
        .subject_to(Constraint::ge(vec![1.0], 2.0));
    assert!(matches!(solve(&lp).unwrap(), LpOutcome::Infeasible));
}

#[test]
fn detects_unbounded() {
    let lp =
        LinearProgram::maximize(vec![1.0, 0.0]).subject_to(Constraint::ge(vec![1.0, 0.0], 1.0));
    assert!(matches!(solve(&lp).unwrap(), LpOutcome::Unbounded));
}

#[test]
fn negative_rhs_rows_are_normalized() {
    // x ≤ 5 written as −x ≥ −5.
    let lp = LinearProgram::maximize(vec![1.0]).subject_to(Constraint::ge(vec![-1.0], -5.0));
    let s = opt(&lp);
    assert!((s.objective - 5.0).abs() < 1e-9);
}

#[test]
fn degenerate_lp_terminates() {
    // Classic degenerate vertex: multiple constraints through the origin.
    let lp = LinearProgram::maximize(vec![0.75, -150.0, 0.02, -6.0])
        .subject_to(Constraint::le(vec![0.25, -60.0, -0.04, 9.0], 0.0))
        .subject_to(Constraint::le(vec![0.5, -90.0, -0.02, 3.0], 0.0))
        .subject_to(Constraint::le(vec![0.0, 0.0, 1.0, 0.0], 1.0));
    // Beale's cycling example: Bland fallback must terminate at obj 1/20.
    let s = opt(&lp);
    assert!((s.objective - 0.05).abs() < 1e-9, "obj = {}", s.objective);
}

#[test]
fn rejects_dimension_mismatch() {
    let lp = LinearProgram::minimize(vec![1.0, 2.0]).subject_to(Constraint::le(vec![1.0], 1.0));
    assert_eq!(
        solve(&lp).unwrap_err(),
        LpError::DimensionMismatch {
            constraint: 0,
            expected: 2,
            got: 1
        }
    );
}

#[test]
fn rejects_non_finite() {
    let lp = LinearProgram::minimize(vec![f64::NAN]);
    assert_eq!(solve(&lp).unwrap_err(), LpError::NonFinite);
}

#[test]
fn zero_constraint_lp_is_trivial() {
    // min over x ≥ 0 of c·x with c ≥ 0: optimum 0 at the origin.
    let lp = LinearProgram::minimize(vec![3.0, 1.0]);
    let s = opt(&lp);
    assert_eq!(s.objective, 0.0);
}

#[test]
fn transportation_problem() {
    // 2 supplies (10, 20), 2 demands (15, 15); costs [[1,3],[2,1]].
    // Optimal: x11=10, x21=5, x22=15 → 10 + 10 + 15 = 35.
    let lp = LinearProgram::minimize(vec![1.0, 3.0, 2.0, 1.0])
        .subject_to(Constraint::eq(vec![1.0, 1.0, 0.0, 0.0], 10.0))
        .subject_to(Constraint::eq(vec![0.0, 0.0, 1.0, 1.0], 20.0))
        .subject_to(Constraint::eq(vec![1.0, 0.0, 1.0, 0.0], 15.0))
        .subject_to(Constraint::eq(vec![0.0, 1.0, 0.0, 1.0], 15.0));
    let s = opt(&lp);
    assert!((s.objective - 35.0).abs() < 1e-9, "obj = {}", s.objective);
    assert_feasible_point(&lp, &s.x, 1e-9);
}

#[test]
fn random_box_lps_have_known_optimum() {
    // min c·x over 0 ≤ x_i ≤ u_i plus a redundant sum constraint: optimum
    // puts x_i = u_i where c_i < 0 and 0 elsewhere.
    let mut rng = StdRng::seed_from_u64(42);
    for _ in 0..25 {
        let n = rng.gen_range(2..6);
        let c: Vec<f64> = (0..n).map(|_| rng.gen_range(-5.0..5.0)).collect();
        let u: Vec<f64> = (0..n).map(|_| rng.gen_range(0.5..4.0)).collect();
        let mut lp = LinearProgram::minimize(c.clone());
        for i in 0..n {
            let mut row = vec![0.0; n];
            row[i] = 1.0;
            lp = lp.subject_to(Constraint::le(row, u[i]));
        }
        lp = lp.subject_to(Constraint::le(vec![1.0; n], u.iter().sum::<f64>() + 1.0));
        let s = opt(&lp);
        let expected: f64 = c
            .iter()
            .zip(&u)
            .map(|(&ci, &ui)| if ci < 0.0 { ci * ui } else { 0.0 })
            .sum();
        assert!(
            (s.objective - expected).abs() < 1e-7,
            "obj {} expected {expected}",
            s.objective
        );
        assert_feasible_point(&lp, &s.x, 1e-7);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// On random LPs with a guaranteed feasible point, the solver either
    /// returns a feasible optimum no worse than that point, or reports
    /// Unbounded.
    #[test]
    fn prop_optimal_dominates_known_feasible_point(seed in 0u64..100_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.gen_range(2..5);
        let m = rng.gen_range(1..5);
        // Known feasible point.
        let x0: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..3.0)).collect();
        let c: Vec<f64> = (0..n).map(|_| rng.gen_range(-3.0..3.0)).collect();
        let mut lp = LinearProgram::minimize(c.clone());
        for _ in 0..m {
            let row: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
            let lhs: f64 = row.iter().zip(&x0).map(|(a, v)| a * v).sum();
            // Constraint satisfied at x0 with slack.
            lp = lp.subject_to(Constraint::le(row, lhs + rng.gen_range(0.0..1.0)));
        }
        let x0_obj: f64 = c.iter().zip(&x0).map(|(a, v)| a * v).sum();
        match solve(&lp).expect("well-formed") {
            LpOutcome::Optimal(s) => {
                assert_feasible_point(&lp, &s.x, 1e-6);
                prop_assert!(s.objective <= x0_obj + 1e-6,
                    "optimum {} worse than feasible point {}", s.objective, x0_obj);
            }
            LpOutcome::Unbounded => {} // possible with negative costs
            LpOutcome::Infeasible => prop_assert!(false, "x0 is feasible by construction"),
        }
    }
}

mod duality {
    use super::*;

    fn dual_objective(lp: &LinearProgram, duals: &[f64]) -> f64 {
        lp.constraints
            .iter()
            .zip(duals)
            .map(|(c, y)| c.rhs * y)
            .sum()
    }

    #[test]
    fn strong_duality_on_the_textbook_max() {
        let lp = LinearProgram::maximize(vec![3.0, 5.0])
            .subject_to(Constraint::le(vec![1.0, 0.0], 4.0))
            .subject_to(Constraint::le(vec![0.0, 2.0], 12.0))
            .subject_to(Constraint::le(vec![3.0, 2.0], 18.0));
        let s = opt(&lp);
        assert!(
            (dual_objective(&lp, &s.duals) - s.objective).abs() < 1e-9,
            "duals {:?} give {} ≠ {}",
            s.duals,
            dual_objective(&lp, &s.duals),
            s.objective
        );
        // Complementary slackness: constraint 1 (x ≤ 4) is slack at the
        // optimum (x = 2), so its dual is 0.
        assert!(s.duals[0].abs() < 1e-9);
    }

    #[test]
    fn strong_duality_with_ge_and_eq_rows() {
        let lp = LinearProgram::minimize(vec![2.0, 3.0])
            .subject_to(Constraint::ge(vec![1.0, 1.0], 10.0))
            .subject_to(Constraint::ge(vec![1.0, 0.0], 2.0))
            .subject_to(Constraint::ge(vec![0.0, 1.0], 3.0));
        let s = opt(&lp);
        assert!(
            (dual_objective(&lp, &s.duals) - s.objective).abs() < 1e-9,
            "duals {:?}",
            s.duals
        );

        let lp2 = LinearProgram::minimize(vec![1.0, 2.0])
            .subject_to(Constraint::eq(vec![1.0, 1.0], 4.0))
            .subject_to(Constraint::eq(vec![1.0, -1.0], 0.0));
        let s2 = opt(&lp2);
        assert!(
            (dual_objective(&lp2, &s2.duals) - s2.objective).abs() < 1e-9,
            "duals {:?}",
            s2.duals
        );
    }

    #[test]
    fn strong_duality_on_random_box_lps() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..20 {
            let n = rng.gen_range(2..5);
            let c: Vec<f64> = (0..n).map(|_| rng.gen_range(0.5..5.0)).collect();
            let u: Vec<f64> = (0..n).map(|_| rng.gen_range(0.5..4.0)).collect();
            // max c·x over the box 0 ≤ x ≤ u: optimum Σ c_i u_i, duals c_i.
            let mut lp = LinearProgram::maximize(c.clone());
            for i in 0..n {
                let mut row = vec![0.0; n];
                row[i] = 1.0;
                lp = lp.subject_to(Constraint::le(row, u[i]));
            }
            let s = opt(&lp);
            assert!((dual_objective(&lp, &s.duals) - s.objective).abs() < 1e-7);
            #[allow(clippy::needless_range_loop)] // i indexes c and duals together
            for i in 0..n {
                assert!((s.duals[i] - c[i]).abs() < 1e-7, "dual {i}: {:?}", s.duals);
            }
        }
    }
}
