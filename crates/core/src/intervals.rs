//! The canonical interval partition `I_1, …, I_{|𝓘|−1}`.
//!
//! Following Section 2 of the paper, the time horizon is split at the sorted
//! distinct release times and deadlines `τ_1 < … < τ_{|𝓘|}`; interval
//! `I_j = [τ_j, τ_{j+1})`. A job is *active* in `I_j` iff
//! `I_j ⊆ [r_k, d_k)`. Because interval endpoints are copies of job
//! coordinates, activity tests are exact comparisons even in `f64`.

use crate::{Instance, JobId};
use mpss_numeric::FlowNum;

/// The event-time partition of an instance's scheduling horizon.
#[derive(Clone, Debug, PartialEq)]
pub struct Intervals<T> {
    /// Sorted distinct event times `τ_1 < … < τ_{|𝓘|}`.
    pub times: Vec<T>,
}

impl<T: FlowNum> Intervals<T> {
    /// Builds the partition from all release times and deadlines.
    pub fn from_instance(instance: &Instance<T>) -> Intervals<T> {
        let mut times: Vec<T> = Vec::with_capacity(2 * instance.n());
        for j in &instance.jobs {
            times.push(j.release);
            times.push(j.deadline);
        }
        Intervals::from_times(times)
    }

    /// Builds the partition from an arbitrary list of event times
    /// (duplicates are removed; order is normalized).
    pub fn from_times(mut times: Vec<T>) -> Intervals<T> {
        times.sort_by(|a, b| a.partial_cmp(b).expect("event times must be comparable"));
        times.dedup_by(|a, b| a == b);
        Intervals { times }
    }

    /// Number of intervals (`|𝓘| − 1`; zero for degenerate inputs).
    #[inline]
    pub fn len(&self) -> usize {
        self.times.len().saturating_sub(1)
    }

    /// `true` iff there are no intervals.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Interval `I_j = [τ_j, τ_{j+1})` (0-indexed).
    #[inline]
    pub fn bounds(&self, j: usize) -> (T, T) {
        (self.times[j], self.times[j + 1])
    }

    /// Length `|I_j|`.
    #[inline]
    pub fn length(&self, j: usize) -> T {
        self.times[j + 1] - self.times[j]
    }

    /// Total horizon length `τ_{|𝓘|} − τ_1`.
    pub fn horizon(&self) -> T {
        if self.times.is_empty() {
            T::zero()
        } else {
            *self.times.last().unwrap() - self.times[0]
        }
    }

    /// `true` iff job `job` is active in interval `j`.
    #[inline]
    pub fn job_active(&self, job: &crate::Job<T>, j: usize) -> bool {
        let (s, e) = self.bounds(j);
        job.active_in(s, e)
    }

    /// For each interval, the ids of active jobs — the adjacency structure
    /// of the paper's Fig. 1 network.
    pub fn active_sets(&self, instance: &Instance<T>) -> Vec<Vec<JobId>> {
        (0..self.len())
            .map(|j| {
                let (s, e) = self.bounds(j);
                instance.active_jobs(s, e)
            })
            .collect()
    }

    /// Index of the interval containing time `t`, if any
    /// (`τ_j ≤ t < τ_{j+1}`).
    pub fn interval_of(&self, t: T) -> Option<usize> {
        if self.times.is_empty() || t < self.times[0] || !(t < *self.times.last().unwrap()) {
            return None;
        }
        // Binary search on the partition points.
        let mut lo = 0usize;
        let mut hi = self.len() - 1;
        while lo < hi {
            let mid = (lo + hi).div_ceil(2);
            if !(t < self.times[mid]) {
                lo = mid;
            } else {
                hi = mid - 1;
            }
        }
        Some(lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::job;
    use mpss_numeric::rational::rat;
    use mpss_numeric::Rational;

    fn sample() -> Instance<f64> {
        Instance::new(
            2,
            vec![job(0.0, 4.0, 2.0), job(1.0, 3.0, 4.0), job(2.0, 8.0, 1.0)],
        )
        .unwrap()
    }

    #[test]
    fn partition_is_sorted_and_distinct() {
        let iv = Intervals::from_instance(&sample());
        assert_eq!(iv.times, vec![0.0, 1.0, 2.0, 3.0, 4.0, 8.0]);
        assert_eq!(iv.len(), 5);
        assert_eq!(iv.bounds(0), (0.0, 1.0));
        assert_eq!(iv.bounds(4), (4.0, 8.0));
        assert_eq!(iv.length(4), 4.0);
        assert_eq!(iv.horizon(), 8.0);
    }

    #[test]
    fn duplicate_event_times_are_merged() {
        let iv = Intervals::from_times(vec![3.0, 1.0, 3.0, 1.0, 2.0]);
        assert_eq!(iv.times, vec![1.0, 2.0, 3.0]);
        assert_eq!(iv.len(), 2);
    }

    #[test]
    fn active_sets_match_windows() {
        let ins = sample();
        let iv = Intervals::from_instance(&ins);
        let sets = iv.active_sets(&ins);
        assert_eq!(sets[0], vec![0]); // [0,1): only job 0
        assert_eq!(sets[1], vec![0, 1]); // [1,2)
        assert_eq!(sets[2], vec![0, 1, 2]); // [2,3)
        assert_eq!(sets[3], vec![0, 2]); // [3,4)
        assert_eq!(sets[4], vec![2]); // [4,8)
    }

    #[test]
    fn interval_of_locates_times() {
        let iv = Intervals::from_instance(&sample());
        assert_eq!(iv.interval_of(0.0), Some(0));
        assert_eq!(iv.interval_of(0.5), Some(0));
        assert_eq!(iv.interval_of(1.0), Some(1));
        assert_eq!(iv.interval_of(7.9), Some(4));
        assert_eq!(iv.interval_of(8.0), None);
        assert_eq!(iv.interval_of(-0.1), None);
    }

    #[test]
    fn exact_rational_partition() {
        let ins: Instance<Rational> = Instance::new(
            1,
            vec![
                job(rat(0, 1), rat(1, 3), rat(1, 1)),
                job(rat(1, 6), rat(1, 2), rat(1, 1)),
            ],
        )
        .unwrap();
        let iv = Intervals::from_instance(&ins);
        assert_eq!(iv.times, vec![rat(0, 1), rat(1, 6), rat(1, 3), rat(1, 2)]);
        assert_eq!(iv.length(1), rat(1, 6));
    }

    #[test]
    fn empty_instance_has_no_intervals() {
        let ins: Instance<f64> = Instance::new(1, vec![]).unwrap();
        let iv = Intervals::from_instance(&ins);
        assert!(iv.is_empty());
        assert_eq!(iv.horizon(), 0.0);
    }
}
