//! The canonical interval partition `I_1, …, I_{|𝓘|−1}`.
//!
//! Following Section 2 of the paper, the time horizon is split at the sorted
//! distinct release times and deadlines `τ_1 < … < τ_{|𝓘|}`; interval
//! `I_j = [τ_j, τ_{j+1})`. A job is *active* in `I_j` iff
//! `I_j ⊆ [r_k, d_k)`. Because interval endpoints are copies of job
//! coordinates, activity tests are exact comparisons even in `f64`.
//!
//! Two additions serve the incremental replan path:
//!
//! * every partition carries a private two-level *breakpoint directory*
//!   (one entry per `DIR_FANOUT = 64` times) so point queries touch a coarse
//!   directory plus one cache-resident block instead of binary-searching
//!   the full `times` array;
//! * [`EventPartition`] maintains a refcounted breakpoint multiset under
//!   single-job insert/remove, splicing one release/deadline pair in
//!   O(changed entries) instead of re-running `from_instance`.

use crate::{Instance, JobId};
use mpss_numeric::FlowNum;

/// Breakpoints per directory block. 64 `f64`s are 512 bytes — a handful of
/// cache lines — so the inner search stays resident once the directory has
/// picked the block.
const DIR_FANOUT: usize = 64;

/// The event-time partition of an instance's scheduling horizon.
#[derive(Clone, Debug)]
pub struct Intervals<T> {
    /// Sorted distinct event times `τ_1 < … < τ_{|𝓘|}`.
    ///
    /// Mutating this field directly leaves the internal lookup directory
    /// stale; construct partitions through [`Intervals::from_times`],
    /// [`Intervals::from_sorted_times`], or [`Intervals::from_instance`].
    pub times: Vec<T>,
    /// Coarse directory: `dir[b] == times[b * DIR_FANOUT]`.
    dir: Vec<T>,
}

/// Equality is defined by the partition points alone; the directory is a
/// derived cache.
impl<T: PartialEq> PartialEq for Intervals<T> {
    fn eq(&self, other: &Self) -> bool {
        self.times == other.times
    }
}

impl<T: FlowNum> Intervals<T> {
    /// Builds the partition from all release times and deadlines.
    pub fn from_instance(instance: &Instance<T>) -> Intervals<T> {
        let mut times: Vec<T> = Vec::with_capacity(2 * instance.n());
        for j in &instance.jobs {
            times.push(j.release);
            times.push(j.deadline);
        }
        Intervals::from_times(times)
    }

    /// Builds the partition from an arbitrary list of event times
    /// (duplicates are removed; order is normalized).
    pub fn from_times(mut times: Vec<T>) -> Intervals<T> {
        times.sort_by(|a, b| a.partial_cmp(b).expect("event times must be comparable"));
        times.dedup_by(|a, b| a == b);
        Intervals::from_sorted_times(times)
    }

    /// Builds the partition from times that are already sorted and distinct
    /// (as maintained by an [`EventPartition`]), skipping the sort.
    pub fn from_sorted_times(times: Vec<T>) -> Intervals<T> {
        debug_assert!(
            times.windows(2).all(|w| w[0] < w[1]),
            "from_sorted_times requires strictly increasing times"
        );
        let dir = times.iter().step_by(DIR_FANOUT).cloned().collect();
        Intervals { times, dir }
    }

    /// Number of intervals (`|𝓘| − 1`; zero for degenerate inputs).
    #[inline]
    pub fn len(&self) -> usize {
        self.times.len().saturating_sub(1)
    }

    /// `true` iff there are no intervals.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Interval `I_j = [τ_j, τ_{j+1})` (0-indexed).
    #[inline]
    pub fn bounds(&self, j: usize) -> (T, T) {
        (self.times[j], self.times[j + 1])
    }

    /// Length `|I_j|`.
    #[inline]
    pub fn length(&self, j: usize) -> T {
        self.times[j + 1] - self.times[j]
    }

    /// Total horizon length `τ_{|𝓘|} − τ_1`.
    pub fn horizon(&self) -> T {
        if self.times.is_empty() {
            T::zero()
        } else {
            *self.times.last().unwrap() - self.times[0]
        }
    }

    /// `true` iff job `job` is active in interval `j`.
    #[inline]
    pub fn job_active(&self, job: &crate::Job<T>, j: usize) -> bool {
        let (s, e) = self.bounds(j);
        job.active_in(s, e)
    }

    /// The contiguous range of interval indices `lo..hi` in which `job` is
    /// active: activity `I_j ⊆ [r, d)` is equivalent to
    /// `τ_j ≥ r ∧ τ_{j+1} ≤ d`, and both conditions are monotone in `j` on a
    /// sorted partition, so the active set is exactly one index range. The
    /// range may be empty (`lo == hi`). Agrees with [`Self::job_active`] for
    /// every job, breakpoint-aligned or not (proptested).
    pub fn range_of(&self, job: &crate::Job<T>) -> (usize, usize) {
        let n = self.len();
        let lo = self.times.partition_point(|v| *v < job.release).min(n);
        let below = self.times.partition_point(|v| !(job.deadline < *v));
        let hi = below.saturating_sub(1).min(n).max(lo);
        (lo, hi)
    }

    /// For each interval, the ids of active jobs — the adjacency structure
    /// of the paper's Fig. 1 network.
    pub fn active_sets(&self, instance: &Instance<T>) -> Vec<Vec<JobId>> {
        (0..self.len())
            .map(|j| {
                let (s, e) = self.bounds(j);
                instance.active_jobs(s, e)
            })
            .collect()
    }

    /// Largest index `i` with `times[i] ≤ t`, via the two-level directory.
    /// Caller guarantees `times[0] ≤ t` (so the result exists).
    #[inline]
    fn locate(&self, t: T) -> usize {
        let block = self.dir.partition_point(|v| !(t < *v));
        debug_assert!(block >= 1, "locate() requires times[0] <= t");
        let start = (block - 1) * DIR_FANOUT;
        let end = (start + DIR_FANOUT).min(self.times.len());
        let within = self.times[start..end].partition_point(|v| !(t < *v));
        start + within - 1
    }

    /// Index of the interval containing time `t`, if any
    /// (`τ_j ≤ t < τ_{j+1}`).
    pub fn interval_of(&self, t: T) -> Option<usize> {
        if self.times.is_empty() || t < self.times[0] || !(t < *self.times.last().unwrap()) {
            return None;
        }
        // `t < last` rules out the final breakpoint, so locate() lands on a
        // genuine interval index.
        Some(self.locate(t))
    }
}

/// A refcounted, incrementally-maintained breakpoint set.
///
/// `from_instance` re-derives the partition from scratch — an
/// O(n log n) sort per replan. Online sessions instead keep one
/// `EventPartition` alive across replans and splice each arriving or
/// expiring job's event times in and out individually: a binary search plus
/// a `memmove` of the tail, O(changed entries) of derivation work, with the
/// refcounts making duplicate event times (two jobs sharing a deadline)
/// exact rather than tolerance-based.
///
/// The partition maintained this way is *definitionally* equal to
/// `Intervals::from_times` over the surviving jobs' event times — the
/// proptests in this module drive random interleavings of insert/remove
/// against the rebuild oracle.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EventPartition<T> {
    times: Vec<T>,
    counts: Vec<u32>,
}

impl<T: FlowNum> EventPartition<T> {
    /// An empty partition.
    pub fn new() -> Self {
        EventPartition {
            times: Vec::new(),
            counts: Vec::new(),
        }
    }

    /// The sorted distinct event times currently held.
    #[inline]
    pub fn times(&self) -> &[T] {
        &self.times
    }

    /// Number of distinct event times.
    #[inline]
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// `true` iff no event times are held.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Position of `t` among the distinct times, if present.
    pub fn position_of(&self, t: &T) -> Option<usize> {
        let pos = self.times.partition_point(|v| *v < *t);
        (pos < self.times.len() && self.times[pos] == *t).then_some(pos)
    }

    /// Refcount of the distinct time at `pos`.
    #[inline]
    pub fn count_at(&self, pos: usize) -> u32 {
        self.counts[pos]
    }

    /// Adds one occurrence of `t`. Returns `(position, spliced)` where
    /// `spliced` is `true` iff the time was new and a structural splice
    /// happened (refcount bumps are `false`).
    pub fn insert(&mut self, t: T) -> (usize, bool) {
        let pos = self.times.partition_point(|v| *v < t);
        if pos < self.times.len() && self.times[pos] == t {
            self.counts[pos] += 1;
            (pos, false)
        } else {
            self.times.insert(pos, t);
            self.counts.insert(pos, 1);
            (pos, true)
        }
    }

    /// Removes one occurrence of `t`. Returns `Some((position, spliced))`
    /// with `spliced == true` iff the refcount hit zero and the time was
    /// spliced out; `None` if `t` was not present (the caller's bookkeeping
    /// has diverged and it should fall back to a full rebuild).
    pub fn remove(&mut self, t: &T) -> Option<(usize, bool)> {
        let pos = self.position_of(t)?;
        if self.counts[pos] > 1 {
            self.counts[pos] -= 1;
            Some((pos, false))
        } else {
            self.times.remove(pos);
            self.counts.remove(pos);
            Some((pos, true))
        }
    }

    /// Adds both event times of one job window.
    pub fn insert_window(&mut self, release: T, deadline: T) -> usize {
        let mut spliced = 0;
        spliced += usize::from(self.insert(release).1);
        spliced += usize::from(self.insert(deadline).1);
        spliced
    }

    /// Removes both event times of one job window; `None` if either was
    /// absent (state diverged — rebuild).
    pub fn remove_window(&mut self, release: &T, deadline: &T) -> Option<usize> {
        let a = self.remove(release)?;
        let b = self.remove(deadline)?;
        Some(usize::from(a.1) + usize::from(b.1))
    }

    /// Materializes the current distinct times as an [`Intervals`]
    /// partition (with its lookup directory).
    pub fn to_intervals(&self) -> Intervals<T> {
        Intervals::from_sorted_times(self.times.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::job;
    use mpss_numeric::rational::rat;
    use mpss_numeric::Rational;

    fn sample() -> Instance<f64> {
        Instance::new(
            2,
            vec![job(0.0, 4.0, 2.0), job(1.0, 3.0, 4.0), job(2.0, 8.0, 1.0)],
        )
        .unwrap()
    }

    #[test]
    fn partition_is_sorted_and_distinct() {
        let iv = Intervals::from_instance(&sample());
        assert_eq!(iv.times, vec![0.0, 1.0, 2.0, 3.0, 4.0, 8.0]);
        assert_eq!(iv.len(), 5);
        assert_eq!(iv.bounds(0), (0.0, 1.0));
        assert_eq!(iv.bounds(4), (4.0, 8.0));
        assert_eq!(iv.length(4), 4.0);
        assert_eq!(iv.horizon(), 8.0);
    }

    #[test]
    fn duplicate_event_times_are_merged() {
        let iv = Intervals::from_times(vec![3.0, 1.0, 3.0, 1.0, 2.0]);
        assert_eq!(iv.times, vec![1.0, 2.0, 3.0]);
        assert_eq!(iv.len(), 2);
    }

    #[test]
    fn active_sets_match_windows() {
        let ins = sample();
        let iv = Intervals::from_instance(&ins);
        let sets = iv.active_sets(&ins);
        assert_eq!(sets[0], vec![0]); // [0,1): only job 0
        assert_eq!(sets[1], vec![0, 1]); // [1,2)
        assert_eq!(sets[2], vec![0, 1, 2]); // [2,3)
        assert_eq!(sets[3], vec![0, 2]); // [3,4)
        assert_eq!(sets[4], vec![2]); // [4,8)
    }

    #[test]
    fn interval_of_locates_times() {
        let iv = Intervals::from_instance(&sample());
        assert_eq!(iv.interval_of(0.0), Some(0));
        assert_eq!(iv.interval_of(0.5), Some(0));
        assert_eq!(iv.interval_of(1.0), Some(1));
        assert_eq!(iv.interval_of(7.9), Some(4));
        assert_eq!(iv.interval_of(8.0), None);
        assert_eq!(iv.interval_of(-0.1), None);
    }

    #[test]
    fn interval_of_crosses_directory_blocks() {
        // More breakpoints than one directory block, hitting every boundary.
        let times: Vec<f64> = (0..=(3 * DIR_FANOUT as u32 + 7)).map(f64::from).collect();
        let iv = Intervals::from_times(times);
        for j in 0..iv.len() {
            let (s, e) = iv.bounds(j);
            assert_eq!(iv.interval_of(s), Some(j));
            assert_eq!(iv.interval_of(0.5 * (s + e)), Some(j));
        }
        assert_eq!(iv.interval_of(*iv.times.last().unwrap()), None);
    }

    #[test]
    fn range_of_matches_job_active() {
        let ins = sample();
        let iv = Intervals::from_instance(&ins);
        for job in &ins.jobs {
            let (lo, hi) = iv.range_of(job);
            for j in 0..iv.len() {
                assert_eq!(iv.job_active(job, j), (lo..hi).contains(&j));
            }
        }
        // Non-breakpoint-aligned and out-of-horizon windows still agree.
        for probe in [
            job(0.5, 3.5, 1.0),
            job(-2.0, -1.0, 1.0),
            job(9.0, 10.0, 1.0),
            job(0.0, 0.5, 1.0),
        ] {
            let (lo, hi) = iv.range_of(&probe);
            for j in 0..iv.len() {
                assert_eq!(
                    iv.job_active(&probe, j),
                    (lo..hi).contains(&j),
                    "{probe:?} {j}"
                );
            }
        }
    }

    #[test]
    fn event_partition_refcounts_shared_times() {
        let mut ep: EventPartition<f64> = EventPartition::new();
        assert_eq!(ep.insert_window(0.0, 4.0), 2);
        assert_eq!(ep.insert_window(1.0, 4.0), 1); // 4.0 refcounted, not spliced
        assert_eq!(ep.times(), &[0.0, 1.0, 4.0]);
        assert_eq!(ep.count_at(2), 2);
        assert_eq!(ep.remove_window(&0.0, &4.0), Some(1)); // 4.0 survives
        assert_eq!(ep.times(), &[1.0, 4.0]);
        assert_eq!(ep.remove_window(&1.0, &4.0), Some(2));
        assert!(ep.is_empty());
        // Removing an absent time reports divergence instead of panicking.
        assert_eq!(ep.remove(&7.0), None);
    }

    #[test]
    fn event_partition_matches_from_instance() {
        let ins = sample();
        let mut ep = EventPartition::new();
        for j in &ins.jobs {
            ep.insert_window(j.release, j.deadline);
        }
        assert_eq!(ep.to_intervals(), Intervals::from_instance(&ins));
    }

    #[test]
    fn exact_rational_partition() {
        let ins: Instance<Rational> = Instance::new(
            1,
            vec![
                job(rat(0, 1), rat(1, 3), rat(1, 1)),
                job(rat(1, 6), rat(1, 2), rat(1, 1)),
            ],
        )
        .unwrap();
        let iv = Intervals::from_instance(&ins);
        assert_eq!(iv.times, vec![rat(0, 1), rat(1, 6), rat(1, 3), rat(1, 2)]);
        assert_eq!(iv.length(1), rat(1, 6));
    }

    #[test]
    fn empty_instance_has_no_intervals() {
        let ins: Instance<f64> = Instance::new(1, vec![]).unwrap();
        let iv = Intervals::from_instance(&ins);
        assert!(iv.is_empty());
        assert_eq!(iv.horizon(), 0.0);
    }
}
