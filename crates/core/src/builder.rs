//! Fluent construction of instances.
//!
//! [`InstanceBuilder`] is the ergonomic front door for hand-written
//! instances (tests, examples, user code): push jobs in several notations,
//! validate once at the end.
//!
//! ```
//! use mpss_core::builder::InstanceBuilder;
//!
//! let instance = InstanceBuilder::new(2)
//!     .job(0.0, 4.0, 2.0)              // (release, deadline, volume)
//!     .window(1.0, 3.0).volume(2.0)    // split notation
//!     .periodic(0.0, 2.0, 3, 1.0)      // 3 jobs, period 2, volume 1 each
//!     .build()
//!     .unwrap();
//! assert_eq!(instance.n(), 5);
//! ```

use crate::{Instance, Job, ModelError};

/// Builder for [`Instance<f64>`].
#[derive(Clone, Debug)]
pub struct InstanceBuilder {
    m: usize,
    jobs: Vec<Job<f64>>,
    pending_window: Option<(f64, f64)>,
}

impl InstanceBuilder {
    /// Starts an instance on `m` processors.
    pub fn new(m: usize) -> InstanceBuilder {
        InstanceBuilder {
            m,
            jobs: Vec::new(),
            pending_window: None,
        }
    }

    /// Adds a job in one call.
    pub fn job(mut self, release: f64, deadline: f64, volume: f64) -> Self {
        self.jobs.push(Job::new(release, deadline, volume));
        self
    }

    /// Stages a window; follow with [`volume`](InstanceBuilder::volume).
    pub fn window(mut self, release: f64, deadline: f64) -> Self {
        self.pending_window = Some((release, deadline));
        self
    }

    /// Completes a staged [`window`](InstanceBuilder::window) with its
    /// volume.
    ///
    /// # Panics
    /// Panics if no window is staged.
    pub fn volume(mut self, volume: f64) -> Self {
        let (r, d) = self
            .pending_window
            .take()
            .expect("volume() without a preceding window()");
        self.jobs.push(Job::new(r, d, volume));
        self
    }

    /// Adds `count` implicit-deadline periodic jobs: releases at
    /// `start + i·period`, deadline one period later, `volume` each.
    pub fn periodic(mut self, start: f64, period: f64, count: usize, volume: f64) -> Self {
        for i in 0..count {
            let r = start + i as f64 * period;
            self.jobs.push(Job::new(r, r + period, volume));
        }
        self
    }

    /// Adds `count` copies of the same job.
    pub fn copies(mut self, release: f64, deadline: f64, volume: f64, count: usize) -> Self {
        for _ in 0..count {
            self.jobs.push(Job::new(release, deadline, volume));
        }
        self
    }

    /// Number of jobs added so far.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// `true` iff no jobs were added yet.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Validates and finishes the instance.
    ///
    /// # Panics
    /// Panics if a staged window was never completed with a volume.
    pub fn build(self) -> Result<Instance<f64>, ModelError> {
        assert!(
            self.pending_window.is_none(),
            "window() staged without a matching volume()"
        );
        Instance::new(self.m, self.jobs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fluent_combinations() {
        let ins = InstanceBuilder::new(3)
            .job(0.0, 2.0, 1.0)
            .copies(1.0, 4.0, 2.0, 2)
            .periodic(0.0, 3.0, 2, 1.5)
            .build()
            .unwrap();
        assert_eq!(ins.m, 3);
        assert_eq!(ins.n(), 5);
        assert_eq!(ins.jobs[1], ins.jobs[2]);
        assert_eq!(ins.jobs[4].release, 3.0);
        assert_eq!(ins.jobs[4].deadline, 6.0);
    }

    #[test]
    fn window_volume_pairing() {
        let ins = InstanceBuilder::new(1)
            .window(1.0, 5.0)
            .volume(2.0)
            .build()
            .unwrap();
        assert_eq!(ins.jobs[0].window(), 4.0);
        assert_eq!(ins.jobs[0].volume, 2.0);
    }

    #[test]
    #[should_panic(expected = "without a preceding window")]
    fn volume_without_window_panics() {
        let _ = InstanceBuilder::new(1).volume(2.0);
    }

    #[test]
    #[should_panic(expected = "without a matching volume")]
    fn dangling_window_panics() {
        let _ = InstanceBuilder::new(1).window(0.0, 1.0).build();
    }

    #[test]
    fn invalid_jobs_surface_at_build() {
        let err = InstanceBuilder::new(1)
            .job(2.0, 2.0, 1.0)
            .build()
            .unwrap_err();
        assert_eq!(err, ModelError::EmptyWindow { job: 0 });
    }

    #[test]
    fn len_and_empty() {
        let b = InstanceBuilder::new(1);
        assert!(b.is_empty());
        let b = b.job(0.0, 1.0, 1.0);
        assert_eq!(b.len(), 1);
    }
}
