//! Jobs: the atomic unit of work.

use mpss_numeric::{FlowNum, Rational};
use serde::{Deserialize, Serialize};

/// Index of a job within its [`Instance`](crate::Instance).
pub type JobId = usize;

/// A job in the deadline-based speed-scaling model: `volume` units of work
/// that must be executed entirely within `[release, deadline)`.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Job<T> {
    /// Release time `r_i`: the job cannot run earlier.
    pub release: T,
    /// Deadline `d_i`: the job must be finished strictly by this time.
    pub deadline: T,
    /// Processing volume `w_i` (CPU cycles); at speed `s` the job needs
    /// `w_i / s` time units.
    pub volume: T,
}

impl<T: FlowNum> Job<T> {
    /// Creates a job. Invariants (`release < deadline`, `volume > 0`) are
    /// enforced by [`Instance::new`](crate::Instance::new), not here, so
    /// that deliberately invalid jobs can be built in tests.
    pub fn new(release: T, deadline: T, volume: T) -> Job<T> {
        Job {
            release,
            deadline,
            volume,
        }
    }

    /// Window length `d_i − r_i`.
    #[inline]
    pub fn window(&self) -> T {
        self.deadline - self.release
    }

    /// Density `δ_i = w_i / (d_i − r_i)`: the minimum average speed needed
    /// if the job is spread over its whole window. Central to `AVR(m)`.
    #[inline]
    pub fn density(&self) -> T {
        self.volume / self.window()
    }

    /// `true` iff the job may run throughout `[start, end)`,
    /// i.e. `[start, end) ⊆ [r_i, d_i)`.
    #[inline]
    pub fn active_in(&self, start: T, end: T) -> bool {
        !(start < self.release) && !(self.deadline < end)
    }

    /// Converts the job to `f64` coordinates.
    pub fn to_f64(&self) -> Job<f64> {
        Job {
            release: self.release.to_f64(),
            deadline: self.deadline.to_f64(),
            volume: self.volume.to_f64(),
        }
    }
}

impl Job<f64> {
    /// Converts an `f64` job with small-decimal coordinates to exact
    /// rational coordinates (see [`Rational::approx_from_f64`]).
    pub fn to_rational(&self) -> Job<Rational> {
        Job {
            release: Rational::approx_from_f64(self.release),
            deadline: Rational::approx_from_f64(self.deadline),
            volume: Rational::approx_from_f64(self.volume),
        }
    }
}

/// Shorthand constructor used pervasively in tests and examples:
/// `job(0.0, 10.0, 5.0)` releases at 0, is due at 10, and carries 5 units.
#[inline]
pub fn job<T: FlowNum>(release: T, deadline: T, volume: T) -> Job<T> {
    Job::new(release, deadline, volume)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpss_numeric::rational::rat;

    #[test]
    fn window_and_density() {
        let j = job(2.0, 10.0, 4.0);
        assert_eq!(j.window(), 8.0);
        assert_eq!(j.density(), 0.5);
    }

    #[test]
    fn density_is_exact_in_rationals() {
        let j = job(rat(0, 1), rat(3, 1), rat(1, 1));
        assert_eq!(j.density(), rat(1, 3));
    }

    #[test]
    fn active_in_respects_window_boundaries() {
        let j = job(2.0, 10.0, 4.0);
        assert!(j.active_in(2.0, 10.0));
        assert!(j.active_in(3.0, 5.0));
        assert!(!j.active_in(1.0, 5.0));
        assert!(!j.active_in(3.0, 11.0));
    }

    #[test]
    fn conversions_roundtrip() {
        let j = job(0.5, 2.25, 1.0);
        let r = j.to_rational();
        assert_eq!(r.release, rat(1, 2));
        assert_eq!(r.deadline, rat(9, 4));
        assert_eq!(r.to_f64(), j);
    }

    #[test]
    fn serde_roundtrip() {
        let j = job(1.0, 4.0, 2.0);
        let s = serde_json::to_string(&j).unwrap();
        let back: Job<f64> = serde_json::from_str(&s).unwrap();
        assert_eq!(back, j);
    }
}
