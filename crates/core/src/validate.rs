//! Independent feasibility validation of schedules.
//!
//! Every algorithm's output in this workspace is run through this checker,
//! which knows nothing about how the schedule was built. A feasible
//! schedule must:
//!
//! 1. reference only processors `0..m` and have well-formed segments;
//! 2. never run two things on one processor at once;
//! 3. never run one job on two processors at once (the paper's model
//!    forbids parallel execution of a single job);
//! 4. execute every job entirely within `[r_i, d_i)`;
//! 5. complete every job's volume exactly.

use crate::{Instance, JobId, Schedule};
use mpss_numeric::FlowNum;

/// A feasibility violation, with enough context to debug the offending
/// algorithm.
#[derive(Debug, Clone, PartialEq)]
pub enum ScheduleViolation {
    /// A segment references a processor ≥ m.
    BadProcessor {
        seg_index: usize,
        proc: usize,
        m: usize,
    },
    /// A segment references an unknown job.
    BadJob { seg_index: usize, job: JobId },
    /// A segment has `end ≤ start` or non-positive speed.
    MalformedSegment { seg_index: usize },
    /// Two segments overlap on one processor.
    ProcessorOverlap { proc: usize, t: f64 },
    /// One job runs on two processors simultaneously.
    ParallelExecution { job: JobId, t: f64 },
    /// A job runs outside its `[release, deadline)` window.
    OutsideWindow { job: JobId, t: f64 },
    /// A job's completed work differs from its volume.
    WrongVolume { job: JobId, done: f64, volume: f64 },
}

impl std::fmt::Display for ScheduleViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        use ScheduleViolation::*;
        match self {
            BadProcessor { seg_index, proc, m } => {
                write!(
                    f,
                    "segment #{seg_index}: processor {proc} out of range (m = {m})"
                )
            }
            BadJob { seg_index, job } => write!(f, "segment #{seg_index}: unknown job {job}"),
            MalformedSegment { seg_index } => write!(f, "segment #{seg_index}: malformed"),
            ProcessorOverlap { proc, t } => {
                write!(f, "processor {proc}: overlapping segments around t = {t}")
            }
            ParallelExecution { job, t } => {
                write!(f, "job {job}: runs on two processors around t = {t}")
            }
            OutsideWindow { job, t } => write!(f, "job {job}: executed outside window at t = {t}"),
            WrongVolume { job, done, volume } => {
                write!(f, "job {job}: completed {done} of {volume} units")
            }
        }
    }
}

/// Validates `schedule` against `instance`, collecting all violations.
///
/// `eps` is the relative tolerance applied on the `f64` path (exact types
/// ignore it). The scale for time comparisons is the scheduling horizon;
/// the scale for volume comparisons is each job's volume.
pub fn validate_schedule<T: FlowNum>(
    instance: &Instance<T>,
    schedule: &Schedule<T>,
    eps: f64,
) -> Result<(), Vec<ScheduleViolation>> {
    let mut violations = Vec::new();
    let horizon = instance
        .max_deadline()
        .unwrap_or_else(T::zero)
        .max2(T::one());

    // 1. Segment sanity.
    for (k, s) in schedule.segments.iter().enumerate() {
        if s.proc >= schedule.m {
            violations.push(ScheduleViolation::BadProcessor {
                seg_index: k,
                proc: s.proc,
                m: schedule.m,
            });
        }
        if s.job >= instance.n() {
            violations.push(ScheduleViolation::BadJob {
                seg_index: k,
                job: s.job,
            });
        }
        if !(s.start < s.end) || !s.speed.is_strictly_positive() {
            violations.push(ScheduleViolation::MalformedSegment { seg_index: k });
        }
    }
    if !violations.is_empty() {
        return Err(violations);
    }

    // 2. Per-processor non-overlap.
    let mut by_proc: Vec<(usize, T, T)> = schedule
        .segments
        .iter()
        .map(|s| (s.proc, s.start, s.end))
        .collect();
    by_proc.sort_by(|a, b| {
        a.0.cmp(&b.0)
            .then(a.1.partial_cmp(&b.1).expect("comparable times"))
    });
    for w in by_proc.windows(2) {
        let (p0, _, e0) = w[0];
        let (p1, s1, _) = w[1];
        if p0 == p1 && T::definitely_lt(s1, e0, horizon, eps) {
            violations.push(ScheduleViolation::ProcessorOverlap {
                proc: p0,
                t: s1.to_f64(),
            });
        }
    }

    // 3. Per-job non-parallelism (across all processors).
    let mut by_job: Vec<(JobId, T, T)> = schedule
        .segments
        .iter()
        .map(|s| (s.job, s.start, s.end))
        .collect();
    by_job.sort_by(|a, b| {
        a.0.cmp(&b.0)
            .then(a.1.partial_cmp(&b.1).expect("comparable times"))
    });
    for w in by_job.windows(2) {
        let (j0, _, e0) = w[0];
        let (j1, s1, _) = w[1];
        if j0 == j1 && T::definitely_lt(s1, e0, horizon, eps) {
            violations.push(ScheduleViolation::ParallelExecution {
                job: j0,
                t: s1.to_f64(),
            });
        }
    }

    // 4. Window containment.
    for s in &schedule.segments {
        let job = &instance.jobs[s.job];
        if T::definitely_lt(s.start, job.release, horizon, eps)
            || T::definitely_lt(job.deadline, s.end, horizon, eps)
        {
            violations.push(ScheduleViolation::OutsideWindow {
                job: s.job,
                t: s.start.to_f64(),
            });
        }
    }

    // 5. Volume completion.
    for (id, job) in instance.jobs.iter().enumerate() {
        let done = schedule.work_of(id);
        if !T::close(done, job.volume, job.volume, eps) {
            violations.push(ScheduleViolation::WrongVolume {
                job: id,
                done: done.to_f64(),
                volume: job.volume.to_f64(),
            });
        }
    }

    if violations.is_empty() {
        Ok(())
    } else {
        Err(violations)
    }
}

/// Panicking wrapper used by tests: validates and formats all violations.
pub fn assert_feasible<T: FlowNum>(instance: &Instance<T>, schedule: &Schedule<T>, eps: f64) {
    if let Err(vs) = validate_schedule(instance, schedule, eps) {
        let mut msg = String::from("infeasible schedule:\n");
        for v in vs {
            msg.push_str(&format!("  - {v}\n"));
        }
        panic!("{msg}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::job;
    use crate::Segment;

    fn instance() -> Instance<f64> {
        Instance::new(2, vec![job(0.0, 4.0, 4.0), job(1.0, 3.0, 2.0)]).unwrap()
    }

    fn seg(job: JobId, proc: usize, start: f64, end: f64, speed: f64) -> Segment<f64> {
        Segment {
            job,
            proc,
            start,
            end,
            speed,
        }
    }

    #[test]
    fn accepts_a_feasible_schedule() {
        let ins = instance();
        let mut s = Schedule::new(2);
        s.push(seg(0, 0, 0.0, 4.0, 1.0));
        s.push(seg(1, 1, 1.0, 3.0, 1.0));
        assert!(validate_schedule(&ins, &s, 1e-9).is_ok());
    }

    #[test]
    fn accepts_migration_without_overlap() {
        let ins = instance();
        let mut s = Schedule::new(2);
        s.push(seg(0, 0, 0.0, 2.0, 1.0));
        s.push(seg(0, 1, 2.0, 4.0, 1.0)); // migrates at t = 2
        s.push(seg(1, 1, 1.0, 2.0, 2.0));
        assert!(validate_schedule(&ins, &s, 1e-9).is_ok());
    }

    #[test]
    fn detects_processor_overlap() {
        let ins = instance();
        let mut s = Schedule::new(2);
        s.push(seg(0, 0, 0.0, 4.0, 1.0));
        s.push(seg(1, 0, 1.0, 3.0, 1.0));
        let errs = validate_schedule(&ins, &s, 1e-9).unwrap_err();
        assert!(errs
            .iter()
            .any(|v| matches!(v, ScheduleViolation::ProcessorOverlap { proc: 0, .. })));
    }

    #[test]
    fn detects_parallel_execution_of_one_job() {
        let ins = Instance::new(2, vec![job(0.0, 4.0, 8.0)]).unwrap();
        let mut s = Schedule::new(2);
        s.push(seg(0, 0, 0.0, 4.0, 1.0));
        s.push(seg(0, 1, 0.0, 4.0, 1.0));
        let errs = validate_schedule(&ins, &s, 1e-9).unwrap_err();
        assert!(errs
            .iter()
            .any(|v| matches!(v, ScheduleViolation::ParallelExecution { job: 0, .. })));
    }

    #[test]
    fn detects_window_violation() {
        let ins = instance();
        let mut s = Schedule::new(2);
        s.push(seg(1, 0, 0.5, 2.5, 1.0)); // job 1 releases at 1.0
        s.push(seg(0, 1, 0.0, 4.0, 1.0));
        let errs = validate_schedule(&ins, &s, 1e-9).unwrap_err();
        assert!(errs
            .iter()
            .any(|v| matches!(v, ScheduleViolation::OutsideWindow { job: 1, .. })));
    }

    #[test]
    fn detects_incomplete_volume() {
        let ins = instance();
        let mut s = Schedule::new(2);
        s.push(seg(0, 0, 0.0, 4.0, 1.0));
        s.push(seg(1, 1, 1.0, 2.0, 1.0)); // only 1 of 2 units
        let errs = validate_schedule(&ins, &s, 1e-9).unwrap_err();
        assert!(errs
            .iter()
            .any(|v| matches!(v, ScheduleViolation::WrongVolume { job: 1, .. })));
    }

    #[test]
    fn detects_bad_processor_and_job() {
        let ins = instance();
        let mut s = Schedule::new(2);
        s.segments.push(seg(5, 3, 0.0, 1.0, 1.0));
        let errs = validate_schedule(&ins, &s, 1e-9).unwrap_err();
        assert!(errs
            .iter()
            .any(|v| matches!(v, ScheduleViolation::BadProcessor { proc: 3, .. })));
        assert!(errs
            .iter()
            .any(|v| matches!(v, ScheduleViolation::BadJob { job: 5, .. })));
    }

    #[test]
    fn tolerates_float_noise_within_eps() {
        let ins = instance();
        let mut s = Schedule::new(2);
        s.push(seg(0, 0, 0.0, 4.0, 1.0 + 1e-12));
        s.push(seg(1, 1, 1.0, 3.0, 1.0 - 1e-12));
        assert!(validate_schedule(&ins, &s, 1e-9).is_ok());
    }

    #[test]
    #[should_panic(expected = "infeasible schedule")]
    fn assert_feasible_panics_with_context() {
        let ins = instance();
        let s = Schedule::new(2); // nothing scheduled
        assert_feasible(&ins, &s, 1e-9);
    }
}
