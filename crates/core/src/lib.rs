//! Problem model for multi-processor speed scaling with migration.
//!
//! This crate defines the shared vocabulary of the `mpss` workspace,
//! following the model of Yao–Demers–Shenker (FOCS 1995) as extended to `m`
//! parallel processors by Albers–Antoniadis–Greiner (SPAA 2011):
//!
//! * [`Job`] — release time `r`, deadline `d`, processing volume `w`;
//! * [`Instance`] — a job set plus the processor count `m`;
//! * [`Intervals`] — the canonical partition of the time horizon at job
//!   release times and deadlines (the `I_j` of the paper);
//! * [`PowerFunction`] — convex non-decreasing `P(s)`, with the classical
//!   `P(s) = s^α` as [`power::Polynomial`];
//! * [`Schedule`] — a set of constant-speed execution [`Segment`]s on
//!   identified processors;
//! * [`validate::validate_schedule`] — the independent feasibility checker
//!   every algorithm's output is run through;
//! * [`energy`] — energy accounting, in `f64` for arbitrary power functions
//!   and exactly (rational) for integer `α`.
//!
//! Everything time-valued is generic over [`FlowNum`](mpss_numeric::FlowNum)
//! so the whole pipeline runs in guarded `f64` or exact rationals.
//!
//! ```
//! use mpss_core::job::job;
//! use mpss_core::energy::schedule_energy;
//! use mpss_core::power::Polynomial;
//! use mpss_core::validate::validate_schedule;
//! use mpss_core::{Instance, Intervals, Schedule, Segment};
//!
//! let instance = Instance::new(2, vec![
//!     job(0.0, 4.0, 2.0),   // (release, deadline, volume): density 1/2
//!     job(1.0, 3.0, 4.0),   // density 2
//! ]).unwrap();
//!
//! // The event partition splits the horizon at releases and deadlines.
//! let iv = Intervals::from_instance(&instance);
//! assert_eq!(iv.times, vec![0.0, 1.0, 3.0, 4.0]);
//!
//! // Build a schedule by hand and validate + price it.
//! let mut s = Schedule::new(2);
//! s.push(Segment { job: 0, proc: 0, start: 0.0, end: 4.0, speed: 0.5 });
//! s.push(Segment { job: 1, proc: 1, start: 1.0, end: 3.0, speed: 2.0 });
//! assert!(validate_schedule(&instance, &s, 1e-9).is_ok());
//! let e = schedule_energy(&s, &Polynomial::new(2.0)); // 0.25·4 + 4·2
//! assert!((e - 9.0).abs() < 1e-12);
//! ```

// `!(a < b)` on our FlowNum types deliberately reads as "b ≤ a, treating
// incomparable (impossible for validated inputs) as false"; rewriting via
// partial_cmp would obscure the tolerance-free intent.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod builder;
pub mod energy;
pub mod error;
pub mod instance;
pub mod intervals;
pub mod job;
pub mod power;
pub mod schedule;
pub mod transform;
pub mod validate;

pub use error::ModelError;
pub use instance::Instance;
pub use intervals::{EventPartition, Intervals};
pub use job::{Job, JobId};
pub use power::PowerFunction;
pub use schedule::{Schedule, Segment};

#[cfg(test)]
mod proptests;
