//! Property-based tests for the model types: schedule algebra (normalize,
//! restrict), interval partitions, and validator consistency.

use crate::job::job;
use crate::validate::validate_schedule;
use crate::{EventPartition, Instance, Intervals, Schedule, Segment};
use proptest::prelude::*;

/// Strategy: a random (possibly infeasible) schedule on `m` processors.
fn arb_schedule(m: usize) -> impl Strategy<Value = Schedule<f64>> {
    proptest::collection::vec((0usize..6, 0usize..m, 0u32..20, 1u32..8, 1u32..5), 0..12).prop_map(
        move |raw| {
            let mut s = Schedule::new(m);
            for (jobid, proc, start, dur, speed) in raw {
                s.push(Segment {
                    job: jobid,
                    proc,
                    start: start as f64,
                    end: (start + dur) as f64,
                    speed: speed as f64,
                });
            }
            s
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(if cfg!(miri) { 4 } else { 64 }))]

    /// normalize() preserves every observable quantity.
    #[test]
    fn normalize_preserves_work_and_speeds(s in arb_schedule(3)) {
        let mut n = s.clone();
        n.normalize();
        prop_assert!((n.total_work() - s.total_work()).abs() <= 1e-9 * s.total_work().max(1.0));
        for k in 0..6 {
            prop_assert!((n.work_of(k) - s.work_of(k)).abs() <= 1e-9);
        }
        prop_assert!(n.len() <= s.len());
        // Idempotent.
        let snap = n.clone();
        n.normalize();
        prop_assert_eq!(n, snap);
    }

    /// restrict() composes: restricting twice equals restricting to the
    /// intersection.
    #[test]
    fn restrict_composes(s in arb_schedule(3), a in 0u32..15, len1 in 1u32..10, b in 0u32..15, len2 in 1u32..10) {
        let (a, b) = (a as f64, b as f64);
        let (e1, e2) = (a + len1 as f64, b + len2 as f64);
        let mut lhs = s.restrict(a, e1).restrict(b, e2);
        let lo = a.max(b);
        let hi = e1.min(e2);
        let mut rhs = if lo < hi { s.restrict(lo, hi) } else { Schedule::new(3) };
        lhs.normalize();
        rhs.normalize();
        prop_assert_eq!(lhs, rhs);
    }

    /// restrict() never creates work out of thin air.
    #[test]
    fn restrict_is_monotone_in_work(s in arb_schedule(2), a in 0u32..10, len in 1u32..10) {
        let r = s.restrict(a as f64, (a + len) as f64);
        prop_assert!(r.total_work() <= s.total_work() + 1e-9);
        prop_assert!(r.len() <= s.len());
    }

    /// Interval partitions are sorted, distinct, and cover the horizon.
    #[test]
    fn intervals_partition_the_horizon(raw in proptest::collection::vec((0u32..30, 1u32..10, 1u32..5), 1..8)) {
        let jobs: Vec<_> = raw
            .iter()
            .map(|&(r, d, w)| job(r as f64, (r + d) as f64, w as f64))
            .collect();
        let ins = Instance::new(2, jobs).unwrap();
        let iv = Intervals::from_instance(&ins);
        for w in iv.times.windows(2) {
            prop_assert!(w[0] < w[1], "not strictly sorted");
        }
        let total: f64 = (0..iv.len()).map(|j| iv.length(j)).sum();
        prop_assert!((total - iv.horizon()).abs() < 1e-12);
        // Every job's window is a union of whole intervals.
        for job in &ins.jobs {
            prop_assert!(iv.times.contains(&job.release));
            prop_assert!(iv.times.contains(&job.deadline));
        }
        // interval_of() inverts bounds().
        for j in 0..iv.len() {
            let (s, e) = iv.bounds(j);
            prop_assert_eq!(iv.interval_of(0.5 * (s + e)), Some(j));
        }
    }

    /// Incremental partition maintenance is exact: any interleaving of
    /// single-job insert/remove splices on an [`EventPartition`] yields the
    /// same partition as rebuilding `from_instance` over the surviving jobs,
    /// including refcounted duplicate event times.
    #[test]
    fn event_partition_equals_rebuild(
        raw in proptest::collection::vec((0u32..12, 1u32..8, 1u32..5), 1..10),
        kills in proptest::collection::vec(0u32..2, 10..11),
    ) {
        let jobs: Vec<_> = raw
            .iter()
            .map(|&(r, d, w)| job(r as f64, (r + d) as f64, w as f64))
            .collect();
        let mut ep = EventPartition::new();
        let mut alive = vec![false; jobs.len()];
        // Insert everything, then remove a random subset, checking the
        // rebuild oracle after every structural change.
        for (k, j) in jobs.iter().enumerate() {
            ep.insert_window(j.release, j.deadline);
            alive[k] = true;
        }
        for (k, kill) in kills.iter().enumerate().take(jobs.len()) {
            if *kill == 1 {
                let j = &jobs[k];
                prop_assert!(ep.remove_window(&j.release, &j.deadline).is_some());
                alive[k] = false;
            }
            let survivors: Vec<_> = jobs
                .iter()
                .enumerate()
                .filter(|&(i, _)| alive[i])
                .map(|(_, j)| *j)
                .collect();
            let mut expect: Vec<f64> = survivors
                .iter()
                .flat_map(|j| [j.release, j.deadline])
                .collect();
            expect.sort_by(f64::total_cmp);
            expect.dedup();
            prop_assert_eq!(ep.times(), &expect[..]);
            prop_assert_eq!(ep.to_intervals(), Intervals::from_times(expect));
        }
    }

    /// `range_of` agrees with the per-interval `job_active` predicate for
    /// arbitrary probe windows, breakpoint-aligned or not.
    #[test]
    fn range_of_agrees_with_job_active(
        raw in proptest::collection::vec((0u32..30, 1u32..10, 1u32..5), 1..8),
        probes in proptest::collection::vec((0u32..40, 1u32..10), 1..8),
    ) {
        let jobs: Vec<_> = raw
            .iter()
            .map(|&(r, d, w)| job(r as f64, (r + d) as f64, w as f64))
            .collect();
        let ins = Instance::new(2, jobs).unwrap();
        let iv = Intervals::from_instance(&ins);
        let windows = ins
            .jobs
            .iter()
            .cloned()
            .chain(probes.iter().map(|&(r, d)| job(r as f64 + 0.5, r as f64 + 0.5 + d as f64, 1.0)));
        for probe in windows {
            let (lo, hi) = iv.range_of(&probe);
            prop_assert!(lo <= hi && hi <= iv.len());
            for j in 0..iv.len() {
                prop_assert_eq!(iv.job_active(&probe, j), (lo..hi).contains(&j));
            }
        }
    }

    /// The validator is invariant under normalize(): a schedule and its
    /// normal form are accepted/rejected together.
    #[test]
    fn validator_agrees_with_normalized_form(s in arb_schedule(2), raw in proptest::collection::vec((0u32..10, 1u32..10, 1u32..40), 1..6)) {
        let jobs: Vec<_> = raw
            .iter()
            .map(|&(r, d, w)| job(r as f64, (r + d) as f64, w as f64))
            .collect();
        let ins = Instance::new(2, jobs).unwrap();
        // Keep only segments referencing real jobs to avoid trivial rejections.
        let mut s = s;
        s.segments.retain(|seg| seg.job < ins.n());
        let mut n = s.clone();
        n.normalize();
        let v1 = validate_schedule(&ins, &s, 1e-9).is_ok();
        let v2 = validate_schedule(&ins, &n, 1e-9).is_ok();
        prop_assert_eq!(v1, v2);
    }
}
