//! Energy accounting.
//!
//! Energy is power integrated over time; for a piecewise-constant-speed
//! [`Schedule`] it is the finite sum `Σ P(speed_k) · duration_k` over
//! segments. Idle processors draw `P(0)` — for the classical `P(s) = s^α`
//! that is zero, but for power functions with static power (`P(0) > 0`) the
//! idle term matters, so [`schedule_energy_with_idle`] accounts it over an
//! explicit horizon.

use crate::{PowerFunction, Schedule};
use mpss_numeric::{FlowNum, KahanLanes, Rational};

/// Energy of `schedule` under power function `p`, ignoring idle power
/// (exact for `P(0) = 0`, e.g. `P(s) = s^α`). Uses lane-split compensated
/// summation: four independent Kahan lanes, so long schedules accumulate
/// without one serial add chain and without giving up error compensation.
pub fn schedule_energy(schedule: &Schedule<f64>, p: &impl PowerFunction) -> f64 {
    let mut sum = KahanLanes::new();
    for s in &schedule.segments {
        sum.add(p.power(s.speed) * s.duration());
    }
    sum.value()
}

/// Energy of `schedule` under `p`, charging every processor `P(0)` while
/// idle within `[t0, t1)`.
pub fn schedule_energy_with_idle(
    schedule: &Schedule<f64>,
    p: &impl PowerFunction,
    t0: f64,
    t1: f64,
) -> f64 {
    let idle_power = p.power(0.0);
    let mut sum = KahanLanes::new();
    let mut busy = KahanLanes::new();
    for s in &schedule.segments {
        sum.add(p.power(s.speed) * s.duration());
        busy.add(s.duration());
    }
    let total_proc_time = (t1 - t0) * schedule.m as f64;
    sum.add(idle_power * (total_proc_time - busy.value()).max(0.0));
    sum.value()
}

/// Exact energy of a rational schedule under `P(s) = s^α` for integer `α`.
/// Rational addition is associative, so the lane-split order is free
/// throughput here, not a rounding choice.
pub fn schedule_energy_exact(schedule: &Schedule<Rational>, alpha: u32) -> Rational {
    let terms: Vec<Rational> = schedule
        .segments
        .iter()
        .map(|s| s.speed.pow(alpha) * s.duration())
        .collect();
    mpss_numeric::sum_lanes(&terms)
}

/// Generic energy under `P(s) = s^α` for integer `α`, usable with both
/// numeric modes (integer powers only).
pub fn schedule_energy_poly<T: FlowNum>(schedule: &Schedule<T>, alpha: u32) -> T {
    let terms: Vec<T> = schedule
        .segments
        .iter()
        .map(|s| {
            let mut p = T::one();
            for _ in 0..alpha {
                p = p * s.speed;
            }
            p * s.duration()
        })
        .collect();
    mpss_numeric::sum_lanes(&terms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power::{AffinePolynomial, Polynomial};
    use crate::Segment;
    use mpss_numeric::rational::rat;

    fn simple_schedule() -> Schedule<f64> {
        let mut s = Schedule::new(2);
        s.push(Segment {
            job: 0,
            proc: 0,
            start: 0.0,
            end: 2.0,
            speed: 3.0,
        });
        s.push(Segment {
            job: 1,
            proc: 1,
            start: 0.0,
            end: 1.0,
            speed: 2.0,
        });
        s
    }

    #[test]
    fn energy_under_square_law() {
        // 9·2 + 4·1 = 22
        assert_eq!(
            schedule_energy(&simple_schedule(), &Polynomial::new(2.0)),
            22.0
        );
    }

    #[test]
    fn energy_with_static_idle_power() {
        // P(s) = s² + 1: busy 22 + busy-time static (2+1) and idle (2·4 − 3) = 5 idle units.
        let p = AffinePolynomial::new(1.0, 2.0, 0.0, 1.0);
        let e = schedule_energy_with_idle(&simple_schedule(), &p, 0.0, 4.0);
        // Busy energy: (9+1)*2 + (4+1)*1 = 25; idle: 5 * 1 = 5.
        assert!((e - 30.0).abs() < 1e-12, "e = {e}");
    }

    #[test]
    fn exact_energy_matches_float() {
        let mut s = Schedule::new(1);
        s.push(Segment {
            job: 0,
            proc: 0,
            start: rat(0, 1),
            end: rat(3, 2),
            speed: rat(4, 3),
        });
        let exact = schedule_energy_exact(&s, 3);
        // (4/3)³ · 3/2 = 64/27 · 3/2 = 32/9
        assert_eq!(exact, rat(32, 9));
        assert!(
            (exact.to_f64() - schedule_energy(&s.to_f64(), &Polynomial::new(3.0))).abs() < 1e-12
        );
    }

    #[test]
    fn generic_poly_energy_agrees_with_both_paths() {
        let s = simple_schedule();
        let g = schedule_energy_poly(&s, 2);
        assert_eq!(g, 22.0);
    }

    #[test]
    fn empty_schedule_has_zero_energy() {
        let s: Schedule<f64> = Schedule::new(4);
        assert_eq!(schedule_energy(&s, &Polynomial::cube()), 0.0);
    }
}
