//! Instance transformations.
//!
//! Speed scaling has clean functional symmetries — `P(s) = s^α` is
//! homogeneous, so time dilation, volume scaling and time translation act
//! on optimal energy by known factors. These transforms are used by the
//! fuzz-suite (the symmetries are strong whole-pipeline invariants) and by
//! users normalizing traces (e.g. rebasing a trace to start at 0, or
//! rescaling volumes to a common unit).

use crate::{Instance, Job};
use mpss_numeric::FlowNum;

/// Translates all times by `delta` (release and deadline).
///
/// Optimal energy is invariant under translation.
pub fn shift_time<T: FlowNum>(instance: &Instance<T>, delta: T) -> Instance<T> {
    Instance {
        m: instance.m,
        jobs: instance
            .jobs
            .iter()
            .map(|j| Job::new(j.release + delta, j.deadline + delta, j.volume))
            .collect(),
    }
}

/// Dilates time by `c > 0` (releases and deadlines multiply by `c`).
///
/// Under `P(s) = s^α`, optimal energy scales by `c^{1−α}` (speeds divide by
/// `c`, durations multiply by `c`).
pub fn dilate_time<T: FlowNum>(instance: &Instance<T>, c: T) -> Instance<T> {
    assert!(c.is_strictly_positive(), "dilation factor must be positive");
    Instance {
        m: instance.m,
        jobs: instance
            .jobs
            .iter()
            .map(|j| Job::new(j.release * c, j.deadline * c, j.volume))
            .collect(),
    }
}

/// Scales all volumes by `c > 0`.
///
/// Under `P(s) = s^α`, optimal energy scales by `c^α`.
pub fn scale_volumes<T: FlowNum>(instance: &Instance<T>, c: T) -> Instance<T> {
    assert!(c.is_strictly_positive(), "volume factor must be positive");
    Instance {
        m: instance.m,
        jobs: instance
            .jobs
            .iter()
            .map(|j| Job::new(j.release, j.deadline, j.volume * c))
            .collect(),
    }
}

/// Reverses time around the horizon: job `(r, d, w)` becomes
/// `(T_max − d, T_max − r, w)` where `T_max` is the latest deadline.
///
/// Optimal *offline* energy is invariant under reversal (the constraint
/// structure is symmetric); online algorithms are not — which is exactly
/// why the fuzz-suite uses this transform on the offline path only.
pub fn reverse_time<T: FlowNum>(instance: &Instance<T>) -> Instance<T> {
    let t_max = instance.max_deadline().unwrap_or_else(T::zero);
    Instance {
        m: instance.m,
        jobs: instance
            .jobs
            .iter()
            .map(|j| Job::new(t_max - j.deadline, t_max - j.release, j.volume))
            .collect(),
    }
}

/// Rebases the instance to start at time zero (shift by `−min release`).
pub fn rebase_to_zero<T: FlowNum>(instance: &Instance<T>) -> Instance<T> {
    match instance.min_release() {
        Some(r0) => shift_time(instance, T::zero() - r0),
        None => instance.clone(),
    }
}

/// Merges two instances on the same machine count into one (job ids of
/// `b` are offset by `a.n()` in the result).
///
/// # Panics
/// Panics if the machine counts differ.
pub fn concat<T: FlowNum>(a: &Instance<T>, b: &Instance<T>) -> Instance<T> {
    assert_eq!(a.m, b.m, "cannot merge instances with different m");
    let mut jobs = a.jobs.clone();
    jobs.extend(b.jobs.iter().copied());
    Instance { m: a.m, jobs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::job;

    fn sample() -> Instance<f64> {
        Instance::new(2, vec![job(1.0, 4.0, 2.0), job(2.0, 6.0, 3.0)]).unwrap()
    }

    #[test]
    fn shift_moves_windows_rigidly() {
        let shifted = shift_time(&sample(), 10.0);
        assert_eq!(shifted.jobs[0].release, 11.0);
        assert_eq!(shifted.jobs[0].deadline, 14.0);
        assert_eq!(shifted.jobs[0].volume, 2.0);
        assert_eq!(shifted.jobs[0].window(), sample().jobs[0].window());
    }

    #[test]
    fn rebase_starts_at_zero() {
        let rebased = rebase_to_zero(&sample());
        assert_eq!(rebased.min_release(), Some(0.0));
        assert_eq!(rebased.jobs[1].release, 1.0);
    }

    #[test]
    fn dilate_scales_windows() {
        let dilated = dilate_time(&sample(), 2.0);
        assert_eq!(dilated.jobs[0].release, 2.0);
        assert_eq!(dilated.jobs[0].deadline, 8.0);
        assert_eq!(dilated.jobs[0].density(), 2.0 / 6.0);
    }

    #[test]
    fn reverse_is_an_involution() {
        let ins = sample();
        let back = rebase_to_zero(&reverse_time(&reverse_time(&ins)));
        // Reversal twice returns the same windows (after rebasing; the
        // sample already starts at 1.0, so compare rebased forms).
        let orig = rebase_to_zero(&ins);
        assert_eq!(back, orig);
    }

    #[test]
    fn reverse_swaps_release_and_deadline_roles() {
        let rev = reverse_time(&sample()); // t_max = 6
        assert_eq!(rev.jobs[0].release, 2.0); // 6 − 4
        assert_eq!(rev.jobs[0].deadline, 5.0); // 6 − 1
    }

    #[test]
    fn concat_appends_jobs() {
        let merged = concat(&sample(), &sample());
        assert_eq!(merged.n(), 4);
        assert_eq!(merged.jobs[2], merged.jobs[0]);
    }

    #[test]
    #[should_panic(expected = "different m")]
    fn concat_rejects_mismatched_machines() {
        let a = sample();
        let b = Instance::new(3, a.jobs.clone()).unwrap();
        concat(&a, &b);
    }

    #[test]
    fn transformed_instances_remain_valid() {
        let ins = sample();
        for t in [
            shift_time(&ins, 5.0),
            dilate_time(&ins, 3.0),
            scale_volumes(&ins, 0.5),
            reverse_time(&ins),
        ] {
            // Re-validate through the constructor.
            Instance::new(t.m, t.jobs).expect("transform must preserve validity");
        }
    }
}
