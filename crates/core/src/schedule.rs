//! Schedules: constant-speed execution segments on identified processors.
//!
//! By Lemma 1 of the paper, optimal schedules can always be normalized so
//! that every job runs at one constant speed; by Lemma 2 every processor
//! runs one constant speed per interval. The [`Segment`] representation
//! captures exactly that normal form: a maximal stretch of one job on one
//! processor at one speed.

use crate::JobId;
use mpss_numeric::FlowNum;
use serde::{Deserialize, Serialize};

/// One constant-speed execution stretch: `job` runs on processor `proc`
/// during `[start, end)` at `speed`.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Segment<T> {
    /// The job being executed.
    pub job: JobId,
    /// Processor index in `0..m`.
    pub proc: usize,
    /// Segment start time (inclusive).
    pub start: T,
    /// Segment end time (exclusive).
    pub end: T,
    /// Execution speed (> 0).
    pub speed: T,
}

impl<T: FlowNum> Segment<T> {
    /// Segment duration `end − start`.
    #[inline]
    pub fn duration(&self) -> T {
        self.end - self.start
    }

    /// Work completed in this segment (`speed · duration`).
    #[inline]
    pub fn work(&self) -> T {
        self.speed * self.duration()
    }
}

/// A complete schedule on `m` processors.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Schedule<T> {
    /// Number of processors.
    pub m: usize,
    /// Execution segments, in no particular order unless
    /// [`normalize`](Schedule::normalize) has been called.
    pub segments: Vec<Segment<T>>,
}

impl<T: FlowNum> Schedule<T> {
    /// An empty schedule on `m` processors.
    pub fn new(m: usize) -> Schedule<T> {
        Schedule {
            m,
            segments: Vec::new(),
        }
    }

    /// Appends a segment, dropping zero-duration or zero-speed stretches
    /// (they carry no work and would only clutter validation).
    pub fn push(&mut self, seg: Segment<T>) {
        if seg.duration().is_strictly_positive() && seg.speed.is_strictly_positive() {
            self.segments.push(seg);
        }
    }

    /// Number of segments.
    #[inline]
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// `true` iff the schedule has no segments.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Total work completed for `job`.
    pub fn work_of(&self, job: JobId) -> T {
        let mut total = T::zero();
        for s in self.segments.iter().filter(|s| s.job == job) {
            total += s.work();
        }
        total
    }

    /// Total work across all jobs.
    pub fn total_work(&self) -> T {
        let mut total = T::zero();
        for s in &self.segments {
            total += s.work();
        }
        total
    }

    /// Speed of processor `proc` at time `t` (0 when idle).
    pub fn speed_at(&self, proc: usize, t: T) -> T {
        for s in &self.segments {
            if s.proc == proc && !(t < s.start) && t < s.end {
                return s.speed;
            }
        }
        T::zero()
    }

    /// Job running on `proc` at time `t`, if any.
    pub fn job_at(&self, proc: usize, t: T) -> Option<JobId> {
        self.segments
            .iter()
            .find(|s| s.proc == proc && !(t < s.start) && t < s.end)
            .map(|s| s.job)
    }

    /// Sorts segments canonically (by processor, then start time) and merges
    /// adjacent segments of the same job at the same speed on the same
    /// processor. Idempotent.
    pub fn normalize(&mut self) {
        self.segments.sort_by(|a, b| {
            a.proc
                .cmp(&b.proc)
                .then(a.start.partial_cmp(&b.start).expect("comparable times"))
        });
        let mut merged: Vec<Segment<T>> = Vec::with_capacity(self.segments.len());
        for seg in self.segments.drain(..) {
            if let Some(last) = merged.last_mut() {
                if last.proc == seg.proc
                    && last.job == seg.job
                    && last.speed == seg.speed
                    && last.end == seg.start
                {
                    last.end = seg.end;
                    continue;
                }
            }
            merged.push(seg);
        }
        self.segments = merged;
    }

    /// Restriction of the schedule to the time window `[from, to)`,
    /// clipping segments that straddle the boundaries.
    pub fn restrict(&self, from: T, to: T) -> Schedule<T> {
        let mut out = Schedule::new(self.m);
        for s in &self.segments {
            let start = s.start.max2(from);
            let end = s.end.min2(to);
            if start < end {
                out.push(Segment { start, end, ..*s });
            }
        }
        out
    }

    /// Number of migrations: for each job, the number of processor changes
    /// between time-consecutive segments.
    pub fn migrations(&self) -> usize {
        let mut per_job: Vec<(JobId, T, usize)> = self
            .segments
            .iter()
            .map(|s| (s.job, s.start, s.proc))
            .collect();
        per_job.sort_by(|a, b| {
            a.0.cmp(&b.0)
                .then(a.1.partial_cmp(&b.1).expect("comparable times"))
        });
        per_job
            .windows(2)
            .filter(|w| w[0].0 == w[1].0 && w[0].2 != w[1].2)
            .count()
    }

    /// Number of preemptions: time-consecutive segments of the same job
    /// that are not contiguous in time (the job was paused and resumed).
    pub fn preemptions(&self) -> usize {
        let mut per_job: Vec<(JobId, T, T)> = self
            .segments
            .iter()
            .map(|s| (s.job, s.start, s.end))
            .collect();
        per_job.sort_by(|a, b| {
            a.0.cmp(&b.0)
                .then(a.1.partial_cmp(&b.1).expect("comparable times"))
        });
        per_job
            .windows(2)
            .filter(|w| w[0].0 == w[1].0 && w[0].2 < w[1].1)
            .count()
    }

    /// Maximum speed used anywhere in the schedule.
    pub fn max_speed(&self) -> T {
        self.segments
            .iter()
            .map(|s| s.speed)
            .fold(T::zero(), |a, b| a.max2(b))
    }

    /// The set of distinct speeds, sorted descending — the `s_1 > s_2 > …`
    /// ladder of the paper (with tolerance-free exact grouping; use on the
    /// rational path or on freshly constructed schedules).
    pub fn speed_levels(&self) -> Vec<T> {
        let mut speeds: Vec<T> = self.segments.iter().map(|s| s.speed).collect();
        speeds.sort_by(|a, b| b.partial_cmp(a).expect("comparable speeds"));
        speeds.dedup_by(|a, b| a == b);
        speeds
    }

    /// Converts to `f64` coordinates.
    pub fn to_f64(&self) -> Schedule<f64> {
        Schedule {
            m: self.m,
            segments: self
                .segments
                .iter()
                .map(|s| Segment {
                    job: s.job,
                    proc: s.proc,
                    start: s.start.to_f64(),
                    end: s.end.to_f64(),
                    speed: s.speed.to_f64(),
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(job: JobId, proc: usize, start: f64, end: f64, speed: f64) -> Segment<f64> {
        Segment {
            job,
            proc,
            start,
            end,
            speed,
        }
    }

    #[test]
    fn push_drops_degenerate_segments() {
        let mut s = Schedule::new(1);
        s.push(seg(0, 0, 1.0, 1.0, 2.0)); // zero duration
        s.push(seg(0, 0, 1.0, 2.0, 0.0)); // zero speed
        s.push(seg(0, 0, 1.0, 2.0, 2.0));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn work_accounting() {
        let mut s = Schedule::new(2);
        s.push(seg(0, 0, 0.0, 2.0, 1.5));
        s.push(seg(0, 1, 3.0, 4.0, 1.0));
        s.push(seg(1, 1, 0.0, 1.0, 2.0));
        assert_eq!(s.work_of(0), 4.0);
        assert_eq!(s.work_of(1), 2.0);
        assert_eq!(s.total_work(), 6.0);
    }

    #[test]
    fn speed_and_job_lookup() {
        let mut s = Schedule::new(2);
        s.push(seg(7, 1, 1.0, 2.0, 3.0));
        assert_eq!(s.speed_at(1, 1.5), 3.0);
        assert_eq!(s.speed_at(1, 2.0), 0.0); // end-exclusive
        assert_eq!(s.speed_at(0, 1.5), 0.0);
        assert_eq!(s.job_at(1, 1.0), Some(7));
        assert_eq!(s.job_at(0, 1.0), None);
    }

    #[test]
    fn normalize_merges_contiguous_equal_speed_runs() {
        let mut s = Schedule::new(1);
        s.push(seg(0, 0, 1.0, 2.0, 1.0));
        s.push(seg(0, 0, 0.0, 1.0, 1.0));
        s.push(seg(1, 0, 2.0, 3.0, 1.0));
        s.normalize();
        assert_eq!(s.len(), 2);
        assert_eq!(s.segments[0], seg(0, 0, 0.0, 2.0, 1.0));
        // Idempotent.
        let snap = s.clone();
        s.normalize();
        assert_eq!(s, snap);
    }

    #[test]
    fn restrict_clips_segments() {
        let mut s = Schedule::new(1);
        s.push(seg(0, 0, 0.0, 4.0, 2.0));
        s.push(seg(1, 0, 5.0, 6.0, 1.0));
        let r = s.restrict(1.0, 5.5);
        assert_eq!(r.len(), 2);
        assert_eq!(r.segments[0], seg(0, 0, 1.0, 4.0, 2.0));
        assert_eq!(r.segments[1], seg(1, 0, 5.0, 5.5, 1.0));
        assert!(s.restrict(10.0, 11.0).is_empty());
    }

    #[test]
    fn migration_and_preemption_counts() {
        let mut s = Schedule::new(2);
        s.push(seg(0, 0, 0.0, 1.0, 1.0));
        s.push(seg(0, 1, 1.0, 2.0, 1.0)); // migration, no gap
        s.push(seg(0, 1, 3.0, 4.0, 1.0)); // preemption (gap), same proc
        s.push(seg(1, 0, 1.0, 2.0, 1.0));
        assert_eq!(s.migrations(), 1);
        assert_eq!(s.preemptions(), 1);
    }

    #[test]
    fn speed_levels_sorted_descending() {
        let mut s = Schedule::new(2);
        s.push(seg(0, 0, 0.0, 1.0, 1.0));
        s.push(seg(1, 1, 0.0, 1.0, 3.0));
        s.push(seg(2, 0, 1.0, 2.0, 3.0));
        assert_eq!(s.speed_levels(), vec![3.0, 1.0]);
        assert_eq!(s.max_speed(), 3.0);
    }

    #[test]
    fn serde_roundtrip() {
        let mut s = Schedule::new(1);
        s.push(seg(0, 0, 0.0, 1.0, 2.0));
        let text = serde_json::to_string(&s).unwrap();
        let back: Schedule<f64> = serde_json::from_str(&text).unwrap();
        assert_eq!(back, s);
    }
}
