//! Power functions `P(s)`: convex, non-decreasing maps from processor speed
//! to power draw.
//!
//! The paper's offline algorithm is *universally* optimal: the schedule it
//! constructs does not depend on `P` and minimizes energy simultaneously
//! for every convex non-decreasing power function. The power function only
//! enters when *evaluating* a schedule's energy, and in the competitive
//! ratios of the online algorithms (which are stated for `P(s) = s^α`).

use serde::{Deserialize, Serialize};

/// A convex non-decreasing power function.
pub trait PowerFunction {
    /// Power drawn at speed `s ≥ 0`.
    fn power(&self, s: f64) -> f64;

    /// Human-readable description.
    fn describe(&self) -> String;
}

impl<P: PowerFunction + ?Sized> PowerFunction for &P {
    #[inline]
    fn power(&self, s: f64) -> f64 {
        (**self).power(s)
    }
    fn describe(&self) -> String {
        (**self).describe()
    }
}

impl<P: PowerFunction + ?Sized> PowerFunction for Box<P> {
    #[inline]
    fn power(&self, s: f64) -> f64 {
        (**self).power(s)
    }
    fn describe(&self) -> String {
        (**self).describe()
    }
}

/// The classical polynomial model `P(s) = s^α`, `α > 1` (the cube-root rule
/// for CMOS corresponds to `α = 3`).
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Polynomial {
    /// Exponent `α > 1`.
    pub alpha: f64,
}

impl Polynomial {
    /// `P(s) = s^α`.
    pub fn new(alpha: f64) -> Polynomial {
        assert!(alpha > 1.0, "polynomial power functions require α > 1");
        Polynomial { alpha }
    }

    /// The cube-root-rule exponent `α = 3`.
    pub fn cube() -> Polynomial {
        Polynomial { alpha: 3.0 }
    }

    /// Competitive ratio of `OA(m)` under this power function: `α^α`
    /// (Theorem 2 of the paper).
    pub fn oa_bound(&self) -> f64 {
        self.alpha.powf(self.alpha)
    }

    /// Competitive ratio of `AVR(m)` under this power function:
    /// `(2α)^α / 2 + 1` (Theorem 3 of the paper).
    pub fn avr_bound(&self) -> f64 {
        (2.0 * self.alpha).powf(self.alpha) / 2.0 + 1.0
    }
}

impl PowerFunction for Polynomial {
    #[inline]
    fn power(&self, s: f64) -> f64 {
        s.powf(self.alpha)
    }
    fn describe(&self) -> String {
        format!("s^{}", self.alpha)
    }
}

/// `P(s) = a·s^α + b·s + c` with `a, b, c ≥ 0`, `α > 1` — a convex
/// non-decreasing family covering dynamic power plus a linear leakage term
/// plus constant static power.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AffinePolynomial {
    /// Dynamic coefficient `a ≥ 0`.
    pub a: f64,
    /// Exponent `α > 1`.
    pub alpha: f64,
    /// Linear (leakage) coefficient `b ≥ 0`.
    pub b: f64,
    /// Static power `c ≥ 0`.
    pub c: f64,
}

impl AffinePolynomial {
    /// Builds `a·s^α + b·s + c`.
    pub fn new(a: f64, alpha: f64, b: f64, c: f64) -> AffinePolynomial {
        assert!(a >= 0.0 && b >= 0.0 && c >= 0.0 && alpha > 1.0);
        AffinePolynomial { a, alpha, b, c }
    }
}

impl PowerFunction for AffinePolynomial {
    #[inline]
    fn power(&self, s: f64) -> f64 {
        self.a * s.powf(self.alpha) + self.b * s + self.c
    }
    fn describe(&self) -> String {
        format!("{}·s^{} + {}·s + {}", self.a, self.alpha, self.b, self.c)
    }
}

/// `P(s) = e^s − 1`: a convex non-decreasing function that is *not* a
/// polynomial, exercising the "general convex P" claim of Theorem 1.
#[derive(Copy, Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Exponential;

impl PowerFunction for Exponential {
    #[inline]
    fn power(&self, s: f64) -> f64 {
        s.exp() - 1.0
    }
    fn describe(&self) -> String {
        "e^s - 1".to_string()
    }
}

/// A convex piecewise-linear power function given by its breakpoints —
/// the shape used to approximate arbitrary convex `P` inside the LP
/// baseline, and a valid power function in its own right.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PiecewiseLinear {
    /// Breakpoints `(s, P(s))`, sorted by `s`, convex and non-decreasing.
    pub points: Vec<(f64, f64)>,
}

impl PiecewiseLinear {
    /// Builds from breakpoints, validating sortedness, monotonicity, and
    /// convexity (non-decreasing slopes).
    pub fn new(points: Vec<(f64, f64)>) -> PiecewiseLinear {
        assert!(points.len() >= 2, "need at least two breakpoints");
        let mut prev_slope = f64::NEG_INFINITY;
        for w in points.windows(2) {
            let (s0, p0) = w[0];
            let (s1, p1) = w[1];
            assert!(s1 > s0, "breakpoints must be strictly increasing in s");
            assert!(p1 >= p0, "power must be non-decreasing");
            let slope = (p1 - p0) / (s1 - s0);
            assert!(slope >= prev_slope - 1e-12, "breakpoints must be convex");
            prev_slope = slope;
        }
        PiecewiseLinear { points }
    }

    /// Samples a convex `P` at `k + 1` equally spaced speeds in `[0, smax]`.
    pub fn sample(p: &impl PowerFunction, smax: f64, k: usize) -> PiecewiseLinear {
        assert!(k >= 1 && smax > 0.0);
        let pts = (0..=k)
            .map(|i| {
                let s = smax * i as f64 / k as f64;
                (s, p.power(s))
            })
            .collect();
        PiecewiseLinear::new(pts)
    }
}

impl PowerFunction for PiecewiseLinear {
    fn power(&self, s: f64) -> f64 {
        let pts = &self.points;
        if s <= pts[0].0 {
            // Extend the first piece leftwards.
            let (s0, p0) = pts[0];
            let (s1, p1) = pts[1];
            return p0 + (s - s0) * (p1 - p0) / (s1 - s0);
        }
        for w in pts.windows(2) {
            let (s0, p0) = w[0];
            let (s1, p1) = w[1];
            if s <= s1 {
                return p0 + (s - s0) * (p1 - p0) / (s1 - s0);
            }
        }
        // Extend the last piece rightwards.
        let (s0, p0) = pts[pts.len() - 2];
        let (s1, p1) = pts[pts.len() - 1];
        p1 + (s - s1) * (p1 - p0) / (s1 - s0)
    }
    fn describe(&self) -> String {
        format!("piecewise-linear({} pts)", self.points.len())
    }
}

/// Numerically checks that `p` is convex and non-decreasing on `[0, smax]`
/// by sampling `samples` points. Returns the first offending speed, if any.
pub fn check_convex_nondecreasing(
    p: &impl PowerFunction,
    smax: f64,
    samples: usize,
) -> Option<f64> {
    assert!(samples >= 3);
    let h = smax / (samples - 1) as f64;
    let at = |i: usize| p.power(i as f64 * h);
    for i in 1..samples {
        if at(i) < at(i - 1) - 1e-9 * at(i - 1).abs().max(1.0) {
            return Some(i as f64 * h); // decreasing
        }
    }
    for i in 1..samples - 1 {
        let mid2 = 2.0 * at(i);
        let sum = at(i - 1) + at(i + 1);
        if sum < mid2 - 1e-7 * mid2.abs().max(1.0) {
            return Some(i as f64 * h); // concave kink
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn polynomial_basics() {
        let p = Polynomial::new(2.0);
        assert_eq!(p.power(3.0), 9.0);
        assert_eq!(Polynomial::cube().power(2.0), 8.0);
        assert!(p.describe().contains("s^2"));
    }

    #[test]
    #[should_panic(expected = "α > 1")]
    fn polynomial_rejects_alpha_le_1() {
        Polynomial::new(1.0);
    }

    #[test]
    fn theoretical_bounds_match_the_theorems() {
        let p = Polynomial::new(2.0);
        assert_eq!(p.oa_bound(), 4.0); // α^α = 2² = 4
        assert_eq!(p.avr_bound(), 9.0); // (2α)^α/2 + 1 = 16/2 + 1 = 9
        let c = Polynomial::cube();
        assert_eq!(c.oa_bound(), 27.0);
        assert_eq!(c.avr_bound(), 109.0); // 6³/2 + 1
    }

    #[test]
    fn affine_polynomial_evaluates() {
        let p = AffinePolynomial::new(1.0, 2.0, 5.0, 1.0);
        assert_eq!(p.power(2.0), 4.0 + 10.0 + 1.0);
    }

    #[test]
    fn exponential_is_zero_at_rest() {
        assert_eq!(Exponential.power(0.0), 0.0);
        assert!(Exponential.power(1.0) > 1.0);
    }

    #[test]
    fn piecewise_linear_interpolates_and_extends() {
        let p = PiecewiseLinear::new(vec![(0.0, 0.0), (1.0, 1.0), (2.0, 4.0)]);
        assert_eq!(p.power(0.5), 0.5);
        assert_eq!(p.power(1.5), 2.5);
        assert_eq!(p.power(3.0), 7.0); // extended with last slope 3
    }

    #[test]
    #[should_panic(expected = "convex")]
    fn piecewise_linear_rejects_concave() {
        PiecewiseLinear::new(vec![(0.0, 0.0), (1.0, 2.0), (2.0, 3.0)]);
    }

    #[test]
    fn sampling_a_polynomial_upper_bounds_it() {
        // Secant approximation of a convex function lies above it.
        let poly = Polynomial::new(3.0);
        let pl = PiecewiseLinear::sample(&poly, 4.0, 16);
        for i in 0..=100 {
            let s = 4.0 * i as f64 / 100.0;
            assert!(pl.power(s) >= poly.power(s) - 1e-9);
        }
    }

    #[test]
    fn convexity_checker_accepts_all_builtins() {
        assert_eq!(
            check_convex_nondecreasing(&Polynomial::new(2.5), 10.0, 101),
            None
        );
        assert_eq!(
            check_convex_nondecreasing(&AffinePolynomial::new(0.5, 3.0, 1.0, 2.0), 10.0, 101),
            None
        );
        assert_eq!(check_convex_nondecreasing(&Exponential, 5.0, 101), None);
    }

    struct Bad;
    impl PowerFunction for Bad {
        fn power(&self, s: f64) -> f64 {
            s.sqrt() // concave
        }
        fn describe(&self) -> String {
            "sqrt".into()
        }
    }

    #[test]
    fn convexity_checker_rejects_concave() {
        assert!(check_convex_nondecreasing(&Bad, 4.0, 101).is_some());
    }
}
