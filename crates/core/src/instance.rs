//! Instances: a job set plus the machine environment.

use crate::job::{Job, JobId};
use crate::ModelError;
use mpss_numeric::{FlowNum, Rational};
use serde::{Deserialize, Serialize};

/// A scheduling instance: `n` jobs to run on `m` parallel variable-speed
/// processors with migration allowed.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Instance<T> {
    /// Number of parallel processors.
    pub m: usize,
    /// The jobs, identified by their index ([`JobId`]).
    pub jobs: Vec<Job<T>>,
}

impl<T: FlowNum> Instance<T> {
    /// Builds and validates an instance: `m ≥ 1` and, for every job,
    /// `release < deadline` and `volume > 0`.
    pub fn new(m: usize, jobs: Vec<Job<T>>) -> Result<Instance<T>, ModelError> {
        if m == 0 {
            return Err(ModelError::NoProcessors);
        }
        for (i, j) in jobs.iter().enumerate() {
            if !(j.release < j.deadline) {
                return Err(ModelError::EmptyWindow { job: i });
            }
            if !j.volume.is_strictly_positive() {
                return Err(ModelError::NonPositiveVolume { job: i });
            }
            if !j.release.to_f64().is_finite()
                || !j.deadline.to_f64().is_finite()
                || !j.volume.to_f64().is_finite()
            {
                return Err(ModelError::NonFiniteTime { job: i });
            }
        }
        Ok(Instance { m, jobs })
    }

    /// Number of jobs.
    #[inline]
    pub fn n(&self) -> usize {
        self.jobs.len()
    }

    /// `true` iff there are no jobs.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Total processing volume `Σ w_i`.
    pub fn total_volume(&self) -> T {
        let mut total = T::zero();
        for j in &self.jobs {
            total += j.volume;
        }
        total
    }

    /// Earliest release time (`None` for empty instances).
    pub fn min_release(&self) -> Option<T> {
        self.jobs.iter().map(|j| j.release).reduce(|a, b| a.min2(b))
    }

    /// Latest deadline (`None` for empty instances).
    pub fn max_deadline(&self) -> Option<T> {
        self.jobs
            .iter()
            .map(|j| j.deadline)
            .reduce(|a, b| a.max2(b))
    }

    /// Jobs (by id) whose window contains `[start, end)`.
    pub fn active_jobs(&self, start: T, end: T) -> Vec<JobId> {
        self.jobs
            .iter()
            .enumerate()
            .filter(|(_, j)| j.active_in(start, end))
            .map(|(i, _)| i)
            .collect()
    }

    /// The same instance restricted to a subset of jobs, returning the
    /// id-mapping `sub_id -> original_id`.
    pub fn restrict(&self, keep: &[JobId]) -> (Instance<T>, Vec<JobId>) {
        let jobs = keep.iter().map(|&i| self.jobs[i]).collect();
        (Instance { m: self.m, jobs }, keep.to_vec())
    }

    /// Converts coordinates to `f64`.
    pub fn to_f64(&self) -> Instance<f64> {
        Instance {
            m: self.m,
            jobs: self.jobs.iter().map(Job::to_f64).collect(),
        }
    }
}

impl Instance<f64> {
    /// Converts small-decimal `f64` coordinates to exact rationals.
    pub fn to_rational(&self) -> Instance<Rational> {
        Instance {
            m: self.m,
            jobs: self.jobs.iter().map(Job::to_rational).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::job;

    fn sample() -> Instance<f64> {
        Instance::new(
            2,
            vec![job(0.0, 4.0, 2.0), job(1.0, 3.0, 4.0), job(2.0, 8.0, 1.0)],
        )
        .unwrap()
    }

    #[test]
    fn validation_rejects_bad_instances() {
        assert_eq!(
            Instance::<f64>::new(0, vec![]),
            Err(ModelError::NoProcessors)
        );
        assert_eq!(
            Instance::new(1, vec![job(2.0, 2.0, 1.0)]),
            Err(ModelError::EmptyWindow { job: 0 })
        );
        assert_eq!(
            Instance::new(1, vec![job(0.0, 1.0, 0.0)]),
            Err(ModelError::NonPositiveVolume { job: 0 })
        );
        assert_eq!(
            Instance::new(1, vec![job(0.0, f64::INFINITY, 1.0)]),
            Err(ModelError::NonFiniteTime { job: 0 })
        );
    }

    #[test]
    fn aggregates() {
        let ins = sample();
        assert_eq!(ins.n(), 3);
        assert_eq!(ins.total_volume(), 7.0);
        assert_eq!(ins.min_release(), Some(0.0));
        assert_eq!(ins.max_deadline(), Some(8.0));
        assert!(!ins.is_empty());
    }

    #[test]
    fn active_jobs_in_subinterval() {
        let ins = sample();
        assert_eq!(ins.active_jobs(2.0, 3.0), vec![0, 1, 2]);
        assert_eq!(ins.active_jobs(0.0, 1.0), vec![0]);
        assert_eq!(ins.active_jobs(4.0, 8.0), vec![2]);
    }

    #[test]
    fn restrict_keeps_mapping() {
        let ins = sample();
        let (sub, map) = ins.restrict(&[2, 0]);
        assert_eq!(sub.n(), 2);
        assert_eq!(sub.jobs[0], ins.jobs[2]);
        assert_eq!(map, vec![2, 0]);
    }

    #[test]
    fn empty_instance_aggregates() {
        let ins: Instance<f64> = Instance::new(1, vec![]).unwrap();
        assert!(ins.is_empty());
        assert_eq!(ins.min_release(), None);
        assert_eq!(ins.max_deadline(), None);
        assert_eq!(ins.total_volume(), 0.0);
    }

    #[test]
    fn serde_roundtrip() {
        let ins = sample();
        let s = serde_json::to_string(&ins).unwrap();
        let back: Instance<f64> = serde_json::from_str(&s).unwrap();
        assert_eq!(back, ins);
    }

    #[test]
    fn rational_conversion_is_exact_for_decimals() {
        let ins = sample().to_rational();
        assert_eq!(ins.total_volume(), mpss_numeric::Rational::from_int(7));
    }
}
