//! Error types for the problem model.

use std::fmt;

/// Structural problems with an instance or schedule request.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// An instance needs at least one processor.
    NoProcessors,
    /// A job's deadline is not strictly after its release.
    EmptyWindow { job: usize },
    /// A job has non-positive volume.
    NonPositiveVolume { job: usize },
    /// A time coordinate is not finite (f64 path only).
    NonFiniteTime { job: usize },
    /// The requested operation needs a non-empty instance.
    EmptyInstance,
    /// The algorithm could not reserve any processing time for a job set —
    /// unreachable for valid instances, surfaced defensively.
    NoReservableTime,
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::NoProcessors => write!(f, "instance must have m ≥ 1 processors"),
            ModelError::EmptyWindow { job } => {
                write!(f, "job {job}: deadline must be strictly after release")
            }
            ModelError::NonPositiveVolume { job } => {
                write!(f, "job {job}: processing volume must be positive")
            }
            ModelError::NonFiniteTime { job } => {
                write!(f, "job {job}: non-finite time coordinate")
            }
            ModelError::EmptyInstance => write!(f, "operation requires a non-empty instance"),
            ModelError::NoReservableTime => {
                write!(f, "no processing time reservable for a remaining job set")
            }
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_name_the_job() {
        assert!(ModelError::EmptyWindow { job: 3 }
            .to_string()
            .contains("job 3"));
        assert!(ModelError::NonPositiveVolume { job: 7 }
            .to_string()
            .contains("job 7"));
    }
}
