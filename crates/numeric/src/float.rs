//! Tolerance-aware floating-point comparisons.
//!
//! The offline algorithm compares a computed maximum-flow value against a
//! target and tests individual edges for saturation. In `f64` those values
//! are sums of hundreds of terms, so "equal" must mean "equal up to a
//! relative epsilon scaled by the magnitude of the problem". [`FloatTol`]
//! centralizes that policy so every call site uses the same semantics.

/// Relative/absolute tolerance used across the `f64` pipeline.
///
/// Two values `a`, `b` are *close under scale `s`* when
/// `|a − b| ≤ eps · max(1, |s|)`. The scale is chosen by the caller as the
/// natural magnitude of the comparison (e.g. the flow target `F_G`), which
/// makes the test robust for both tiny and huge instances.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct FloatTol {
    /// Relative epsilon. The default (`1e-9`) leaves ~6 decimal digits of
    /// headroom over `f64`'s ~15–16 digits for accumulated summation error.
    pub eps: f64,
}

impl Default for FloatTol {
    #[inline]
    fn default() -> Self {
        FloatTol { eps: 1e-9 }
    }
}

impl FloatTol {
    /// A tolerance with the given relative epsilon.
    #[inline]
    pub const fn new(eps: f64) -> FloatTol {
        FloatTol { eps }
    }

    /// Absolute slack at magnitude `scale`.
    #[inline]
    pub fn slack(self, scale: f64) -> f64 {
        self.eps * scale.abs().max(1.0)
    }

    /// `a ≈ b` at magnitude `scale`.
    #[inline]
    pub fn close(self, a: f64, b: f64, scale: f64) -> bool {
        (a - b).abs() <= self.slack(scale)
    }

    /// `a < b` by more than the slack at magnitude `scale` (a *definite*
    /// strict inequality that cannot be a rounding artifact).
    #[inline]
    pub fn definitely_lt(self, a: f64, b: f64, scale: f64) -> bool {
        a < b - self.slack(scale)
    }

    /// `a > b` by more than the slack at magnitude `scale`.
    #[inline]
    pub fn definitely_gt(self, a: f64, b: f64, scale: f64) -> bool {
        a > b + self.slack(scale)
    }

    /// `a ≤ b` up to slack (i.e. not definitely greater).
    #[inline]
    pub fn leq(self, a: f64, b: f64, scale: f64) -> bool {
        !self.definitely_gt(a, b, scale)
    }

    /// `a ≥ b` up to slack (i.e. not definitely smaller).
    #[inline]
    pub fn geq(self, a: f64, b: f64, scale: f64) -> bool {
        !self.definitely_lt(a, b, scale)
    }

    /// `a ≈ 0` at magnitude `scale`.
    #[inline]
    pub fn is_zero(self, a: f64, scale: f64) -> bool {
        self.close(a, 0.0, scale)
    }
}

/// Kahan–Babuška compensated summation.
///
/// The energy and flow-value accumulations sum thousands of terms of mixed
/// magnitude; compensated summation keeps the error independent of the term
/// count, which in turn lets [`FloatTol`]'s epsilon stay tight.
#[derive(Copy, Clone, Debug, Default)]
pub struct KahanSum {
    sum: f64,
    comp: f64,
}

impl KahanSum {
    /// An empty sum.
    #[inline]
    pub fn new() -> KahanSum {
        KahanSum::default()
    }

    /// Adds one term.
    #[inline]
    pub fn add(&mut self, x: f64) {
        let t = self.sum + x;
        if self.sum.abs() >= x.abs() {
            self.comp += (self.sum - t) + x;
        } else {
            self.comp += (x - t) + self.sum;
        }
        self.sum = t;
    }

    /// Current compensated value.
    #[inline]
    pub fn value(self) -> f64 {
        self.sum + self.comp
    }
}

impl FromIterator<f64> for KahanSum {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = KahanSum::new();
        for x in iter {
            s.add(x);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn close_uses_relative_scale() {
        let tol = FloatTol::default();
        // At scale 1e6 a difference of 1e-4 is within 1e-9 * 1e6 = 1e-3.
        assert!(tol.close(1_000_000.0, 1_000_000.000_1, 1_000_000.0));
        // At scale 1 the same absolute difference is not close.
        assert!(!tol.close(0.0, 0.0001, 1.0));
    }

    #[test]
    fn definite_inequalities_exclude_rounding_noise() {
        let tol = FloatTol::default();
        assert!(!tol.definitely_lt(1.0, 1.0 + 1e-12, 1.0));
        assert!(tol.definitely_lt(1.0, 1.1, 1.0));
        assert!(!tol.definitely_gt(1.0 + 1e-12, 1.0, 1.0));
        assert!(tol.definitely_gt(1.1, 1.0, 1.0));
    }

    #[test]
    fn leq_geq_are_complements_of_definite() {
        let tol = FloatTol::default();
        assert!(tol.leq(1.0 + 1e-12, 1.0, 1.0));
        assert!(!tol.leq(1.1, 1.0, 1.0));
        assert!(tol.geq(1.0 - 1e-12, 1.0, 1.0));
        assert!(!tol.geq(0.9, 1.0, 1.0));
    }

    #[test]
    fn slack_has_absolute_floor_of_eps() {
        let tol = FloatTol::new(1e-9);
        assert_eq!(tol.slack(0.0), 1e-9);
        assert_eq!(tol.slack(0.5), 1e-9);
        assert_eq!(tol.slack(-2.0), 2e-9);
    }

    #[test]
    fn kahan_beats_naive_summation() {
        // Sum 1.0 followed by 1e8 copies of 1e-8: exact answer 2.0.
        let mut k = KahanSum::new();
        let mut naive = 0.0f64;
        k.add(1.0);
        naive += 1.0;
        for _ in 0..100_000_000_usize {
            k.add(1e-8);
            naive += 1e-8;
        }
        assert!((k.value() - 2.0).abs() < 1e-12, "kahan = {}", k.value());
        // The naive sum drifts noticeably more.
        assert!((naive - 2.0).abs() > (k.value() - 2.0).abs());
    }

    #[test]
    fn kahan_from_iterator() {
        let s: KahanSum = [0.1f64; 10].into_iter().collect();
        assert!((s.value() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn is_zero_at_scale() {
        let tol = FloatTol::default();
        assert!(tol.is_zero(1e-6, 1e4));
        assert!(!tol.is_zero(1e-6, 1.0));
    }
}
