//! The [`FlowNum`] abstraction: a numeric type usable as flow/time/volume
//! throughout the max-flow engines and the offline scheduling algorithm.
//!
//! Two implementations ship with the workspace:
//! `f64` (tolerance-aware, production path) and [`crate::Rational`]
//! (exact, ground-truth path). The trait deliberately bundles *comparison
//! policy* (`close`, `definitely_lt`) with arithmetic so algorithms written
//! against it are correct under both semantics: the exact type ignores the
//! epsilon argument, the float type applies it relative to a caller-provided
//! scale.

use crate::{FloatTol, Rational};
use core::fmt::Debug;
use core::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Numbers that can serve as capacities, flows, times and volumes.
pub trait FlowNum:
    Copy
    + Debug
    + PartialEq
    + PartialOrd
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + Send
    + Sync
    + 'static
{
    /// Human-readable name of the numeric mode (used in logs/benches).
    const NAME: &'static str;

    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// Embeds a small non-negative integer.
    fn from_usize(n: usize) -> Self;
    /// Nearest `f64` (for reporting; exact types may round).
    fn to_f64(self) -> f64;

    /// Exact strict positivity (`> 0`), used for residual-edge traversal.
    fn is_strictly_positive(self) -> bool;
    /// Smaller of two values.
    fn min2(self, other: Self) -> Self;
    /// Larger of two values.
    fn max2(self, other: Self) -> Self;

    /// `a ≈ b` at magnitude `scale` with relative epsilon `eps`
    /// (exact types ignore `eps` and test equality).
    fn close(a: Self, b: Self, scale: Self, eps: f64) -> bool;
    /// `a < b` definitely (beyond rounding noise at magnitude `scale`).
    fn definitely_lt(a: Self, b: Self, scale: Self, eps: f64) -> bool;

    /// `a ≤ b` up to tolerance (not definitely greater).
    #[inline]
    fn leq(a: Self, b: Self, scale: Self, eps: f64) -> bool {
        !Self::definitely_lt(b, a, scale, eps)
    }
}

impl FlowNum for f64 {
    const NAME: &'static str = "f64";

    #[inline]
    fn zero() -> f64 {
        0.0
    }
    #[inline]
    fn one() -> f64 {
        1.0
    }
    #[inline]
    fn from_usize(n: usize) -> f64 {
        n as f64
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline]
    fn is_strictly_positive(self) -> bool {
        self > 0.0
    }
    #[inline]
    fn min2(self, other: f64) -> f64 {
        self.min(other)
    }
    #[inline]
    fn max2(self, other: f64) -> f64 {
        self.max(other)
    }
    #[inline]
    fn close(a: f64, b: f64, scale: f64, eps: f64) -> bool {
        FloatTol::new(eps).close(a, b, scale)
    }
    #[inline]
    fn definitely_lt(a: f64, b: f64, scale: f64, eps: f64) -> bool {
        FloatTol::new(eps).definitely_lt(a, b, scale)
    }
}

impl FlowNum for Rational {
    const NAME: &'static str = "rational";

    #[inline]
    fn zero() -> Rational {
        Rational::ZERO
    }
    #[inline]
    fn one() -> Rational {
        Rational::ONE
    }
    #[inline]
    fn from_usize(n: usize) -> Rational {
        Rational::from_int(n as i64)
    }
    #[inline]
    fn to_f64(self) -> f64 {
        Rational::to_f64(self)
    }
    #[inline]
    fn is_strictly_positive(self) -> bool {
        self.is_positive()
    }
    #[inline]
    fn min2(self, other: Rational) -> Rational {
        Rational::min(self, other)
    }
    #[inline]
    fn max2(self, other: Rational) -> Rational {
        Rational::max(self, other)
    }
    #[inline]
    fn close(a: Rational, b: Rational, _scale: Rational, _eps: f64) -> bool {
        a == b
    }
    #[inline]
    fn definitely_lt(a: Rational, b: Rational, _scale: Rational, _eps: f64) -> bool {
        a < b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rational::rat;

    /// The generic code paths must behave identically for both numeric
    /// modes on exact inputs; this exercises the trait surface generically.
    fn sum_three<T: FlowNum>(a: T, b: T, c: T) -> T {
        let mut s = T::zero();
        s += a;
        s += b;
        s += c;
        s
    }

    #[test]
    fn generic_arithmetic_agrees_between_modes() {
        let f = sum_three(0.5f64, 0.25, 0.25);
        let r = sum_three(rat(1, 2), rat(1, 4), rat(1, 4));
        assert_eq!(f, 1.0);
        assert_eq!(r, Rational::ONE);
        assert_eq!(r.to_f64(), f);
    }

    #[test]
    fn rational_close_is_exact() {
        assert!(Rational::close(rat(1, 3), rat(2, 6), Rational::ONE, 1e-3));
        assert!(!Rational::close(
            rat(1, 3),
            rat(333_333, 1_000_000),
            Rational::ONE,
            1.0 // huge eps is still ignored
        ));
    }

    #[test]
    fn float_close_respects_eps_and_scale() {
        assert!(f64::close(100.0, 100.0 + 5e-8, 100.0, 1e-9));
        assert!(!f64::close(1.0, 1.0 + 5e-8, 1.0, 1e-9));
    }

    #[test]
    fn definitely_lt_semantics() {
        assert!(f64::definitely_lt(1.0, 2.0, 1.0, 1e-9));
        assert!(!f64::definitely_lt(1.0, 1.0 + 1e-12, 1.0, 1e-9));
        assert!(Rational::definitely_lt(
            rat(1, 3),
            rat(1, 2),
            Rational::ONE,
            1e-9
        ));
        assert!(!Rational::definitely_lt(
            rat(1, 2),
            rat(1, 2),
            Rational::ONE,
            1e-9
        ));
    }

    #[test]
    fn leq_default_impl() {
        assert!(f64::leq(1.0 + 1e-12, 1.0, 1.0, 1e-9));
        assert!(!f64::leq(1.1, 1.0, 1.0, 1e-9));
        assert!(Rational::leq(rat(1, 2), rat(1, 2), Rational::ONE, 0.0));
        assert!(!Rational::leq(rat(2, 3), rat(1, 2), Rational::ONE, 0.0));
    }

    #[test]
    fn min_max_and_embeddings() {
        assert_eq!(f64::from_usize(7), 7.0);
        assert_eq!(Rational::from_usize(7), rat(7, 1));
        assert_eq!(3.0f64.min2(2.0), 2.0);
        assert_eq!(rat(3, 1).max2(rat(2, 1)), rat(3, 1));
    }
}
