//! Exact rational arithmetic on `i128`.
//!
//! Values are kept normalized (`den > 0`, `gcd(|num|, den) == 1`) after every
//! operation, which keeps denominators as small as mathematically possible.
//! All arithmetic is overflow-checked; an overflow aborts with a clear panic
//! message rather than wrapping silently. For the instance sizes used in
//! this workspace (integer inputs up to ~10^6, a few thousand additions with
//! shared denominators), `i128` headroom is ample.

use core::cmp::Ordering;
use core::fmt;
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};
use serde::{Deserialize, Serialize};

/// An exact rational number `num/den` with `den > 0` and the fraction in
/// lowest terms.
#[derive(Copy, Clone, Serialize, Deserialize)]
pub struct Rational {
    num: i128,
    den: i128,
}

/// Greatest common divisor of two non-negative integers (binary-free
/// Euclidean version; inputs small enough that this is never hot).
#[inline]
fn gcd(mut a: i128, mut b: i128) -> i128 {
    debug_assert!(a >= 0 && b >= 0);
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

#[cold]
#[inline(never)]
fn overflow(op: &str) -> ! {
    panic!("mpss-numeric: i128 overflow in Rational::{op}; inputs too large for exact arithmetic")
}

impl Rational {
    /// The rational 0/1.
    pub const ZERO: Rational = Rational { num: 0, den: 1 };
    /// The rational 1/1.
    pub const ONE: Rational = Rational { num: 1, den: 1 };

    /// Builds `num/den`, normalizing sign and reducing to lowest terms.
    ///
    /// ```
    /// use mpss_numeric::Rational;
    /// let r = Rational::new(6, -8);
    /// assert_eq!((r.numer(), r.denom()), (-3, 4));
    /// ```
    ///
    /// # Panics
    /// Panics if `den == 0`.
    pub fn new(num: i128, den: i128) -> Rational {
        assert!(den != 0, "Rational::new: zero denominator");
        let (num, den) = if den < 0 { (-num, -den) } else { (num, den) };
        let g = gcd(num.unsigned_abs() as i128, den);
        if g <= 1 {
            Rational { num, den }
        } else {
            Rational {
                num: num / g,
                den: den / g,
            }
        }
    }

    /// The integer `n` as a rational.
    #[inline]
    pub const fn from_int(n: i64) -> Rational {
        Rational {
            num: n as i128,
            den: 1,
        }
    }

    /// Numerator of the normalized fraction (sign-carrying).
    #[inline]
    pub const fn numer(self) -> i128 {
        self.num
    }

    /// Denominator of the normalized fraction (always positive).
    #[inline]
    pub const fn denom(self) -> i128 {
        self.den
    }

    /// `true` iff the value is exactly zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.num == 0
    }

    /// `true` iff the value is strictly positive.
    #[inline]
    pub const fn is_positive(self) -> bool {
        self.num > 0
    }

    /// `true` iff the value is strictly negative.
    #[inline]
    pub const fn is_negative(self) -> bool {
        self.num < 0
    }

    /// `true` iff the value is an integer.
    #[inline]
    pub const fn is_integer(self) -> bool {
        self.den == 1
    }

    /// Nearest `f64` (exact when numerator/denominator fit in 53 bits).
    #[inline]
    pub fn to_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Absolute value.
    #[inline]
    pub fn abs(self) -> Rational {
        Rational {
            num: self.num.abs(),
            den: self.den,
        }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    /// Panics on zero.
    pub fn recip(self) -> Rational {
        assert!(self.num != 0, "Rational::recip of zero");
        if self.num < 0 {
            Rational {
                num: -self.den,
                den: -self.num,
            }
        } else {
            Rational {
                num: self.den,
                den: self.num,
            }
        }
    }

    /// Integer power (exponent ≥ 0). Used for exact energy `s^α · t` with
    /// integer `α`.
    pub fn pow(self, mut e: u32) -> Rational {
        let mut base = self;
        let mut acc = Rational::ONE;
        while e > 0 {
            if e & 1 == 1 {
                acc *= base;
            }
            e >>= 1;
            if e > 0 {
                base = base * base;
            }
        }
        acc
    }

    /// Largest integer `k` with `k ≤ self` (floor).
    pub fn floor(self) -> i128 {
        if self.num >= 0 {
            self.num / self.den
        } else {
            // Round toward negative infinity.
            (self.num - (self.den - 1)) / self.den
        }
    }

    /// Smallest integer `k` with `k ≥ self` (ceil).
    pub fn ceil(self) -> i128 {
        -((-self).floor())
    }

    /// Smaller of two rationals.
    #[inline]
    pub fn min(self, other: Rational) -> Rational {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Larger of two rationals.
    #[inline]
    pub fn max(self, other: Rational) -> Rational {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Builds a rational from an `f64` that is known to be a small decimal
    /// (e.g. test fixtures like `2.5`). Uses a denominator of at most
    /// `10^9`; panics on NaN/inf.
    pub fn approx_from_f64(x: f64) -> Rational {
        assert!(x.is_finite(), "Rational::approx_from_f64: non-finite input");
        const DEN: i128 = 1_000_000_000;
        let scaled = (x * DEN as f64).round();
        assert!(
            scaled.abs() < (i128::MAX / 2) as f64,
            "Rational::approx_from_f64: input out of range"
        );
        Rational::new(scaled as i128, DEN)
    }
}

impl Default for Rational {
    #[inline]
    fn default() -> Self {
        Rational::ZERO
    }
}

impl From<i64> for Rational {
    #[inline]
    fn from(n: i64) -> Self {
        Rational::from_int(n)
    }
}

impl From<u32> for Rational {
    #[inline]
    fn from(n: u32) -> Self {
        Rational::from_int(n as i64)
    }
}

impl Add for Rational {
    type Output = Rational;
    fn add(self, rhs: Rational) -> Rational {
        // a/b + c/d = (a·(l/b) + c·(l/d)) / l  with l = lcm(b, d).
        let g = gcd(self.den, rhs.den);
        let lb = rhs.den / g; // l / self.den
        let ld = self.den / g; // l / rhs.den
        let num = self
            .num
            .checked_mul(lb)
            .and_then(|x| rhs.num.checked_mul(ld).and_then(|y| x.checked_add(y)))
            .unwrap_or_else(|| overflow("add"));
        let den = self.den.checked_mul(lb).unwrap_or_else(|| overflow("add"));
        Rational::new(num, den)
    }
}

impl Sub for Rational {
    type Output = Rational;
    #[inline]
    fn sub(self, rhs: Rational) -> Rational {
        self + (-rhs)
    }
}

impl Neg for Rational {
    type Output = Rational;
    #[inline]
    fn neg(self) -> Rational {
        Rational {
            num: -self.num,
            den: self.den,
        }
    }
}

impl Mul for Rational {
    type Output = Rational;
    fn mul(self, rhs: Rational) -> Rational {
        // Cross-reduce before multiplying to keep intermediates small.
        let g1 = gcd(self.num.unsigned_abs() as i128, rhs.den);
        let g2 = gcd(rhs.num.unsigned_abs() as i128, self.den);
        let num = (self.num / g1)
            .checked_mul(rhs.num / g2)
            .unwrap_or_else(|| overflow("mul"));
        let den = (self.den / g2)
            .checked_mul(rhs.den / g1)
            .unwrap_or_else(|| overflow("mul"));
        Rational { num, den }
    }
}

impl Div for Rational {
    type Output = Rational;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // division IS multiplication by the reciprocal
    fn div(self, rhs: Rational) -> Rational {
        self * rhs.recip()
    }
}

impl AddAssign for Rational {
    #[inline]
    fn add_assign(&mut self, rhs: Rational) {
        *self = *self + rhs;
    }
}
impl SubAssign for Rational {
    #[inline]
    fn sub_assign(&mut self, rhs: Rational) {
        *self = *self - rhs;
    }
}
impl MulAssign for Rational {
    #[inline]
    fn mul_assign(&mut self, rhs: Rational) {
        *self = *self * rhs;
    }
}
impl DivAssign for Rational {
    #[inline]
    fn div_assign(&mut self, rhs: Rational) {
        *self = *self / rhs;
    }
}

impl PartialEq for Rational {
    #[inline]
    fn eq(&self, other: &Rational) -> bool {
        // Normalized representation is canonical.
        self.num == other.num && self.den == other.den
    }
}
impl Eq for Rational {}

impl PartialOrd for Rational {
    #[inline]
    fn partial_cmp(&self, other: &Rational) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Rational) -> Ordering {
        // Compare a/b vs c/d via a·d' vs c·b' with cross-reduction.
        let g = gcd(self.den, other.den);
        let lhs = self
            .num
            .checked_mul(other.den / g)
            .unwrap_or_else(|| overflow("cmp"));
        let rhs = other
            .num
            .checked_mul(self.den / g)
            .unwrap_or_else(|| overflow("cmp"));
        lhs.cmp(&rhs)
    }
}

impl core::hash::Hash for Rational {
    fn hash<H: core::hash::Hasher>(&self, state: &mut H) {
        self.num.hash(state);
        self.den.hash(state);
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Convenience constructor: `rat(3, 4)` is `3/4`.
#[inline]
pub fn rat(num: i128, den: i128) -> Rational {
    Rational::new(num, den)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_reduces_and_fixes_sign() {
        let r = Rational::new(6, -8);
        assert_eq!(r.numer(), -3);
        assert_eq!(r.denom(), 4);
        assert_eq!(Rational::new(0, -5), Rational::ZERO);
        assert_eq!(Rational::new(-4, -2), Rational::from_int(2));
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = Rational::new(1, 0);
    }

    #[test]
    fn basic_arithmetic() {
        let a = rat(1, 3);
        let b = rat(1, 6);
        assert_eq!(a + b, rat(1, 2));
        assert_eq!(a - b, rat(1, 6));
        assert_eq!(a * b, rat(1, 18));
        assert_eq!(a / b, rat(2, 1));
        assert_eq!(-a, rat(-1, 3));
    }

    #[test]
    fn assign_ops_match_binary_ops() {
        let mut x = rat(3, 7);
        x += rat(2, 7);
        assert_eq!(x, rat(5, 7));
        x -= rat(1, 7);
        assert_eq!(x, rat(4, 7));
        x *= rat(7, 2);
        assert_eq!(x, rat(2, 1));
        x /= rat(4, 1);
        assert_eq!(x, rat(1, 2));
    }

    #[test]
    fn ordering_is_total_and_correct() {
        assert!(rat(1, 3) < rat(1, 2));
        assert!(rat(-1, 2) < rat(-1, 3));
        assert!(rat(7, 7) == Rational::ONE);
        assert_eq!(rat(2, 4).cmp(&rat(1, 2)), Ordering::Equal);
        assert!(rat(10, 3) > rat(3, 1));
    }

    #[test]
    fn floor_and_ceil() {
        assert_eq!(rat(7, 2).floor(), 3);
        assert_eq!(rat(7, 2).ceil(), 4);
        assert_eq!(rat(-7, 2).floor(), -4);
        assert_eq!(rat(-7, 2).ceil(), -3);
        assert_eq!(rat(6, 2).floor(), 3);
        assert_eq!(rat(6, 2).ceil(), 3);
        assert_eq!(Rational::ZERO.floor(), 0);
        assert_eq!(Rational::ZERO.ceil(), 0);
    }

    #[test]
    fn pow_matches_repeated_multiplication() {
        let x = rat(3, 2);
        assert_eq!(x.pow(0), Rational::ONE);
        assert_eq!(x.pow(1), x);
        assert_eq!(x.pow(3), rat(27, 8));
        assert_eq!(rat(-2, 1).pow(3), rat(-8, 1));
        assert_eq!(rat(-2, 1).pow(2), rat(4, 1));
    }

    #[test]
    fn recip_and_signs() {
        assert_eq!(rat(-3, 5).recip(), rat(-5, 3));
        assert_eq!(rat(3, 5).recip(), rat(5, 3));
        assert!(rat(-3, 5).recip().denom() > 0);
    }

    #[test]
    #[should_panic(expected = "recip of zero")]
    fn recip_zero_panics() {
        let _ = Rational::ZERO.recip();
    }

    #[test]
    fn to_f64_is_accurate_for_small_values() {
        assert!((rat(1, 3).to_f64() - 1.0 / 3.0).abs() < 1e-15);
        assert_eq!(rat(5, 1).to_f64(), 5.0);
    }

    #[test]
    fn approx_from_f64_roundtrips_small_decimals() {
        assert_eq!(Rational::approx_from_f64(2.5), rat(5, 2));
        assert_eq!(Rational::approx_from_f64(-0.125), rat(-1, 8));
        assert_eq!(Rational::approx_from_f64(0.0), Rational::ZERO);
    }

    #[test]
    fn min_max() {
        assert_eq!(rat(1, 2).min(rat(1, 3)), rat(1, 3));
        assert_eq!(rat(1, 2).max(rat(1, 3)), rat(1, 2));
    }

    #[test]
    fn predicates() {
        assert!(rat(0, 3).is_zero());
        assert!(rat(1, 3).is_positive());
        assert!(rat(-1, 3).is_negative());
        assert!(rat(4, 2).is_integer());
        assert!(!rat(3, 2).is_integer());
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", rat(3, 4)), "3/4");
        assert_eq!(format!("{}", rat(8, 2)), "4");
        assert_eq!(format!("{:?}", rat(-1, 2)), "-1/2");
    }
}
