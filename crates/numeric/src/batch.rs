//! Batched, SIMD-friendly accumulation.
//!
//! A plain `for` loop folding into one accumulator is a serial dependency
//! chain: every add waits on the previous one, so neither the autovectorizer
//! nor the out-of-order core can overlap them (floating-point addition is
//! not associative, so the compiler must preserve the order). Splitting the
//! sum into independent *lanes* — stride-4 partial sums combined at the end
//! — breaks the chain: the four lane adds have no data dependence on each
//! other, which is exactly the shape `llvm` turns into packed vector adds
//! for `f64` slices and which executes 2–4× wider even when it stays scalar.
//!
//! Reordering a float sum changes the rounding, so the batched order is part
//! of the contract:
//!
//! * slices shorter than [`LANE_CUTOVER`] are summed left-to-right,
//!   bit-identical to the pre-batching code (small inputs dominate the unit
//!   tests and fixtures, and get no speedup from lanes anyway);
//! * longer slices use 4 stride lanes (`lane k` takes elements `k, k+4,
//!   k+8, …`), combined pairwise `(l0+l1) + (l2+l3)`, with the tail of
//!   `len % 4` elements folded in left-to-right afterwards.
//!
//! Exact types ([`Rational`](crate::Rational)) are associative, so for them
//! the lane order is unobservable and the split is purely a throughput
//! choice.

use crate::float::KahanSum;
use crate::FlowNum;

/// Slices shorter than this are summed sequentially (bit-identical to a
/// plain fold); at or above it, the 4-lane order kicks in.
pub const LANE_CUTOVER: usize = 8;

/// Sum of a slice via 4 independent stride lanes (see the module doc for
/// the exact order). The workhorse behind AVR's per-interval density total
/// and the polynomial energy accounting.
pub fn sum_lanes<T: FlowNum>(terms: &[T]) -> T {
    if terms.len() < LANE_CUTOVER {
        let mut total = T::zero();
        for &t in terms {
            total += t;
        }
        return total;
    }
    let mut lanes = [T::zero(), T::zero(), T::zero(), T::zero()];
    let mut chunks = terms.chunks_exact(4);
    for chunk in &mut chunks {
        lanes[0] += chunk[0];
        lanes[1] += chunk[1];
        lanes[2] += chunk[2];
        lanes[3] += chunk[3];
    }
    let mut total = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
    for &t in chunks.remainder() {
        total += t;
    }
    total
}

/// Four-lane compensated (Kahan) accumulator for `f64` streams.
///
/// Keeps the error-compensation guarantee of [`KahanSum`] while splitting
/// the adds across four independent lanes, so long energy accumulations are
/// no longer one serial chain of dependent add/sub pairs. Terms go to lanes
/// round-robin; [`value`](KahanLanes::value) combines the four compensated
/// lane values through one final compensated fold, in lane order.
#[derive(Clone, Debug, Default)]
pub struct KahanLanes {
    lanes: [KahanSum; 4],
    next: usize,
}

impl KahanLanes {
    /// A fresh accumulator at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one term to the next lane (round-robin).
    #[inline]
    pub fn add(&mut self, term: f64) {
        self.lanes[self.next & 3].add(term);
        self.next = self.next.wrapping_add(1);
    }

    /// The compensated total across all lanes.
    pub fn value(&self) -> f64 {
        let mut total = KahanSum::new();
        for lane in &self.lanes {
            total.add(lane.value());
        }
        total.value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rational::rat;
    use crate::Rational;

    #[test]
    fn short_slices_match_a_plain_fold_bit_for_bit() {
        let terms = [0.1f64, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7];
        assert!(terms.len() < LANE_CUTOVER);
        let plain = terms.iter().fold(0.0, |a, &b| a + b);
        assert_eq!(sum_lanes(&terms).to_bits(), plain.to_bits());
    }

    #[test]
    fn lane_sum_is_exact_for_rationals_regardless_of_length() {
        let terms: Vec<Rational> = (1..=37).map(|k| rat(1, k)).collect();
        let mut plain = Rational::ZERO;
        for &t in &terms {
            plain += t;
        }
        assert_eq!(sum_lanes(&terms), plain);
    }

    #[test]
    fn lane_sum_stays_within_float_tolerance_of_the_plain_fold() {
        let terms: Vec<f64> = (0..1000).map(|k| (k as f64 * 0.7).sin() * 1e3).collect();
        let plain: f64 = terms.iter().sum();
        let laned = sum_lanes(&terms);
        assert!((laned - plain).abs() <= 1e-9 * plain.abs().max(1.0));
    }

    #[test]
    fn kahan_lanes_recover_the_classic_cancellation_case() {
        // 1 + 1e16 - 1e16 repeated: naive summation loses the ones.
        let mut acc = KahanLanes::new();
        for _ in 0..100 {
            acc.add(1.0);
            acc.add(1e16);
            acc.add(-1e16);
        }
        assert_eq!(acc.value(), 100.0);
    }

    #[test]
    fn kahan_lanes_match_scalar_kahan_on_benign_input() {
        let mut lanes = KahanLanes::new();
        let mut scalar = KahanSum::new();
        for k in 0..256 {
            let t = (k as f64).sqrt();
            lanes.add(t);
            scalar.add(t);
        }
        assert!((lanes.value() - scalar.value()).abs() < 1e-9);
    }
}
