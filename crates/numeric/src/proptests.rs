//! Property-based tests for the numeric substrate.

use crate::rational::rat;
use crate::Rational;
use proptest::prelude::*;

/// Strategy producing rationals with moderate numerators/denominators, so
/// that chains of operations stay far away from `i128` overflow.
fn small_rational() -> impl Strategy<Value = Rational> {
    (-1000i128..1000, 1i128..1000).prop_map(|(n, d)| rat(n, d))
}

proptest! {
    #[test]
    fn add_commutes(a in small_rational(), b in small_rational()) {
        prop_assert_eq!(a + b, b + a);
    }

    #[test]
    fn add_associates(a in small_rational(), b in small_rational(), c in small_rational()) {
        prop_assert_eq!((a + b) + c, a + (b + c));
    }

    #[test]
    fn mul_distributes_over_add(a in small_rational(), b in small_rational(), c in small_rational()) {
        prop_assert_eq!(a * (b + c), a * b + a * c);
    }

    #[test]
    fn sub_is_add_neg(a in small_rational(), b in small_rational()) {
        prop_assert_eq!(a - b, a + (-b));
    }

    #[test]
    fn normalized_invariant(a in small_rational(), b in small_rational()) {
        for r in [a + b, a - b, a * b] {
            prop_assert!(r.denom() > 0);
            let g = {
                let (mut x, mut y) = (r.numer().unsigned_abs(), r.denom().unsigned_abs());
                while y != 0 { let t = x % y; x = y; y = t; }
                x
            };
            prop_assert!(r.numer() == 0 || g == 1, "not reduced: {:?}", r);
        }
    }

    #[test]
    fn division_inverts_multiplication(a in small_rational(), b in small_rational()) {
        prop_assume!(!b.is_zero());
        prop_assert_eq!((a * b) / b, a);
    }

    #[test]
    fn ordering_matches_f64(a in small_rational(), b in small_rational()) {
        // For small rationals f64 conversion is exact enough to agree with
        // the exact order whenever the values differ meaningfully.
        if (a.to_f64() - b.to_f64()).abs() > 1e-9 {
            prop_assert_eq!(a < b, a.to_f64() < b.to_f64());
        }
    }

    #[test]
    fn floor_ceil_bracket(a in small_rational()) {
        let f = a.floor();
        let c = a.ceil();
        prop_assert!(Rational::from_int(f as i64) <= a);
        prop_assert!(a <= Rational::from_int(c as i64));
        prop_assert!(c - f <= 1);
        if a.is_integer() { prop_assert_eq!(f, c); }
    }

    #[test]
    fn pow_agrees_with_f64(a in small_rational(), e in 0u32..5) {
        let exact = a.pow(e).to_f64();
        let approx = a.to_f64().powi(e as i32);
        let scale = approx.abs().max(1.0);
        prop_assert!((exact - approx).abs() <= 1e-9 * scale,
            "pow mismatch: {:?}^{} exact {} approx {}", a, e, exact, approx);
    }

    #[test]
    fn abs_and_neg(a in small_rational()) {
        prop_assert!(a.abs() >= Rational::ZERO);
        prop_assert_eq!(a.abs(), (-a).abs());
        prop_assert_eq!(-(-a), a);
    }
}
