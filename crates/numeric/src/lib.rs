//! Numeric substrate for the `mpss` workspace.
//!
//! The offline algorithm of Albers–Antoniadis–Greiner decides whether a
//! maximum flow saturates a target value `F_G = W/s`. Doing that decision in
//! floating point requires careful tolerances; doing it in exact rational
//! arithmetic requires a rational type whose denominators stay small. This
//! crate provides both, unified under the [`FlowNum`] trait so the max-flow
//! engines and the offline solver can be instantiated with either:
//!
//! * [`Rational`] — an exact `i128`-backed rational with aggressive
//!   normalization and overflow-checked arithmetic. On instances with
//!   integer (or rational) release times, deadlines and volumes, the whole
//!   offline pipeline is bit-exact.
//! * `f64` — the production path, with comparisons routed through
//!   [`FloatTol`] so "is the flow equal to the target" is a relative-epsilon
//!   decision rather than bitwise equality.
//!
//! ```
//! use mpss_numeric::{FlowNum, FloatTol, Rational};
//!
//! // Exact arithmetic: a third plus a sixth is exactly a half.
//! let r = Rational::new(1, 3) + Rational::new(1, 6);
//! assert_eq!(r, Rational::new(1, 2));
//!
//! // The float path answers the same question through a tolerance.
//! let f = 1.0_f64 / 3.0 + 1.0 / 6.0;
//! assert!(FloatTol::default().close(f, 0.5, 1.0));
//!
//! // Generic code sees one interface:
//! fn halve<T: FlowNum>(x: T) -> T { x / (T::one() + T::one()) }
//! assert_eq!(halve(Rational::new(1, 2)), Rational::new(1, 4));
//! assert_eq!(halve(0.5_f64), 0.25);
//! ```

// `!(a < b)` on our FlowNum types deliberately reads as "b ≤ a, treating
// incomparable (impossible for validated inputs) as false"; rewriting via
// partial_cmp would obscure the tolerance-free intent.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod batch;
pub mod float;
pub mod flownum;
pub mod rational;

pub use batch::{sum_lanes, KahanLanes};
pub use float::{FloatTol, KahanSum};
pub use flownum::FlowNum;
pub use rational::Rational;

#[cfg(test)]
mod proptests;
