//! Structured diffing of two JSON run reports — the `report-diff` gate.
//!
//! A run report (see [`RecordingCollector::to_json`](crate::RecordingCollector::to_json))
//! carries counters (deterministic work measures: phases, augmenting paths,
//! repair rounds), histograms (latency/energy distributions), and the span
//! tree (wall time). [`diff_reports`] compares two of them key by key and
//! classifies each counter increase against a regression threshold:
//! counters measure *work*, so "candidate did more work than baseline by
//! more than X%" is the gate CI trips on. A counter the baseline report
//! never carried is *new instrumentation*, reported but not gated (see
//! [`CounterDelta::in_baseline`]); a counter recorded as 0 that grew gates
//! at any threshold. Wall time and histogram quantiles shift with machine
//! load, so they are reported but gate only on request
//! ([`DiffOptions::gate_wall`]).

use crate::json::Json;
use std::collections::BTreeMap;

/// What to compare and what counts as a regression.
#[derive(Clone, Debug, Default)]
pub struct DiffOptions {
    /// Maximum tolerated counter increase, in percent (`0.0` = any increase
    /// regresses). `None` reports deltas without gating.
    pub max_regress_pct: Option<f64>,
    /// Only gate keys starting with this prefix (all keys are still
    /// *reported*). Lets CI gate `offline.*` work counters while ignoring
    /// nondeterministic `par.race.*` win splits.
    pub only_prefix: Option<String>,
    /// Also gate the wall-time delta against `max_regress_pct`.
    pub gate_wall: bool,
}

/// One counter compared across the two reports.
#[derive(Clone, Debug, PartialEq)]
pub struct CounterDelta {
    /// Counter key.
    pub name: String,
    /// Baseline value (0 if absent).
    pub a: u64,
    /// Candidate value (0 if absent).
    pub b: u64,
    /// Whether the baseline report carried the key at all. A counter the
    /// baseline *recorded as 0* that grew is an infinite regression; a
    /// counter the baseline *never knew about* (new instrumentation) has
    /// no baseline to regress from, so it is reported but never gated.
    pub in_baseline: bool,
}

impl CounterDelta {
    /// Relative change in percent; +∞ for a counter that appeared from 0.
    pub fn pct(&self) -> f64 {
        if self.a == 0 {
            if self.b == 0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (self.b as f64 - self.a as f64) / self.a as f64 * 100.0
        }
    }
}

/// One histogram statistic compared across the two reports.
#[derive(Clone, Debug, PartialEq)]
pub struct StatShift {
    /// Histogram key.
    pub name: String,
    /// Which statistic (`count`, `mean`, `p50`, `p90`, `p99`).
    pub stat: &'static str,
    /// Baseline value.
    pub a: f64,
    /// Candidate value.
    pub b: f64,
}

/// The outcome of [`diff_reports`].
#[derive(Clone, Debug, Default)]
pub struct ReportDiff {
    /// Counters whose values differ, sorted by key.
    pub counters: Vec<CounterDelta>,
    /// Counters present (in either report) that did not change.
    pub counters_unchanged: usize,
    /// Histogram statistics that differ, sorted by key then statistic.
    pub histograms: Vec<StatShift>,
    /// Total root-span wall time of each report, if spans are present.
    pub wall_ms: Option<(f64, f64)>,
    /// Human-readable regression descriptions; non-empty fails the gate.
    pub regressions: Vec<String>,
}

impl ReportDiff {
    /// `true` if any gated delta exceeded the threshold.
    pub fn is_regression(&self) -> bool {
        !self.regressions.is_empty()
    }

    /// The diff as human-readable text, one finding per line.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for c in &self.counters {
            let pct = c.pct();
            let pct = if !c.in_baseline {
                "new".to_string()
            } else if pct.is_finite() {
                format!("{pct:+.1}%")
            } else {
                "from 0".to_string()
            };
            out.push_str(&format!(
                "counter   {} : {} -> {} ({pct})\n",
                c.name, c.a, c.b
            ));
        }
        if self.counters_unchanged > 0 {
            out.push_str(&format!(
                "counters  {} unchanged\n",
                self.counters_unchanged
            ));
        }
        for h in &self.histograms {
            out.push_str(&format!(
                "histogram {}.{} : {:.4} -> {:.4}\n",
                h.name, h.stat, h.a, h.b
            ));
        }
        if let Some((a, b)) = self.wall_ms {
            out.push_str(&format!("wall_ms   {a:.3} -> {b:.3}\n"));
        }
        for r in &self.regressions {
            out.push_str(&format!("REGRESSION: {r}\n"));
        }
        if out.is_empty() {
            out.push_str("reports are identical\n");
        }
        out
    }
}

fn counters_of(report: &Json) -> BTreeMap<String, u64> {
    let mut out = BTreeMap::new();
    if let Some(Json::Obj(fields)) = report.get("counters") {
        for (key, value) in fields {
            let v = match value {
                Json::UInt(v) => *v,
                Json::Num(v) if *v >= 0.0 => *v as u64,
                _ => continue,
            };
            out.insert(key.clone(), v);
        }
    }
    out
}

fn num(value: Option<&Json>) -> Option<f64> {
    match value {
        Some(Json::Num(x)) => Some(*x),
        Some(Json::UInt(n)) => Some(*n as f64),
        _ => None,
    }
}

fn histograms_of(report: &Json) -> BTreeMap<String, Vec<(&'static str, f64)>> {
    let mut out = BTreeMap::new();
    if let Some(Json::Obj(fields)) = report.get("histograms") {
        for (key, summary) in fields {
            let stats: Vec<(&'static str, f64)> = ["count", "mean", "p50", "p90", "p99"]
                .into_iter()
                .filter_map(|stat| num(summary.get(stat)).map(|v| (stat, v)))
                .collect();
            out.insert(key.clone(), stats);
        }
    }
    out
}

fn wall_of(report: &Json) -> Option<f64> {
    // A run report carries its wall time as the root spans' durations; a
    // bench record carries an explicit "wall_ms" number.
    if let Some(wall) = num(report.get("wall_ms")) {
        return Some(wall);
    }
    match report.get("spans") {
        Some(Json::Arr(spans)) if !spans.is_empty() => {
            Some(spans.iter().filter_map(|s| num(s.get("ms"))).sum())
        }
        _ => None,
    }
}

/// Diffs candidate report `b` against baseline `a`. See [`DiffOptions`] for
/// gating; the returned [`ReportDiff`] always contains the full comparison.
pub fn diff_reports(a: &Json, b: &Json, opts: &DiffOptions) -> ReportDiff {
    let gated = |name: &str| match &opts.only_prefix {
        Some(prefix) => name.starts_with(prefix.as_str()),
        None => true,
    };
    let mut diff = ReportDiff::default();

    let ca = counters_of(a);
    let cb = counters_of(b);
    let keys: Vec<&String> = ca.keys().chain(cb.keys()).collect();
    let mut keys: Vec<&String> = keys;
    keys.sort();
    keys.dedup();
    for key in keys {
        let delta = CounterDelta {
            name: key.clone(),
            a: ca.get(key).copied().unwrap_or(0),
            b: cb.get(key).copied().unwrap_or(0),
            in_baseline: ca.contains_key(key.as_str()),
        };
        if delta.a == delta.b {
            diff.counters_unchanged += 1;
            continue;
        }
        if let Some(max) = opts.max_regress_pct {
            if delta.in_baseline && gated(key) && delta.b > delta.a && delta.pct() > max {
                diff.regressions.push(format!(
                    "counter {} grew {} -> {} (limit {max}%)",
                    delta.name, delta.a, delta.b
                ));
            }
        }
        diff.counters.push(delta);
    }

    let ha = histograms_of(a);
    let hb = histograms_of(b);
    let mut hkeys: Vec<&String> = ha.keys().chain(hb.keys()).collect();
    hkeys.sort();
    hkeys.dedup();
    let empty = Vec::new();
    for key in hkeys {
        let sa = ha.get(key).unwrap_or(&empty);
        let sb = hb.get(key).unwrap_or(&empty);
        for stat in ["count", "mean", "p50", "p90", "p99"] {
            let va = sa.iter().find(|(s, _)| *s == stat).map(|(_, v)| *v);
            let vb = sb.iter().find(|(s, _)| *s == stat).map(|(_, v)| *v);
            if let (Some(va), Some(vb)) = (va.or(Some(0.0)), vb.or(Some(0.0))) {
                if va != vb {
                    diff.histograms.push(StatShift {
                        name: key.clone(),
                        stat,
                        a: va,
                        b: vb,
                    });
                }
            }
        }
    }

    if let (Some(wa), Some(wb)) = (wall_of(a), wall_of(b)) {
        diff.wall_ms = Some((wa, wb));
        if let (Some(max), true) = (opts.max_regress_pct, opts.gate_wall) {
            if wa > 0.0 && (wb - wa) / wa * 100.0 > max {
                diff.regressions
                    .push(format!("wall_ms grew {wa:.3} -> {wb:.3} (limit {max}%)"));
            }
        }
    }

    diff
}

/// One snapshot name's newest-vs-previous comparison inside a bench
/// trajectory.
#[derive(Clone, Debug)]
pub struct BenchComparison {
    /// Snapshot name (e.g. `warmstart_ablation_smoke`).
    pub name: String,
    /// `git_rev` of the baseline (second-newest) entry.
    pub baseline_rev: String,
    /// `git_rev` of the candidate (newest) entry.
    pub candidate_rev: String,
    /// The counter/wall diff between them.
    pub diff: ReportDiff,
}

/// The outcome of [`diff_bench_trajectory`]: per-name comparisons plus the
/// names that had no baseline yet.
#[derive(Clone, Debug, Default)]
pub struct BenchGate {
    /// Newest-vs-previous diffs, one per snapshot name with ≥ 2 entries.
    pub comparisons: Vec<BenchComparison>,
    /// Snapshot names with a single entry — nothing to gate against yet.
    pub skipped: Vec<String>,
}

impl BenchGate {
    /// `true` if any comparison tripped its gate.
    pub fn is_regression(&self) -> bool {
        self.comparisons.iter().any(|c| c.diff.is_regression())
    }

    /// Human-readable gate outcome, one section per snapshot name.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for c in &self.comparisons {
            out.push_str(&format!(
                "bench {} : {} -> {}\n",
                c.name, c.baseline_rev, c.candidate_rev
            ));
            for line in c.diff.render_text().lines() {
                out.push_str("  ");
                out.push_str(line);
                out.push('\n');
            }
        }
        for name in &self.skipped {
            out.push_str(&format!("bench {name} : single entry, no baseline yet\n"));
        }
        if out.is_empty() {
            out.push_str("bench trajectory is empty\n");
        }
        out
    }
}

fn str_field(entry: &Json, key: &str) -> Option<String> {
    match entry.get(key) {
        Some(Json::Str(s)) => Some(s.clone()),
        _ => None,
    }
}

/// Gates a cumulative bench trajectory (a JSON array of
/// `{name, git_rev, wall_ms, counters}` entries, chronological): for each
/// snapshot name — or just `name`, if given — diffs the newest entry
/// against the previous one with [`diff_reports`]. Names with fewer than
/// two entries are reported as skipped, not failed: the first run of a new
/// snapshot has no baseline.
pub fn diff_bench_trajectory(
    doc: &Json,
    name: Option<&str>,
    opts: &DiffOptions,
) -> Result<BenchGate, String> {
    let Json::Arr(entries) = doc else {
        return Err("bench trajectory must be a JSON array".to_string());
    };
    // Group by name, keeping file (chronological) order within each group.
    let mut groups: Vec<(String, Vec<&Json>)> = Vec::new();
    for (i, entry) in entries.iter().enumerate() {
        let Some(entry_name) = str_field(entry, "name") else {
            return Err(format!("trajectory entry {i} has no \"name\""));
        };
        if name.is_some_and(|want| want != entry_name) {
            continue;
        }
        match groups.iter_mut().find(|(n, _)| *n == entry_name) {
            Some((_, group)) => group.push(entry),
            None => groups.push((entry_name, vec![entry])),
        }
    }
    if let Some(want) = name {
        if groups.is_empty() {
            return Err(format!("no trajectory entries named {want:?}"));
        }
    }
    let mut gate = BenchGate::default();
    for (group_name, group) in groups {
        if group.len() < 2 {
            gate.skipped.push(group_name);
            continue;
        }
        let baseline = group[group.len() - 2];
        let candidate = group[group.len() - 1];
        gate.comparisons.push(BenchComparison {
            name: group_name,
            baseline_rev: str_field(baseline, "git_rev").unwrap_or_else(|| "?".to_string()),
            candidate_rev: str_field(candidate, "git_rev").unwrap_or_else(|| "?".to_string()),
            diff: diff_reports(baseline, candidate, opts),
        });
    }
    Ok(gate)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(counters: &[(&str, u64)], hist_mean: Option<f64>) -> Json {
        let mut c = Json::object();
        for (k, v) in counters {
            c.push(k, Json::UInt(*v));
        }
        let mut doc = Json::object();
        doc.push("counters", c);
        if let Some(mean) = hist_mean {
            let mut h = Json::object();
            let mut s = Json::object();
            s.push("count", Json::UInt(2));
            s.push("mean", Json::Num(mean));
            s.push("p50", Json::Num(mean));
            s.push("p90", Json::Num(mean));
            s.push("p99", Json::Num(mean));
            h.push("latency", s);
            doc.push("histograms", h);
        }
        doc
    }

    #[test]
    fn self_diff_is_clean() {
        let a = report(&[("offline.phases", 3)], Some(1.5));
        let diff = diff_reports(
            &a,
            &a,
            &DiffOptions {
                max_regress_pct: Some(0.0),
                ..DiffOptions::default()
            },
        );
        assert!(!diff.is_regression());
        assert!(diff.counters.is_empty());
        assert!(diff.histograms.is_empty());
        assert_eq!(diff.counters_unchanged, 1);
        assert!(diff.render_text().contains("1 unchanged"));
    }

    #[test]
    fn counter_growth_past_threshold_regresses() {
        let a = report(&[("offline.phases", 10)], None);
        let b = report(&[("offline.phases", 12)], None);
        let loose = diff_reports(
            &a,
            &b,
            &DiffOptions {
                max_regress_pct: Some(25.0),
                ..DiffOptions::default()
            },
        );
        assert!(!loose.is_regression());
        assert_eq!(loose.counters.len(), 1);
        assert!((loose.counters[0].pct() - 20.0).abs() < 1e-9);
        let tight = diff_reports(
            &a,
            &b,
            &DiffOptions {
                max_regress_pct: Some(10.0),
                ..DiffOptions::default()
            },
        );
        assert!(tight.is_regression());
        assert!(tight.render_text().contains("REGRESSION"));
    }

    #[test]
    fn improvements_never_regress() {
        let a = report(&[("offline.phases", 10)], None);
        let b = report(&[("offline.phases", 5)], None);
        let diff = diff_reports(
            &a,
            &b,
            &DiffOptions {
                max_regress_pct: Some(0.0),
                ..DiffOptions::default()
            },
        );
        assert!(!diff.is_regression());
        assert_eq!(diff.counters.len(), 1);
    }

    #[test]
    fn prefix_filter_gates_but_still_reports() {
        let a = report(&[("offline.phases", 1), ("par.race.pr_wins", 1)], None);
        let b = report(&[("offline.phases", 1), ("par.race.pr_wins", 9)], None);
        let diff = diff_reports(
            &a,
            &b,
            &DiffOptions {
                max_regress_pct: Some(0.0),
                only_prefix: Some("offline.".to_string()),
                ..DiffOptions::default()
            },
        );
        assert!(!diff.is_regression());
        // The nondeterministic counter is still in the textual diff.
        assert_eq!(diff.counters.len(), 1);
        assert_eq!(diff.counters[0].name, "par.race.pr_wins");
    }

    #[test]
    fn counters_growing_from_explicit_zero_regress_at_any_threshold() {
        let a = report(&[("offline.phases", 0)], None);
        let b = report(&[("offline.phases", 1)], None);
        let diff = diff_reports(
            &a,
            &b,
            &DiffOptions {
                max_regress_pct: Some(1000.0),
                ..DiffOptions::default()
            },
        );
        assert!(diff.is_regression());
        assert_eq!(diff.counters[0].pct(), f64::INFINITY);
        assert!(diff.counters[0].in_baseline);
    }

    #[test]
    fn counters_absent_from_the_baseline_report_but_never_gate() {
        // New instrumentation: the baseline predates the counter entirely,
        // so there is nothing to regress from. The delta is still reported.
        let a = report(&[], None);
        let b = report(&[("flight.events", 7)], None);
        let diff = diff_reports(
            &a,
            &b,
            &DiffOptions {
                max_regress_pct: Some(0.0),
                ..DiffOptions::default()
            },
        );
        assert!(!diff.is_regression());
        assert_eq!(diff.counters.len(), 1);
        assert!(!diff.counters[0].in_baseline);
        assert!(diff.render_text().contains("(new)"));
    }

    #[test]
    fn histogram_shifts_are_reported_not_gated() {
        let a = report(&[], Some(1.0));
        let b = report(&[], Some(2.0));
        let diff = diff_reports(
            &a,
            &b,
            &DiffOptions {
                max_regress_pct: Some(0.0),
                ..DiffOptions::default()
            },
        );
        assert!(!diff.is_regression());
        assert!(diff.histograms.iter().any(|h| h.stat == "mean"));
    }

    fn bench_entry(name: &str, rev: &str, wall: f64, phases: u64) -> Json {
        let mut counters = Json::object();
        counters.push("offline.phases", Json::UInt(phases));
        let mut entry = Json::object();
        entry.push("name", Json::from(name));
        entry.push("git_rev", Json::from(rev));
        entry.push("wall_ms", Json::Num(wall));
        entry.push("counters", counters);
        entry
    }

    #[test]
    fn bench_trajectory_gates_newest_against_previous() {
        let doc = Json::Arr(vec![
            bench_entry("smoke", "aaa", 10.0, 100),
            bench_entry("other", "aaa", 5.0, 7),
            bench_entry("smoke", "bbb", 11.0, 150),
        ]);
        let opts = DiffOptions {
            max_regress_pct: Some(25.0),
            ..DiffOptions::default()
        };
        let gate = diff_bench_trajectory(&doc, None, &opts).unwrap();
        assert_eq!(gate.comparisons.len(), 1);
        assert_eq!(gate.comparisons[0].name, "smoke");
        assert_eq!(gate.comparisons[0].baseline_rev, "aaa");
        assert_eq!(gate.comparisons[0].candidate_rev, "bbb");
        assert!(gate.is_regression(), "100 -> 150 is past 25%");
        assert_eq!(gate.skipped, vec!["other".to_string()]);
        assert!(gate.render_text().contains("no baseline yet"));

        // Name filter narrows the gate to one group.
        let only_other = diff_bench_trajectory(&doc, Some("other"), &opts).unwrap();
        assert!(only_other.comparisons.is_empty());
        assert!(!only_other.is_regression());
        assert!(diff_bench_trajectory(&doc, Some("nope"), &opts).is_err());
    }

    #[test]
    fn bench_trajectory_single_entry_passes() {
        let doc = Json::Arr(vec![bench_entry("smoke", "aaa", 10.0, 100)]);
        let gate = diff_bench_trajectory(&doc, Some("smoke"), &DiffOptions::default()).unwrap();
        assert!(!gate.is_regression());
        assert_eq!(gate.skipped, vec!["smoke".to_string()]);
    }

    #[test]
    fn wall_gates_only_when_asked() {
        let mut a = report(&[], None);
        a.push("wall_ms", Json::Num(100.0));
        let mut b = report(&[], None);
        b.push("wall_ms", Json::Num(200.0));
        let silent = diff_reports(
            &a,
            &b,
            &DiffOptions {
                max_regress_pct: Some(10.0),
                ..DiffOptions::default()
            },
        );
        assert!(!silent.is_regression());
        assert_eq!(silent.wall_ms, Some((100.0, 200.0)));
        let gated = diff_reports(
            &a,
            &b,
            &DiffOptions {
                max_regress_pct: Some(10.0),
                gate_wall: true,
                ..DiffOptions::default()
            },
        );
        assert!(gated.is_regression());
    }
}
