//! A small self-contained value histogram.
//!
//! Tracks exact count/sum/min/max and keeps the first
//! [`SAMPLE_CAP`](Histogram::SAMPLE_CAP) observations verbatim for quantile
//! estimation — the runs this crate instruments (per-phase spans, per-arrival
//! latencies) produce at most a few thousand observations, so the common case
//! is exact; beyond the cap the quantiles degrade gracefully to estimates
//! over the retained prefix while count/sum/min/max stay exact.

/// A value histogram with exact moments and prefix-sampled quantiles.
#[derive(Clone, Debug, Default)]
pub struct Histogram {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    samples: Vec<f64>,
}

/// Point-in-time summary of a [`Histogram`], as it appears in run reports.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HistogramSummary {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: f64,
    /// Arithmetic mean (0 when empty).
    pub mean: f64,
    /// Smallest recorded value (0 when empty).
    pub min: f64,
    /// Largest recorded value (0 when empty).
    pub max: f64,
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl Histogram {
    /// Number of raw observations retained for quantile estimation.
    pub const SAMPLE_CAP: usize = 4096;

    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one value. Non-finite values are dropped (they would poison
    /// every aggregate); callers observing ratios guard the denominator.
    pub fn record(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum += value;
        if self.samples.len() < Self::SAMPLE_CAP {
            self.samples.push(value);
        }
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// The `q`-quantile (`0 ≤ q ≤ 1`) over the retained samples, by the
    /// nearest-rank method. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(f64::total_cmp);
        let rank = (q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64).round() as usize;
        sorted[rank.min(sorted.len() - 1)]
    }

    /// Merges another histogram into this one. Count/sum/min/max stay exact;
    /// retained samples are concatenated (up to
    /// [`SAMPLE_CAP`](Histogram::SAMPLE_CAP)), so as long as neither side hit
    /// the cap the merged quantiles equal a solo run over the union — the
    /// property the per-worker track merge relies on.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum += other.sum;
        let room = Self::SAMPLE_CAP.saturating_sub(self.samples.len());
        self.samples
            .extend(other.samples.iter().take(room).copied());
    }

    /// Snapshot of all aggregates.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            sum: self.sum,
            mean: self.mean(),
            min: if self.count == 0 { 0.0 } else { self.min },
            max: if self.count == 0 { 0.0 } else { self.max },
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_summarizes_to_zeros() {
        let s = Histogram::new().summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 0.0);
        assert_eq!(s.p50, 0.0);
    }

    #[test]
    fn moments_are_exact() {
        let mut h = Histogram::new();
        for v in [3.0, 1.0, 2.0] {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 3);
        assert_eq!(s.sum, 6.0);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.p50, 2.0);
    }

    #[test]
    fn quantiles_use_nearest_rank() {
        let mut h = Histogram::new();
        for v in 1..=100 {
            h.record(v as f64);
        }
        assert_eq!(h.quantile(0.0), 1.0);
        assert_eq!(h.quantile(1.0), 100.0);
        assert!((h.quantile(0.5) - 50.0).abs() <= 1.0);
        assert!((h.quantile(0.9) - 90.0).abs() <= 1.0);
    }

    #[test]
    fn non_finite_values_are_dropped() {
        let mut h = Histogram::new();
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        h.record(2.0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), 2.0);
    }

    #[test]
    fn single_sample_histogram_is_degenerate_everywhere() {
        let mut h = Histogram::new();
        h.record(7.5);
        let s = h.summary();
        assert_eq!(s.count, 1);
        assert_eq!(s.min, 7.5);
        assert_eq!(s.max, 7.5);
        assert_eq!(s.mean, 7.5);
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 7.5);
        }
    }

    #[test]
    fn merge_equals_solo_recording_below_the_cap() {
        // Split one observation stream across two "worker" histograms;
        // merging them must reproduce the solo histogram exactly.
        let values: Vec<f64> = (0..200).map(|i| ((i * 37) % 101) as f64).collect();
        let mut solo = Histogram::new();
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for (i, &v) in values.iter().enumerate() {
            solo.record(v);
            if i < 80 { &mut a } else { &mut b }.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), solo.count());
        assert_eq!(a.summary().min, solo.summary().min);
        assert_eq!(a.summary().max, solo.summary().max);
        // Same multiset of samples ⇒ identical nearest-rank quantiles.
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(a.quantile(q), solo.quantile(q), "q={q}");
        }
        // Sum may differ only by FP association order.
        assert!((a.sum() - solo.sum()).abs() <= 1e-9 * solo.sum().abs().max(1.0));
    }

    #[test]
    fn merge_with_empty_is_identity_both_ways() {
        let mut h = Histogram::new();
        h.record(1.0);
        h.record(2.0);
        let before = h.summary();
        h.merge(&Histogram::new());
        assert_eq!(h.summary(), before);
        let mut empty = Histogram::new();
        empty.merge(&h);
        assert_eq!(empty.summary(), before);
    }

    #[test]
    fn merge_respects_the_sample_cap() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for i in 0..Histogram::SAMPLE_CAP {
            a.record(i as f64);
            b.record(i as f64);
        }
        a.merge(&b);
        assert_eq!(a.count(), 2 * Histogram::SAMPLE_CAP as u64);
        // Moments stay exact even though samples were truncated.
        assert_eq!(a.summary().max, (Histogram::SAMPLE_CAP - 1) as f64);
    }

    #[test]
    fn sample_cap_keeps_moments_exact() {
        let mut h = Histogram::new();
        for i in 0..(Histogram::SAMPLE_CAP + 10) {
            h.record(i as f64);
        }
        assert_eq!(h.count(), (Histogram::SAMPLE_CAP + 10) as u64);
        let s = h.summary();
        assert_eq!(s.max, (Histogram::SAMPLE_CAP + 9) as f64);
        // Quantiles come from the retained prefix — still in range.
        assert!(s.p50 >= 0.0 && s.p50 <= s.max);
    }
}
