//! Observability substrate for the `mpss` workspace.
//!
//! The offline algorithm (paper Fig. 2) is a nested loop of phases × repair
//! rounds × max-flow computations, and the online drivers replan it on every
//! arrival. Optimizing any of that requires measuring it first, so this crate
//! makes the work itself — not just wall time — a first-class observable
//! quantity:
//!
//! * [`Collector`] — the event sink trait: hierarchical spans (monotonic-clock
//!   timers), named counters, and value histograms. Every method has an empty
//!   default body, so instrumentation points cost nothing unless a collector
//!   opts in.
//! * [`NoopCollector`] — the statically-dispatched default. All methods inline
//!   to nothing; code generic over `C: Collector` instantiated with it
//!   compiles to exactly the uninstrumented loop.
//! * [`RecordingCollector`] — records the full span tree, counters, and
//!   histograms, and serializes them to a JSON run report.
//!
//! Like `mpss-numeric` hand-rolls Kahan summation, this crate hand-rolls its
//! own histogram and JSON emitter ([`json`]): the build environment is
//! offline, so it depends on nothing outside `std`.
//!
//! ```
//! use mpss_obs::{Collector, NoopCollector, RecordingCollector};
//!
//! // An instrumented function is generic over the collector…
//! fn solve<C: Collector>(rounds: usize, obs: &mut C) -> usize {
//!     obs.span_start("solve");
//!     for _ in 0..rounds {
//!         obs.count("solve.rounds", 1);
//!     }
//!     obs.span_end("solve");
//!     rounds
//! }
//!
//! // …a noop collector compiles the instrumentation away…
//! assert_eq!(solve(3, &mut NoopCollector), 3);
//!
//! // …and a recording collector turns the same run into a JSON report.
//! let mut rec = RecordingCollector::new();
//! solve(3, &mut rec);
//! assert_eq!(rec.counter("solve.rounds"), 3);
//! let report = rec.to_json().render_pretty();
//! assert!(report.contains("\"solve.rounds\": 3"));
//! ```

pub mod diff;
pub mod expo;
pub mod flight;
pub mod json;
pub mod log;
pub mod metrics;
pub mod names;
pub mod serve;

mod chrome;
mod hist;
mod record;
mod trace;

pub use chrome::{validate_chrome_trace, TraceCheck};
pub use diff::{diff_bench_trajectory, diff_reports, BenchGate, DiffOptions, ReportDiff};
pub use expo::{parse_exposition, ExpoFamily, ExpoSample, Exposition};
pub use flight::{FlightEvent, FlightEventKind, FlightRecorder};
pub use hist::{Histogram, HistogramSummary};
pub use log::{Level, LogRecord, LogSink, Logger, RingSink, StderrSink};
pub use metrics::{
    Counter, Gauge, MetricKind, MetricsCollector, MetricsHub, RingSampler, SnapshotRow,
    SnapshotValue, WindowHistogram,
};
pub use record::{RecordingCollector, SpanNode, SPAN_MISMATCH_COUNTER, SPAN_UNCLOSED_COUNTER};
pub use serve::{http_get, MetricsServer};
pub use trace::{TraceCollector, TraceEvent, TraceEventKind};

/// A sink for instrumentation events.
///
/// Instrumented code calls these methods unconditionally; which collector the
/// caller passes decides whether anything happens. All methods have empty
/// `#[inline]` default bodies so the [`NoopCollector`] monomorphizes to
/// nothing on the hot path — the collector is always threaded by generic
/// parameter (`C: Collector`), never by trait object.
///
/// Span names and counter/histogram keys are `&'static str` by design: no
/// formatting or allocation may happen at an instrumentation point.
pub trait Collector {
    /// Opens a span named `name`. Spans nest: a span opened while another is
    /// open becomes its child.
    #[inline(always)]
    fn span_start(&mut self, _name: &'static str) {}

    /// Closes the innermost open span. `name` should match the corresponding
    /// [`span_start`](Collector::span_start); recording collectors count a
    /// mismatch under `obs.span_mismatch` and surface it as a report warning
    /// rather than aborting the run.
    #[inline(always)]
    fn span_end(&mut self, _name: &'static str) {}

    /// Adds `by` to the counter named `counter`.
    #[inline(always)]
    fn count(&mut self, _counter: &'static str, _by: u64) {}

    /// Records `value` into the histogram named `histogram`.
    #[inline(always)]
    fn observe(&mut self, _histogram: &'static str, _value: f64) {}

    /// Records an *instant* (zero-duration) event — a point on the timeline
    /// rather than a region. Aggregating collectors fold instants into the
    /// counter of the same name; streaming collectors keep the timestamp.
    #[inline(always)]
    fn instant(&mut self, _name: &'static str) {}

    /// `true` if this collector actually records anything. Lets callers skip
    /// *computing* an expensive observed value (the instrumentation calls
    /// themselves are already free when disabled).
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }
}

/// The do-nothing collector: every method is an inlined empty body, so
/// instrumented code instantiated with it is byte-identical to the
/// uninstrumented loop.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NoopCollector;

impl Collector for NoopCollector {}

/// A [`Collector`] whose events can also be recorded from parallel workers,
/// each on its own named *track*.
///
/// `Collector` is deliberately `&mut self` state — workers cannot share it.
/// Instead the orchestrating thread [`fork`](TrackedCollector::fork)s one
/// track handle per worker (per race contender, per batch shard), moves each
/// handle into its worker, and [`adopt`](TrackedCollector::adopt)s them back
/// after the join **in submission order**, which makes the merged counters
/// and histograms deterministic whatever order the workers finished in.
/// Track handles are full collectors, so nested fan-out (a race inside a
/// batch shard) forks again from the handle — hence `Track:
/// TrackedCollector`.
///
/// Forking is an orchestration point, not an instrumentation point: it may
/// allocate (the name is a `&str`, not `&'static str`) because it happens
/// once per worker, never per event.
pub trait TrackedCollector: Collector {
    /// The per-worker handle type. For aggregating collectors this is the
    /// collector itself; for [`NoopCollector`] it is another noop.
    type Track: TrackedCollector + Send;

    /// Creates an empty collector for a parallel track named `name`.
    fn fork(&mut self, name: &str) -> Self::Track;

    /// Merges a forked track's recordings back into `self`. Call once per
    /// fork, after the worker joined, in submission order.
    fn adopt(&mut self, track: Self::Track);
}

impl TrackedCollector for NoopCollector {
    type Track = NoopCollector;

    #[inline(always)]
    fn fork(&mut self, _name: &str) -> NoopCollector {
        NoopCollector
    }

    #[inline(always)]
    fn adopt(&mut self, _track: NoopCollector) {}
}

impl<C: Collector + ?Sized> Collector for &mut C {
    #[inline(always)]
    fn span_start(&mut self, name: &'static str) {
        (**self).span_start(name);
    }
    #[inline(always)]
    fn span_end(&mut self, name: &'static str) {
        (**self).span_end(name);
    }
    #[inline(always)]
    fn count(&mut self, counter: &'static str, by: u64) {
        (**self).count(counter, by);
    }
    #[inline(always)]
    fn observe(&mut self, histogram: &'static str, value: f64) {
        (**self).observe(histogram, value);
    }
    #[inline(always)]
    fn instant(&mut self, name: &'static str) {
        (**self).instant(name);
    }
    #[inline(always)]
    fn enabled(&self) -> bool {
        (**self).enabled()
    }
}

impl<C: TrackedCollector> TrackedCollector for &mut C {
    type Track = C::Track;

    fn fork(&mut self, name: &str) -> C::Track {
        (**self).fork(name)
    }

    fn adopt(&mut self, track: C::Track) {
        (**self).adopt(track);
    }
}

/// Fans every event out to two collectors — e.g. a streaming
/// [`TraceCollector`] *and* an aggregating [`RecordingCollector`] observing
/// the same run. Forking forks both sides; adopting splits the pair back.
#[derive(Debug, Default)]
pub struct Tee<A, B>(pub A, pub B);

impl<A: Collector, B: Collector> Collector for Tee<A, B> {
    #[inline(always)]
    fn span_start(&mut self, name: &'static str) {
        self.0.span_start(name);
        self.1.span_start(name);
    }
    #[inline(always)]
    fn span_end(&mut self, name: &'static str) {
        self.0.span_end(name);
        self.1.span_end(name);
    }
    #[inline(always)]
    fn count(&mut self, counter: &'static str, by: u64) {
        self.0.count(counter, by);
        self.1.count(counter, by);
    }
    #[inline(always)]
    fn observe(&mut self, histogram: &'static str, value: f64) {
        self.0.observe(histogram, value);
        self.1.observe(histogram, value);
    }
    #[inline(always)]
    fn instant(&mut self, name: &'static str) {
        self.0.instant(name);
        self.1.instant(name);
    }
    #[inline(always)]
    fn enabled(&self) -> bool {
        self.0.enabled() || self.1.enabled()
    }
}

impl<A: TrackedCollector, B: TrackedCollector> TrackedCollector for Tee<A, B> {
    type Track = Tee<A::Track, B::Track>;

    fn fork(&mut self, name: &str) -> Self::Track {
        Tee(self.0.fork(name), self.1.fork(name))
    }

    fn adopt(&mut self, track: Self::Track) {
        self.0.adopt(track.0);
        self.1.adopt(track.1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn instrumented<C: Collector>(obs: &mut C) {
        obs.span_start("outer");
        obs.count("c", 2);
        obs.span_start("inner");
        obs.observe("h", 1.5);
        obs.span_end("inner");
        obs.span_end("outer");
    }

    #[test]
    fn noop_collector_accepts_everything() {
        let mut noop = NoopCollector;
        instrumented(&mut noop);
        assert!(!noop.enabled());
    }

    #[test]
    fn recording_collector_sees_the_same_events() {
        let mut rec = RecordingCollector::new();
        instrumented(&mut rec);
        assert!(rec.enabled());
        assert_eq!(rec.counter("c"), 2);
        assert_eq!(rec.histogram("h").unwrap().count(), 1);
        assert_eq!(rec.spans().len(), 1);
        assert_eq!(rec.spans()[0].name, "outer");
        assert_eq!(rec.spans()[0].children.len(), 1);
        assert_eq!(rec.spans()[0].children[0].name, "inner");
    }
}
