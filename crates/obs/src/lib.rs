//! Observability substrate for the `mpss` workspace.
//!
//! The offline algorithm (paper Fig. 2) is a nested loop of phases × repair
//! rounds × max-flow computations, and the online drivers replan it on every
//! arrival. Optimizing any of that requires measuring it first, so this crate
//! makes the work itself — not just wall time — a first-class observable
//! quantity:
//!
//! * [`Collector`] — the event sink trait: hierarchical spans (monotonic-clock
//!   timers), named counters, and value histograms. Every method has an empty
//!   default body, so instrumentation points cost nothing unless a collector
//!   opts in.
//! * [`NoopCollector`] — the statically-dispatched default. All methods inline
//!   to nothing; code generic over `C: Collector` instantiated with it
//!   compiles to exactly the uninstrumented loop.
//! * [`RecordingCollector`] — records the full span tree, counters, and
//!   histograms, and serializes them to a JSON run report.
//!
//! Like `mpss-numeric` hand-rolls Kahan summation, this crate hand-rolls its
//! own histogram and JSON emitter ([`json`]): the build environment is
//! offline, so it depends on nothing outside `std`.
//!
//! ```
//! use mpss_obs::{Collector, NoopCollector, RecordingCollector};
//!
//! // An instrumented function is generic over the collector…
//! fn solve<C: Collector>(rounds: usize, obs: &mut C) -> usize {
//!     obs.span_start("solve");
//!     for _ in 0..rounds {
//!         obs.count("solve.rounds", 1);
//!     }
//!     obs.span_end("solve");
//!     rounds
//! }
//!
//! // …a noop collector compiles the instrumentation away…
//! assert_eq!(solve(3, &mut NoopCollector), 3);
//!
//! // …and a recording collector turns the same run into a JSON report.
//! let mut rec = RecordingCollector::new();
//! solve(3, &mut rec);
//! assert_eq!(rec.counter("solve.rounds"), 3);
//! let report = rec.to_json().render_pretty();
//! assert!(report.contains("\"solve.rounds\": 3"));
//! ```

pub mod json;

mod hist;
mod record;

pub use hist::{Histogram, HistogramSummary};
pub use record::{RecordingCollector, SpanNode};

/// A sink for instrumentation events.
///
/// Instrumented code calls these methods unconditionally; which collector the
/// caller passes decides whether anything happens. All methods have empty
/// `#[inline]` default bodies so the [`NoopCollector`] monomorphizes to
/// nothing on the hot path — the collector is always threaded by generic
/// parameter (`C: Collector`), never by trait object.
///
/// Span names and counter/histogram keys are `&'static str` by design: no
/// formatting or allocation may happen at an instrumentation point.
pub trait Collector {
    /// Opens a span named `name`. Spans nest: a span opened while another is
    /// open becomes its child.
    #[inline(always)]
    fn span_start(&mut self, _name: &'static str) {}

    /// Closes the innermost open span. `name` must match the corresponding
    /// [`span_start`](Collector::span_start); recording collectors verify
    /// this in debug builds.
    #[inline(always)]
    fn span_end(&mut self, _name: &'static str) {}

    /// Adds `by` to the counter named `counter`.
    #[inline(always)]
    fn count(&mut self, _counter: &'static str, _by: u64) {}

    /// Records `value` into the histogram named `histogram`.
    #[inline(always)]
    fn observe(&mut self, _histogram: &'static str, _value: f64) {}

    /// `true` if this collector actually records anything. Lets callers skip
    /// *computing* an expensive observed value (the instrumentation calls
    /// themselves are already free when disabled).
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }
}

/// The do-nothing collector: every method is an inlined empty body, so
/// instrumented code instantiated with it is byte-identical to the
/// uninstrumented loop.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NoopCollector;

impl Collector for NoopCollector {}

#[cfg(test)]
mod tests {
    use super::*;

    fn instrumented<C: Collector>(obs: &mut C) {
        obs.span_start("outer");
        obs.count("c", 2);
        obs.span_start("inner");
        obs.observe("h", 1.5);
        obs.span_end("inner");
        obs.span_end("outer");
    }

    #[test]
    fn noop_collector_accepts_everything() {
        let mut noop = NoopCollector;
        instrumented(&mut noop);
        assert!(!noop.enabled());
    }

    #[test]
    fn recording_collector_sees_the_same_events() {
        let mut rec = RecordingCollector::new();
        instrumented(&mut rec);
        assert!(rec.enabled());
        assert_eq!(rec.counter("c"), 2);
        assert_eq!(rec.histogram("h").unwrap().count(), 1);
        assert_eq!(rec.spans().len(), 1);
        assert_eq!(rec.spans()[0].name, "outer");
        assert_eq!(rec.spans()[0].children.len(), 1);
        assert_eq!(rec.spans()[0].children[0].name, "inner");
    }
}
