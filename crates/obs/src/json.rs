//! A minimal JSON document builder and emitter.
//!
//! The build environment is offline, so run reports cannot lean on
//! `serde_json`; this module is the few dozen lines of JSON the workspace
//! actually needs — building a document tree, rendering it with correct
//! string escaping and round-trippable numbers, and parsing documents back
//! ([`Json::parse`]) so `report-diff` can compare two previously written run
//! reports.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A floating-point number. Non-finite values render as `null` (JSON has
    /// no NaN/∞).
    Num(f64),
    /// An unsigned integer, kept separate from [`Json::Num`] so counters
    /// render without a decimal point or precision loss.
    UInt(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved, so reports are deterministic.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object, to be extended with [`push`](Json::push).
    pub fn object() -> Json {
        Json::Obj(Vec::new())
    }

    /// Appends `key: value` to an object.
    ///
    /// # Panics
    /// Panics if `self` is not an [`Json::Obj`].
    pub fn push(&mut self, key: &str, value: Json) -> &mut Json {
        match self {
            Json::Obj(fields) => fields.push((key.to_string(), value)),
            other => panic!("Json::push on non-object {other:?}"),
        }
        self
    }

    /// Looks up a key in an object (test convenience; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Parses a JSON document. Numbers that are plain non-negative integers
    /// fitting `u64` parse as [`Json::UInt`] (so counters written as `UInt`
    /// round-trip); everything else numeric parses as [`Json::Num`]. Errors
    /// carry the byte offset of the offending input.
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.error("trailing data after document"));
        }
        Ok(value)
    }

    /// Renders compactly (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders with 2-space indentation, one field per line.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => {
                if x.is_finite() {
                    // `{}` on f64 is shortest round-trip formatting, always a
                    // valid JSON number (no exponent-only forms like `1e3`
                    // would still be valid anyway).
                    let _ = write!(out, "{x}");
                } else {
                    out.push_str("null");
                }
            }
            Json::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                    items[i].write(out, indent, depth + 1);
                });
            }
            Json::Obj(fields) => {
                write_seq(out, indent, depth, '{', '}', fields.len(), |out, i| {
                    let (key, value) = &fields[i];
                    escape_into(key, out);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, depth + 1);
                });
            }
        }
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Num(x)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::UInt(n)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

/// A [`Json::parse`] failure: what went wrong and where.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of the problem.
    pub message: String,
    /// Byte offset into the input where parsing stopped.
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.eat(b) {
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.bytes.get(self.pos) {
            None => Err(self.error("unexpected end of input")),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(&b) => Err(self.error(&format!("unexpected byte 0x{b:02x}"))),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            if self.eat(b']') {
                return Ok(Json::Arr(items));
            }
            self.expect(b',')?;
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            if self.eat(b'}') {
                return Ok(Json::Obj(fields));
            }
            self.expect(b',')?;
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(self.error("unterminated string"));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(self.error("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: a second \uXXXX must follow.
                                if !(self.eat(b'\\') && self.eat(b'u')) {
                                    return Err(self.error("lone high surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
                            } else {
                                hi
                            };
                            match char::from_u32(code) {
                                Some(c) => out.push(c),
                                None => return Err(self.error("invalid unicode escape")),
                            }
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                _ => {
                    // Consume one UTF-8 character (input is &str, so slicing
                    // at the next char boundary is safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.error("invalid utf-8"))?;
                    let c = rest.chars().next().expect("non-empty checked above");
                    if (c as u32) < 0x20 {
                        return Err(self.error("unescaped control character"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(self.error("truncated \\u escape"));
            };
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.error("bad hex digit in \\u escape"))?;
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        self.eat(b'-');
        while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let integral_end = self.pos;
        if self.eat(b'.') {
            while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.bytes.get(self.pos), Some(b'e' | b'E')) {
            self.pos += 1;
            if !self.eat(b'-') {
                let _ = self.eat(b'+');
            }
            while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number chars are single-byte");
        if self.pos == integral_end && !text.starts_with('-') {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.error("malformed number"))
    }
}

/// Shared bracketed-sequence writer for arrays and objects.
fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
    out.push(close);
}

/// Writes `s` as a JSON string literal (quotes included).
fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::UInt(42).render(), "42");
        assert_eq!(Json::Num(1.5).render(), "1.5");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
        assert_eq!(Json::from("hi").render(), "\"hi\"");
    }

    #[test]
    fn strings_are_escaped() {
        let s = Json::from("a\"b\\c\nd\te\u{1}");
        assert_eq!(s.render(), "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn nested_structure_renders_compact_and_pretty() {
        let mut obj = Json::object();
        obj.push("xs", Json::Arr(vec![Json::UInt(1), Json::UInt(2)]));
        obj.push("empty", Json::object());
        assert_eq!(obj.render(), r#"{"xs":[1,2],"empty":{}}"#);
        let pretty = obj.render_pretty();
        assert!(pretty.contains("\"xs\": [\n    1,\n    2\n  ]"));
        assert!(pretty.ends_with("}\n"));
    }

    #[test]
    fn object_order_is_insertion_order() {
        let mut obj = Json::object();
        obj.push("z", Json::UInt(1));
        obj.push("a", Json::UInt(2));
        assert_eq!(obj.render(), r#"{"z":1,"a":2}"#);
        assert_eq!(obj.get("a"), Some(&Json::UInt(2)));
        assert_eq!(obj.get("missing"), None);
    }

    #[test]
    fn numbers_round_trip_textually() {
        // Shortest round-trip formatting: reading the text back yields the
        // identical double.
        for x in [0.1, 1.0 / 3.0, 1e-12, 123456.789] {
            let text = Json::Num(x).render();
            assert_eq!(text.parse::<f64>().unwrap(), x);
        }
    }

    #[test]
    #[should_panic(expected = "non-object")]
    fn push_on_array_panics() {
        Json::Arr(vec![]).push("k", Json::Null);
    }

    #[test]
    fn parse_round_trips_rendered_documents() {
        let mut obj = Json::object();
        obj.push("counters", {
            let mut c = Json::object();
            c.push("offline.phases", Json::UInt(12));
            c.push("huge", Json::UInt(u64::MAX));
            c
        });
        obj.push("wall_ms", Json::Num(1.25));
        obj.push("neg", Json::Num(-3.0));
        obj.push("text", Json::from("a\"b\\c\nd"));
        obj.push("flags", Json::Arr(vec![Json::Bool(true), Json::Null]));
        for text in [obj.render(), obj.render_pretty()] {
            assert_eq!(Json::parse(&text).unwrap(), obj);
        }
    }

    #[test]
    fn parse_number_shapes() {
        assert_eq!(Json::parse("42").unwrap(), Json::UInt(42));
        assert_eq!(Json::parse("-42").unwrap(), Json::Num(-42.0));
        assert_eq!(Json::parse("1.5").unwrap(), Json::Num(1.5));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Num(1000.0));
        assert_eq!(Json::parse("2.5e-1").unwrap(), Json::Num(0.25));
        // Too big for u64 → falls back to f64.
        assert_eq!(
            Json::parse("99999999999999999999999").unwrap(),
            Json::Num(1e23)
        );
    }

    #[test]
    fn parse_unicode_escapes() {
        assert_eq!(
            Json::parse(r#""é😀""#).unwrap(),
            Json::Str("é😀".to_string())
        );
        // Escaped forms decode to the same characters (incl. surrogate pair).
        assert_eq!(
            Json::parse("\"\\u00e9 \\ud83d\\ude00\"").unwrap(),
            Json::Str("é 😀".to_string())
        );
        assert!(Json::parse(r#""\ud83d""#).is_err());
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "", "{", "[1,", "{\"a\":}", "tru", "01x", "\"abc", "{} extra", "{'a':1}",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parse_errors_carry_offsets() {
        let err = Json::parse("[1, @]").unwrap_err();
        assert_eq!(err.offset, 4);
        assert!(err.to_string().contains("byte 4"));
    }
}
