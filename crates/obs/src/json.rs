//! A minimal JSON document builder and emitter.
//!
//! The build environment is offline, so run reports cannot lean on
//! `serde_json`; this module is the few dozen lines of JSON the workspace
//! actually needs — building a document tree and rendering it with correct
//! string escaping and round-trippable numbers. No parsing: reports are
//! write-only from this side (tests parse them with whatever JSON reader the
//! consuming environment has).

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A floating-point number. Non-finite values render as `null` (JSON has
    /// no NaN/∞).
    Num(f64),
    /// An unsigned integer, kept separate from [`Json::Num`] so counters
    /// render without a decimal point or precision loss.
    UInt(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved, so reports are deterministic.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object, to be extended with [`push`](Json::push).
    pub fn object() -> Json {
        Json::Obj(Vec::new())
    }

    /// Appends `key: value` to an object.
    ///
    /// # Panics
    /// Panics if `self` is not an [`Json::Obj`].
    pub fn push(&mut self, key: &str, value: Json) -> &mut Json {
        match self {
            Json::Obj(fields) => fields.push((key.to_string(), value)),
            other => panic!("Json::push on non-object {other:?}"),
        }
        self
    }

    /// Looks up a key in an object (test convenience; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Renders compactly (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders with 2-space indentation, one field per line.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => {
                if x.is_finite() {
                    // `{}` on f64 is shortest round-trip formatting, always a
                    // valid JSON number (no exponent-only forms like `1e3`
                    // would still be valid anyway).
                    let _ = write!(out, "{x}");
                } else {
                    out.push_str("null");
                }
            }
            Json::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                    items[i].write(out, indent, depth + 1);
                });
            }
            Json::Obj(fields) => {
                write_seq(out, indent, depth, '{', '}', fields.len(), |out, i| {
                    let (key, value) = &fields[i];
                    escape_into(key, out);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, depth + 1);
                });
            }
        }
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Num(x)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::UInt(n)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

/// Shared bracketed-sequence writer for arrays and objects.
fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
    out.push(close);
}

/// Writes `s` as a JSON string literal (quotes included).
fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::UInt(42).render(), "42");
        assert_eq!(Json::Num(1.5).render(), "1.5");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
        assert_eq!(Json::from("hi").render(), "\"hi\"");
    }

    #[test]
    fn strings_are_escaped() {
        let s = Json::from("a\"b\\c\nd\te\u{1}");
        assert_eq!(s.render(), "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn nested_structure_renders_compact_and_pretty() {
        let mut obj = Json::object();
        obj.push("xs", Json::Arr(vec![Json::UInt(1), Json::UInt(2)]));
        obj.push("empty", Json::object());
        assert_eq!(obj.render(), r#"{"xs":[1,2],"empty":{}}"#);
        let pretty = obj.render_pretty();
        assert!(pretty.contains("\"xs\": [\n    1,\n    2\n  ]"));
        assert!(pretty.ends_with("}\n"));
    }

    #[test]
    fn object_order_is_insertion_order() {
        let mut obj = Json::object();
        obj.push("z", Json::UInt(1));
        obj.push("a", Json::UInt(2));
        assert_eq!(obj.render(), r#"{"z":1,"a":2}"#);
        assert_eq!(obj.get("a"), Some(&Json::UInt(2)));
        assert_eq!(obj.get("missing"), None);
    }

    #[test]
    fn numbers_round_trip_textually() {
        // Shortest round-trip formatting: reading the text back yields the
        // identical double.
        for x in [0.1, 1.0 / 3.0, 1e-12, 123456.789] {
            let text = Json::Num(x).render();
            assert_eq!(text.parse::<f64>().unwrap(), x);
        }
    }

    #[test]
    #[should_panic(expected = "non-object")]
    fn push_on_array_panics() {
        Json::Arr(vec![]).push("k", Json::Null);
    }
}
