//! The streaming trace collector: an ordered event timeline with tracks.
//!
//! Where [`RecordingCollector`](crate::RecordingCollector) *aggregates*
//! (span trees, counter totals, histograms), [`TraceCollector`] *streams*:
//! every span begin/end, instant, and counter sample is appended to an
//! ordered event list with a monotonic timestamp and a track id. Parallel
//! workers (pool workers, race contenders, batch shards) each record onto a
//! forked track and the tracks merge deterministically at join — which is
//! what makes the timeline renderable per-thread in Perfetto (see
//! [`chrome`](crate::chrome) for the export).
//!
//! Timestamps come from one shared epoch: [`TraceCollector::fork`] copies
//! the parent's epoch `Instant` into the child, so events recorded on
//! different threads are directly comparable on one time axis.

use crate::{Collector, TrackedCollector};
use std::time::Instant;

/// What happened at one point of the timeline.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TraceEventKind {
    /// A span opened.
    Begin(&'static str),
    /// The innermost span closed.
    End(&'static str),
    /// A zero-duration point event.
    Instant(&'static str),
    /// A counter was incremented by the given delta (the Chrome export
    /// accumulates deltas into running per-track totals).
    Count(&'static str, u64),
    /// A value was observed into a histogram; the trace keeps the raw
    /// sample so value series render as counter tracks.
    Value(&'static str, f64),
}

/// One timeline event: when, on which track, and what.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraceEvent {
    /// Index into [`TraceCollector::track_names`].
    pub track: u32,
    /// Nanoseconds since the root collector's epoch.
    pub ts_ns: u64,
    /// The event itself.
    pub kind: TraceEventKind,
}

/// A [`Collector`] that records the full ordered event stream.
///
/// Forked tracks keep their events under *local* track ids (their own track
/// is id 0); [`adopt`](TrackedCollector::adopt) renumbers the child's tracks
/// after the parent's existing ones and appends its events — so the final
/// track numbering depends only on fork/adopt order, never on thread timing.
#[derive(Clone, Debug)]
pub struct TraceCollector {
    epoch: Instant,
    tracks: Vec<String>,
    events: Vec<TraceEvent>,
}

impl TraceCollector {
    /// Creates a trace whose root track is named `root_name` and whose
    /// timestamps count from "now".
    pub fn new(root_name: &str) -> TraceCollector {
        TraceCollector {
            epoch: Instant::now(),
            tracks: vec![root_name.to_string()],
            events: Vec::new(),
        }
    }

    fn push(&mut self, kind: TraceEventKind) {
        let ts_ns = self.epoch.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        self.events.push(TraceEvent {
            track: 0,
            ts_ns,
            kind,
        });
    }

    /// Track names; a [`TraceEvent::track`] indexes this slice. Index 0 is
    /// this collector's own track, adopted tracks follow in adopt order.
    pub fn track_names(&self) -> &[String] {
        &self.tracks
    }

    /// All recorded events. Events of any single track appear in
    /// chronological order; events of different tracks interleave in
    /// adopt order (child blocks append after the parent's own events so
    /// far).
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }
}

impl Collector for TraceCollector {
    fn span_start(&mut self, name: &'static str) {
        self.push(TraceEventKind::Begin(name));
    }

    fn span_end(&mut self, name: &'static str) {
        self.push(TraceEventKind::End(name));
    }

    fn count(&mut self, counter: &'static str, by: u64) {
        self.push(TraceEventKind::Count(counter, by));
    }

    fn observe(&mut self, histogram: &'static str, value: f64) {
        self.push(TraceEventKind::Value(histogram, value));
    }

    fn instant(&mut self, name: &'static str) {
        self.push(TraceEventKind::Instant(name));
    }

    fn enabled(&self) -> bool {
        true
    }
}

impl TrackedCollector for TraceCollector {
    type Track = TraceCollector;

    fn fork(&mut self, name: &str) -> TraceCollector {
        TraceCollector {
            // Shared epoch: the child's timestamps land on the parent's axis.
            epoch: self.epoch,
            tracks: vec![name.to_string()],
            events: Vec::new(),
        }
    }

    fn adopt(&mut self, track: TraceCollector) {
        let offset = self.tracks.len() as u32;
        self.tracks.extend(track.tracks);
        self.events.extend(track.events.into_iter().map(|mut e| {
            e.track += offset;
            e
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_record_in_order_with_monotone_timestamps() {
        let mut t = TraceCollector::new("main");
        t.span_start("solve");
        t.count("c", 2);
        t.instant("tick");
        t.observe("v", 1.5);
        t.span_end("solve");
        let kinds: Vec<_> = t.events().iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                TraceEventKind::Begin("solve"),
                TraceEventKind::Count("c", 2),
                TraceEventKind::Instant("tick"),
                TraceEventKind::Value("v", 1.5),
                TraceEventKind::End("solve"),
            ]
        );
        assert!(t.events().windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
        assert!(t.events().iter().all(|e| e.track == 0));
        assert_eq!(t.track_names(), ["main"]);
    }

    #[test]
    fn adopt_renumbers_tracks_deterministically() {
        let mut root = TraceCollector::new("main");
        root.instant("root-event");
        let mut a = root.fork("worker-0");
        let mut b = root.fork("worker-1");
        a.instant("a-event");
        b.instant("b-event");
        // Adopt out of fork order on purpose: numbering follows adopt order.
        root.adopt(b);
        root.adopt(a);
        assert_eq!(root.track_names(), ["main", "worker-1", "worker-0"]);
        let tracks: Vec<u32> = root.events().iter().map(|e| e.track).collect();
        assert_eq!(tracks, vec![0, 1, 2]);
    }

    #[test]
    fn nested_forks_remap_transitively() {
        let mut root = TraceCollector::new("main");
        let mut shard = root.fork("shard-0");
        let mut contender = shard.fork("race.dinic");
        contender.instant("race.bail");
        shard.instant("shard-event");
        shard.adopt(contender);
        root.adopt(shard);
        assert_eq!(root.track_names(), ["main", "shard-0", "race.dinic"]);
        let by_track: Vec<(u32, TraceEventKind)> =
            root.events().iter().map(|e| (e.track, e.kind)).collect();
        assert!(by_track.contains(&(1, TraceEventKind::Instant("shard-event"))));
        assert!(by_track.contains(&(2, TraceEventKind::Instant("race.bail"))));
    }

    #[test]
    fn forked_tracks_share_the_epoch() {
        let mut root = TraceCollector::new("main");
        root.instant("before");
        let mut child = root.fork("w");
        child.instant("after");
        let child_ts = child.events()[0].ts_ns;
        root.adopt(child);
        // The child's event is on the same axis, after the root's.
        assert!(child_ts >= root.events()[0].ts_ns);
    }
}
