//! The instrumentation-key manifest.
//!
//! Every counter, histogram, span, and instant name the workspace emits is
//! listed here, in one place. Two things hang off the manifest:
//!
//! * a coverage test (`tests/obs.rs` in the root crate) runs the solvers
//!   end-to-end and asserts every *recorded* key is listed — so a typo'd key
//!   at an instrumentation point fails CI instead of silently forking a new
//!   counter;
//! * the DESIGN.md observability table is generated from
//!   [`markdown_table`], so docs cannot drift from code.
//!
//! When adding an instrumentation point, add its key here (the arrays are
//! sorted; keep them that way).

/// Every counter key, sorted. Instants are listed separately in
/// [`INSTANTS`] but also land here logically when an aggregating collector
/// folds them into counters — [`known_counter`] accepts both.
pub const COUNTERS: &[(&str, &str)] = &[
    (
        "avr.intervals",
        "AVR density intervals summed into the profile",
    ),
    ("avr.peeled", "AVR per-job segments peeled off the profile"),
    (
        "batch.solved",
        "instances a batch shard finished (shard-level progress)",
    ),
    (
        "driver.segments",
        "schedule segments emitted by the online driver",
    ),
    (
        "exp.cold.augmenting_paths",
        "ablation: augmenting paths, cold max-flow",
    ),
    (
        "exp.csr.pr_ops",
        "ablation: push-relabel work, CSR engine with heuristics",
    ),
    (
        "exp.legacy.pr_ops",
        "ablation: push-relabel work, legacy Vec<Edge> engine",
    ),
    (
        "exp.warm.augmenting_paths",
        "ablation: augmenting paths, warm-started",
    ),
    (
        "flight.overhead_pct",
        "always-on recorder overhead as hundredths of a percent of soak wall time",
    ),
    (
        "maxflow.dinic.augmenting_paths",
        "Dinic augmenting paths found",
    ),
    (
        "maxflow.dinic.bfs_phases",
        "Dinic level-graph (BFS) phases built",
    ),
    (
        "maxflow.pr.current_arc_resets",
        "push-relabel current-arc pointer resets after relabels",
    ),
    (
        "maxflow.pr.gap_events",
        "push-relabel gap heuristic firings",
    ),
    (
        "maxflow.pr.global_relabels",
        "push-relabel global-relabel (backward BFS) passes",
    ),
    ("maxflow.pr.pushes", "push-relabel push operations"),
    ("maxflow.pr.relabels", "push-relabel relabel operations"),
    (
        "maxflow.warm.drained",
        "warm-start flow units drained on rebuild",
    ),
    (
        "maxflow.warm.reused_flow",
        "warm-start flow units carried over",
    ),
    (
        "oa.maxflow.invocations",
        "max-flow calls made by OA replans",
    ),
    ("oa.replans", "OA replan events (one per arrival)"),
    ("oa.reseed.jobs", "jobs carried into reseeded OA replans"),
    (
        "oa.reseed.replans",
        "OA replans that reused the previous plan as seed",
    ),
    (
        "obs.span_mismatch",
        "span_end calls that did not match the open span",
    ),
    ("obs.span_unclosed", "spans force-closed at report time"),
    (
        "offline.cold_rounds_avoided",
        "repair rounds served from the warm model",
    ),
    (
        "offline.incremental.patched_arcs",
        "network arcs patched with arrivals/expiries instead of probed",
    ),
    (
        "offline.incremental.rebuilt",
        "planner syncs that fell back to a full re-derivation",
    ),
    (
        "offline.incremental.reused_intervals",
        "partition breakpoints carried over unchanged across a sync",
    ),
    (
        "offline.jobs_removed",
        "jobs fixed at peak speed by the repair loop",
    ),
    ("offline.maxflow.invocations", "max-flow computations run"),
    ("offline.phases", "phases of the optimal offline algorithm"),
    (
        "offline.repair_rounds",
        "repair-loop iterations across all phases",
    ),
    ("par.pool.threads", "worker threads the pool fanned out to"),
    ("par.race.dinic_wins", "engine races won by Dinic"),
    ("par.race.pr_wins", "engine races won by push-relabel"),
    ("par.tasks", "tasks submitted to the worker pool"),
    (
        "par.worker.items",
        "items one pool worker claimed (per-worker track)",
    ),
    (
        "serve.arrivals",
        "jobs the soak harness pushed through daemon tenants",
    ),
    (
        "serve.checkpoint_ms",
        "milliseconds the soak harness spent in checkpoint requests",
    ),
    (
        "serve.flight.dropped",
        "flight-recorder events evicted across all daemon recorders",
    ),
    (
        "serve.flight.events",
        "flight-recorder events recorded across all daemon recorders",
    ),
    ("serve.postmortems", "postmortem bundles the daemon wrote"),
    ("serve.tenants", "tenant sessions the soak harness opened"),
];

/// Every histogram key, sorted. Span-duration histograms (`span.<name>.ms`)
/// are derived from [`SPANS`] and not repeated here.
pub const HISTOGRAMS: &[(&str, &str)] = &[
    (
        "driver.energy_trajectory",
        "online/OPT energy ratio per prefix",
    ),
    ("driver.online_energy", "online algorithm energy per run"),
    ("driver.opt_energy", "optimal offline energy per run"),
    (
        "offline.flow_vs_target",
        "max-flow value vs. demand target per probe",
    ),
    ("offline.jobs_removed_per_phase", "jobs fixed per phase"),
];

/// Every span name, sorted. Each span `s` implies a derived histogram
/// `span.<s>.ms`.
pub const SPANS: &[(&str, &str)] = &[
    ("avr.chunk", "one AVR worker's contiguous interval chunk"),
    ("batch.solve", "one instance solved inside a batch shard"),
    ("oa.replan", "one OA arrival replan, end to end"),
    ("offline.optimal_schedule", "the whole offline solve"),
    ("offline.phase", "one phase: repair loop + extraction"),
    (
        "race.probe",
        "one engine's attempt at a raced max-flow probe",
    ),
];

/// Every instant-event name, sorted. Aggregating collectors fold instants
/// into same-named counters, so [`known_counter`] accepts these too.
pub const INSTANTS: &[(&str, &str)] = &[
    ("oa.arrival", "a job arrived and triggered a replan"),
    (
        "offline.job_removed",
        "the repair loop fixed a job at peak speed",
    ),
    (
        "race.bail",
        "a racing engine observed the cancel flag and bailed",
    ),
    ("race.cancelled", "the losing engine's result was discarded"),
];

/// Every *explicitly registered* live-metric family name, sorted. These are
/// the `{algo, proc, …}`-labeled series the sessions publish directly into a
/// [`MetricsHub`](crate::MetricsHub); the bridged families derived from
/// [`COUNTERS`]/[`HISTOGRAMS`]/[`INSTANTS`] via [`prom_counter`] /
/// [`prom_histogram`] are *not* repeated here — [`known_metric`] accepts
/// both.
pub const METRICS: &[(&str, &str)] = &[
    (
        "mpss_serve_checkpoint_seconds",
        "histogram: wall-clock latency of one daemon checkpoint request",
    ),
    (
        "mpss_serve_errors_total",
        "counter: daemon requests that failed, by error kind",
    ),
    (
        "mpss_serve_flight_dropped_total",
        "counter: flight-recorder events evicted, by tenant",
    ),
    (
        "mpss_serve_flight_events",
        "gauge: flight-recorder ring occupancy, by tenant",
    ),
    (
        "mpss_serve_log_records_total",
        "counter: structured log records the daemon emitted",
    ),
    (
        "mpss_serve_postmortem_total",
        "counter: postmortem bundles written, by trigger reason",
    ),
    (
        "mpss_serve_replan_patched_arcs",
        "gauge: cumulative arcs patched by a tenant's incremental replans",
    ),
    (
        "mpss_serve_requests_total",
        "counter: daemon requests handled, by op",
    ),
    (
        "mpss_serve_tenants",
        "gauge: live tenant sessions in the daemon",
    ),
    (
        "mpss_session_active_jobs",
        "gauge: jobs with remaining work in a live session, by algo",
    ),
    (
        "mpss_session_arrivals_total",
        "counter: jobs accepted by a live session, by algo",
    ),
    (
        "mpss_session_clock",
        "gauge: a live session's current model time, by algo",
    ),
    (
        "mpss_session_queued_volume",
        "gauge: unfinished work volume queued in a live session, by algo",
    ),
    (
        "mpss_session_replan_seconds",
        "histogram: wall-clock replan latency of a live session, by algo",
    ),
    (
        "mpss_session_replans_total",
        "counter: replans a live session has run, by algo",
    ),
    (
        "mpss_session_speed",
        "gauge: a live session's current per-processor speed, by algo and proc",
    ),
    (
        "mpss_span_seconds",
        "histogram: wall-clock span durations bridged from collectors, by span and track",
    ),
];

/// The bridged span-duration histogram family
/// ([`MetricsCollector`](crate::MetricsCollector) observes every closed span
/// here, labeled `{span, track}`).
pub const PROM_SPAN_SECONDS: &str = "mpss_span_seconds";

fn listed(table: &[(&str, &str)], name: &str) -> bool {
    table.iter().any(|(key, _)| *key == name)
}

/// Rewrites a dotted instrumentation key into a Prometheus-legal name chunk:
/// every character outside `[A-Za-z0-9]` becomes `_`.
pub fn prom_sanitize(key: &str) -> String {
    key.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// The live-metric family name a bridged counter or instant lands in:
/// `offline.phases` → `mpss_offline_phases_total`.
pub fn prom_counter(key: &str) -> String {
    format!("mpss_{}_total", prom_sanitize(key))
}

/// The live-metric family name a bridged histogram lands in:
/// `driver.online_energy` → `mpss_driver_online_energy`.
pub fn prom_histogram(key: &str) -> String {
    format!("mpss_{}", prom_sanitize(key))
}

/// `true` if `family` is a manifest live-metric family — either listed in
/// [`METRICS`] or derived from a manifest counter/instant/histogram by the
/// [`prom_counter`]/[`prom_histogram`] bridge mapping.
pub fn known_metric(family: &str) -> bool {
    listed(METRICS, family)
        || COUNTERS
            .iter()
            .chain(INSTANTS)
            .any(|(key, _)| prom_counter(key) == family)
        || HISTOGRAMS
            .iter()
            .any(|(key, _)| prom_histogram(key) == family)
}

/// `true` if `name` is a manifest counter — including instant names, which
/// aggregating collectors record as counters.
pub fn known_counter(name: &str) -> bool {
    listed(COUNTERS, name) || listed(INSTANTS, name)
}

/// `true` if `name` is a manifest histogram — including the derived
/// `span.<name>.ms` duration histograms of manifest spans.
pub fn known_histogram(name: &str) -> bool {
    if listed(HISTOGRAMS, name) {
        return true;
    }
    name.strip_prefix("span.")
        .and_then(|rest| rest.strip_suffix(".ms"))
        .is_some_and(|span| listed(SPANS, span))
}

/// `true` if `name` is a manifest span.
pub fn known_span(name: &str) -> bool {
    listed(SPANS, name)
}

/// Filters recorded keys down to the ones the manifest does not know —
/// the coverage test asserts this comes back empty.
pub fn unknown_keys<'a>(
    counters: impl IntoIterator<Item = &'a str>,
    histograms: impl IntoIterator<Item = &'a str>,
) -> Vec<String> {
    let mut unknown: Vec<String> = counters
        .into_iter()
        .filter(|name| !known_counter(name))
        .map(|name| format!("counter {name}"))
        .chain(
            histograms
                .into_iter()
                .filter(|name| !known_histogram(name))
                .map(|name| format!("histogram {name}")),
        )
        .collect();
    unknown.sort();
    unknown
}

/// The manifest as a Markdown table (DESIGN.md embeds this verbatim; the
/// `obs_manifest` test in the root crate keeps the two in sync).
pub fn markdown_table() -> String {
    let mut out = String::from("| kind | key | meaning |\n|---|---|---|\n");
    let sections: [(&str, &[(&str, &str)]); 5] = [
        ("counter", COUNTERS),
        ("histogram", HISTOGRAMS),
        ("span", SPANS),
        ("instant", INSTANTS),
        ("metric", METRICS),
    ];
    for (kind, table) in sections {
        for (key, meaning) in table {
            out.push_str(&format!("| {kind} | `{key}` | {meaning} |\n"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_are_sorted_and_unique() {
        for table in [COUNTERS, HISTOGRAMS, SPANS, INSTANTS, METRICS] {
            for pair in table.windows(2) {
                assert!(pair[0].0 < pair[1].0, "{} !< {}", pair[0].0, pair[1].0);
            }
        }
    }

    #[test]
    fn lookups_cover_derived_and_folded_names() {
        assert!(known_counter("offline.phases"));
        assert!(known_counter("race.bail")); // instant folded to counter
        assert!(!known_counter("offline.phasez"));
        assert!(known_histogram("driver.online_energy"));
        assert!(known_histogram("span.offline.phase.ms")); // derived
        assert!(!known_histogram("span.not.a.span.ms"));
        assert!(known_span("oa.replan"));
    }

    #[test]
    fn unknown_keys_reports_only_strays() {
        let unknown = unknown_keys(
            ["offline.phases", "typo.counter"],
            ["span.oa.replan.ms", "typo.hist"],
        );
        assert_eq!(unknown, vec!["counter typo.counter", "histogram typo.hist"]);
    }

    #[test]
    fn markdown_table_lists_every_key() {
        let table = markdown_table();
        for (key, _) in COUNTERS
            .iter()
            .chain(HISTOGRAMS)
            .chain(SPANS)
            .chain(INSTANTS)
            .chain(METRICS)
        {
            assert!(table.contains(&format!("`{key}`")), "missing {key}");
        }
    }

    #[test]
    fn prom_names_follow_the_bridge_mapping() {
        assert_eq!(prom_sanitize("offline.phases"), "offline_phases");
        assert_eq!(prom_counter("offline.phases"), "mpss_offline_phases_total");
        assert_eq!(
            prom_histogram("driver.online_energy"),
            "mpss_driver_online_energy"
        );
    }

    #[test]
    fn known_metric_accepts_listed_and_bridged_families() {
        assert!(known_metric("mpss_session_replan_seconds")); // listed
        assert!(known_metric(PROM_SPAN_SECONDS)); // listed
        assert!(known_metric("mpss_offline_phases_total")); // bridged counter
        assert!(known_metric("mpss_oa_arrival_total")); // bridged instant
        assert!(known_metric("mpss_driver_online_energy")); // bridged histogram
        assert!(!known_metric("mpss_totally_made_up"));
    }
}
