//! A per-tenant flight recorder: the daemon's black box.
//!
//! Metrics aggregate and traces must be armed in advance; the flight
//! recorder is the third leg — an always-on, fixed-capacity ring of the
//! *recent past*: protocol requests, replan summaries (latency, work,
//! patched arcs, winning engine), and error events. When a tenant
//! misbehaves, the postmortem bundle dumps the ring and an incident can be
//! reconstructed after the fact.
//!
//! The bound is part of the contract and is itself observable:
//!
//! * the ring never holds more than `capacity` events;
//! * `recorded_total == len() + dropped_total` at all times — every event
//!   ever recorded is either still in the ring or counted as dropped
//!   (capacity evictions and explicit
//!   [`compact_before_seq`](FlightRecorder::compact_before_seq) both
//!   count);
//! * events carry a strictly increasing sequence number and a monotonic
//!   timestamp, so a dumped ring is always in order.
//!
//! ```
//! use mpss_obs::flight::{FlightEventKind, FlightRecorder};
//!
//! let mut flight = FlightRecorder::new(2);
//! flight.record(FlightEventKind::request("open", true, None));
//! flight.record(FlightEventKind::error("planning", "infeasible"));
//! flight.record(FlightEventKind::request("arrive", true, None));
//! assert_eq!(flight.len(), 2); // the open was evicted…
//! assert_eq!(flight.dropped_total(), 1); // …and accounted for
//! assert_eq!(flight.recorded_total(), 3);
//! ```

use std::collections::VecDeque;
use std::time::Instant;

use crate::json::Json;

/// What happened: one of the three event classes the recorder keeps.
///
/// The op, engine, and error-kind vocabularies are closed (protocol ops,
/// solver engines, stable error kinds), so those fields are `&'static str`
/// — recording a request or replan event on the hot path allocates nothing.
/// Only [`Error`](FlightEventKind::Error) messages are dynamic.
#[derive(Clone, Debug, PartialEq)]
pub enum FlightEventKind {
    /// A protocol request was handled.
    Request {
        /// The wire op, e.g. `"arrive"`.
        op: &'static str,
        /// Whether the response was `ok`.
        ok: bool,
        /// The error kind when `ok` is false.
        error_kind: Option<&'static str>,
    },
    /// A replan ran to completion.
    Replan {
        /// Wall-clock latency of the replan, milliseconds.
        latency_ms: f64,
        /// Solver work operations charged to this replan.
        work_ops: u64,
        /// Network arcs patched incrementally (0 for from-scratch solves).
        patched_arcs: u64,
        /// The engine that produced the plan, e.g. `"dinic"` or `"avr"`.
        engine: &'static str,
    },
    /// Something failed.
    Error {
        /// The stable error kind, e.g. `"planning"`.
        kind: &'static str,
        /// Human-readable detail.
        message: String,
    },
}

impl FlightEventKind {
    /// A [`FlightEventKind::Request`] event.
    pub fn request(
        op: &'static str,
        ok: bool,
        error_kind: Option<&'static str>,
    ) -> FlightEventKind {
        FlightEventKind::Request { op, ok, error_kind }
    }

    /// A [`FlightEventKind::Replan`] event.
    pub fn replan(
        latency_ms: f64,
        work_ops: u64,
        patched_arcs: u64,
        engine: &'static str,
    ) -> FlightEventKind {
        FlightEventKind::Replan {
            latency_ms,
            work_ops,
            patched_arcs,
            engine,
        }
    }

    /// A [`FlightEventKind::Error`] event.
    pub fn error(kind: &'static str, message: &str) -> FlightEventKind {
        FlightEventKind::Error {
            kind,
            message: message.to_string(),
        }
    }

    /// The event class as a stable string: `"request"`, `"replan"`,
    /// `"error"`.
    pub fn class(&self) -> &'static str {
        match self {
            FlightEventKind::Request { .. } => "request",
            FlightEventKind::Replan { .. } => "replan",
            FlightEventKind::Error { .. } => "error",
        }
    }
}

/// One recorded event: when it happened and what it was.
#[derive(Clone, Debug, PartialEq)]
pub struct FlightEvent {
    /// Strictly increasing per recorder, never reused; survives evictions,
    /// so a dump names the absolute position of each retained event.
    pub seq: u64,
    /// Nanoseconds since the recorder's epoch (monotonic).
    pub ts_ns: u64,
    /// What happened.
    pub kind: FlightEventKind,
}

impl FlightEvent {
    /// The event as a JSON object (`seq`, `ts_ns`, `kind`, then
    /// kind-specific fields).
    pub fn to_json(&self) -> Json {
        let mut obj = Json::object();
        obj.push("seq", Json::from(self.seq));
        obj.push("ts_ns", Json::from(self.ts_ns));
        obj.push("kind", Json::from(self.kind.class()));
        match &self.kind {
            FlightEventKind::Request { op, ok, error_kind } => {
                obj.push("op", Json::from(*op));
                obj.push("ok", Json::Bool(*ok));
                if let Some(kind) = error_kind {
                    obj.push("error_kind", Json::from(*kind));
                }
            }
            FlightEventKind::Replan {
                latency_ms,
                work_ops,
                patched_arcs,
                engine,
            } => {
                obj.push("latency_ms", Json::from(*latency_ms));
                obj.push("work_ops", Json::from(*work_ops));
                obj.push("patched_arcs", Json::from(*patched_arcs));
                obj.push("engine", Json::from(*engine));
            }
            FlightEventKind::Error { kind, message } => {
                obj.push("error_kind", Json::from(*kind));
                obj.push("message", Json::from(message.as_str()));
            }
        }
        obj
    }
}

/// The fixed-capacity ring. Not shared: the daemon owns one per tenant plus
/// one daemon-wide, all behind its own synchronization.
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    epoch: Instant,
    ring: VecDeque<FlightEvent>,
    next_seq: u64,
    dropped_total: u64,
}

impl FlightRecorder {
    /// A recorder retaining at most `capacity` events (clamped to at
    /// least 1).
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            capacity: capacity.max(1),
            epoch: Instant::now(),
            ring: VecDeque::new(),
            next_seq: 0,
            dropped_total: 0,
        }
    }

    /// Appends an event, evicting the oldest if the ring is full. Returns
    /// the event's sequence number.
    pub fn record(&mut self, kind: FlightEventKind) -> u64 {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped_total += 1;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.ring.push_back(FlightEvent {
            seq,
            ts_ns: self.epoch.elapsed().as_nanos() as u64,
            kind,
        });
        seq
    }

    /// Drops every retained event with `seq < seq_bound`, counting them as
    /// dropped. Used after a bundle dump to avoid re-dumping the same tail.
    pub fn compact_before_seq(&mut self, seq_bound: u64) {
        while self.ring.front().is_some_and(|e| e.seq < seq_bound) {
            self.ring.pop_front();
            self.dropped_total += 1;
        }
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &FlightEvent> {
        self.ring.iter()
    }

    /// Retained event count (≤ capacity) — the occupancy gauge's value.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// `true` when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// The retention bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events evicted (by capacity or compaction), ever.
    pub fn dropped_total(&self) -> u64 {
        self.dropped_total
    }

    /// Events ever recorded; always `len() + dropped_total()`.
    pub fn recorded_total(&self) -> u64 {
        self.next_seq
    }

    /// The full recorder state as a JSON object, for postmortem bundles:
    /// `{capacity, recorded_total, dropped_total, events: [...]}`.
    pub fn dump_json(&self) -> Json {
        let mut obj = Json::object();
        obj.push("capacity", Json::from(self.capacity as u64));
        obj.push("recorded_total", Json::from(self.recorded_total()));
        obj.push("dropped_total", Json::from(self.dropped_total));
        obj.push(
            "events",
            Json::Arr(self.ring.iter().map(FlightEvent::to_json).collect()),
        );
        obj
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_bounds_the_ring_and_accounts_drops() {
        let mut flight = FlightRecorder::new(3);
        for i in 0..10 {
            flight.record(FlightEventKind::request(
                if i % 2 == 0 { "arrive" } else { "advance" },
                true,
                None,
            ));
        }
        assert_eq!(flight.len(), 3);
        assert_eq!(flight.capacity(), 3);
        assert_eq!(flight.dropped_total(), 7);
        assert_eq!(flight.recorded_total(), 10);
        let seqs: Vec<u64> = flight.events().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![7, 8, 9]);
    }

    #[test]
    fn events_stay_in_monotonic_order() {
        let mut flight = FlightRecorder::new(4);
        for _ in 0..9 {
            flight.record(FlightEventKind::error("planning", "x"));
        }
        let events: Vec<&FlightEvent> = flight.events().collect();
        for pair in events.windows(2) {
            assert!(pair[0].seq < pair[1].seq);
            assert!(pair[0].ts_ns <= pair[1].ts_ns);
        }
    }

    #[test]
    fn compaction_counts_into_dropped_total() {
        let mut flight = FlightRecorder::new(8);
        for _ in 0..5 {
            flight.record(FlightEventKind::request("arrive", true, None));
        }
        flight.compact_before_seq(3);
        assert_eq!(flight.len(), 2);
        assert_eq!(flight.dropped_total(), 3);
        assert_eq!(flight.recorded_total(), 5);
        // A bound past the end empties the ring but invents nothing.
        flight.compact_before_seq(100);
        assert!(flight.is_empty());
        assert_eq!(flight.dropped_total(), 5);
        assert_eq!(flight.recorded_total(), 5);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut flight = FlightRecorder::new(0);
        flight.record(FlightEventKind::request("open", true, None));
        assert_eq!(flight.capacity(), 1);
        assert_eq!(flight.len(), 1);
    }

    #[test]
    fn dump_json_carries_the_invariant_and_event_fields() {
        let mut flight = FlightRecorder::new(2);
        flight.record(FlightEventKind::replan(1.25, 42, 7, "dinic"));
        flight.record(FlightEventKind::request("arrive", false, Some("bad-job")));
        let dump = flight.dump_json();
        assert_eq!(dump.get("capacity"), Some(&Json::from(2u64)));
        assert_eq!(dump.get("recorded_total"), Some(&Json::from(2u64)));
        assert_eq!(dump.get("dropped_total"), Some(&Json::from(0u64)));
        let Some(Json::Arr(events)) = dump.get("events") else {
            panic!("events array missing");
        };
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].get("kind"), Some(&Json::from("replan")));
        assert_eq!(events[0].get("engine"), Some(&Json::from("dinic")));
        assert_eq!(events[0].get("work_ops"), Some(&Json::from(42u64)));
        assert_eq!(events[1].get("error_kind"), Some(&Json::from("bad-job")));
        // The dump round-trips through the parser.
        assert_eq!(Json::parse(&dump.render()).unwrap(), dump);
    }
}
